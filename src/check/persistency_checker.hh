/**
 * @file
 * The persistency checker: an online durability-invariant analysis
 * pass over the whole memory system.
 *
 * The checker shadows every word's persist state across the domains
 *   volatile cache -> ADR WPQ -> on-PM buffer -> media
 * plus the battery/ADR-backed log structures, and validates the
 * scheme-specific durability invariants at store, WPQ-acceptance,
 * commit, crash, and recovery time:
 *
 *  1. log-before-data — no word carrying an uncommitted new value may
 *     enter the persistent domain (WPQ accept, media program) unless a
 *     revoking undo record is durable first: in the PM log region, in
 *     the MC's ADR log path (in-flight), or in a battery/ADR-backed
 *     scheme structure (Silo's log buffer, MorLog's MC buffer). LAD's
 *     held entries are exempt — they are revocable by discard.
 *  2. commit durability — when Tx_end completes, the scheme's commit
 *     precondition holds: WAL schemes (Base/FWB/MorLog/SW-eADR) have
 *     every changed word's log record plus the commit marker durable;
 *     LAD has every changed word accepted into the ADR domain and no
 *     entry of the transaction still held; Silo has every changed word
 *     in battery custody, flush-bit-covered, or already accepted.
 *  3. flush-bit accounting — Silo may set an entry's flush-bit only
 *     when the WPQ actually accepted an eviction carrying that word's
 *     current new data, and must not write the word in-place again
 *     afterwards (double persist).
 *  4. crash closure — after crash + recovery, the media image must
 *     equal the checker's own oracle: initial values plus exactly the
 *     stores of every durably committed transaction.
 *  5. torn writes — media programming never straddles an on-PM buffer
 *     line.
 *
 * Violations are collected (not fatal) with tick + core + tx + address
 * provenance; tests and the check_all runner inspect them.
 */

#ifndef SILO_CHECK_PERSISTENCY_CHECKER_HH
#define SILO_CHECK_PERSISTENCY_CHECKER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/persist_event_sink.hh"
#include "sim/word_store.hh"

namespace silo::log
{
class LoggingScheme;
} // namespace silo::log

namespace silo::check
{

/** The invariant a violation breaks. */
enum class ViolationKind
{
    LogBeforeData,      //!< uncommitted data durable before its undo
    CommitNotDurable,   //!< Tx_end completed without its precondition
    HeldReleaseOrdering,//!< LAD held entry mishandled around commit
    FlushBitAccounting, //!< flush-bit set without a matching eviction
    DoublePersist,      //!< flush-bit-covered word written again
    TornWrite,          //!< media write straddles an on-PM buffer line
    CrashClosure,       //!< recovered image differs from the oracle
};

/**
 * @return short kebab-case name of a violation kind.
 *
 * These names are a STABLE machine-readable encoding: committed litmus
 * fixtures (tests/check/litmus/) and the fuzzer's shrink logs match on
 * them, so renaming one is a format break, not a cosmetic change.
 */
const char *violationName(ViolationKind kind);

/** Parse a violationName() back to its kind; fatal() if unknown. */
ViolationKind violationKindFromName(const std::string &name);

/** One detected invariant violation, with provenance. */
struct Violation
{
    ViolationKind kind;
    Tick tick = 0;          //!< simulated time of detection
    unsigned core = 0;      //!< owning core (or 0 if unknown)
    std::uint16_t txid = 0; //!< owning transaction (or 0 if unknown)
    Addr addr = 0;          //!< word or line address involved
    std::string detail;     //!< human-readable description
    /**
     * Event index the run's crash was injected at; 0 = no injected
     * crash. The checker itself cannot know this — the crash harness
     * (src/fuzz, bench/check_all) stamps it before serializing.
     */
    std::uint64_t crashIndex = 0;

    /**
     * One-line JSON object: {"kind","tick","core","txid","addr",
     * "crash_index","detail"} with addr as a "0x..." hex string. The
     * field set and spelling are stable — the shrinker, check_all and
     * the fixture files all consume it.
     */
    std::string toJson() const;
};

/** Event counters (observability + tests). */
struct CheckerCounters
{
    std::uint64_t stores = 0;
    std::uint64_t wpqLineAccepts = 0;
    std::uint64_t wpqWordAccepts = 0;
    std::uint64_t logPersists = 0;
    std::uint64_t mediaLineWrites = 0;
    std::uint64_t commits = 0;
    std::uint64_t wordsCheckedAtRecovery = 0;
};

/** Online durability-invariant checker (see file header). */
class PersistencyChecker : public log::PersistEventSink
{
  public:
    PersistencyChecker(const SimConfig &cfg, const EventQueue &eq);

    /** @name Scheme-side events (CheckedScheme and scheme hooks) */
    /// @{
    void onTxBegin(unsigned core, std::uint16_t txid);
    void onStore(unsigned core, Addr addr, Word old_val, Word new_val);
    void onTxEndRequested(unsigned core);
    void onTxEndComplete(unsigned core);
    void onCrashBegin();
    /** The battery died: scheme-internal shadow coverage is gone. */
    void onBatteryDead();
    /** Recovery finished: validate @p media against the oracle. */
    void onRecoveryComplete(const WordStore &media,
                            const log::LoggingScheme &inner);

    /** Silo appended an undo entry to the battery-backed log buffer. */
    void noteBatteryUndo(unsigned core, std::uint16_t txid, Addr addr,
                         Word old_val) override;
    /** MorLog appended an undo entry to its ADR-domain MC buffer. */
    void noteAdrUndo(unsigned core, std::uint16_t txid, Addr addr,
                     Word old_val) override;
    /** Silo set an entry's flush-bit (claims ADR has @p new_data). */
    void noteFlushBit(unsigned core, std::uint16_t txid, Addr addr,
                      Word new_data) override;
    /** A record entered the MC's ADR log path (durable, pre-accept). */
    void onLogInFlight(Addr rec_addr,
                       const log::LogRecord &record) override;
    /// @}

    /** @name PersistEventSink (memory-system events) */
    /// @{
    void onWpqAcceptLine(Addr line_addr,
                         const std::array<Word, wordsPerLine> &values,
                         bool evicted, bool held) override;
    void onWpqAcceptWord(Addr word_addr, Word value) override;
    void onHeldRelease(Addr line_addr) override;
    void onHeldDiscard(Addr line_addr) override;
    void onMediaWrite(
        Addr pm_line,
        const std::vector<std::pair<unsigned, Word>> &words,
        bool log_region) override;
    void onLogPersist(Addr rec_addr, const log::LogRecord &record) override;
    void onLogTruncate(unsigned tid, Addr head, Addr tail) override;
    /// @}

    /** @name Results */
    /// @{
    const std::vector<Violation> &violations() const
    {
        return _violations;
    }
    bool clean() const { return _violations.empty(); }
    /** Violations of one kind (mutation tests assert specific kinds). */
    std::size_t countOf(ViolationKind kind) const;
    const CheckerCounters &counters() const { return _counters; }
    /** Print every violation, one line each. */
    void report(std::ostream &os) const;
    /// @}

  private:
    /** Shadow of one transaction seen by the checker. */
    struct TxShadow
    {
        unsigned core = 0;
        std::uint16_t txid = 0;
        bool open = false;          //!< begun, Tx_end not yet complete
        bool endRequested = false;  //!< Tx_end hook entered
        bool committed = false;     //!< Tx_end done() fired
        /** addr -> (value before the tx's first store, latest value). */
        std::map<Addr, std::pair<Word, Word>> writes;
    };

    using TxKey = std::uint32_t; //!< core << 16 | txid

    static TxKey key(unsigned core, std::uint16_t txid)
    {
        return TxKey(core) << 16 | txid;
    }

    TxShadow *openTxOf(unsigned core);

    /**
     * A word carrying @p value entered a persistent domain. Checks
     * invariant 1 when the value is an uncommitted new value.
     * @param domain "WPQ" or "media" (for the report).
     */
    void checkDomainEntry(Addr addr, Word value, bool held,
                          const char *domain);

    /** @return true if an undo covering (tx, addr) is durable now. */
    bool undoCoverage(const TxShadow &tx, Addr addr) const;

    /** Invariant 2, dispatched on the configured scheme. */
    void checkCommit(const TxShadow &tx);

    void violate(ViolationKind kind, unsigned core, std::uint16_t txid,
                 Addr addr, std::string detail);

    const SimConfig &_cfg;
    const EventQueue &_eq;
    bool _crashed = false;
    bool _batteryDead = false;

    /** Every transaction ever begun. */
    std::map<TxKey, TxShadow> _txs;
    /** Latest (possibly open) transaction per core. */
    std::vector<std::uint16_t> _latestTx;
    std::vector<bool> _hasTx;

    /** addr -> key of the open tx whose uncommitted value it holds. */
    std::map<Addr, TxKey> _pendingWriter;
    /** First value ever observed for each stored word (initial image). */
    std::map<Addr, Word> _initialValue;
    /** Values of committed transactions, applied in commit order. */
    std::map<Addr, Word> _committedImage;

    /** Durable log region: record address -> record (truncation-aware). */
    std::map<Addr, log::LogRecord> _durableRecords;
    /** Records in the MC's ADR log path (durable, awaiting accept). */
    std::map<Addr, log::LogRecord> _inFlightRecords;
    /** Cumulative per-tx logged undo addresses (survives truncation). */
    std::map<TxKey, std::set<Addr>> _txLoggedUndo;
    /** Cumulative per-tx commit markers (survives truncation). */
    std::set<TxKey> _txMarker;

    /** Battery-backed (Silo) undo coverage: tx -> addrs. */
    std::map<TxKey, std::set<Addr>> _batteryUndo;
    /** ADR-buffer (MorLog) undo coverage: tx -> addrs. */
    std::map<TxKey, std::set<Addr>> _adrUndo;

    /** One held (LAD) WPQ line: durable but revocable by discard. */
    struct HeldLine
    {
        TxKey owner = 0;
        /** Accepted word values, promoted to _adrValue at release. */
        std::map<Addr, Word> words;
    };

    /** Last value accepted into the ADR domain, per word. */
    std::map<Addr, Word> _adrValue;
    /** Held (LAD) lines -> owning tx + values. */
    std::map<Addr, HeldLine> _heldLines;
    /** Flush-bit claims: word -> new data the ADR supposedly carries. */
    std::map<Addr, Word> _flushBitDelivered;

    CheckerCounters _counters;
    std::vector<Violation> _violations;
};

} // namespace silo::check

#endif // SILO_CHECK_PERSISTENCY_CHECKER_HH
