/**
 * @file
 * A transparent LoggingScheme decorator that feeds transaction-side
 * events (begin, store, Tx_end request/completion, crash, recovery)
 * into the persistency checker, then forwards to the wrapped scheme.
 *
 * The harness installs it only when SimConfig::checker is set, so the
 * replay cores and schemes are untouched when checking is off.
 */

#ifndef SILO_CHECK_CHECKED_SCHEME_HH
#define SILO_CHECK_CHECKED_SCHEME_HH

#include <memory>
#include <utility>

#include "check/persistency_checker.hh"
#include "log/logging_scheme.hh"

namespace silo::check
{

/** Forwarding wrapper that notifies the checker around each hook. */
class CheckedScheme : public log::LoggingScheme
{
  public:
    CheckedScheme(log::SchemeContext ctx,
                  std::unique_ptr<log::LoggingScheme> inner,
                  PersistencyChecker &checker)
        : LoggingScheme(std::move(ctx)), _inner(std::move(inner)),
          _checker(checker)
    {
    }

    const char *name() const override { return _inner->name(); }

    void
    txBegin(unsigned core, std::uint16_t txid) override
    {
        _checker.onTxBegin(core, txid);
        _inner->txBegin(core, txid);
    }

    void
    store(unsigned core, Addr addr, Word old_val, Word new_val,
          std::function<void()> done) override
    {
        _checker.onStore(core, addr, old_val, new_val);
        _inner->store(core, addr, old_val, new_val, std::move(done));
    }

    void
    txEnd(unsigned core, std::function<void()> done) override
    {
        _checker.onTxEndRequested(core);
        _inner->txEnd(core, [this, core, done = std::move(done)] {
            _checker.onTxEndComplete(core);
            done();
        });
    }

    void
    crash() override
    {
        _checker.onCrashBegin();
        _inner->crash();
        _checker.onBatteryDead();
    }

    bool
    lastTxCommittedAtCrash(unsigned core) const override
    {
        return _inner->lastTxCommittedAtCrash(core);
    }

    void
    recover(WordStore &media) override
    {
        _inner->recover(media);
        _checker.onRecoveryComplete(media, *_inner);
    }

    bool
    dropAtShutdown(Addr line) const override
    {
        return _inner->dropAtShutdown(line);
    }

    const log::SchemeStats &schemeStats() const override
    {
        return _inner->schemeStats();
    }

    unsigned logBufferFill() const override
    {
        return _inner->logBufferFill();
    }

    const stats::StatGroup *extraStatGroup() const override
    {
        return _inner->extraStatGroup();
    }

    /** The wrapped scheme (tests that downcast to a concrete type). */
    log::LoggingScheme &inner() { return *_inner; }

  private:
    std::unique_ptr<log::LoggingScheme> _inner;
    PersistencyChecker &_checker;
};

} // namespace silo::check

#endif // SILO_CHECK_CHECKED_SCHEME_HH
