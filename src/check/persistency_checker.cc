#include "check/persistency_checker.hh"

#include <cstdio>
#include <sstream>

#include "log/logging_scheme.hh"
#include "sim/address_map.hh"

namespace silo::check
{

const char *
violationName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::LogBeforeData: return "log-before-data";
      case ViolationKind::CommitNotDurable: return "commit-not-durable";
      case ViolationKind::HeldReleaseOrdering:
        return "held-release-ordering";
      case ViolationKind::FlushBitAccounting:
        return "flush-bit-accounting";
      case ViolationKind::DoublePersist: return "double-persist";
      case ViolationKind::TornWrite: return "torn-write";
      case ViolationKind::CrashClosure: return "crash-closure";
    }
    return "unknown";
}

ViolationKind
violationKindFromName(const std::string &name)
{
    for (ViolationKind kind :
         {ViolationKind::LogBeforeData, ViolationKind::CommitNotDurable,
          ViolationKind::HeldReleaseOrdering,
          ViolationKind::FlushBitAccounting, ViolationKind::DoublePersist,
          ViolationKind::TornWrite, ViolationKind::CrashClosure}) {
        if (name == violationName(kind))
            return kind;
    }
    fatal("unknown violation kind: " + name);
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
Violation::toJson() const
{
    std::ostringstream os;
    os << "{\"kind\": \"" << violationName(kind) << "\", \"tick\": "
       << tick << ", \"core\": " << core << ", \"txid\": " << txid
       << ", \"addr\": \"0x" << std::hex << addr << std::dec
       << "\", \"crash_index\": " << crashIndex << ", \"detail\": \""
       << jsonEscape(detail) << "\"}";
    return os.str();
}

PersistencyChecker::PersistencyChecker(const SimConfig &cfg,
                                       const EventQueue &eq)
    : _cfg(cfg), _eq(eq), _latestTx(cfg.numCores), _hasTx(cfg.numCores)
{
}

void
PersistencyChecker::violate(ViolationKind kind, unsigned core,
                            std::uint16_t txid, Addr addr,
                            std::string detail)
{
    _violations.push_back(
        Violation{kind, _eq.now(), core, txid, addr, std::move(detail)});
}

std::size_t
PersistencyChecker::countOf(ViolationKind kind) const
{
    std::size_t n = 0;
    for (const auto &v : _violations)
        n += v.kind == kind ? 1 : 0;
    return n;
}

void
PersistencyChecker::report(std::ostream &os) const
{
    for (const auto &v : _violations) {
        os << "[checker] " << violationName(v.kind) << " tick=" << v.tick
           << " core=" << v.core << " txid=" << v.txid << " addr=0x"
           << std::hex << v.addr << std::dec << " : " << v.detail
           << "\n";
    }
}

PersistencyChecker::TxShadow *
PersistencyChecker::openTxOf(unsigned core)
{
    if (core >= _hasTx.size() || !_hasTx[core])
        return nullptr;
    auto it = _txs.find(key(core, _latestTx[core]));
    if (it == _txs.end() || !it->second.open)
        return nullptr;
    return &it->second;
}

// --- Scheme-side events -------------------------------------------------

void
PersistencyChecker::onTxBegin(unsigned core, std::uint16_t txid)
{
    _latestTx[core] = txid;
    _hasTx[core] = true;
    TxShadow &tx = _txs[key(core, txid)];
    tx.core = core;
    tx.txid = txid;
    tx.open = true;
}

void
PersistencyChecker::onStore(unsigned core, Addr addr, Word old_val,
                            Word new_val)
{
    ++_counters.stores;
    TxShadow *tx = openTxOf(core);
    if (!tx)
        return;
    auto [it, inserted] =
        tx->writes.emplace(addr, std::make_pair(old_val, new_val));
    if (!inserted)
        it->second.second = new_val;
    _pendingWriter[addr] = key(core, tx->txid);
    _initialValue.emplace(addr, old_val);
    // A new value supersedes whatever an earlier flush-bit delivered.
    _flushBitDelivered.erase(addr);
}

void
PersistencyChecker::onTxEndRequested(unsigned core)
{
    if (TxShadow *tx = openTxOf(core))
        tx->endRequested = true;
}

void
PersistencyChecker::onTxEndComplete(unsigned core)
{
    TxShadow *tx = openTxOf(core);
    if (!tx)
        return;
    ++_counters.commits;
    checkCommit(*tx);
    tx->open = false;
    tx->committed = true;
    TxKey k = key(core, tx->txid);
    for (const auto &[addr, vals] : tx->writes) {
        _committedImage[addr] = vals.second;
        auto it = _pendingWriter.find(addr);
        if (it != _pendingWriter.end() && it->second == k)
            _pendingWriter.erase(it);
    }
    _batteryUndo.erase(k);
    _adrUndo.erase(k);
}

void
PersistencyChecker::onCrashBegin()
{
    _crashed = true;
}

void
PersistencyChecker::onBatteryDead()
{
    // The battery flush ran inside the scheme's crash(): anything that
    // needed to survive is now in the log region. On-chip coverage is
    // gone (and so is MorLog's MC buffer, which the ADR flush emptied).
    _batteryDead = true;
    _batteryUndo.clear();
    _adrUndo.clear();
}

void
PersistencyChecker::noteBatteryUndo(unsigned core, std::uint16_t txid,
                                    Addr addr, Word old_val)
{
    (void)old_val;
    _batteryUndo[key(core, txid)].insert(addr);
}

void
PersistencyChecker::noteAdrUndo(unsigned core, std::uint16_t txid,
                                Addr addr, Word old_val)
{
    (void)old_val;
    _adrUndo[key(core, txid)].insert(addr);
}

void
PersistencyChecker::noteFlushBit(unsigned core, std::uint16_t txid,
                                 Addr addr, Word new_data)
{
    // A flush-bit claims "the ADR domain already carries this word's
    // new data": the WPQ must have accepted an eviction with exactly
    // this value, or the entry was matched against a stale eviction.
    auto it = _adrValue.find(addr);
    if (it == _adrValue.end() || it->second != new_data) {
        std::ostringstream ss;
        ss << "flush-bit set but the ADR domain holds "
           << (it == _adrValue.end() ? std::string("no value")
                                     : std::to_string(it->second))
           << ", not the entry's new data " << new_data;
        violate(ViolationKind::FlushBitAccounting, core, txid, addr,
                ss.str());
        return;
    }
    _flushBitDelivered[addr] = new_data;
}

void
PersistencyChecker::onLogInFlight(Addr rec_addr,
                                  const log::LogRecord &record)
{
    _inFlightRecords[rec_addr] = record;
}

// --- Coverage and invariant 1 -------------------------------------------

bool
PersistencyChecker::undoCoverage(const TxShadow &tx, Addr addr) const
{
    TxKey k = key(tx.core, tx.txid);

    if (auto it = _batteryUndo.find(k);
        it != _batteryUndo.end() && it->second.count(addr))
        return true;
    if (auto it = _adrUndo.find(k);
        it != _adrUndo.end() && it->second.count(addr))
        return true;
    if (auto it = _txLoggedUndo.find(k);
        it != _txLoggedUndo.end() && it->second.count(addr))
        return true;
    for (const auto &[rec_addr, rec] : _inFlightRecords) {
        if ((rec.kind == log::LogRecord::Kind::Undo ||
             rec.kind == log::LogRecord::Kind::UndoRedo) &&
            rec.tid == tx.core && rec.txid == tx.txid &&
            rec.dataAddr == addr)
            return true;
    }
    return false;
}

void
PersistencyChecker::checkDomainEntry(Addr addr, Word value, bool held,
                                     const char *domain)
{
    if (_cfg.scheme == SchemeKind::None)
        return;
    auto pending = _pendingWriter.find(addr);
    if (pending == _pendingWriter.end())
        return;
    auto tx_it = _txs.find(pending->second);
    if (tx_it == _txs.end() || tx_it->second.committed)
        return;
    const TxShadow &tx = tx_it->second;
    auto w = tx.writes.find(addr);
    if (w == tx.writes.end())
        return;
    // The pre-transaction value needs no revocation; any other value is
    // an uncommitted (intermediate or latest) value of the open tx.
    if (value == w->second.first)
        return;
    if (held)
        return; // revocable by discard (LAD's buffered entries)
    if (undoCoverage(tx, addr))
        return;
    std::ostringstream ss;
    ss << "uncommitted value " << value << " reached the " << domain
       << " with no durable undo coverage (pre-tx value "
       << w->second.first << ")";
    violate(ViolationKind::LogBeforeData, tx.core, tx.txid, addr,
            ss.str());
}

// --- Memory-system events -----------------------------------------------

void
PersistencyChecker::onWpqAcceptLine(
    Addr line_addr, const std::array<Word, wordsPerLine> &values,
    bool evicted, bool held)
{
    (void)evicted;
    ++_counters.wpqLineAccepts;
    if (held) {
        // Identify the owning transaction via the thread-affine arena.
        TxKey owner = 0;
        if (addr_map::inDataRegion(line_addr)) {
            unsigned core = addr_map::dataArenaOwner(line_addr);
            if (TxShadow *tx = openTxOf(core))
                owner = key(core, tx->txid);
        }
        auto &entry = _heldLines[line_addr];
        entry.owner = owner;
        for (unsigned w = 0; w < wordsPerLine; ++w)
            entry.words[line_addr + Addr(w) * wordBytes] = values[w];
        return;
    }
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        Addr addr = line_addr + Addr(w) * wordBytes;
        checkDomainEntry(addr, values[w], false, "ADR WPQ");
        _adrValue[addr] = values[w];
    }
}

void
PersistencyChecker::onWpqAcceptWord(Addr word_addr, Word value)
{
    ++_counters.wpqWordAccepts;
    checkDomainEntry(word_addr, value, false, "ADR WPQ");
    auto fb = _flushBitDelivered.find(word_addr);
    if (fb != _flushBitDelivered.end() && fb->second == value) {
        std::ostringstream ss;
        ss << "in-place update of value " << value
           << " whose flush-bit already marked it delivered";
        violate(ViolationKind::DoublePersist, 0, 0, word_addr, ss.str());
    }
    _adrValue[word_addr] = value;
}

void
PersistencyChecker::onHeldRelease(Addr line_addr)
{
    auto it = _heldLines.find(line_addr);
    if (it == _heldLines.end())
        return;
    HeldLine entry = it->second;
    _heldLines.erase(it);

    // Releasing makes the entry drainable (irrevocable): legal only if
    // the owning transaction is committing/committed, or every word it
    // wrote in the line has durable undo coverage (LAD slow mode).
    auto tx_it = _txs.find(entry.owner);
    if (tx_it == _txs.end()) {
        for (const auto &[addr, value] : entry.words)
            _adrValue[addr] = value;
        return;
    }
    const TxShadow &tx = tx_it->second;
    if (!tx.committed && !tx.endRequested) {
        for (const auto &[addr, vals] : tx.writes) {
            if (lineAlign(addr) != line_addr)
                continue;
            if (!undoCoverage(tx, addr)) {
                violate(ViolationKind::HeldReleaseOrdering, tx.core,
                        tx.txid, addr,
                        "held entry released mid-transaction without "
                        "undo coverage");
            }
        }
    }
    for (const auto &[addr, value] : entry.words)
        _adrValue[addr] = value;
}

void
PersistencyChecker::onHeldDiscard(Addr line_addr)
{
    auto it = _heldLines.find(line_addr);
    if (it == _heldLines.end())
        return;
    TxKey owner = it->second.owner;
    _heldLines.erase(it);
    auto tx_it = _txs.find(owner);
    if (tx_it != _txs.end() && tx_it->second.committed) {
        violate(ViolationKind::HeldReleaseOrdering, tx_it->second.core,
                tx_it->second.txid, line_addr,
                "crash discarded a held entry of a committed "
                "transaction (release ordering broken)");
    }
}

void
PersistencyChecker::onMediaWrite(
    Addr pm_line, const std::vector<std::pair<unsigned, Word>> &words,
    bool log_region)
{
    // Media programming is a delayed replay of writes that already
    // passed the ADR entry check (WPQ accept / held release): a stale
    // buffered value may coincide with a newer transaction's pending
    // value, so invariant 1 must NOT be re-evaluated here. Only the
    // torn-write bound applies.
    (void)log_region;
    ++_counters.mediaLineWrites;
    const unsigned line_words = _cfg.onPmBufferLineBytes / wordBytes;
    for (const auto &[idx, value] : words) {
        (void)value;
        if (idx >= line_words) {
            std::ostringstream ss;
            ss << "word index " << idx
               << " straddles the 256 B on-PM buffer line";
            violate(ViolationKind::TornWrite, 0, 0, pm_line, ss.str());
        }
    }
}

void
PersistencyChecker::onLogPersist(Addr rec_addr,
                                 const log::LogRecord &record)
{
    ++_counters.logPersists;
    _inFlightRecords.erase(rec_addr);
    _durableRecords[rec_addr] = record;
    TxKey k = key(record.tid, record.txid);
    switch (record.kind) {
      case log::LogRecord::Kind::Undo:
      case log::LogRecord::Kind::UndoRedo:
        _txLoggedUndo[k].insert(record.dataAddr);
        break;
      case log::LogRecord::Kind::Commit:
        _txMarker.insert(k);
        break;
      case log::LogRecord::Kind::Redo:
      case log::LogRecord::Kind::IdTuple:
        break;
    }
}

void
PersistencyChecker::onLogTruncate(unsigned tid, Addr head, Addr tail)
{
    (void)tid;
    _durableRecords.erase(_durableRecords.lower_bound(head),
                          _durableRecords.lower_bound(tail));
}

// --- Invariant 2: commit durability -------------------------------------

void
PersistencyChecker::checkCommit(const TxShadow &tx)
{
    TxKey k = key(tx.core, tx.txid);

    switch (_cfg.scheme) {
      case SchemeKind::None:
        return;

      case SchemeKind::Base:
      case SchemeKind::Fwb:
      case SchemeKind::MorLog:
      case SchemeKind::SwEadr: {
        // WAL commit: every changed word's undo/redo record and the
        // commit marker must have been durable before done() fired.
        auto logged = _txLoggedUndo.find(k);
        for (const auto &[addr, vals] : tx.writes) {
            if (vals.first == vals.second)
                continue;
            if (logged == _txLoggedUndo.end() ||
                !logged->second.count(addr)) {
                violate(ViolationKind::CommitNotDurable, tx.core,
                        tx.txid, addr,
                        "Tx_end completed without a durable log record "
                        "for this word");
            }
        }
        if (!_txMarker.count(k)) {
            violate(ViolationKind::CommitNotDurable, tx.core, tx.txid, 0,
                    "Tx_end completed without a durable commit marker");
        }
        return;
      }

      case SchemeKind::Lad: {
        // LAD commit: every changed word durable in the ADR domain and
        // no entry of the transaction still held (release ordering).
        for (const auto &[addr, vals] : tx.writes) {
            if (vals.first == vals.second)
                continue;
            auto it = _adrValue.find(addr);
            if (it == _adrValue.end() || it->second != vals.second) {
                violate(ViolationKind::CommitNotDurable, tx.core,
                        tx.txid, addr,
                        "Tx_end completed but the word's final value "
                        "never reached the ADR domain");
            }
        }
        for (const auto &[line, entry] : _heldLines) {
            if (entry.owner == k) {
                violate(ViolationKind::HeldReleaseOrdering, tx.core,
                        tx.txid, line,
                        "Tx_end completed with an entry of the "
                        "transaction still held in the MC");
            }
        }
        return;
      }

      case SchemeKind::Silo: {
        // Silo commit: every changed word is in battery custody (log
        // buffer / staged), flush-bit-delivered, or already accepted.
        auto battery = _batteryUndo.find(k);
        for (const auto &[addr, vals] : tx.writes) {
            if (vals.first == vals.second)
                continue;
            if (battery != _batteryUndo.end() &&
                battery->second.count(addr))
                continue;
            auto fb = _flushBitDelivered.find(addr);
            if (fb != _flushBitDelivered.end() &&
                fb->second == vals.second)
                continue;
            auto adr = _adrValue.find(addr);
            if (adr != _adrValue.end() && adr->second == vals.second)
                continue;
            violate(ViolationKind::CommitNotDurable, tx.core, tx.txid,
                    addr,
                    "Tx_end completed with the word neither in battery "
                    "custody nor durable in the ADR domain");
        }
        return;
      }
    }
}

// --- Invariant 4: crash closure -----------------------------------------

void
PersistencyChecker::onRecoveryComplete(const WordStore &media,
                                       const log::LoggingScheme &inner)
{
    if (_cfg.scheme == SchemeKind::None)
        return;

    // Oracle: initial values + the stores of every durably committed
    // transaction. A commit in flight at the crash counts if the scheme
    // durably recorded it (lastTxCommittedAtCrash).
    std::map<Addr, Word> expected = _initialValue;
    for (const auto &[addr, value] : _committedImage)
        expected[addr] = value;
    for (unsigned core = 0; core < _cfg.numCores; ++core) {
        if (!_hasTx[core])
            continue;
        auto it = _txs.find(key(core, _latestTx[core]));
        if (it == _txs.end())
            continue;
        const TxShadow &tx = it->second;
        if (tx.committed || !tx.endRequested)
            continue;
        if (inner.lastTxCommittedAtCrash(core)) {
            for (const auto &[addr, vals] : tx.writes)
                expected[addr] = vals.second;
        }
    }

    constexpr std::size_t maxReports = 16;
    std::size_t reported = 0;
    for (const auto &[addr, value] : expected) {
        ++_counters.wordsCheckedAtRecovery;
        Word got = media.load(addr);
        if (got == value)
            continue;
        if (reported++ < maxReports) {
            std::ostringstream ss;
            ss << "recovered media holds " << got << ", oracle expects "
               << value;
            violate(ViolationKind::CrashClosure, 0, 0, addr, ss.str());
        }
    }
    if (reported > maxReports) {
        violate(ViolationKind::CrashClosure, 0, 0, 0,
                "... " + std::to_string(reported - maxReports) +
                    " more mismatching words suppressed");
    }
}

} // namespace silo::check
