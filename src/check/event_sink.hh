/**
 * @file
 * The persistency-event observer interface.
 *
 * The memory controller, PM device, and log region report
 * durability-relevant events (domain transitions) through this
 * interface so the persistency checker (src/check) can shadow the
 * memory system without those components depending on it. Every hook
 * has an empty default body and every producer guards its sink pointer,
 * so a disabled checker costs one null check per event.
 *
 * Domain model (§II / §III of the paper): a word moves
 *   volatile cache -> ADR WPQ -> on-PM buffer -> media,
 * and becomes durable at WPQ acceptance (the ADR persist point). Log
 * records additionally pass through the MC's ADR log path while they
 * retry for a WPQ slot (in-flight records are durable too).
 */

#ifndef SILO_CHECK_EVENT_SINK_HH
#define SILO_CHECK_EVENT_SINK_HH

#include <array>
#include <utility>
#include <vector>

#include "log/log_record.hh"
#include "sim/types.hh"

namespace silo::check
{

/** Observer of durability-relevant memory-system events. */
class PersistEventSink
{
  public:
    virtual ~PersistEventSink() = default;

    /** @name ADR domain (memory controller WPQ) */
    /// @{

    /**
     * A full 64 B line was accepted into the WPQ (durable unless
     * @p held — LAD's revocable buffered entries).
     */
    virtual void
    onWpqAcceptLine(Addr line_addr,
                    const std::array<Word, wordsPerLine> &values,
                    bool evicted, bool held)
    {
        (void)line_addr;
        (void)values;
        (void)evicted;
        (void)held;
    }

    /** An 8 B word write was accepted (Silo's in-place update path). */
    virtual void onWpqAcceptWord(Addr word_addr, Word value)
    {
        (void)word_addr;
        (void)value;
    }

    /** A held (LAD) entry became drainable. */
    virtual void onHeldRelease(Addr line_addr) { (void)line_addr; }

    /** A held entry was discarded by the crash drain (revocation). */
    virtual void onHeldDiscard(Addr line_addr) { (void)line_addr; }
    /// @}

    /** @name PM device */
    /// @{

    /**
     * Words of one on-PM buffer line were programmed into the media
     * (word indices are relative to the 256 B line base).
     */
    virtual void
    onMediaWrite(Addr pm_line,
                 const std::vector<std::pair<unsigned, Word>> &words,
                 bool log_region)
    {
        (void)pm_line;
        (void)words;
        (void)log_region;
    }
    /// }@

    /** @name Log region */
    /// @{

    /** A log record became durable at @p rec_addr. */
    virtual void onLogPersist(Addr rec_addr, const log::LogRecord &record)
    {
        (void)rec_addr;
        (void)record;
    }

    /** Thread @p tid 's log was truncated over [@p head, @p tail). */
    virtual void onLogTruncate(unsigned tid, Addr head, Addr tail)
    {
        (void)tid;
        (void)head;
        (void)tail;
    }
    /// @}
};

} // namespace silo::check

#endif // SILO_CHECK_EVENT_SINK_HH
