/**
 * @file
 * Umbrella header: the public API of the Silo reproduction library.
 *
 * Typical use:
 * @code
 *   #include "silo.hh"
 *
 *   silo::SimConfig cfg;                    // Table II defaults
 *   cfg.scheme = silo::SchemeKind::Silo;    // or Base/FWB/MorLog/LAD
 *
 *   silo::workload::TraceGenConfig tg;
 *   tg.kind = silo::workload::WorkloadKind::Tpcc;
 *   tg.numThreads = cfg.numCores;
 *   auto traces = silo::workload::generateTraces(tg);
 *
 *   silo::harness::System sys(cfg, traces);
 *   sys.run();                              // or runEvents + crash()
 *   sys.settle();
 *   sys.drainToMedia();
 *   auto report = sys.report();
 * @endcode
 */

#ifndef SILO_SILO_HH
#define SILO_SILO_HH

#include "energy/battery_model.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "silo/silo_scheme.hh"
#include "sim/config.hh"
#include "workload/trace_gen.hh"
#include "workload/workload.hh"

#endif // SILO_SILO_HH
