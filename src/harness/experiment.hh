/**
 * @file
 * Experiment helpers shared by the bench binaries: run one (scheme,
 * workload, cores) cell, cache generated traces across schemes, and
 * print paper-style normalized tables.
 */

#ifndef SILO_HARNESS_EXPERIMENT_HH
#define SILO_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "sim/table.hh"
#include "workload/trace_gen.hh"

namespace silo::harness
{

/**
 * Read an unsigned configuration knob from the environment.
 *
 * Unset or empty returns @p fallback; anything else must be a full
 * decimal unsigned integer — garbage ("abc"), signs ("-5"), trailing
 * junk ("10x") and overflow are configuration errors reported via
 * fatal() with the variable name, never silently misparsed.
 */
std::uint64_t envOr(const char *name, std::uint64_t fallback);

/**
 * Read a string-valued configuration knob from the environment.
 *
 * Unset or empty returns @p fallback. Like envOr() this is the one
 * sanctioned route to the environment: silo-lint rule R2 bans raw
 * getenv() everywhere else, so every knob gets the same
 * empty-equals-unset convention.
 */
std::string envStrOr(const char *name, const std::string &fallback);

/** Trace cache keyed on generation parameters (shared by schemes). */
class TraceCache
{
  public:
    /** The cache key for @p cfg (every generation knob, in order). */
    static std::string key(const workload::TraceGenConfig &cfg);

    /** Fetch the traces for @p cfg, generating them on a miss. */
    const workload::WorkloadTraces &
    get(const workload::TraceGenConfig &cfg);

    bool contains(const workload::TraceGenConfig &cfg) const;

    /**
     * Insert externally generated traces (the sweep engine generates
     * unique configs in parallel, then populates the cache serially).
     * Counts toward generationCount(); duplicate inserts are a bug.
     */
    const workload::WorkloadTraces &
    insert(const workload::TraceGenConfig &cfg,
           workload::WorkloadTraces traces);

    /**
     * How many trace sets were generated into this cache — the
     * determinism tests assert one generation per unique config.
     */
    std::uint64_t generationCount() const { return _generations; }

  private:
    std::map<std::string, workload::WorkloadTraces> _cache;
    std::uint64_t _generations = 0;
};

/** Run one simulation to completion, including the final drain. */
SimReport runCell(const SimConfig &cfg,
                  const workload::WorkloadTraces &traces);

/**
 * Fig. 11/12-style matrix: rows = schemes, columns = the evaluation
 * workloads plus their geometric-mean "Average", each cell normalized
 * to the first scheme (Base).
 */
struct NormalizedMatrix
{
    std::vector<std::string> rowNames;
    std::vector<std::string> colNames;
    /** raw[row][col] — pre-normalization values. */
    std::vector<std::vector<double>> raw;

    /** Normalize each column to row @p base_row and append the mean. */
    TablePrinter toTable(const std::string &title,
                         std::size_t base_row = 0,
                         int digits = 3) const;
};

/** Print the Table II-style configuration header once per bench. */
void printConfigBanner(const SimConfig &cfg, std::ostream &os);

} // namespace silo::harness

#endif // SILO_HARNESS_EXPERIMENT_HH
