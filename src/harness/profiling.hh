/**
 * @file
 * SILO_PROF glue: the one place the environment turns host-time
 * profiling on.
 *
 * The profiler itself (sim/profiler.hh) is env-free — the sim layer
 * may not read ambient state. This harness shim reads `SILO_PROF=
 * <path>` once, installs a process Profiler when it is set, and
 * registers an exit hook that merges every worker slab and writes the
 * silo-prof-v1 JSON profile to <path>. With the variable unset
 * nothing is installed and every instrumentation site stays a
 * null-pointer branch.
 *
 * The sweep engine calls profilerFromEnv() before fanning out, so
 * every bench binary is profile-capable without per-main wiring;
 * tests bypass the environment entirely by installing their own
 * Profiler via prof::Profiler::install().
 */

#ifndef SILO_HARNESS_PROFILING_HH
#define SILO_HARNESS_PROFILING_HH

#include "sim/profiler.hh"

namespace silo::harness
{

/**
 * The SILO_PROF-configured process profiler, installed (once) on the
 * first call; nullptr when the variable is unset. Call on the main
 * thread before spawning workers that should profile.
 */
prof::Profiler *profilerFromEnv();

} // namespace silo::harness

#endif // SILO_HARNESS_PROFILING_HH
