#include "harness/sweep.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "harness/profiling.hh"
#include "harness/walltime.hh"
#include "sim/logging.hh"

namespace silo::harness
{

namespace
{

double
nowSeconds()
{
    return wallSeconds();
}

/** Round-trippable, locale-independent double formatting. */
std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

unsigned
Sweep::defaultJobs()
{
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::uint64_t jobs = envOr("SILO_JOBS", hw);
    if (jobs == 0)
        fatal("SILO_JOBS must be positive");
    return unsigned(std::min<std::uint64_t>(jobs, 1024));
}

unsigned
Sweep::jobs() const
{
    return _opts.jobs ? _opts.jobs : defaultJobs();
}

void
Sweep::parallelFor(std::size_t n, unsigned jobs,
                   const std::function<void(std::size_t)> &body)
{
    jobs = unsigned(std::min<std::size_t>(jobs, n));
    if (jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // Work stealing over per-worker deques: a worker pops its own
    // queue from the front and steals from a victim's back, so cheap
    // neighbouring cells stay local while long-running stragglers get
    // drained by idle workers.
    struct WorkerQueue
    {
        std::mutex m;
        std::deque<std::size_t> q;
    };
    std::vector<WorkerQueue> queues(jobs);
    for (std::size_t i = 0; i < n; ++i)
        queues[i % jobs].q.push_back(i);

    std::mutex error_m;
    std::exception_ptr first_error;

    auto worker = [&](unsigned self) {
        setLogWorkerId(int(self));
        for (;;) {
            std::size_t idx = 0;
            bool found = false;
            {
                std::lock_guard<std::mutex> lk(queues[self].m);
                if (!queues[self].q.empty()) {
                    idx = queues[self].q.front();
                    queues[self].q.pop_front();
                    found = true;
                }
            }
            for (unsigned v = 1; v < jobs && !found; ++v) {
                WorkerQueue &victim = queues[(self + v) % jobs];
                std::lock_guard<std::mutex> lk(victim.m);
                if (!victim.q.empty()) {
                    idx = victim.q.back();
                    victim.q.pop_back();
                    found = true;
                }
            }
            if (!found)
                return;
            try {
                body(idx);
            } catch (...) {
                std::lock_guard<std::mutex> lk(error_m);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        pool.emplace_back(worker, w);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

const std::vector<CellResult> &
Sweep::run()
{
    unsigned jobs = this->jobs();
    // SILO_PROF installs the process profiler (once) before any
    // worker thread exists; unset, this is a no-op and every
    // instrumentation site below stays a null-pointer branch.
    profilerFromEnv();

    // Phase 1: generate every unique trace before any cell runs, so
    // the cache is read-only during fan-out. Generation is itself
    // parallel over the unique configs (each trace depends only on
    // its own config and seed), then inserted serially.
    std::vector<const workload::TraceGenConfig *> missing;
    std::set<std::string> queued;
    for (const auto &spec : _specs) {
        std::string key = TraceCache::key(spec.trace);
        if (!_cache.contains(spec.trace) && queued.insert(key).second)
            missing.push_back(&spec.trace);
    }
    if (!missing.empty()) {
        if (_opts.progress)
            std::fprintf(stderr, "sweep: generating %zu trace set(s) "
                         "on %u job(s)\n", missing.size(), jobs);
        std::vector<workload::WorkloadTraces> generated(missing.size());
        parallelFor(missing.size(), jobs, [&](std::size_t j) {
            prof::TimedScope scope(prof::currentThreadProfile(),
                                   prof::Tag::TraceCompile);
            generated[j] = workload::generateTraces(*missing[j]);
        });
        for (std::size_t j = 0; j < missing.size(); ++j)
            _cache.insert(*missing[j], std::move(generated[j]));
    }

    // Phase 2: fan the cells out. Each worker writes only its own
    // pre-sized result slot, so completion order never shows.
    _results.assign(_specs.size(), CellResult{});
    _done = 0;
    _runJobs = std::max(1u,
                        unsigned(std::min<std::size_t>(jobs,
                                                       _specs.size())));
    _workerBusyNanos.assign(_runJobs, 0);
    _startSeconds = nowSeconds();
    parallelFor(_specs.size(), jobs,
                [this](std::size_t i) { runOne(i); });
    if (_opts.progress && !_specs.empty() && isatty(STDERR_FILENO))
        std::fprintf(stderr, "\n");
    return _results;
}

void
Sweep::runOne(std::size_t index)
{
    if (_hooks.onCellStart)
        _hooks.onCellStart(index);
    const CellSpec &spec = _specs[index];
    const workload::WorkloadTraces &traces = _cache.get(spec.trace);
    // SILO_TRACE turns on timeline tracing for the cells it selects:
    // every cell by default, or just #SILO_TRACE_CELL when that is set.
    // Each traced cell writes its own file (see tracePathFor).
    SimConfig sim = spec.sim;
    if (std::string base = envStrOr("SILO_TRACE", ""); !base.empty()) {
        std::uint64_t only =
            envOr("SILO_TRACE_CELL", ~std::uint64_t(0));
        if (only == ~std::uint64_t(0) || only == index) {
            sim.tracePath = tracePathFor(base, spec);
            sim.traceSampleNs = double(envOr(
                "SILO_TRACE_SAMPLE_NS",
                std::uint64_t(sim.traceSampleNs)));
        }
    }
    double t0 = nowSeconds();
    CellResult out;
    out.traces = &traces;
    out.workerId = logWorkerId();
    out.queueWaitSeconds = t0 - _startSeconds;
    {
        // One simulate scope per cell — custom runners (crash
        // injection benches) are covered here too, since they have no
        // other choke point.
        prof::TimedScope scope(prof::currentThreadProfile(),
                               prof::Tag::Simulate);
        out.report = spec.runner ? spec.runner(sim, traces)
                                 : runCell(sim, traces);
    }
    out.wallSeconds = nowSeconds() - t0;
    _results[index] = std::move(out);
    noteCellDone(index, _results[index].wallSeconds);
}

void
Sweep::noteCellDone(std::size_t index, double wall_seconds)
{
    static std::mutex progress_m;
    std::lock_guard<std::mutex> lk(progress_m);
    ++_done;
    std::size_t slot =
        std::size_t(std::max(0, logWorkerId())) % _runJobs;
    _workerBusyNanos[slot] += std::uint64_t(wall_seconds * 1e9);
    if (!_opts.progress)
        return;
    double elapsed = nowSeconds() - _startSeconds;
    double eta = _done ? elapsed / double(_done) *
                             double(_specs.size() - _done)
                       : 0;
    double rate = elapsed > 0 ? double(_done) / elapsed : 0;
    std::uint64_t busy_nanos = 0;
    for (std::uint64_t nanos : _workerBusyNanos)
        busy_nanos += nanos;
    // Busy fraction: cell compute time over worker-seconds elapsed —
    // the gap is queueing imbalance plus engine overhead.
    double busy = elapsed > 0
                      ? double(busy_nanos) * 1e-9 /
                            (elapsed * double(_runJobs))
                      : 0;
    const char *terminator = isatty(STDERR_FILENO) ? "\r" : "\n";
    std::fprintf(stderr,
                 "sweep: [%3zu/%zu] %-40s %6.2fs  %5.1f cells/s  "
                 "busy %3.0f%%  eta %5.0fs%s",
                 _done, _specs.size(),
                 _specs[index].label.empty()
                     ? "(unnamed cell)"
                     : _specs[index].label.c_str(),
                 wall_seconds, rate, busy * 100, eta, terminator);
    std::fflush(stderr);
}

void
Sweep::writeJson(const std::string &path,
                 const std::string &benchmark) const
{
    prof::TimedScope phase(prof::currentThreadProfile(),
                           prof::Tag::JsonEmit);
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        fatal("cannot open JSON results file " + path);

    // SILO_STATS_JSON=0 drops the per-cell "stats" blocks, restoring
    // the pre-observability file byte-for-byte.
    bool embed_stats = envOr("SILO_STATS_JSON", 1) != 0;
    // Host timing is nondeterministic, so the per-cell "perf" block
    // only exists when the run opted into profiling: goldens and the
    // cross-job byte-identity guarantee see SILO_PROF unset.
    bool embed_perf = !envStrOr("SILO_PROF", "").empty();

    os << "{\n";
    os << "  \"schema\": \"silo-sweep-v1\",\n";
    os << "  \"benchmark\": \"" << jsonEscape(benchmark) << "\",\n";
    os << "  \"cells\": [";
    for (std::size_t i = 0; i < _results.size(); ++i) {
        const CellSpec &spec = _specs[i];
        const SimReport &r = _results[i].report;
        os << (i ? ",\n" : "\n");
        os << "    {\n";
        os << "      \"label\": \"" << jsonEscape(spec.label)
           << "\",\n";
        os << "      \"scheme\": \"" << schemeName(spec.sim.scheme)
           << "\",\n";
        os << "      \"workload\": \""
           << workload::workloadName(spec.trace.kind) << "\",\n";
        os << "      \"cores\": " << spec.sim.numCores << ",\n";
        os << "      \"trace\": {\"threads\": " << spec.trace.numThreads
           << ", \"tx_per_thread\": "
           << spec.trace.transactionsPerThread
           << ", \"ops_per_tx\": " << spec.trace.opsPerTransaction
           << ", \"seed\": " << spec.trace.seed << "},\n";
        os << "      \"report\": {\n";
        os << "        \"committed_transactions\": "
           << r.committedTransactions << ",\n";
        os << "        \"ticks\": " << r.ticks << ",\n";
        os << "        \"tx_per_million_cycles\": "
           << jsonNum(r.txPerMillionCycles) << ",\n";
        os << "        \"media_word_writes\": " << r.mediaWordWrites
           << ",\n";
        os << "        \"media_line_writes\": " << r.mediaLineWrites
           << ",\n";
        os << "        \"data_region_word_writes\": "
           << r.dataRegionWordWrites << ",\n";
        os << "        \"log_region_word_writes\": "
           << r.logRegionWordWrites << ",\n";
        os << "        \"log_records_written\": "
           << r.logRecordsWritten << ",\n";
        os << "        \"commit_stall_cycles\": "
           << r.commitStallCycles << ",\n";
        os << "        \"store_stall_cycles\": " << r.storeStallCycles
           << ",\n";
        os << "        \"wpq_full_stalls\": " << r.wpqFullStalls
           << ",\n";
        os << "        \"wpq_accepted_writes\": "
           << r.wpqAcceptedWrites << ",\n";
        os << "        \"wpq_accepted_bytes\": " << r.wpqAcceptedBytes;
        if (embed_stats && !r.statsJson.empty()) {
            // The registry document is already valid JSON; splice it
            // in verbatim so the schema stays "silo-stats-v1" inside.
            os << ",\n        \"stats\": " << r.statsJson << "\n";
        } else {
            os << "\n";
        }
        os << "      }";
        if (embed_perf) {
            os << ",\n      \"perf\": {\"wall_seconds\": "
               << jsonNum(_results[i].wallSeconds)
               << ", \"queue_wait_seconds\": "
               << jsonNum(_results[i].queueWaitSeconds)
               << ", \"worker\": " << _results[i].workerId << "}\n";
        } else {
            os << "\n";
        }
        os << "    }";
    }
    os << "\n  ]\n}\n";
    if (!os)
        fatal("failed writing JSON results file " + path);
}

std::string
tracePathFor(const std::string &base, const CellSpec &spec)
{
    std::filesystem::path p(base);
    std::string ext = p.extension().string();
    if (ext.empty())
        ext = ".json";
    std::string cell = std::string(schemeName(spec.sim.scheme)) + "-" +
                       workload::workloadName(spec.trace.kind) + "-" +
                       std::to_string(spec.sim.numCores) + "c";
    p.replace_filename(p.stem().string() + "-" + cell + ext);
    return p.string();
}

std::string
jsonOutputPath(const std::string &benchmark)
{
    return envStrOr("SILO_JSON", "results/" + benchmark + ".json");
}

} // namespace silo::harness
