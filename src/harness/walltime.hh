/**
 * @file
 * The harness wall-clock shim — the one sanctioned real-time source.
 *
 * Simulated results must never depend on the host clock, so silo-lint
 * rule R2 (ambient-entropy) bans wall-clock reads everywhere except
 * here. Callers that need real time for progress/ETA lines or
 * self-performance measurement take it from wallSeconds(); nothing
 * read from this shim may flow into a SimReport, results/*.json or a
 * golden digest.
 */

#ifndef SILO_HARNESS_WALLTIME_HH
#define SILO_HARNESS_WALLTIME_HH

#include <chrono>

namespace silo::harness
{

/** Monotonic wall-clock seconds (arbitrary epoch; diff two reads). */
inline double
wallSeconds()
{
    using namespace std::chrono;
    // silo-lint: allow(ambient-entropy) the sanctioned wall-clock shim: feeds progress/ETA and self-timing only, never results
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

} // namespace silo::harness

#endif // SILO_HARNESS_WALLTIME_HH
