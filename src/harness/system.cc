#include "harness/system.hh"

#include "check/checked_scheme.hh"

namespace silo::harness
{

System::System(const SimConfig &cfg,
               const workload::WorkloadTraces &traces)
    : _cfg(cfg), _traces(traces)
{
    _cfg.validate();
    if (_traces.threads.size() < _cfg.numCores)
        fatal("trace has fewer threads than configured cores");

    _values.loadImage(_traces.initialMemory);
    _logs = std::make_unique<log::LogRegionStore>(_cfg.numCores);
    _pm = std::make_unique<nvm::PmDevice>(_eq, _cfg);
    _pm->media().loadImage(_traces.initialMemory);
    _mc = std::make_unique<mc::McRouter>(_eq, _cfg, *_pm, *_logs);

    auto value_of = [this](Addr a) { return _values.load(a); };
    _hierarchy = std::make_unique<mem::CacheHierarchy>(_eq, _cfg, *_mc,
                                                       value_of);

    auto set_value = [this](Addr a, Word v) { _values.store(a, v); };
    log::SchemeContext ctx{_eq, _cfg, *_mc, *_hierarchy, *_logs, *_pm,
                           value_of, set_value};
    if (_cfg.checker) {
        // Shadow the whole persist path: the checker observes log
        // persists, WPQ accepts/releases/discards, and media writes,
        // and the scheme is wrapped so tx boundaries reach it too.
        _checker = std::make_unique<check::PersistencyChecker>(_cfg, _eq);
        _logs->setEventSink(_checker.get());
        _mc->setCheckSink(_checker.get());
        _pm->setCheckSink(_checker.get());
        ctx.checker = _checker.get();
        _scheme = std::make_unique<check::CheckedScheme>(
            ctx, log::makeScheme(ctx), *_checker);
    } else {
        _scheme = log::makeScheme(ctx);
    }

    for (unsigned c = 0; c < _cfg.numCores; ++c) {
        _cores.push_back(std::make_unique<core::ReplayCore>(
            c, _eq, _cfg, *_hierarchy, *_scheme, _values,
            _traces.threads[c], [this] {
                // Periodic machinery (e.g., FWB's walker) keeps the
                // event queue alive forever; stop once every core has
                // retired its trace. drainToMedia() settles leftovers.
                if (++_finishedCores == _cfg.numCores)
                    _eq.requestStop();
            }));
    }
}

System::~System() = default;

void
System::run()
{
    if (!_started) {
        for (auto &core : _cores)
            core->start();
        _started = true;
    }
    _eq.run();
}

bool
System::runEvents(std::uint64_t max_events)
{
    if (!_started) {
        for (auto &core : _cores)
            core->start();
        _started = true;
    }
    _eq.run(max_events);
    return !_eq.empty() && !_eq.stopRequested();
}

void
System::crash()
{
    if (_crashed)
        panic("double crash");
    _crashed = true;
    // 1. Battery-backed selective flush (Silo §III-G; no-op for
    //    schemes without battery-backed structures).
    _scheme->crash();
    // 2. ADR: the WPQ and on-PM buffer drain to media; LAD's held
    //    (uncommitted) entries are discarded.
    _mc->crashDrain();
    // 3. Volatile caches lose everything.
    _hierarchy->invalidateAll();
}

void
System::recover()
{
    if (!_crashed)
        panic("recover() without a crash");
    _scheme->recover(_pm->media());
}

void
System::settle(Cycles grace)
{
    _eq.clearStop();
    _eq.runUntil(_eq.now() + grace);
}

void
System::drainToMedia()
{
    // Clean shutdown: write back every dirty line, then drain queues.
    for (Addr line : _hierarchy->allDirtyLines()) {
        std::array<Word, wordsPerLine> values;
        for (unsigned w = 0; w < wordsPerLine; ++w)
            values[w] = _values.load(line + Addr(w) * wordBytes);
        while (!_mc->tryWriteLine(line, values, false))
            _mc->drainAll();
    }
    _hierarchy->invalidateAll();
    _mc->drainAll();
}

void
System::printStats(std::ostream &os)
{
    _pm->statGroup().print(os);
    _mc->printStats(os);
    for (unsigned c = 0; c < _cfg.numCores; ++c) {
        _hierarchy->l1(c).statGroup().print(os);
        _hierarchy->l2(c).statGroup().print(os);
    }
    _hierarchy->l3().statGroup().print(os);
}

SimReport
System::report() const
{
    SimReport r;
    for (const auto &core : _cores) {
        r.committedTransactions += core->committedTx();
        r.commitStallCycles += core->commitStallCycles();
        r.storeStallCycles += core->storeStallCycles();
    }
    r.ticks = _eq.now();
    if (r.ticks > 0) {
        r.txPerMillionCycles = double(r.committedTransactions) * 1e6 /
                               double(r.ticks);
    }
    r.mediaWordWrites = _pm->mediaWordWrites();
    r.mediaLineWrites = _pm->mediaLineWrites();
    r.dataRegionWordWrites = _pm->dataRegionWordWrites();
    r.logRegionWordWrites = _pm->logRegionWordWrites();
    r.logRecordsWritten = _scheme->schemeStats().logWrites.value();
    r.wpqFullStalls = _mc->fullStalls();
    r.wpqAcceptedWrites = _mc->acceptedWrites();
    r.wpqAcceptedBytes = _mc->acceptedBytes();
    return r;
}

} // namespace silo::harness
