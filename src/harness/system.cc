#include "harness/system.hh"

#include "check/checked_scheme.hh"

namespace silo::harness
{

System::System(const SimConfig &cfg,
               const workload::WorkloadTraces &traces)
    : _cfg(cfg), _traces(traces)
{
    _cfg.validate();
    if (_traces.threads.size() < _cfg.numCores)
        fatal("trace has fewer threads than configured cores");

    // Host-time profiling: attach the constructing thread's slab (the
    // sweep worker that will run this System) when a profiler is
    // installed; null otherwise, costing one branch per dispatch.
    _eq.setProfiler(prof::currentThreadProfile());

    if (!_cfg.tracePath.empty()) {
        // Attach before any component exists so their constructors can
        // register trace tracks via _eq.tracer().
        _tracer = std::make_unique<trace::Tracer>();
        _tracer->enable(_cfg.coreGhz * 1000.0);
        _eq.setTracer(_tracer.get());
    }

    _values.loadImage(_traces.initialMemory);
    _logs = std::make_unique<log::LogRegionStore>(_cfg.numCores);
    _pm = std::make_unique<nvm::PmDevice>(_eq, _cfg);
    _pm->media().loadImage(_traces.initialMemory);
    _mc = std::make_unique<mc::McRouter>(_eq, _cfg, *_pm, *_logs);

    auto value_of = [this](Addr a) { return _values.load(a); };
    _hierarchy = std::make_unique<mem::CacheHierarchy>(_eq, _cfg, *_mc,
                                                       value_of);

    auto set_value = [this](Addr a, Word v) { _values.store(a, v); };
    log::SchemeContext ctx{_eq, _cfg, *_mc, *_hierarchy, *_logs, *_pm,
                           value_of, set_value};
    if (_cfg.checker) {
        // Shadow the whole persist path: the checker observes log
        // persists, WPQ accepts/releases/discards, and media writes,
        // and the scheme is wrapped so tx boundaries reach it too.
        _checker = std::make_unique<check::PersistencyChecker>(_cfg, _eq);
        _logs->setEventSink(_checker.get());
        _mc->setCheckSink(_checker.get());
        _pm->setCheckSink(_checker.get());
        ctx.checker = _checker.get();
        _scheme = std::make_unique<check::CheckedScheme>(
            ctx, log::makeScheme(ctx), *_checker);
    } else {
        _scheme = log::makeScheme(ctx);
    }

    for (unsigned c = 0; c < _cfg.numCores; ++c) {
        _cores.push_back(std::make_unique<core::ReplayCore>(
            c, _eq, _cfg, *_hierarchy, *_scheme, _values,
            _traces.threads[c], [this] {
                // Periodic machinery (e.g., FWB's walker) keeps the
                // event queue alive forever; stop once every core has
                // retired its trace. drainToMedia() settles leftovers.
                if (++_finishedCores == _cfg.numCores)
                    _eq.requestStop();
            }));
    }

    if (_tracer) {
        Cycles period = cyclesFromNs(_cfg.traceSampleNs, _cfg.coreGhz);
        _sampler = std::make_unique<trace::IntervalSampler>(
            _eq, *_tracer, period);
        auto track = _tracer->track("counters", "sampler");
        for (unsigned i = 0; i < _mc->numControllers(); ++i) {
            mc::MemController &mc = _mc->controllerAt(i);
            _sampler->addCounter(
                track, mc.statGroup().name() + "_wpq_occupancy",
                [&mc] { return double(mc.wpqOccupancy()); });
        }
        _sampler->addCounter(track, "log_buffer_fill", [this] {
            return double(_scheme->logBufferFill());
        });
        _sampler->addCounter(track, "pm_busy_banks", [this] {
            return double(_pm->busyBanks());
        });
        _sampler->addCounter(track, "pm_buffer_occupancy", [this] {
            return double(_pm->bufferOccupancy());
        });
        _sampler->addCounter(track, "dcw_suppressed_words", [this] {
            return double(_pm->dcwSuppressedWords());
        });
        for (unsigned c = 0; c < _cfg.numCores; ++c) {
            _sampler->addCounter(
                track, "core" + std::to_string(c) + "_commit_stalls",
                [this, c] {
                    return double(_cores[c]->commitStallCycles());
                });
        }
    }
}

System::~System()
{
    if (_tracer && !_traceWritten) {
        try {
            writeTrace();
        } catch (const std::exception &e) {
            warn(std::string("trace not written: ") + e.what());
        }
    }
    _eq.setTracer(nullptr);
}

void
System::run()
{
    if (!_started) {
        for (auto &core : _cores)
            core->start();
        if (_sampler)
            _sampler->start();
        _started = true;
    }
    _eq.run();
}

bool
System::runEvents(std::uint64_t max_events)
{
    if (!_started) {
        for (auto &core : _cores)
            core->start();
        if (_sampler)
            _sampler->start();
        _started = true;
    }
    _eq.run(max_events);
    return !_eq.empty() && !_eq.stopRequested();
}

void
System::crash()
{
    if (_crashed)
        panic("double crash");
    _crashed = true;
    // 1. Battery-backed selective flush (Silo §III-G; no-op for
    //    schemes without battery-backed structures).
    _scheme->crash();
    // 2. ADR: the WPQ and on-PM buffer drain to media; LAD's held
    //    (uncommitted) entries are discarded.
    _mc->crashDrain();
    // 3. Volatile caches lose everything.
    _hierarchy->invalidateAll();
}

void
System::recover()
{
    if (!_crashed)
        panic("recover() without a crash");
    _scheme->recover(_pm->media());
}

void
System::settle(Cycles grace)
{
    _eq.clearStop();
    _eq.runUntil(_eq.now() + grace);
}

void
System::drainToMedia()
{
    // Clean shutdown: write back every dirty line, then drain queues.
    // Lines of a still-open transaction (a trace can end inside one —
    // litmus `tx abort`) are dropped with the volatile caches when the
    // scheme's only revocation mechanism for them is discard.
    for (Addr line : _hierarchy->allDirtyLines()) {
        if (_scheme->dropAtShutdown(line))
            continue;
        std::array<Word, wordsPerLine> values;
        for (unsigned w = 0; w < wordsPerLine; ++w)
            values[w] = _values.load(line + Addr(w) * wordBytes);
        while (!_mc->tryWriteLine(line, values, false))
            _mc->drainAll();
    }
    _hierarchy->invalidateAll();
    _mc->drainAll();
}

void
System::printStats(std::ostream &os)
{
    _pm->statGroup().print(os);
    _mc->printStats(os);
    for (unsigned c = 0; c < _cfg.numCores; ++c) {
        _hierarchy->l1(c).statGroup().print(os);
        _hierarchy->l2(c).statGroup().print(os);
    }
    _hierarchy->l3().statGroup().print(os);
    for (const auto &core : _cores)
        core->statGroup().print(os);
    _scheme->schemeStats().group.print(os);
    if (const auto *extra = _scheme->extraStatGroup())
        extra->print(os);
}

std::string
System::statsJson() const
{
    stats::StatRegistry reg;
    reg.add("pm", _pm->statGroup());
    unsigned n_mc = _mc->numControllers();
    for (unsigned i = 0; i < n_mc; ++i) {
        reg.add(n_mc == 1 ? "mc" : "mc/" + std::to_string(i),
                _mc->controllerAt(i).statGroup());
    }
    for (unsigned c = 0; c < _cfg.numCores; ++c) {
        std::string idx = std::to_string(c);
        reg.add("core/" + idx, _cores[c]->statGroup());
        reg.add("cache/l1d/" + idx, _hierarchy->l1(c).statGroup());
        reg.add("cache/l2/" + idx, _hierarchy->l2(c).statGroup());
    }
    reg.add("cache/l3", _hierarchy->l3().statGroup());
    reg.add("scheme", _scheme->schemeStats().group);
    if (const auto *extra = _scheme->extraStatGroup())
        reg.add("scheme_extra", *extra);
    return reg.toJson();
}

void
System::writeTrace()
{
    if (!_tracer || _traceWritten)
        return;
    if (_sampler)
        _sampler->flush(_eq.now());
    _tracer->writeJson(_cfg.tracePath);
    _traceWritten = true;
}

SimReport
System::report() const
{
    SimReport r;
    for (const auto &core : _cores) {
        r.committedTransactions += core->committedTx();
        r.commitStallCycles += core->commitStallCycles();
        r.storeStallCycles += core->storeStallCycles();
    }
    r.ticks = _eq.now();
    if (r.ticks > 0) {
        r.txPerMillionCycles = double(r.committedTransactions) * 1e6 /
                               double(r.ticks);
    }
    r.mediaWordWrites = _pm->mediaWordWrites();
    r.mediaLineWrites = _pm->mediaLineWrites();
    r.dataRegionWordWrites = _pm->dataRegionWordWrites();
    r.logRegionWordWrites = _pm->logRegionWordWrites();
    r.logRecordsWritten = _scheme->schemeStats().logWrites.value();
    r.wpqFullStalls = _mc->fullStalls();
    r.wpqAcceptedWrites = _mc->acceptedWrites();
    r.wpqAcceptedBytes = _mc->acceptedBytes();
    return r;
}

} // namespace silo::harness
