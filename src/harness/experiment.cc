#include "harness/experiment.hh"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/profiler.hh"
#include "sim/sha256.hh"

namespace silo::harness
{

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    // silo-lint: allow(ambient-entropy) envOr is the sanctioned getenv shim every other file must use
    const char *value = std::getenv(name);   // NOLINT(concurrency-mt-unsafe)
    if (!value || !*value)
        return fallback;
    const char *end = value + std::strlen(value);
    std::uint64_t parsed = 0;
    auto [ptr, ec] = std::from_chars(value, end, parsed, 10);
    if (ec == std::errc::result_out_of_range)
        fatal(std::string(name) + "=\"" + value +
              "\" overflows a 64-bit unsigned integer");
    if (ec != std::errc() || ptr != end)
        fatal(std::string(name) + "=\"" + value +
              "\" is not an unsigned decimal integer");
    return parsed;
}

std::string
envStrOr(const char *name, const std::string &fallback)
{
    // silo-lint: allow(ambient-entropy) envStrOr is the sanctioned getenv shim every other file must use
    const char *value = std::getenv(name);   // NOLINT(concurrency-mt-unsafe)
    if (!value || !*value)
        return fallback;
    return value;
}

std::string
TraceCache::key(const workload::TraceGenConfig &cfg)
{
    std::ostringstream key;
    key << workload::workloadName(cfg.kind) << '/' << cfg.numThreads
        << '/' << cfg.transactionsPerThread << '/'
        << cfg.opsPerTransaction << '/' << cfg.seed << '/'
        << cfg.options.tpccAllTxTypes;
    // Litmus traces are a pure function of the program text, which the
    // generic knobs above don't capture.
    if (cfg.kind == workload::WorkloadKind::Litmus)
        key << '/' << sha256Hex(cfg.options.litmus);
    return key.str();
}

const workload::WorkloadTraces &
TraceCache::get(const workload::TraceGenConfig &cfg)
{
    auto it = _cache.find(key(cfg));
    if (it == _cache.end())
        return insert(cfg, workload::generateTraces(cfg));
    return it->second;
}

bool
TraceCache::contains(const workload::TraceGenConfig &cfg) const
{
    return _cache.find(key(cfg)) != _cache.end();
}

const workload::WorkloadTraces &
TraceCache::insert(const workload::TraceGenConfig &cfg,
                   workload::WorkloadTraces traces)
{
    auto [it, inserted] = _cache.emplace(key(cfg), std::move(traces));
    if (!inserted)
        panic("TraceCache: duplicate insert for " + key(cfg));
    ++_generations;
    return it->second;
}

SimReport
runCell(const SimConfig &cfg, const workload::WorkloadTraces &traces)
{
    System sys(cfg, traces);
    sys.run();
    sys.settle();
    sys.drainToMedia();
    sys.writeTrace();
    SimReport report = sys.report();
    {
        // Separately attributed from the enclosing simulate phase:
        // registry serialization is pure host-side bookkeeping.
        prof::TimedScope scope(prof::currentThreadProfile(),
                               prof::Tag::StatsExport);
        report.statsJson = sys.statsJson();
    }
    return report;
}

TablePrinter
NormalizedMatrix::toTable(const std::string &title,
                          std::size_t base_row, int digits) const
{
    TablePrinter table(title);
    std::vector<std::string> header = {"Design"};
    header.insert(header.end(), colNames.begin(), colNames.end());
    header.push_back("Average");
    table.header(std::move(header));

    for (std::size_t r = 0; r < rowNames.size(); ++r) {
        std::vector<std::string> cells = {rowNames[r]};
        double log_sum = 0;
        unsigned n = 0;
        for (std::size_t c = 0; c < colNames.size(); ++c) {
            double base = raw[base_row][c];
            double norm = base > 0 ? raw[r][c] / base : 0;
            cells.push_back(TablePrinter::num(norm, digits));
            if (norm > 0) {
                log_sum += std::log(norm);
                ++n;
            }
        }
        double gmean = n ? std::exp(log_sum / n) : 0;
        cells.push_back(TablePrinter::num(gmean, digits));
        table.row(std::move(cells));
    }
    return table;
}

void
printConfigBanner(const SimConfig &cfg, std::ostream &os)
{
    os << "# Simulated system (Table II): " << cfg.numCores
       << " cores @ " << cfg.coreGhz << " GHz, L1D "
       << cfg.l1d.sizeBytes / 1024 << "KB/" << cfg.l1d.latency
       << "cy, L2 " << cfg.l2.sizeBytes / 1024 << "KB/"
       << cfg.l2.latency << "cy, L3 "
       << cfg.l3.sizeBytes / (1024 * 1024) << "MB/" << cfg.l3.latency
       << "cy, WPQ " << cfg.wpqEntries << " (ADR), PM read/write "
       << cfg.pmReadCycles << "/" << cfg.pmWriteCycles
       << "cy, log buffer " << cfg.logBufferEntries << " entries @ "
       << cfg.logBufferLatency << "cy\n";
}

} // namespace silo::harness
