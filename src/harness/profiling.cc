#include "harness/profiling.hh"

#include <cstdlib>
#include <string>

#include "harness/experiment.hh"
#include "harness/walltime.hh"

namespace silo::harness
{

namespace
{

/** Exit-hook state; set exactly once when SILO_PROF enables profiling. */
struct ProfSession
{
    prof::Profiler *profiler = nullptr;
    std::string path;
    double startSeconds = 0;
};

ProfSession &
session()
{
    static ProfSession s;
    return s;
}

void
writeProfileAtExit()
{
    // Worker threads are long joined by exit time, so the merge sees
    // quiescent slabs; wall time covers enable -> process exit.
    ProfSession &s = session();
    s.profiler->writeJson(s.path, wallSeconds() - s.startSeconds);
}

} // namespace

prof::Profiler *
profilerFromEnv()
{
    static prof::Profiler *installed = []() -> prof::Profiler * {
        std::string path = envStrOr("SILO_PROF", "");
        if (path.empty())
            return nullptr;
        // Leaked deliberately: thread_local slab caches and the exit
        // hook both outlive any scoped owner we could name here.
        auto *profiler = new prof::Profiler;
        session() = ProfSession{profiler, path, wallSeconds()};
        prof::Profiler::install(profiler);
        std::atexit(writeProfileAtExit);
        return profiler;
    }();
    return installed;
}

} // namespace silo::harness
