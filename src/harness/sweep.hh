/**
 * @file
 * Parallel sweep engine for the bench matrices.
 *
 * Every figure in the paper is a sweep of independent (scheme ×
 * workload × cores × knob) cells; Sweep runs those cells on a
 * work-stealing thread pool while keeping the results bit-identical
 * to a serial run:
 *
 *  - traces are pre-generated once per unique TraceGenConfig before
 *    any cell fans out, so the TraceCache is read-only while workers
 *    run (generation itself is parallel over unique configs — each
 *    trace depends only on its own config and seed);
 *  - every cell owns its System, RNG streams and statistics, so cells
 *    never share mutable state;
 *  - results land in a pre-sized slot per cell and are returned in
 *    spec order regardless of completion order.
 *
 * `SILO_JOBS` selects the worker count (default: hardware
 * concurrency); `SILO_JOBS=1` recovers the historical serial path on
 * the calling thread. Wall-clock timing is captured per cell (wall,
 * queue wait, worker id) for the stderr progress/ETA line but
 * deliberately not serialized by default, so the printed tables and
 * the `writeJson()` output are byte-identical across job counts;
 * setting `SILO_PROF` opts a run into per-cell "perf" blocks and a
 * whole-process silo-prof-v1 host-time profile (harness/profiling.hh).
 */

#ifndef SILO_HARNESS_SWEEP_HH
#define SILO_HARNESS_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "sim/config.hh"
#include "workload/trace_gen.hh"

namespace silo::harness
{

/** One independent (configuration, workload trace) point of a sweep. */
struct CellSpec
{
    SimConfig sim;
    workload::TraceGenConfig trace;
    /** Display name used by the progress line and the JSON output. */
    std::string label;
    /**
     * Optional replacement for the default to-completion runCell().
     * Custom experiments (crash injection, scheme introspection) build
     * their System here and may stash extra payload in a slot the
     * closure owns exclusively. Runs on a worker thread: it must not
     * touch state shared with other cells.
     */
    std::function<SimReport(const SimConfig &,
                            const workload::WorkloadTraces &)> runner;
};

/** Outcome of one cell; Sweep::results() holds these in spec order. */
struct CellResult
{
    SimReport report;
    /**
     * Wall-clock seconds this cell took. Feeds the progress/ETA line
     * and, only when SILO_PROF is set, the per-cell "perf" block in
     * writeJson() — by default it is never serialized, so sweep
     * outputs stay byte-identical across job counts.
     */
    double wallSeconds = 0;
    /**
     * Seconds between the sweep fan-out starting and this cell being
     * picked up by a worker — queueing delay, not compute. Same
     * serialization rule as wallSeconds.
     */
    double queueWaitSeconds = 0;
    /** Worker that ran the cell (-1 on the serial path). */
    int workerId = -1;
    /**
     * The cached trace object the cell consumed. Cells sharing a
     * TraceGenConfig see the same object (pointer-equal); tests check
     * this identity.
     */
    const workload::WorkloadTraces *traces = nullptr;
};

/** Work-stealing parallel executor for sweeps of independent cells. */
class Sweep
{
  public:
    struct Options
    {
        /** Worker threads; 0 = $SILO_JOBS, else hardware concurrency. */
        unsigned jobs = 0;
        /** Emit a progress/ETA line on stderr as cells finish. */
        bool progress = true;
    };

    /** Hooks for the determinism/ordering tests. */
    struct TestHooks
    {
        /** Called on the worker thread as cell @p index starts. */
        std::function<void(std::size_t index)> onCellStart;
    };

    Sweep() = default;
    explicit Sweep(Options opts) : _opts(opts) {}

    /** Append one cell; returns its index (== its result position). */
    std::size_t
    add(CellSpec spec)
    {
        _specs.push_back(std::move(spec));
        return _specs.size() - 1;
    }

    std::size_t size() const { return _specs.size(); }

    /**
     * Pre-generate all unique traces, fan the cells out over the
     * worker pool, and collect results in spec order.
     */
    const std::vector<CellResult> &run();

    const std::vector<CellResult> &results() const { return _results; }
    const std::vector<CellSpec> &specs() const { return _specs; }

    /** The trace cache: populated by run(), read-only afterwards. */
    TraceCache &traceCache() { return _cache; }

    /** Worker threads the next run() will use. */
    unsigned jobs() const;

    /**
     * Write specs + results as JSON ("silo-sweep-v1" schema: label,
     * scheme, workload, trace knobs and every SimReport field per
     * cell). Only deterministic fields are emitted — no timing — so
     * serial and parallel runs produce byte-identical files. The one
     * exception is opt-in: when SILO_PROF is set, each cell gains a
     * "perf" block (wall seconds, queue wait, worker id) for host-
     * performance analysis; with it unset the file is byte-identical
     * to the committed goldens. Parent directories are created as
     * needed.
     */
    void writeJson(const std::string &path,
                   const std::string &benchmark) const;

    void setTestHooks(TestHooks hooks) { _hooks = std::move(hooks); }

    /** Resolve the job count: $SILO_JOBS, else hardware concurrency. */
    static unsigned defaultJobs();

  private:
    /** Run @p body(i) for i in [0, n) on @p jobs stealing workers. */
    void parallelFor(std::size_t n, unsigned jobs,
                     const std::function<void(std::size_t)> &body);
    void runOne(std::size_t index);
    void noteCellDone(std::size_t index, double wall_seconds);

    Options _opts;
    TestHooks _hooks;
    TraceCache _cache;
    std::vector<CellSpec> _specs;
    std::vector<CellResult> _results;
    /** @name Progress state (valid during run()) */
    /// @{
    std::size_t _done = 0;
    double _startSeconds = 0;
    /** Workers the running fan-out was launched with. */
    unsigned _runJobs = 1;
    /**
     * Per-worker busy time in integer nanoseconds (uint64 so no
     * float accumulation order can creep into anything; the progress
     * line is the only consumer). Guarded by the progress mutex.
     */
    std::vector<std::uint64_t> _workerBusyNanos;
    /// @}
};

/** Results path for @p benchmark: $SILO_JSON, else results/<name>.json. */
std::string jsonOutputPath(const std::string &benchmark);

/**
 * Trace file path for one cell: @p base with
 * "-<scheme>-<workload>-<cores>c" inserted before the extension, so a
 * whole-sweep SILO_TRACE produces one distinguishable file per cell.
 */
std::string tracePathFor(const std::string &base, const CellSpec &spec);

} // namespace silo::harness

#endif // SILO_HARNESS_SWEEP_HH
