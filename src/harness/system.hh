/**
 * @file
 * The full simulated system: cores + caches + memory controller + PM
 * device + logging scheme, wired from a SimConfig and a set of
 * workload traces. This is the library's main entry point.
 *
 * Typical use:
 * @code
 *   auto traces = workload::generateTraces(tg);
 *   harness::System sys(cfg, traces);
 *   sys.run();
 *   auto report = sys.report();
 * @endcode
 *
 * Crash experiments stop the run mid-flight (runEvents), call crash()
 * — battery flush, ADR drain, volatile-cache loss — then recover() and
 * inspect media().
 */

#ifndef SILO_HARNESS_SYSTEM_HH
#define SILO_HARNESS_SYSTEM_HH

#include <memory>
#include <vector>

#include "check/persistency_checker.hh"
#include "core/replay_core.hh"
#include "log/logging_scheme.hh"
#include "mc/mc_router.hh"
#include "mem/hierarchy.hh"
#include "nvm/pm_device.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/sampler.hh"
#include "sim/tracer.hh"
#include "workload/trace.hh"

namespace silo::harness
{

/** Headline results of one run. */
struct SimReport
{
    std::uint64_t committedTransactions = 0;
    Tick ticks = 0;
    double txPerMillionCycles = 0;
    std::uint64_t mediaWordWrites = 0;
    std::uint64_t mediaLineWrites = 0;
    std::uint64_t dataRegionWordWrites = 0;
    std::uint64_t logRegionWordWrites = 0;
    std::uint64_t logRecordsWritten = 0;
    std::uint64_t commitStallCycles = 0;
    std::uint64_t storeStallCycles = 0;
    std::uint64_t wpqFullStalls = 0;
    std::uint64_t wpqAcceptedWrites = 0;
    std::uint64_t wpqAcceptedBytes = 0;
    /**
     * Hierarchical per-component statistics as a "silo-stats-v1" JSON
     * document (System::statsJson()); embedded per cell by the sweep
     * engine. Empty when the producer did not attach it.
     */
    std::string statsJson;
};

/** A complete simulated machine executing a traced workload. */
class System
{
  public:
    System(const SimConfig &cfg, const workload::WorkloadTraces &traces);
    ~System();

    /** Run every core's trace to completion. */
    void run();

    /**
     * Run at most @p max_events more events.
     * @return true while work remains.
     */
    bool runEvents(std::uint64_t max_events);

    /**
     * Crash now: battery-backed scheme flush, ADR drain of WPQ and
     * on-PM buffer, loss of all volatile cache state.
     */
    void crash();

    /** Recover the PM image using the scheme's recovery procedure. */
    void recover();

    /**
     * After the cores retire, let background machinery finish (e.g.,
     * Silo's post-commit in-place updates): runs pending events for a
     * bounded grace period.
     */
    void settle(Cycles grace = 100000);

    /** Flush caches and queues (clean shutdown; finalizes counters). */
    void drainToMedia();

    SimReport report() const;

    /** Dump every component's statistics (gem5-style stat lines). */
    void printStats(std::ostream &os);

    /**
     * Every component's statistics as one "silo-stats-v1" JSON
     * document (see stats::StatRegistry).
     */
    std::string statsJson() const;

    /**
     * Write the Chrome trace-event JSON to SimConfig::tracePath.
     * No-op when tracing is off or the trace was already written; the
     * destructor calls it as a fallback.
     */
    void writeTrace();

    /** The run's tracer, or nullptr when tracing is off. */
    trace::Tracer *tracer() { return _tracer.get(); }

    /** @name Component access (tests, benches, examples) */
    /// @{
    EventQueue &eventQueue() { return _eq; }
    nvm::PmDevice &pm() { return *_pm; }
    mc::McRouter &mc() { return *_mc; }
    mem::CacheHierarchy &hierarchy() { return *_hierarchy; }
    log::LoggingScheme &scheme() { return *_scheme; }
    log::LogRegionStore &logRegion() { return *_logs; }
    core::ReplayCore &coreAt(unsigned i) { return *_cores[i]; }
    unsigned numCores() const { return unsigned(_cores.size()); }
    /** Architectural (pre-crash) values — the running system's view. */
    WordStore &values() { return _values; }
    /** The persistency checker, or nullptr when cfg.checker is off. */
    check::PersistencyChecker *checker() { return _checker.get(); }
    /// @}

    const SimConfig &config() const { return _cfg; }

  private:
    SimConfig _cfg;
    /** Own a copy: replay cores reference into it for the whole run. */
    workload::WorkloadTraces _traces;
    /**
     * Exists only when _cfg.tracePath is set; attached to _eq before
     * any component is constructed so their ctors can register tracks.
     */
    std::unique_ptr<trace::Tracer> _tracer;
    EventQueue _eq;
    WordStore _values;
    std::unique_ptr<log::LogRegionStore> _logs;
    std::unique_ptr<nvm::PmDevice> _pm;
    std::unique_ptr<mc::McRouter> _mc;
    std::unique_ptr<mem::CacheHierarchy> _hierarchy;
    std::unique_ptr<check::PersistencyChecker> _checker;
    std::unique_ptr<log::LoggingScheme> _scheme;
    std::vector<std::unique_ptr<core::ReplayCore>> _cores;
    /** Interval sampler feeding counter tracks; tracing-on only. */
    std::unique_ptr<trace::IntervalSampler> _sampler;
    unsigned _finishedCores = 0;
    bool _started = false;
    bool _crashed = false;
    bool _traceWritten = false;
};

} // namespace silo::harness

#endif // SILO_HARNESS_SYSTEM_HH
