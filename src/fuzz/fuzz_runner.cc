#include "fuzz/fuzz_runner.hh"

#include "harness/system.hh"
#include "sim/logging.hh"

namespace silo::fuzz
{

SimConfig
litmusSimConfig(unsigned threads, SchemeKind scheme,
                MutationKind mutation)
{
    SimConfig cfg;
    cfg.numCores = threads;
    cfg.scheme = scheme;
    cfg.checker = true;
    cfg.mutation = mutation;
    // Tiny caches + log buffer: a handful of stores already causes
    // evictions, overflow and on-PM buffer churn (tests/check idiom).
    cfg.l1d = {1024, 2, 4};
    cfg.l2 = {2048, 2, 12};
    cfg.l3 = {4096, 4, 28};
    cfg.logBufferEntries = 12;
    cfg.validate();
    return cfg;
}

FuzzCaseResult
runLitmusCase(const workload::WorkloadTraces &traces, unsigned threads,
              const FuzzCaseConfig &cfg)
{
    SimConfig sim =
        litmusSimConfig(threads, cfg.scheme, cfg.mutation);
    harness::System sys(sim, traces);
    if (cfg.crashIndex == 0) {
        sys.run();
        sys.settle();
        sys.drainToMedia();
    } else {
        sys.runEvents(cfg.crashIndex);
        sys.crash();
        sys.recover();
    }

    const check::PersistencyChecker &ck = *sys.checker();
    FuzzCaseResult result;
    result.violations = ck.violations();
    for (check::Violation &v : result.violations)
        v.crashIndex = cfg.crashIndex;
    result.executedEvents = sys.eventQueue().executedEvents();
    result.commits = ck.counters().commits;
    return result;
}

FuzzCaseResult
runLitmusCase(const workload::LitmusProgram &program,
              const FuzzCaseConfig &cfg)
{
    if (program.threads.empty())
        fatal("litmus case: program has no threads");
    return runLitmusCase(workload::litmusTraces(program),
                         unsigned(program.threads.size()), cfg);
}

} // namespace silo::fuzz
