/**
 * @file
 * Deterministic delta-debugging shrinker for failing litmus cases.
 *
 * Given a (program, crash index) pair and an oracle that answers "does
 * this candidate still fail the same way?", the shrinker greedily
 * removes threads, then transactions, then individual operations (to a
 * fixpoint), and finally minimizes the crash index — always testing
 * candidates in a fixed order, so a given failing case always shrinks
 * to the same minimal reproducer regardless of wall clock or host.
 *
 * The oracle defines "fails the same way" (the campaign matches the
 * violation kind, not just any violation) and is the only place a
 * simulation runs; the shrinker itself is pure control flow. Oracle
 * invocations are capped (ShrinkOptions::maxOracleCalls) so a
 * pathological case degrades to a larger-than-minimal reproducer, not
 * a hung fuzz run.
 */

#ifndef SILO_FUZZ_SHRINK_HH
#define SILO_FUZZ_SHRINK_HH

#include <cstdint>
#include <functional>

#include "workload/litmus.hh"

namespace silo::fuzz
{

/**
 * @return true if the candidate still exhibits the original failure.
 * The crash index carries the completion-run convention of
 * FuzzCaseConfig: 0 means "no crash"; a crash index beyond the
 * candidate's event count crashes after the last event.
 */
using ShrinkOracle = std::function<bool(
    const workload::LitmusProgram &, std::uint64_t crash_index)>;

struct ShrinkOptions
{
    /** Upper bound on oracle invocations (simulation runs). */
    std::size_t maxOracleCalls = 4000;
};

struct ShrinkResult
{
    workload::LitmusProgram program;
    std::uint64_t crashIndex = 0;
    /** Oracle invocations actually spent. */
    std::size_t oracleCalls = 0;
};

/**
 * Shrink a failing (@p program, @p crash_index) case. @p oracle must
 * return true for the input pair (fatal() otherwise — a shrink of a
 * non-failing case is a harness bug).
 */
ShrinkResult shrinkLitmus(const workload::LitmusProgram &program,
                          std::uint64_t crash_index,
                          const ShrinkOracle &oracle,
                          const ShrinkOptions &opts = {});

} // namespace silo::fuzz

#endif // SILO_FUZZ_SHRINK_HH
