#include "fuzz/fixture.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace silo::fuzz
{

using workload::LitmusFile;

std::string
serializeFixture(const LitmusFixture &fixture)
{
    std::vector<std::pair<std::string, std::string>> meta;
    meta.emplace_back("scheme", schemeName(fixture.scheme));
    meta.emplace_back("crash", std::to_string(fixture.crashIndex));
    meta.emplace_back("mutation", mutationName(fixture.mutation));
    meta.emplace_back("expect", fixture.expect);
    if (!fixture.provenance.empty())
        meta.emplace_back("provenance", fixture.provenance);
    return serializeLitmus(fixture.program, meta);
}

LitmusFixture
parseFixture(const std::string &text)
{
    LitmusFile file = workload::parseLitmus(text);
    LitmusFixture fixture;
    fixture.program = std::move(file.program);
    for (const auto &[key, value] : file.meta) {
        if (key == "scheme") {
            fixture.scheme = schemeFromName(value);
        } else if (key == "crash") {
            std::size_t used = 0;
            std::uint64_t crash = 0;
            try {
                crash = std::stoull(value, &used, 0);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != value.size())
                fatal("litmus fixture: bad crash index \"" + value +
                      "\"");
            fixture.crashIndex = crash;
        } else if (key == "mutation") {
            fixture.mutation = mutationFromName(value);
        } else if (key == "expect") {
            if (value != "clean")
                check::violationKindFromName(value); // fatal if unknown
            fixture.expect = value;
        } else if (key == "provenance") {
            fixture.provenance = value;
        }
        // Unknown keys pass through: the format allows free metadata.
    }
    if (fixture.mutation == MutationKind::None &&
        fixture.expect != "clean") {
        fatal("litmus fixture: `expect " + fixture.expect +
              "` without a mutation");
    }
    if (fixture.mutation != MutationKind::None &&
        fixture.expect == "clean") {
        fatal("litmus fixture: a mutation needs an `expect <kind>` "
              "line naming the violation it provokes");
    }
    return fixture;
}

LitmusFixture
loadFixtureFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read litmus fixture: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseFixture(text.str());
}

namespace
{

void
reportViolations(std::ostringstream &os,
                 const std::vector<check::Violation> &violations)
{
    for (const check::Violation &v : violations)
        os << "\n  " << v.toJson();
}

} // namespace

std::vector<std::string>
replayFixture(const LitmusFixture &fixture)
{
    std::vector<std::string> failures;
    const workload::WorkloadTraces traces =
        workload::litmusTraces(fixture.program);
    const unsigned threads = unsigned(fixture.program.threads.size());

    // Promise 1: every real scheme replays clean, to completion and
    // crashed at the recorded index (the index is meaningful for the
    // recorded scheme; for the others it still injects a valid crash).
    for (SchemeKind scheme : allSchemes) {
        std::vector<std::uint64_t> crashes{0};
        if (fixture.crashIndex != 0)
            crashes.push_back(fixture.crashIndex);
        for (std::uint64_t crash : crashes) {
            FuzzCaseConfig cfg;
            cfg.scheme = scheme;
            cfg.crashIndex = crash;
            FuzzCaseResult result =
                runLitmusCase(traces, threads, cfg);
            if (!result.clean()) {
                std::ostringstream os;
                os << fixture.program.name << ": " << schemeName(scheme)
                   << "/crash:" << crash << " expected clean, got "
                   << result.violations.size() << " violation(s)";
                reportViolations(os, result.violations);
                failures.push_back(os.str());
            }
        }
    }

    // Promise 2: the seeded bug the fixture was shrunk against is
    // still detected, with the expected violation kind.
    if (fixture.mutation != MutationKind::None) {
        FuzzCaseConfig cfg;
        cfg.scheme = fixture.scheme;
        cfg.mutation = fixture.mutation;
        cfg.crashIndex = fixture.crashIndex;
        FuzzCaseResult result = runLitmusCase(traces, threads, cfg);
        bool expected_kind_seen = false;
        for (const check::Violation &v : result.violations) {
            if (fixture.expect == check::violationName(v.kind))
                expected_kind_seen = true;
        }
        if (!expected_kind_seen) {
            std::ostringstream os;
            os << fixture.program.name << ": "
               << schemeName(fixture.scheme) << "+"
               << mutationName(fixture.mutation)
               << "/crash:" << fixture.crashIndex
               << " no longer yields a `" << fixture.expect
               << "` violation (got " << result.violations.size()
               << ")";
            reportViolations(os, result.violations);
            failures.push_back(os.str());
        }
    }
    return failures;
}

} // namespace silo::fuzz
