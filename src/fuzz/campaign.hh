/**
 * @file
 * The litmus fuzz campaign: generate → sweep → shrink → fixture.
 *
 * One campaign repeats, until a program count or wall-clock budget is
 * reached:
 *
 *  1. generate a tiny adversarial litmus program from the seeded
 *     stream (litmus_gen.hh);
 *  2. phase A — run it to completion on every scheme under test
 *     (parallel, via the harness sweep engine), collecting each run's
 *     executed-event count E;
 *  3. phase B — sweep a crash at EVERY event index k in [1, E] (or a
 *     stride of it) of every scheme, each crash followed by recovery
 *     and validated by the persistency checker (invariants 1–5 + crash
 *     closure);
 *  4. for the first failing case per (program, scheme), shrink the
 *     (program, crash index) pair against a violation-kind-matching
 *     oracle (shrink.hh) and serialize the result as a litmus fixture
 *     (fixture.hh) into FuzzOptions::outDir.
 *
 * Determinism contract: with a fixed seed and program count (no
 * wall-clock budget), the campaign — programs, case order, findings,
 * fixture bytes, summary JSON — is byte-for-byte reproducible; the
 * budget only decides whether to start the next program. Seeded
 * MutationKind bugs turn the campaign into a self-test: the fuzzer
 * must find and shrink every mutant (tests/fuzz/fuzz_test.cc).
 */

#ifndef SILO_FUZZ_CAMPAIGN_HH
#define SILO_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "check/persistency_checker.hh"
#include "fuzz/litmus_gen.hh"
#include "sim/config.hh"
#include "workload/litmus.hh"

namespace silo::fuzz
{

/** Campaign controls (tools/litmus maps flags + SILO_FUZZ_* here). */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    /** Programs to generate; 0 = until the budget expires. */
    std::uint64_t maxPrograms = 20;
    /** Wall-clock budget in seconds; 0 = none. Checked only between
     *  programs, so it never perturbs a program's own results. */
    double budgetSeconds = 0;
    /** Crash every k-th event index (1 = every single index). */
    std::uint64_t crashStride = 1;
    /** Seeded bug to plant (self-test mode); None fuzzes the real
     *  schemes. */
    MutationKind mutation = MutationKind::None;
    /** Schemes under test; empty = all six. */
    std::vector<SchemeKind> schemes;
    LitmusGenConfig gen;
    /** Directory for shrunk fixture files; empty = don't write. */
    std::string outDir;
};

/** One failing (program, scheme) case, after shrinking. */
struct FuzzFinding
{
    std::string programName;
    SchemeKind scheme = SchemeKind::Silo;
    MutationKind mutation = MutationKind::None;
    check::ViolationKind kind = check::ViolationKind::LogBeforeData;
    /** First violation of the original (unshrunk) failing case. */
    check::Violation original;
    /** Crash index of the original failing case (0 = completion). */
    std::uint64_t crashIndex = 0;
    workload::LitmusProgram shrunk;
    std::uint64_t shrunkCrashIndex = 0;
    std::size_t oracleCalls = 0;
    /** Fixture file written for this finding ("" if outDir unset). */
    std::string fixturePath;
};

/** Campaign outcome + deterministic summary. */
struct FuzzCampaignResult
{
    std::uint64_t programsRun = 0;
    /** Simulated cases (completion + crash cells + shrink oracles). */
    std::uint64_t casesRun = 0;
    /** Crash-injection cells swept (subset of casesRun). */
    std::uint64_t crashCases = 0;
    std::vector<FuzzFinding> findings;
    /** True when the wall-clock budget stopped the campaign. */
    bool budgetExhausted = false;

    /**
     * One-line-per-field JSON summary. Deterministic except for
     * "budget_exhausted" (which depends on the host clock only when a
     * budget is set).
     */
    std::string summaryJson(const FuzzOptions &opts) const;
};

/**
 * Run a campaign. @p log, when non-null, receives one progress line
 * per program and per finding (the tool's -v stream).
 */
FuzzCampaignResult runFuzzCampaign(const FuzzOptions &opts,
                                   std::ostream *log = nullptr);

} // namespace silo::fuzz

#endif // SILO_FUZZ_CAMPAIGN_HH
