/**
 * @file
 * Seeded generator of adversarial litmus programs.
 *
 * Programs are deliberately tiny (a few threads, a few transactions,
 * a handful of stores) so a crash can be injected at EVERY event index
 * of every scheme in seconds, but they are built from the shapes known
 * to break persistency orderings ("Lost in Interpretation", PAPERS.md):
 *
 *  - overlapping write sets: per-thread address pools of only a few
 *    cachelines, so consecutive transactions rewrite each other's
 *    lines while the previous values still sit in the WPQ / on-PM
 *    buffer / flush-bit state;
 *  - cross-line and buffer-line-straddling runs: word runs spanning a
 *    64 B cacheline boundary and the 256 B on-PM buffer line boundary
 *    (the torn-write bound);
 *  - silent stores and same-word rewrites: exercise Silo's log
 *    ignorance and comparator merging;
 *  - back-to-back tiny (even empty) transactions: commit-marker and
 *    log-truncation churn;
 *  - abort mixes: a thread's final transaction can stay open, so the
 *    crash sweep observes uncommitted state in every micro-state.
 *
 * All randomness flows through the caller's seeded Rng, so a fuzz run
 * is replayable from SILO_FUZZ_SEED alone.
 */

#ifndef SILO_FUZZ_LITMUS_GEN_HH
#define SILO_FUZZ_LITMUS_GEN_HH

#include <cstdint>

#include "sim/rng.hh"
#include "workload/litmus.hh"

namespace silo::fuzz
{

/** Shape knobs of the litmus generator (defaults: tiny + adversarial). */
struct LitmusGenConfig
{
    unsigned minThreads = 1;
    unsigned maxThreads = 3;
    unsigned minTxPerThread = 1;
    unsigned maxTxPerThread = 4;
    unsigned maxOpsPerTx = 10;
    /** Distinct word offsets in each thread's pool (overlap pressure). */
    unsigned poolWords = 12;
    /** P(an op is a load). */
    double loadFraction = 0.15;
    /** P(a thread's final transaction stays open). */
    double abortFraction = 0.25;
    /** P(a store repeats the word's current value) — silent store. */
    double silentStoreFraction = 0.15;
    /** P(a transaction is empty) — back-to-back commit markers. */
    double emptyTxFraction = 0.05;
    /**
     * P(a thread uses the conflict pool: many lines aliasing one cache
     * set of the tiny fuzz caches, so long transactions overflow every
     * level and evict still-uncommitted lines into the persistent
     * domain — the shape the flush-bit / crash-recovery mutants need).
     */
    double conflictThreadFraction = 0.5;
};

/**
 * Generate one program from @p rng. @p label becomes the program name
 * (fuzz campaigns use "fuzz-<seed>-<index>").
 */
workload::LitmusProgram generateLitmus(Rng &rng,
                                       const LitmusGenConfig &cfg,
                                       const std::string &label);

} // namespace silo::fuzz

#endif // SILO_FUZZ_LITMUS_GEN_HH
