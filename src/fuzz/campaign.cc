#include "fuzz/campaign.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/fixture.hh"
#include "fuzz/fuzz_runner.hh"
#include "fuzz/shrink.hh"
#include "harness/sweep.hh"
#include "harness/walltime.hh"
#include "sim/logging.hh"

namespace silo::fuzz
{

using workload::LitmusProgram;

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Phase-A/B cell: run one case against the cached traces. */
harness::CellSpec
litmusCell(const std::string &text, unsigned threads,
           const std::string &label, const FuzzCaseConfig &case_cfg,
           FuzzCaseResult *slot)
{
    harness::CellSpec spec;
    spec.trace.kind = workload::WorkloadKind::Litmus;
    spec.trace.numThreads = threads;
    spec.trace.options.litmus = text;
    spec.sim = litmusSimConfig(threads, case_cfg.scheme,
                               case_cfg.mutation);
    spec.label = label;
    spec.runner = [threads, case_cfg, slot](
                      const SimConfig &,
                      const workload::WorkloadTraces &traces) {
        *slot = runLitmusCase(traces, threads, case_cfg);
        return harness::SimReport{};
    };
    return spec;
}

/** @return pointer to the first violation of @p kind, or nullptr. */
const check::Violation *
firstOfAnyKind(const FuzzCaseResult &result)
{
    return result.violations.empty() ? nullptr
                                     : &result.violations.front();
}

std::string
writeFixture(const FuzzOptions &opts, const FuzzFinding &finding)
{
    LitmusFixture fixture;
    fixture.program = finding.shrunk;
    fixture.scheme = finding.scheme;
    fixture.crashIndex = finding.shrunkCrashIndex;
    fixture.mutation = finding.mutation;
    fixture.expect = finding.mutation == MutationKind::None
                         ? "clean"
                         : check::violationName(finding.kind);
    std::ostringstream prov;
    prov << "seed=" << opts.seed << " program=" << finding.programName
         << " kind=" << check::violationName(finding.kind)
         << " crash=" << finding.crashIndex;
    fixture.provenance = prov.str();

    std::filesystem::create_directories(opts.outDir);
    std::string path = opts.outDir + "/" + finding.programName + "-" +
                       schemeName(finding.scheme);
    if (finding.mutation != MutationKind::None)
        path += std::string("-") + mutationName(finding.mutation);
    path += ".litmus";
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write litmus fixture: " + path);
    out << serializeFixture(fixture);
    return path;
}

} // namespace

std::string
FuzzCampaignResult::summaryJson(const FuzzOptions &opts) const
{
    std::ostringstream os;
    os << "{\n"
       << "  \"fuzzer\": \"litmus-v1\",\n"
       << "  \"seed\": " << opts.seed << ",\n"
       << "  \"mutation\": \"" << mutationName(opts.mutation)
       << "\",\n"
       << "  \"crash_stride\": " << opts.crashStride << ",\n"
       << "  \"programs\": " << programsRun << ",\n"
       << "  \"cases\": " << casesRun << ",\n"
       << "  \"crash_cases\": " << crashCases << ",\n"
       << "  \"budget_exhausted\": "
       << (budgetExhausted ? "true" : "false") << ",\n"
       << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const FuzzFinding &f = findings[i];
        os << (i ? ",\n    {" : "\n    {")
           << "\"program\": \"" << jsonEscape(f.programName)
           << "\", \"scheme\": \"" << schemeName(f.scheme)
           << "\", \"mutation\": \"" << mutationName(f.mutation)
           << "\", \"kind\": \"" << check::violationName(f.kind)
           << "\", \"crash\": " << f.crashIndex
           << ", \"shrunk_crash\": " << f.shrunkCrashIndex
           << ", \"shrunk_threads\": " << f.shrunk.threads.size()
           << ", \"shrunk_txs\": " << f.shrunk.txCount()
           << ", \"shrunk_ops\": " << f.shrunk.opCount()
           << ", \"oracle_calls\": " << f.oracleCalls
           << ", \"fixture\": \"" << jsonEscape(f.fixturePath)
           << "\", \"original\": " << f.original.toJson() << "}";
    }
    os << (findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
    return os.str();
}

FuzzCampaignResult
runFuzzCampaign(const FuzzOptions &opts, std::ostream *log)
{
    if (opts.maxPrograms == 0 && !(opts.budgetSeconds > 0))
        fatal("fuzz campaign needs --programs or a wall-clock budget");
    if (opts.crashStride == 0)
        fatal("fuzz campaign: crash stride must be positive");
    std::vector<SchemeKind> schemes = opts.schemes;
    if (schemes.empty())
        schemes.assign(std::begin(allSchemes), std::end(allSchemes));

    FuzzCampaignResult result;
    const double start = harness::wallSeconds();
    Rng rng(opts.seed);

    for (std::uint64_t index = 0;; ++index) {
        if (opts.maxPrograms != 0 && index >= opts.maxPrograms)
            break;
        if (opts.budgetSeconds > 0 &&
            harness::wallSeconds() - start >= opts.budgetSeconds) {
            result.budgetExhausted = true;
            break;
        }

        std::ostringstream label;
        label << "fuzz-" << opts.seed << "-" << index;
        LitmusProgram program =
            generateLitmus(rng, opts.gen, label.str());
        const std::string text = workload::serializeLitmus(program);
        const unsigned threads = unsigned(program.threads.size());
        ++result.programsRun;

        // Phase A: completion run per scheme (bounds the crash sweep).
        harness::Sweep phase_a({0, /*progress=*/false});
        std::vector<FuzzCaseResult> completions(schemes.size());
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            FuzzCaseConfig cc;
            cc.scheme = schemes[s];
            cc.mutation = opts.mutation;
            phase_a.add(litmusCell(
                text, threads,
                program.name + "/" + schemeName(schemes[s]) +
                    "/complete",
                cc, &completions[s]));
        }
        phase_a.run();
        result.casesRun += schemes.size();

        // Phase B: crash at every (strided) event index of every
        // scheme whose completion run was still clean.
        harness::Sweep phase_b({0, /*progress=*/false});
        std::vector<std::pair<std::size_t, std::uint64_t>> cases;
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            if (!completions[s].clean())
                continue; // already failing without a crash
            for (std::uint64_t k = 1;
                 k <= completions[s].executedEvents;
                 k += opts.crashStride)
                cases.emplace_back(s, k);
        }
        std::vector<FuzzCaseResult> crashed(cases.size());
        for (std::size_t c = 0; c < cases.size(); ++c) {
            FuzzCaseConfig cc;
            cc.scheme = schemes[cases[c].first];
            cc.mutation = opts.mutation;
            cc.crashIndex = cases[c].second;
            phase_b.add(litmusCell(
                text, threads,
                program.name + "/" + schemeName(cc.scheme) +
                    "/crash:" + std::to_string(cc.crashIndex),
                cc, &crashed[c]));
        }
        phase_b.run();
        result.casesRun += cases.size();
        result.crashCases += cases.size();

        if (log) {
            *log << "fuzz: " << program.name << ": " << threads
                 << " thread(s), " << program.txCount() << " tx, "
                 << program.opCount() << " ops, " << cases.size()
                 << " crash cell(s), E=[";
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                *log << (s ? " " : "") << schemeName(schemes[s]) << ":"
                     << completions[s].executedEvents;
            }
            *log << "]\n";
        }

        // First failing case per scheme -> shrink -> fixture.
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const check::Violation *first = nullptr;
            std::uint64_t crash = 0;
            if (!completions[s].clean()) {
                first = firstOfAnyKind(completions[s]);
            } else {
                for (std::size_t c = 0; c < cases.size(); ++c) {
                    if (cases[c].first != s || crashed[c].clean())
                        continue;
                    first = firstOfAnyKind(crashed[c]);
                    crash = cases[c].second;
                    break;
                }
            }
            if (!first)
                continue;

            FuzzFinding finding;
            finding.programName = program.name;
            finding.scheme = schemes[s];
            finding.mutation = opts.mutation;
            finding.kind = first->kind;
            finding.original = *first;
            finding.crashIndex = crash;

            // "Fails the same way" = same scheme + mutation yields a
            // violation of the same kind.
            const check::ViolationKind kind = first->kind;
            ShrinkOracle oracle =
                [&](const LitmusProgram &candidate,
                    std::uint64_t crash_index) {
                    FuzzCaseConfig cc;
                    cc.scheme = schemes[s];
                    cc.mutation = opts.mutation;
                    cc.crashIndex = crash_index;
                    FuzzCaseResult r = runLitmusCase(candidate, cc);
                    for (const check::Violation &v : r.violations)
                        if (v.kind == kind)
                            return true;
                    return false;
                };
            ShrinkResult shrunk = shrinkLitmus(program, crash, oracle);
            finding.shrunk = std::move(shrunk.program);
            finding.shrunkCrashIndex = shrunk.crashIndex;
            finding.oracleCalls = shrunk.oracleCalls;
            result.casesRun += shrunk.oracleCalls;

            if (!opts.outDir.empty())
                finding.fixturePath = writeFixture(opts, finding);
            if (log) {
                *log << "fuzz: FAIL " << program.name << " "
                     << schemeName(finding.scheme) << " kind="
                     << check::violationName(finding.kind)
                     << " crash=" << finding.crashIndex
                     << " -> shrunk " << finding.shrunk.txCount()
                     << " tx/" << finding.shrunk.opCount()
                     << " op crash=" << finding.shrunkCrashIndex
                     << " (" << finding.oracleCalls
                     << " oracle calls)"
                     << (finding.fixturePath.empty()
                             ? ""
                             : " -> " + finding.fixturePath)
                     << "\n";
            }
            result.findings.push_back(std::move(finding));
        }
    }
    return result;
}

} // namespace silo::fuzz
