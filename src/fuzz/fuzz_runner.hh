/**
 * @file
 * Single-case execution for the litmus fuzzer: run one litmus program
 * on one scheme, optionally with a seeded mutation and a crash
 * injected at a given event index, and return the persistency
 * checker's verdict.
 *
 * The simulated machine is a FIXED deterministic function of
 * (program, scheme, mutation) — litmusSimConfig() — so a committed
 * fixture only needs to record those three plus the crash index to be
 * replayable bit-for-bit. The config shrinks the caches and the log
 * buffer far below the paper's Table II on purpose: tiny programs must
 * still reach evictions, log-buffer overflow and on-PM buffer churn
 * within a few hundred events.
 */

#ifndef SILO_FUZZ_FUZZ_RUNNER_HH
#define SILO_FUZZ_FUZZ_RUNNER_HH

#include <cstdint>
#include <vector>

#include "check/persistency_checker.hh"
#include "sim/config.hh"
#include "workload/litmus.hh"

namespace silo::fuzz
{

/** Everything about one case except the program itself. */
struct FuzzCaseConfig
{
    SchemeKind scheme = SchemeKind::Silo;
    /** Seeded checker bug (the fuzzer's self-test target). */
    MutationKind mutation = MutationKind::None;
    /**
     * Crash after this many executed events; 0 = run to completion
     * (settle + clean drain, no crash or recovery).
     */
    std::uint64_t crashIndex = 0;
};

/** Verdict of one case. */
struct FuzzCaseResult
{
    /** Checker findings, each stamped with the case's crashIndex. */
    std::vector<check::Violation> violations;
    /** Events the run actually executed (completion runs bound the
     *  crash sweep: every k in [1, executedEvents] is reachable). */
    std::uint64_t executedEvents = 0;
    /** Durably committed transactions (checker's count). */
    std::uint64_t commits = 0;

    bool clean() const { return violations.empty(); }
};

/**
 * The fixed simulated-machine configuration of a litmus case.
 * @p threads must be the program's thread count (= core count).
 */
SimConfig litmusSimConfig(unsigned threads, SchemeKind scheme,
                          MutationKind mutation = MutationKind::None);

/** Run one case on pre-compiled traces (@p threads as above). */
FuzzCaseResult runLitmusCase(const workload::WorkloadTraces &traces,
                             unsigned threads,
                             const FuzzCaseConfig &cfg);

/** Convenience: compile @p program and run one case. */
FuzzCaseResult runLitmusCase(const workload::LitmusProgram &program,
                             const FuzzCaseConfig &cfg);

} // namespace silo::fuzz

#endif // SILO_FUZZ_FUZZ_RUNNER_HH
