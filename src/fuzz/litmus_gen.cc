#include "fuzz/litmus_gen.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "sim/logging.hh"

namespace silo::fuzz
{

using workload::LitmusOp;
using workload::LitmusProgram;
using workload::LitmusThread;
using workload::LitmusTx;
using workload::litmusInitialValue;

namespace
{

void
addRun(std::vector<Addr> &out, Addr start, unsigned words)
{
    for (unsigned i = 0; i < words; ++i)
        out.push_back(start + Addr(i) * wordBytes);
}

/**
 * Boundary flavor: word offsets anchored on the geometry the torn /
 * merging invariants care about — a full 64 B cacheline, runs
 * straddling a cacheline boundary, runs straddling the 256 B on-PM
 * buffer line boundary — plus two conflict lines for mild eviction
 * pressure.
 */
std::vector<Addr>
boundaryCandidates()
{
    std::vector<Addr> out;
    addRun(out, 0x00, 8);                    // one full cacheline
    addRun(out, 0x38, 2);                    // straddles 64 B boundary
    addRun(out, 0xF0, 4);                    // straddles 256 B boundary
    addRun(out, Addr(pmBufferLineBytes) * 3 - wordBytes, 2);
    addRun(out, 0x400, 2);
    addRun(out, 0x800, 2);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

/**
 * Conflict flavor: under the fuzz config's tiny caches every line at
 * a 0x400 stride maps to the SAME set, which has only 2+2+4 ways of
 * capacity across L1/L2/L3. A thread hammering these twelve aliasing
 * lines overflows all three levels, so lines of the still-open
 * transaction get evicted into the persistent domain mid-transaction —
 * the micro-state behind invariant 1, Silo's flush-bit rules, and the
 * crash-recovery mutants. One word per line keeps the pool small
 * enough that a single long transaction can cover most of the set.
 */
std::vector<Addr>
conflictCandidates()
{
    std::vector<Addr> out;
    addRun(out, 0x00, 2);
    addRun(out, 0x38, 1); // last word of line 0 (64 B straddle seed)
    for (unsigned i = 1; i <= 11; ++i)
        addRun(out, Addr(i) * 0x400, 1);
    return out;
}

struct ThreadPool
{
    std::vector<Addr> words;
    /** Conflict threads walk their pool sequentially (below). */
    bool conflict = false;
};

/** Pick a thread's pool: conflict flavor keeps its whole aliasing set
 *  (it cannot overflow the caches with a subset); the boundary flavor
 *  samples @p cfg.poolWords distinct offsets so tight pools force
 *  write-set overlap. */
ThreadPool
samplePool(Rng &rng, const LitmusGenConfig &cfg)
{
    if (rng.chance(cfg.conflictThreadFraction))
        return {conflictCandidates(), true};
    std::vector<Addr> candidates = boundaryCandidates();
    if (cfg.poolWords >= candidates.size())
        return {std::move(candidates), false};
    std::vector<Addr> pool;
    while (pool.size() < cfg.poolWords) {
        Addr pick = candidates[rng.below(candidates.size())];
        if (std::find(pool.begin(), pool.end(), pick) == pool.end())
            pool.push_back(pick);
    }
    return {std::move(pool), false};
}

} // namespace

LitmusProgram
generateLitmus(Rng &rng, const LitmusGenConfig &cfg,
               const std::string &label)
{
    if (cfg.minThreads == 0 || cfg.minThreads > cfg.maxThreads ||
        cfg.minTxPerThread > cfg.maxTxPerThread ||
        cfg.maxOpsPerTx == 0 || cfg.poolWords == 0)
        fatal("litmus generator: inconsistent shape configuration");

    LitmusProgram program;
    program.name = label;
    unsigned threads =
        unsigned(rng.range(cfg.minThreads, cfg.maxThreads));
    Word next_value = 1; // small ints, disjoint from initial values

    for (unsigned t = 0; t < threads; ++t) {
        LitmusThread thread;
        ThreadPool pool = samplePool(rng, cfg);
        // Conflict threads walk their aliasing set sequentially from a
        // random start: a 10-op transaction then touches 10 DISTINCT
        // same-set lines, guaranteed to overflow the set's 8 ways and
        // evict the transaction's own earliest lines while it is still
        // open. Uniform sampling almost never covers enough lines.
        std::size_t walk = rng.below(pool.words.size());
        // Current functional value per word (silent-store source).
        std::map<Addr, Word> current;
        unsigned txs =
            unsigned(rng.range(cfg.minTxPerThread, cfg.maxTxPerThread));

        for (unsigned i = 0; i < txs; ++i) {
            LitmusTx tx;
            unsigned ops = rng.chance(cfg.emptyTxFraction)
                               ? 0
                               : unsigned(rng.range(1, cfg.maxOpsPerTx));
            for (unsigned j = 0; j < ops; ++j) {
                Addr offset =
                    pool.conflict
                        ? pool.words[walk++ % pool.words.size()]
                        : pool.words[rng.below(pool.words.size())];
                if (rng.chance(cfg.loadFraction)) {
                    tx.ops.push_back(
                        {LitmusOp::Kind::Load, offset, 0});
                    continue;
                }
                Word value;
                if (rng.chance(cfg.silentStoreFraction)) {
                    auto it = current.find(offset);
                    value = it != current.end()
                                ? it->second
                                : litmusInitialValue(offset);
                } else {
                    value = next_value++;
                }
                current[offset] = value;
                tx.ops.push_back({LitmusOp::Kind::Store, offset, value});
            }
            tx.commit = true;
            thread.txs.push_back(std::move(tx));
        }
        if (!thread.txs.empty() && rng.chance(cfg.abortFraction))
            thread.txs.back().commit = false;
        program.threads.push_back(std::move(thread));
    }
    validateLitmus(program);
    return program;
}

} // namespace silo::fuzz
