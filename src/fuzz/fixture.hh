/**
 * @file
 * Litmus regression fixtures: self-contained "litmus v1" files that
 * record a shrunk fuzzer reproducer plus the case metadata needed to
 * replay it bit-for-bit (tests/check/litmus/<name>.litmus).
 *
 * The metadata rides in the litmus file's free header keys:
 *
 *   scheme Silo                (SchemeKind the case ran on)
 *   crash 118                  (event index; 0 = completion run)
 *   mutation stale-flush-bit   (seeded bug that produced it, or none)
 *   expect flush-bit-accounting(violationName() under the mutation,
 *                               or `clean` for a true-positive find)
 *   provenance seed=42 ...     (free text, not interpreted)
 *
 * A committed fixture makes two promises, and replayFixture() checks
 * both:
 *
 *  1. With no mutation, ALL six schemes replay the program clean —
 *     both to completion and crashed at the recorded index. (A real
 *     scheme bug would first surface here as a regression.)
 *  2. If the fixture records a mutation, replaying the recorded
 *     (scheme, mutation, crash index) still yields a violation of the
 *     expected kind — proof the fixture still exercises the seeded bug
 *     path it was shrunk against, i.e. the checker can still see it.
 */

#ifndef SILO_FUZZ_FIXTURE_HH
#define SILO_FUZZ_FIXTURE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_runner.hh"
#include "workload/litmus.hh"

namespace silo::fuzz
{

/** A shrunk reproducer plus the case it reproduces. */
struct LitmusFixture
{
    workload::LitmusProgram program;
    SchemeKind scheme = SchemeKind::Silo;
    std::uint64_t crashIndex = 0;
    /** Seeded bug the case ran under; None = found on a real scheme. */
    MutationKind mutation = MutationKind::None;
    /** violationName() expected under the mutation, or "clean". */
    std::string expect = "clean";
    /** Free provenance text (seed, campaign, date); not interpreted. */
    std::string provenance;
};

/** Canonical fixture text (litmus v1 + metadata header). */
std::string serializeFixture(const LitmusFixture &fixture);

/** Parse fixture text; fatal() on malformed metadata. */
LitmusFixture parseFixture(const std::string &text);

/** Read + parse a fixture file; fatal() if unreadable. */
LitmusFixture loadFixtureFile(const std::string &path);

/**
 * Replay @p fixture per the two promises in the file header.
 * @return one human-readable message per broken promise; empty = pass.
 */
std::vector<std::string> replayFixture(const LitmusFixture &fixture);

} // namespace silo::fuzz

#endif // SILO_FUZZ_FIXTURE_HH
