#include "fuzz/shrink.hh"

#include "sim/logging.hh"

namespace silo::fuzz
{

using workload::LitmusProgram;

namespace
{

/** Budgeted, counting wrapper around the user oracle. */
struct BudgetedOracle
{
    const ShrinkOracle &oracle;
    std::size_t budget;
    std::size_t calls = 0;

    bool exhausted() const { return calls >= budget; }

    /** false when out of budget (treat as "candidate does not fail"). */
    bool
    fails(const LitmusProgram &program, std::uint64_t crash)
    {
        if (exhausted())
            return false;
        ++calls;
        return oracle(program, crash);
    }
};

/**
 * One greedy removal pass: for each candidate index (descending, so
 * earlier indices stay valid), build the program without it and keep
 * the removal if the oracle still fails. @p count and @p removed
 * operate on the current program.
 * @return true if anything was removed.
 */
template <typename CountFn, typename RemoveFn>
bool
removalPass(LitmusProgram &best, std::uint64_t crash,
            BudgetedOracle &oracle, CountFn count, RemoveFn removed)
{
    bool shrunk = false;
    // Descending index: a removal at i only shifts items above i,
    // which this pass has already visited (the fixpoint loop retries).
    for (std::size_t i = count(best); i-- > 0;) {
        LitmusProgram candidate = removed(best, i);
        if (candidate.threads.empty())
            continue; // validateLitmus requires at least one thread
        if (oracle.fails(candidate, crash)) {
            best = std::move(candidate);
            shrunk = true;
        }
        if (oracle.exhausted())
            break;
    }
    return shrunk;
}

std::size_t
threadCount(const LitmusProgram &p)
{
    return p.threads.size();
}

LitmusProgram
withoutThread(const LitmusProgram &p, std::size_t t)
{
    LitmusProgram out = p;
    out.threads.erase(out.threads.begin() + std::ptrdiff_t(t));
    return out;
}

/** Transactions are addressed by a flat (thread, tx) rank. */
std::size_t
txCount(const LitmusProgram &p)
{
    return p.txCount();
}

LitmusProgram
withoutTx(const LitmusProgram &p, std::size_t rank)
{
    LitmusProgram out = p;
    for (auto &thread : out.threads) {
        if (rank < thread.txs.size()) {
            thread.txs.erase(thread.txs.begin() +
                             std::ptrdiff_t(rank));
            return out;
        }
        rank -= thread.txs.size();
    }
    panic("shrink: tx rank out of range");
}

std::size_t
opCount(const LitmusProgram &p)
{
    return p.opCount();
}

LitmusProgram
withoutOp(const LitmusProgram &p, std::size_t rank)
{
    LitmusProgram out = p;
    for (auto &thread : out.threads) {
        for (auto &tx : thread.txs) {
            if (rank < tx.ops.size()) {
                tx.ops.erase(tx.ops.begin() + std::ptrdiff_t(rank));
                return out;
            }
            rank -= tx.ops.size();
        }
    }
    panic("shrink: op rank out of range");
}

/**
 * Minimize the crash index: coarse geometric descent (steps of k/2,
 * k/4, ... events) followed by a linear refinement. Failures need not
 * be monotonic in the crash index, so this finds a small — not
 * provably smallest — reproducing index, deterministically.
 */
std::uint64_t
minimizeCrash(const LitmusProgram &program, std::uint64_t crash,
              BudgetedOracle &oracle)
{
    if (crash == 0)
        return 0; // completion-run failure: nothing to minimize
    for (std::uint64_t step = crash / 2; step > 0; step /= 2) {
        while (crash > step &&
               oracle.fails(program, crash - step)) {
            crash -= step;
        }
        if (oracle.exhausted())
            return crash;
    }
    while (crash > 1 && oracle.fails(program, crash - 1))
        --crash;
    return crash;
}

} // namespace

ShrinkResult
shrinkLitmus(const LitmusProgram &program, std::uint64_t crash_index,
             const ShrinkOracle &oracle, const ShrinkOptions &opts)
{
    BudgetedOracle budgeted{oracle, opts.maxOracleCalls};
    if (!budgeted.fails(program, crash_index))
        fatal("shrinkLitmus: the input case does not fail its oracle");

    LitmusProgram best = program;
    // Structural passes to a fixpoint: coarse (threads) to fine (ops).
    // Each pass can expose new removals for the others (e.g. dropping
    // an op can make its transaction removable).
    bool shrunk = true;
    while (shrunk && !budgeted.exhausted()) {
        shrunk = false;
        shrunk |= removalPass(best, crash_index, budgeted, threadCount,
                              withoutThread);
        shrunk |= removalPass(best, crash_index, budgeted, txCount,
                              withoutTx);
        shrunk |= removalPass(best, crash_index, budgeted, opCount,
                              withoutOp);
    }
    std::uint64_t crash = minimizeCrash(best, crash_index, budgeted);

    ShrinkResult result;
    result.program = std::move(best);
    result.crashIndex = crash;
    result.oracleCalls = budgeted.calls;
    return result;
}

} // namespace silo::fuzz
