#include "energy/battery_model.hh"

#include <cmath>

namespace silo::energy
{

BatteryRequirement
batteryForFlush(double flush_bytes)
{
    BatteryRequirement out;
    out.flushSizeKB = flush_bytes / 1024.0;
    double energy_j = flush_bytes * nanojoulesPerByte * 1e-9;
    out.flushEnergyUj = energy_j * 1e6;

    // volume [cm^3] = energy [J] / (density [Wh/cm^3] * 3600 [J/Wh])
    double cap_cm3 = energy_j / (capWhPerCm3 * 3600.0);
    double li_cm3 = energy_j / (liWhPerCm3 * 3600.0);
    out.capVolumeMm3 = cap_cm3 * 1000.0;
    out.liVolumeMm3 = li_cm3 * 1000.0;
    // Cubic cell: area = volume^(2/3).
    out.capAreaMm2 = std::pow(out.capVolumeMm3, 2.0 / 3.0);
    out.liAreaMm2 = std::pow(out.liVolumeMm3, 2.0 / 3.0);
    return out;
}

BatteryRequirement
siloBattery(const SimConfig &cfg)
{
    return batteryForFlush(double(cfg.numCores) *
                           siloLogBufferBytes(cfg));
}

BatteryRequirement
bbbBattery(const SimConfig &cfg)
{
    // BBB: 32 battery-backed 64 B entries per core (§VI-E).
    return batteryForFlush(double(cfg.numCores) * 32 * 64);
}

BatteryRequirement
eadrBattery(const SimConfig &cfg, double dirty_fraction)
{
    // Table II caches: per-core L1D + per-core L2 + shared L3
    // (8 x 32 KB + 8 x 256 KB + 8 MB = 10,496 KB at 8 cores).
    double cache_bytes = double(cfg.numCores) *
                             (cfg.l1d.sizeBytes + cfg.l2.sizeBytes) +
                         double(cfg.l3.sizeBytes);
    return batteryForFlush(cache_bytes * dirty_fraction);
}

HardwareOverhead
siloHardwareOverhead(const SimConfig &cfg)
{
    HardwareOverhead out;
    out.logBufferEntriesPerCore = cfg.logBufferEntries;
    out.logBufferBytesPerCore = siloLogBufferBytes(cfg);
    out.comparatorsPerLogBuffer = cfg.logBufferEntries;
    out.liBatteryMm3PerLogBuffer =
        batteryForFlush(siloLogBufferBytes(cfg)).liVolumeMm3;
    out.headTailRegisterBytesPerCore = 2 * wordBytes;   // head + tail
    return out;
}

} // namespace silo::energy
