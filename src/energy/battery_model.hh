/**
 * @file
 * Battery and energy requirements (§VI-E, Table IV) and Silo's
 * hardware overhead (Table I).
 *
 * The paper's model: moving one byte from an on-chip buffer to PM
 * costs 11.228 nJ; supercapacitors (Cap) store 1e-4 Wh/cm^3 and
 * lithium thin-film batteries (Li) 1e-2 Wh/cm^3. Battery area assumes
 * a cubic cell (area = volume^(2/3)). This module reproduces Table IV
 * for eADR, BBB, and Silo, and Table I's per-core overhead.
 */

#ifndef SILO_ENERGY_BATTERY_MODEL_HH
#define SILO_ENERGY_BATTERY_MODEL_HH

#include "sim/config.hh"

namespace silo::energy
{

/** Energy cost of moving one byte from an on-chip buffer to PM. */
constexpr double nanojoulesPerByte = 11.228;

/** Energy density of supercapacitors, Wh per cm^3. */
constexpr double capWhPerCm3 = 1e-4;

/** Energy density of lithium thin-film batteries, Wh per cm^3. */
constexpr double liWhPerCm3 = 1e-2;

/** One row of Table IV. */
struct BatteryRequirement
{
    double flushSizeKB = 0;    //!< bytes to flush on a crash, in KB
    double flushEnergyUj = 0;  //!< micro-joules to flush them
    double capVolumeMm3 = 0;   //!< supercapacitor volume
    double capAreaMm2 = 0;     //!< supercapacitor area (cubic cell)
    double liVolumeMm3 = 0;    //!< lithium thin-film volume
    double liAreaMm2 = 0;      //!< lithium thin-film area
};

/** Requirement to flush @p flush_bytes on a power failure. */
BatteryRequirement batteryForFlush(double flush_bytes);

/** Bytes of one Silo log-buffer entry incl. its log-region address. */
constexpr unsigned
siloEntryFootprintBytes()
{
    return undoRedoLogEntryBytes + wordBytes;   // 26 + 8 = 34
}

/** Per-core Silo log buffer size in bytes (Table I: 680 B). */
constexpr unsigned
siloLogBufferBytes(const SimConfig &cfg)
{
    return cfg.logBufferEntries * siloEntryFootprintBytes();
}

/** Silo: flush all per-core log buffers (Table IV row 3). */
BatteryRequirement siloBattery(const SimConfig &cfg);

/** BBB: flush each core's 32-entry, 64 B-block battery-backed buffer. */
BatteryRequirement bbbBattery(const SimConfig &cfg);

/**
 * eADR: flush the dirty fraction of the entire cache hierarchy
 * (paper: 45% of L1D + L2 + L3 = 45% of 10,496 KB in Table II).
 */
BatteryRequirement eadrBattery(const SimConfig &cfg,
                               double dirty_fraction = 0.45);

/** One row of Table I. */
struct HardwareOverhead
{
    unsigned logBufferEntriesPerCore;
    unsigned logBufferBytesPerCore;
    unsigned comparatorsPerLogBuffer;
    double liBatteryMm3PerLogBuffer;
    unsigned headTailRegisterBytesPerCore;
};

/** Silo's hardware overhead (Table I). */
HardwareOverhead siloHardwareOverhead(const SimConfig &cfg);

} // namespace silo::energy

#endif // SILO_ENERGY_BATTERY_MODEL_HH
