#include "core/replay_core.hh"

#include "sim/logging.hh"

namespace silo::core
{

using workload::TxOp;

ReplayCore::ReplayCore(unsigned id, EventQueue &eq, const SimConfig &cfg,
                       mem::CacheHierarchy &hierarchy,
                       log::LoggingScheme &scheme, WordStore &values,
                       const workload::ThreadTrace &trace,
                       std::function<void()> on_finished)
    : _id(id), _eq(eq), _cfg(cfg), _hierarchy(hierarchy),
      _scheme(scheme), _values(values), _trace(trace),
      _onFinished(std::move(on_finished)),
      _statGroup("core" + std::to_string(id))
{
    _statGroup.addScalar(_commitStalls);
    _statGroup.addScalar(_storeStalls);
    _statGroup.addDistribution(_commitStallDist);
    if (auto *tr = _eq.tracer())
        _track = tr->track("cores", "core" + std::to_string(id));
}

void
ReplayCore::start()
{
    _eq.scheduleAfter(0, [this] { step(); }, EventQueue::prioCore,
                      prof::Tag::Core);
}

void
ReplayCore::advanceAfter(Cycles delay)
{
    _eq.scheduleAfter(delay + _cfg.opOverheadCycles, [this] { step(); },
                      EventQueue::prioCore, prof::Tag::Core);
}

void
ReplayCore::step()
{
    if (_cursor >= _trace.ops.size()) {
        _finished = true;
        if (_onFinished)
            _onFinished();
        return;
    }

    const TxOp &op = _trace.ops[_cursor++];
    switch (op.kind) {
      case TxOp::Kind::TxBegin:
        if (_inTx)
            panic("trace opened a nested transaction");
        _inTx = true;
        ++_txid;
        _txStart = _eq.now();
        _scheme.txBegin(_id, _txid);
        advanceAfter(0);
        break;

      case TxOp::Kind::Load:
        doLoad(op);
        break;

      case TxOp::Kind::Store:
        doStore(op);
        break;

      case TxOp::Kind::TxEnd:
        if (!_inTx)
            panic("trace closed a transaction that was not open");
        doTxEnd();
        break;
    }
}

void
ReplayCore::doLoad(const TxOp &op)
{
    _hierarchy.access(_id, op.addr, false, [this] { advanceAfter(0); });
}

void
ReplayCore::doStore(const TxOp &op)
{
    Addr addr = op.addr;
    Word new_val = op.value;
    _hierarchy.access(_id, addr, true, [this, addr, new_val] {
        // The store retires in L1D: the log generator captures the old
        // data during tag match and the new data from the in-flight
        // write (§III-B).
        Word old_val = _values.load(addr);
        _values.store(addr, new_val);
        Tick hook_start = _eq.now();
        _scheme.store(_id, addr, old_val, new_val,
                      [this, hook_start] {
            _storeStalls += _eq.now() - hook_start;
            if (auto *tr = _eq.tracer()) {
                if (_eq.now() > hook_start)
                    tr->completeSpan(_track, "store-wait", hook_start,
                                     _eq.now());
            }
            advanceAfter(0);
        });
    });
}

void
ReplayCore::doTxEnd()
{
    _commitRequestedOpIndex = _cursor;
    Tick commit_start = _eq.now();
    if (auto *tr = _eq.tracer())
        tr->completeSpan(_track, "execute", _txStart, commit_start);
    _scheme.txEnd(_id, [this, commit_start] {
        _commitStalls += _eq.now() - commit_start;
        _commitStallDist.sample(_eq.now() - commit_start);
        if (auto *tr = _eq.tracer()) {
            tr->completeSpan(_track, "commit-wait", commit_start,
                             _eq.now());
            tr->completeSpan(_track, "tx", _txStart, _eq.now());
        }
        _inTx = false;
        ++_committedTx;
        _committedOpIndex = _commitRequestedOpIndex;
        advanceAfter(0);
    });
}

} // namespace silo::core
