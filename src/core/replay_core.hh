/**
 * @file
 * The replay core: an in-order core executing one thread's transaction
 * trace against the timing memory system.
 *
 * Loads and stores block (one outstanding access per core); every
 * operation pays a fixed issue overhead. The core keeps the system's
 * architectural value store up to date — because threads never share
 * lines, the store order per word equals trace order, so old-value
 * capture for the log generator is exact.
 */

#ifndef SILO_CORE_REPLAY_CORE_HH
#define SILO_CORE_REPLAY_CORE_HH

#include <functional>

#include "log/logging_scheme.hh"
#include "mem/hierarchy.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/tracer.hh"
#include "sim/word_store.hh"
#include "workload/trace.hh"

namespace silo::core
{

/** One simulated core replaying one thread trace. */
class ReplayCore
{
  public:
    ReplayCore(unsigned id, EventQueue &eq, const SimConfig &cfg,
               mem::CacheHierarchy &hierarchy,
               log::LoggingScheme &scheme, WordStore &values,
               const workload::ThreadTrace &trace,
               std::function<void()> on_finished);

    /** Begin executing the trace. */
    void start();

    bool finished() const { return _finished; }
    std::uint64_t committedTx() const { return _committedTx; }

    /** @return true if a transaction is open (crash bookkeeping). */
    bool inTransaction() const { return _inTx; }
    std::uint16_t currentTxid() const { return _txid; }

    /**
     * Trace index one past the Tx_end of the last *durably committed*
     * transaction — the crash oracle replays stores up to here.
     */
    std::size_t committedOpIndex() const { return _committedOpIndex; }

    /**
     * Trace index one past the Tx_end whose commit was requested (the
     * commit may be in flight at a crash).
     */
    std::size_t commitRequestedOpIndex() const
    {
        return _commitRequestedOpIndex;
    }

    std::uint64_t commitStallCycles() const
    {
        return _commitStalls.value();
    }
    std::uint64_t storeStallCycles() const
    {
        return _storeStalls.value();
    }

    /** Per-core statistics for the structured stats export. */
    const stats::StatGroup &statGroup() const { return _statGroup; }

  private:
    void step();
    void doLoad(const workload::TxOp &op);
    void doStore(const workload::TxOp &op);
    void doTxEnd();
    void advanceAfter(Cycles delay);

    unsigned _id;
    EventQueue &_eq;
    const SimConfig &_cfg;
    mem::CacheHierarchy &_hierarchy;
    log::LoggingScheme &_scheme;
    WordStore &_values;
    const workload::ThreadTrace &_trace;
    std::function<void()> _onFinished;

    std::size_t _cursor = 0;
    std::uint16_t _txid = 0;
    bool _inTx = false;
    bool _finished = false;
    std::uint64_t _committedTx = 0;
    std::size_t _committedOpIndex = 0;
    std::size_t _commitRequestedOpIndex = 0;

    /** Start tick of the open transaction (tx/execute trace spans). */
    Tick _txStart = 0;

    stats::Scalar _commitStalls{"commit_stalls", "cycles at Tx_end"};
    stats::Scalar _storeStalls{"store_stalls", "cycles in store hooks"};
    stats::Distribution _commitStallDist{
        "commit_stall", "per-transaction Tx_end stall (cycles)", 64, 64};
    stats::StatGroup _statGroup;
    /** This core's trace timeline; 0 when tracing is off. */
    trace::Tracer::TrackId _track = 0;
};

} // namespace silo::core

#endif // SILO_CORE_REPLAY_CORE_HH
