#include "log/logging_scheme.hh"

#include "log/base_scheme.hh"
#include "log/fwb_scheme.hh"
#include "log/lad_scheme.hh"
#include "log/morlog_scheme.hh"
#include "log/sw_eadr_scheme.hh"
#include "silo/silo_scheme.hh"

namespace silo::log
{

std::unique_ptr<LoggingScheme>
makeScheme(SchemeContext ctx)
{
    switch (ctx.cfg.scheme) {
      case SchemeKind::None:
        return std::make_unique<NullScheme>(std::move(ctx));
      case SchemeKind::Base:
        return std::make_unique<BaseScheme>(std::move(ctx));
      case SchemeKind::Fwb:
        return std::make_unique<FwbScheme>(std::move(ctx));
      case SchemeKind::MorLog:
        return std::make_unique<MorLogScheme>(std::move(ctx));
      case SchemeKind::Lad:
        return std::make_unique<LadScheme>(std::move(ctx));
      case SchemeKind::Silo:
        return std::make_unique<silo_scheme::SiloScheme>(
            std::move(ctx));
      case SchemeKind::SwEadr:
        return std::make_unique<SwEadrScheme>(std::move(ctx));
    }
    panic("unknown scheme kind");
}

} // namespace silo::log
