#include "silo/silo_scheme.hh"

#include <algorithm>

namespace silo::silo_scheme
{

using log::LogRecord;

SiloScheme::SiloScheme(log::SchemeContext ctx)
    : LoggingScheme(std::move(ctx)), _cores(_ctx.cfg.numCores)
{
    _ctx.mc.setEvictionObserver(
        [this](Addr line) { onCachelineEvicted(line); });
}

trace::Tracer::TrackId
SiloScheme::coreTrack(unsigned core)
{
    // Only called under an eq.tracer() guard; the tracer dedups the
    // (process, thread) pair, so the lazy lookup is safe in hot paths.
    return _ctx.eq.tracer()->track("scheme",
                                   "silo-core" + std::to_string(core));
}

void
SiloScheme::txBegin(unsigned core, std::uint16_t txid)
{
    CoreState &cs = _cores[core];
    cs.txid = txid;
    cs.open = true;
    cs.lastCommitted = false;
    cs.txStart = _ctx.eq.now();
    cs.txTotalLogs = 0;
    cs.txAppends = 0;
}

void
SiloScheme::onCachelineEvicted(Addr line)
{
    // "Once the write pending queue receives an evicted cacheline, the
    // log controller checks if there are logs that record the updates
    // in it" — all comparators match the line address in parallel.
    if (!_ctx.cfg.siloFlushBit || !addr_map::inDataRegion(line))
        return;
    unsigned owner = addr_map::dataArenaOwner(line);
    if (owner >= _cores.size())
        return;
    CoreState &cs = _cores[owner];
    bool any_line = _ctx.cfg.mutation == MutationKind::StaleFlushBit;
    for (auto &e : cs.buffer) {
        if (!e.committed && !e.flushBit &&
            (any_line || lineAlign(e.addr) == line)) {
            e.flushBit = true;
            ++_reduction.flushBitsSet;
            if (_ctx.checker)
                _ctx.checker->noteFlushBit(owner, e.txid, e.addr,
                                           e.newData);
        }
    }
}

void
SiloScheme::writeWordWithRetry(Addr addr, Word value,
                               std::function<void()> on_accept)
{
    if (_ctx.mc.tryWriteWord(addr, value)) {
        on_accept();
        return;
    }
    _ctx.mc.requestWriteSlot(addr, [this, addr, value,
                              on_accept = std::move(on_accept)]() mutable {
        writeWordWithRetry(addr, value, std::move(on_accept));
    });
}

void
SiloScheme::persistThen(Addr addr, LogRecord record,
                        std::function<void()> after)
{
    // A crash may interleave with the retries: the record stays in
    // _inFlightLogs so the battery can complete it.
    if (_ctx.mc.tryWriteLog(addr, record)) {
        _inFlightLogs.erase(addr);
        after();
        return;
    }
    _ctx.mc.requestWriteSlot(addr, [this, addr, record,
                              after = std::move(after)]() mutable {
        persistThen(addr, record, std::move(after));
    });
}

void
SiloScheme::handleOverflow(unsigned core)
{
    CoreState &cs = _cores[core];
    unsigned batch = overflowBatch();

    while (batch > 0 && !cs.buffer.empty()) {
        // FIFO: evict from the front.
        LogBufferEntry entry = cs.buffer.front();
        cs.buffer.pop_front();
        --batch;

        if (entry.committed) {
            // Post-commit leftover: its new data still needs to reach
            // the data region unless a cacheline eviction covered it.
            // Stage it so a crash while the write awaits a WPQ slot
            // still finds the committed value in the battery domain.
            if (!entry.flushBit) {
                ++_reduction.inPlaceUpdates;
                stageInPlace(core, entry.txid, entry.addr,
                             entry.newData, 0);
            }
            continue;
        }

        // Uncommitted entry: flush the undo log to guarantee
        // atomicity; if the flush-bit is clear, also write the new
        // data to guarantee durability (§III-F). The new data is
        // ordered after the undo record's acceptance.
        ++_reduction.overflows;
        LogRecord undo;
        undo.kind = LogRecord::Kind::Undo;
        undo.tid = std::uint8_t(core);
        undo.txid = entry.txid;
        undo.flushBit = true;   // recorded as 1 in the PM log region
        undo.dataAddr = entry.addr;
        undo.oldData = entry.oldData;

        bool write_data = !entry.flushBit;
        Addr rec_addr = _ctx.logs.allocate(core, undo.sizeBytes());
        ++_stats.logWrites;
        _stats.logBytes += undo.sizeBytes();
        _inFlightLogs[rec_addr] = undo;
        noteInFlightLog(rec_addr, undo);
        // The new data stays in the battery domain (pendingInPlace)
        // until the WPQ accepts it — "they are not lost in the log
        // buffer" (§III-F) — so a crash after the commit but before
        // this write completes still recovers the word via a redo
        // flush.
        if (write_data) {
            // Stage with supersede semantics (one pending value per
            // word, see stageInPlace); the issue waits for the undo
            // record's acceptance below.
            bool superseded = false;
            for (auto &p : cs.pendingInPlace) {
                if (p.addr == entry.addr) {
                    p.txid = entry.txid;
                    p.newData = entry.newData;
                    superseded = true;
                    break;
                }
            }
            if (!superseded) {
                cs.pendingInPlace.push_back(
                    PendingUpdate{entry.txid, entry.addr,
                                  entry.newData, _ctx.eq.now()});
            }
        }
        Addr data_addr = entry.addr;
        persistThen(rec_addr, undo, [this, core, write_data,
                                     data_addr] {
            if (write_data)
                issueInPlace(core, data_addr);
        });
    }
}

void
SiloScheme::store(unsigned core, Addr addr, Word old_val, Word new_val,
                  std::function<void()> done)
{
    CoreState &cs = _cores[core];
    ++cs.txTotalLogs;

    // Log ignorance: a store that does not change the word produces no
    // log entry (§III-C).
    if (_ctx.cfg.siloLogIgnorance && old_val == new_val) {
        ++_reduction.ignored;
        done();
        return;
    }

    // Log merging: the 64-bit comparators match the address against
    // every entry in parallel (§III-C).
    if (_ctx.cfg.siloLogMerging) {
        for (auto &e : cs.buffer) {
            if (!e.committed && e.txid == cs.txid && e.addr == addr) {
                e.newData = new_val;
                // The merged value supersedes whatever an earlier
                // eviction delivered: a set flush-bit would make the
                // crash flush (and drainCommitted) skip this entry and
                // lose the new data.
                e.flushBit = false;
                ++_reduction.merged;
                done();
                return;
            }
        }
    }

    LogBufferEntry entry;
    entry.txid = cs.txid;
    entry.addr = addr;
    entry.oldData = old_val;
    entry.newData = new_val;
    cs.buffer.push_back(entry);
    ++cs.txAppends;
    if (_ctx.checker)
        _ctx.checker->noteBatteryUndo(core, cs.txid, addr, old_val);

    if (cs.buffer.size() > _ctx.cfg.logBufferEntries)
        handleOverflow(core);

    // Sending the entry to the buffer is off the store's critical path.
    done();
}

void
SiloScheme::drainCommitted(unsigned core)
{
    // The log controller reads committed entries out of the buffer at
    // the buffer's access latency and "simultaneously flushes the new
    // data" (§III-D): issues are paced by the read latency but do not
    // wait on each other's WPQ acceptance.
    CoreState &cs = _cores[core];
    Cycles delay = 0;
    for (auto it = cs.buffer.begin(); it != cs.buffer.end();) {
        if (!it->committed) {
            ++it;
            continue;
        }
        if (it->flushBit &&
            _ctx.cfg.mutation != MutationKind::DoubleInPlace) {
            // The evicted cacheline already carries this word.
            it = cs.buffer.erase(it);
            continue;
        }
        // Deallocate the buffer slot; the new data stages in the
        // battery domain until the ADR queue accepts it.
        PendingUpdate pending{it->txid, it->addr, it->newData};
        it = cs.buffer.erase(it);
        ++_reduction.inPlaceUpdates;
        delay += _ctx.cfg.logBufferLatency;
        stageInPlace(core, pending.txid, pending.addr, pending.newData,
                     delay);
    }
}

void
SiloScheme::stageInPlace(unsigned core, std::uint16_t txid, Addr addr,
                         Word value, Cycles delay)
{
    auto &staged = _cores[core].pendingInPlace;
    for (auto &p : staged) {
        if (p.addr == addr) {
            // A newer committed value supersedes the staged one; the
            // already-issued write delivers the latest value when it
            // is accepted (see issueInPlace).
            p.txid = txid;
            p.newData = value;
            return;
        }
    }
    staged.push_back(PendingUpdate{txid, addr, value, _ctx.eq.now()});
    _ctx.eq.scheduleAfter(delay,
                          [this, core, addr] { issueInPlace(core, addr); },
                          EventQueue::prioDefault, prof::Tag::LogScheme);
}

void
SiloScheme::issueInPlace(unsigned core, Addr addr)
{
    auto &staged = _cores[core].pendingInPlace;
    auto it = std::find_if(staged.begin(), staged.end(),
                           [addr](const PendingUpdate &p) {
                               return p.addr == addr;
                           });
    if (it == staged.end())
        return;   // a crash cleared the stage
    Word value = it->newData;
    writeWordWithRetry(addr, value, [this, core, addr, value] {
        auto &staged2 = _cores[core].pendingInPlace;
        auto it2 = std::find_if(staged2.begin(), staged2.end(),
                                [addr](const PendingUpdate &p) {
                                    return p.addr == addr;
                                });
        if (it2 == staged2.end())
            return;
        if (it2->newData == value) {
            // The in-place update left the battery domain for the ADR
            // queue: the committed word is now durably persisted.
            if (auto *tr = _ctx.eq.tracer()) {
                tr->completeSpan(coreTrack(core), "persist",
                                 it2->stagedAt, _ctx.eq.now());
            }
            staged2.erase(it2);
            return;
        }
        // Superseded while the write was in flight: the word on the
        // ADR queue is stale, issue the newer value after it.
        issueInPlace(core, addr);
    });
}

void
SiloScheme::txEnd(unsigned core, std::function<void()> done)
{
    CoreState &cs = _cores[core];

    _reduction.totalLogsPerTx.sample(double(cs.txTotalLogs));
    _reduction.remainingLogsPerTx.sample(double(cs.txAppends));
    _reduction.maxRemainingLogs =
        std::max(_reduction.maxRemainingLogs, cs.txAppends);

    // Speculation window: from Tx_begin until the commit request, the
    // transaction's logs exist only in the battery-backed buffer.
    if (auto *tr = _ctx.eq.tracer()) {
        tr->completeSpan(coreTrack(core), "speculate", cs.txStart,
                         _ctx.eq.now());
    }
    Tick commit_request = _ctx.eq.now();

    // Commit: the log generator notifies the log controller; once the
    // ACK returns, Tx_end completes — no PM write is on this path
    // (§III-D). The commit state change is atomic with the ACK.
    _ctx.eq.scheduleAfter(_ctx.cfg.commitAckCycles,
                          [this, core, commit_request,
                           done = std::move(done)] {
        CoreState &cs2 = _cores[core];
        if (auto *tr = _ctx.eq.tracer()) {
            tr->completeSpan(coreTrack(core), "validate",
                             commit_request, _ctx.eq.now());
        }
        for (auto &e : cs2.buffer) {
            if (e.txid == cs2.txid)
                e.committed = true;
        }
        cs2.open = false;
        cs2.lastCommitted = true;
        // Overflowed undo logs of this transaction are obsolete: the
        // log truncates via the on-chip head register (no PM write).
        _ctx.logs.truncate(core);
        drainCommitted(core);
        done();
    }, EventQueue::prioDefault, prof::Tag::LogScheme);
}

void
SiloScheme::crash()
{
    // Battery-backed selective log flushing (§III-G).
    std::set<std::pair<std::uint8_t, std::uint16_t>> committed_ids;

    for (unsigned core = 0; core < _cores.size(); ++core) {
        CoreState &cs = _cores[core];
        for (const auto &e : cs.buffer) {
            if (!e.committed) {
                if (_ctx.cfg.mutation ==
                    MutationKind::SkipCrashUndoFlush) {
                    continue;
                }
                // Uncommitted: flush the undo log to revoke partial
                // updates; the new data is discarded on chip.
                LogRecord undo;
                undo.kind = LogRecord::Kind::Undo;
                undo.tid = std::uint8_t(core);
                undo.txid = e.txid;
                undo.flushBit = true;
                undo.dataAddr = e.addr;
                undo.oldData = e.oldData;
                Addr a = _ctx.logs.allocate(core, undo.sizeBytes());
                _ctx.logs.persist(a, undo);
                _stats.crashFlushBytes += undo.sizeBytes();
            } else if (!e.flushBit) {
                // Committed but not yet in-place updated: flush the
                // redo log so recovery can replay it.
                LogRecord redo;
                redo.kind = LogRecord::Kind::Redo;
                redo.tid = std::uint8_t(core);
                redo.txid = e.txid;
                redo.flushBit = false;
                redo.dataAddr = e.addr;
                redo.newData = e.newData;
                Addr a = _ctx.logs.allocate(core, redo.sizeBytes());
                _ctx.logs.persist(a, redo);
                _stats.crashFlushBytes += redo.sizeBytes();
                committed_ids.insert({std::uint8_t(core), e.txid});
            }
        }
        cs.buffer.clear();

        // Staged in-place updates whose WPQ write had not been
        // accepted: committed transactions need a redo flush; for
        // uncommitted ones (overflow path) the undo log covers
        // atomicity and the new data is simply discarded.
        for (const auto &p : cs.pendingInPlace) {
            bool committed = p.txid < cs.txid ||
                             (p.txid == cs.txid && !cs.open);
            if (!committed)
                continue;
            LogRecord redo;
            redo.kind = LogRecord::Kind::Redo;
            redo.tid = std::uint8_t(core);
            redo.txid = p.txid;
            redo.flushBit = false;
            redo.dataAddr = p.addr;
            redo.newData = p.newData;
            Addr a = _ctx.logs.allocate(core, redo.sizeBytes());
            _ctx.logs.persist(a, redo);
            _stats.crashFlushBytes += redo.sizeBytes();
            committed_ids.insert({std::uint8_t(core), p.txid});
        }
        cs.pendingInPlace.clear();
    }

    // One ID tuple per committed transaction with flushed redo logs.
    for (const auto &[tid, txid] : committed_ids) {
        LogRecord tuple;
        tuple.kind = LogRecord::Kind::IdTuple;
        tuple.tid = tid;
        tuple.txid = txid;
        Addr a = _ctx.logs.allocate(tid, tuple.sizeBytes());
        _ctx.logs.persist(a, tuple);
        _stats.crashFlushBytes += tuple.sizeBytes();
    }

    // Overflow undo records whose MC write was still in flight are
    // durable in the MC's ADR log path; complete them.
    flushInFlightLogs();
}

bool
SiloScheme::lastTxCommittedAtCrash(unsigned core) const
{
    return _cores[core].lastCommitted;
}

void
SiloScheme::recover(WordStore &media)
{
    for (unsigned t = 0; t < _ctx.cfg.numCores; ++t) {
        auto records = _ctx.logs.liveRecords(t);

        // The ID tuples name the committed transactions (§III-G).
        std::set<std::uint16_t> committed;
        for (const auto &[addr, rec] : records) {
            if (rec.kind == LogRecord::Kind::IdTuple)
                committed.insert(rec.txid);
        }

        // Committed: replay redo logs (flush-bit 0) in write order.
        // Overflowed undo logs of committed transactions carry
        // flush-bit 1 and are discarded.
        for (const auto &[addr, rec] : records) {
            if (committed.count(rec.txid) && !rec.flushBit &&
                rec.kind == LogRecord::Kind::Redo) {
                media.store(rec.dataAddr, rec.newData);
            }
        }

        // Uncommitted: revoke partial updates with the undo logs, in
        // reverse write order so the oldest value lands last.
        for (auto it = records.rbegin(); it != records.rend(); ++it) {
            const LogRecord &rec = it->second;
            if (!committed.count(rec.txid) &&
                rec.kind == LogRecord::Kind::Undo) {
                media.store(rec.dataAddr, rec.oldData);
            }
        }

        _ctx.logs.truncate(t);
    }
}

} // namespace silo::silo_scheme
