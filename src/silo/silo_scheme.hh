/**
 * @file
 * Silo: speculative hardware logging with the "Log as Data" idea (§III).
 *
 * Per core, a small battery-backed log buffer in the memory controller
 * holds the undo+redo entries of the running transaction:
 *
 *  - The L1D log generator ignores silent stores (log ignorance) and
 *    the log controller merges same-word entries via the per-entry
 *    comparators (log merging, §III-C).
 *  - When the WPQ receives an evicted cacheline, matching entries'
 *    flush-bits are set — their new data need not be written again
 *    (§III-D).
 *  - Tx_end completes after an on-chip ACK round trip (a few cycles):
 *    no logs or cachelines are forced to PM. After commit the new data
 *    in the buffer in-place update the PM data region in the
 *    background, one word per buffer-access latency (§III-D/E).
 *  - Overflow evicts batches of undo logs (N = ⌊S/18⌋) to the per-
 *    thread log area and simultaneously writes the new data (§III-F).
 *  - On a crash, the battery selectively flushes undo logs of
 *    uncommitted transactions or redo logs + an ID tuple of committed
 *    ones (§III-G); recovery revokes or replays accordingly.
 */

#ifndef SILO_SILO_SILO_SCHEME_HH
#define SILO_SILO_SILO_SCHEME_HH

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "log/logging_scheme.hh"

namespace silo::silo_scheme
{

/** One entry of the battery-backed per-core log buffer (Fig. 6). */
struct LogBufferEntry
{
    bool flushBit = false;
    std::uint16_t txid = 0;
    Addr addr = 0;         //!< word-aligned data address
    Word oldData = 0;
    Word newData = 0;
    bool committed = false;
};

/** Per-transaction log statistics behind Fig. 13. */
struct LogReductionStats
{
    stats::Average totalLogsPerTx{"total_logs",
        "log entries a transaction would produce without reduction"};
    stats::Average remainingLogsPerTx{"remaining_logs",
        "entries remaining after ignorance and merging"};
    stats::Scalar ignored{"ignored", "silent stores not logged"};
    stats::Scalar merged{"merged", "entries merged by the comparators"};
    stats::Scalar flushBitsSet{"flush_bits",
        "entries whose flush-bit was set by a cacheline eviction"};
    stats::Scalar overflows{"overflow_evictions",
        "entries evicted to the PM log region on overflow"};
    stats::Scalar inPlaceUpdates{"in_place_updates",
        "post-commit new-data words written to the data region"};
    std::uint64_t maxRemainingLogs = 0;

    /** All of the above, for the structured stats export. */
    stats::StatGroup group{"silo"};

    LogReductionStats()
    {
        group.addAverage(totalLogsPerTx);
        group.addAverage(remainingLogsPerTx);
        group.addScalar(ignored);
        group.addScalar(merged);
        group.addScalar(flushBitsSet);
        group.addScalar(overflows);
        group.addScalar(inPlaceUpdates);
    }
};

/** The Silo logging scheme. */
class SiloScheme : public log::LoggingScheme
{
  public:
    explicit SiloScheme(log::SchemeContext ctx);

    const char *name() const override { return "Silo"; }

    void txBegin(unsigned core, std::uint16_t txid) override;
    void store(unsigned core, Addr addr, Word old_val, Word new_val,
               std::function<void()> done) override;
    void txEnd(unsigned core, std::function<void()> done) override;
    void crash() override;
    bool lastTxCommittedAtCrash(unsigned core) const override;
    void recover(WordStore &media) override;

    const LogReductionStats &reductionStats() const
    {
        return _reduction;
    }

    /** Buffer occupancy of @p core (test hook). */
    std::size_t bufferOccupancy(unsigned core) const
    {
        return _cores[core].buffer.size();
    }

    unsigned
    logBufferFill() const override
    {
        unsigned total = 0;
        for (const auto &cs : _cores)
            total += unsigned(cs.buffer.size());
        return total;
    }

    const stats::StatGroup *extraStatGroup() const override
    {
        return &_reduction.group;
    }

  private:
    /** A committed new-data word on its way to the data region. */
    struct PendingUpdate
    {
        std::uint16_t txid;
        Addr addr;
        Word newData;
        Tick stagedAt = 0;  //!< trace: start of the persist span
    };

    struct CoreState
    {
        std::uint16_t txid = 0;
        bool open = false;
        bool lastCommitted = false;
        Tick txStart = 0;   //!< trace: start of the speculate span
        std::deque<LogBufferEntry> buffer;   //!< battery-backed FIFO
        /**
         * Committed entries leave the buffer at commit ("the entries
         * in log buffer are deallocated to serve the next
         * transaction", §III-B) and stage here — still inside the
         * controller's battery domain — until the WPQ accepts their
         * in-place update.
         */
        std::vector<PendingUpdate> pendingInPlace;
        /** Fig. 13 per-transaction counters. */
        std::uint64_t txTotalLogs = 0;
        std::uint64_t txAppends = 0;
    };

    /** Overflow batch size N = ⌊S / 18⌋ (§III-F). */
    unsigned overflowBatch() const
    {
        return _ctx.cfg.onPmBufferLineBytes / undoLogEntryBytes;
    }

    /** Evict a batch of undo logs to the log region (§III-F). */
    void handleOverflow(unsigned core);

    /** Background in-place updates of a committed tx's new data. */
    void drainCommitted(unsigned core);

    /**
     * Stage a committed in-place update and schedule its issue after
     * @p delay. A word already staged is superseded in place rather
     * than issued a second time: two independently retrying writes to
     * the same word can be accepted out of order, letting an older
     * committed value land last and revert the word on media.
     */
    void stageInPlace(unsigned core, std::uint16_t txid, Addr addr,
                      Word value, Cycles delay);

    /** Issue (or reissue) the staged update for @p addr, if any. */
    void issueInPlace(unsigned core, Addr addr);

    /** Write @p value at @p addr via the MC, retrying on a full WPQ. */
    void writeWordWithRetry(Addr addr, Word value,
                            std::function<void()> on_accept);

    /**
     * Persist a log record via the MC (retrying on a full WPQ), run
     * @p after once it is durable. The record is remembered until
     * accepted so the battery can still flush it if a crash
     * interleaves with the retries.
     */
    void persistThen(Addr addr, log::LogRecord record,
                     std::function<void()> after);

    /** The MC eviction hook: set flush-bits of matching entries. */
    void onCachelineEvicted(Addr line);

    /** Per-core scheme timeline (speculate/validate/persist spans). */
    trace::Tracer::TrackId coreTrack(unsigned core);

    std::vector<CoreState> _cores;
    LogReductionStats _reduction;
};

} // namespace silo::silo_scheme

#endif // SILO_SILO_SILO_SCHEME_HH
