/**
 * @file
 * SW-eADR: software write-ahead logging on an eADR machine (§II-C).
 *
 * eADR makes the whole cache hierarchy persistent, so persisting a log
 * entry only requires writing it into the cache — no clwb/sfence. The
 * paper argues this is still expensive: log entries are appended at
 * ever-new addresses, so they cannot merge, they occupy cache capacity,
 * and they evict application data ("cache pollution"). This scheme
 * implements that design as an ablation point: undo+redo entries are
 * written through the cache like ordinary data, commit is immediate,
 * and a crash flushes every dirty line by battery (the Table IV eADR
 * cost).
 *
 * Not part of the paper's Fig. 11/12 comparison (those are ADR
 * platforms); exercised by the ablation bench.
 */

#ifndef SILO_LOG_SW_EADR_SCHEME_HH
#define SILO_LOG_SW_EADR_SCHEME_HH

#include <vector>

#include "log/logging_scheme.hh"

namespace silo::log
{

/** Software undo+redo WAL with persistent (eADR) caches. */
class SwEadrScheme : public LoggingScheme
{
  public:
    explicit SwEadrScheme(SchemeContext ctx);

    const char *name() const override { return "SW-eADR"; }

    void txBegin(unsigned core, std::uint16_t txid) override;
    void store(unsigned core, Addr addr, Word old_val, Word new_val,
               std::function<void()> done) override;
    void txEnd(unsigned core, std::function<void()> done) override;
    void crash() override;
    bool lastTxCommittedAtCrash(unsigned core) const override;
    void recover(WordStore &media) override;

    /** Cache accesses spent writing log entries (pollution metric). */
    std::uint64_t logCacheWrites() const
    {
        return _logCacheWrites.value();
    }

  private:
    struct CoreState
    {
        std::uint16_t txid = 0;
        bool lastCommitted = false;
    };

    /**
     * Write @p record at a fresh log address *through the cache*:
     * durable immediately (persistent cache), but the log line
     * competes for cache capacity and later writes back to PM.
     */
    void writeLogThroughCache(unsigned core, LogRecord record,
                              std::function<void()> done);

    std::vector<CoreState> _cores;
    std::uint64_t _contentStamp = 1;
    stats::Scalar _logCacheWrites{"sweadr_log_cache_writes",
        "cache write accesses performed for log entries"};
};

} // namespace silo::log

#endif // SILO_LOG_SW_EADR_SCHEME_HH
