/**
 * @file
 * FWB ("steal but no force"): hardware undo+redo logging with a
 * periodic cache force-write-back walker (§II-D, §VI-A).
 *
 * Every store persists an undo+redo entry and the store retires only
 * once its log is accepted by the ADR domain — FWB "forces the logs to
 * PM before the updated data for each write". Data reaches PM by
 * natural eviction plus a walker that force-writes-back all dirty
 * cachelines every 3,000,000 cycles, bounding log lifetime.
 */

#ifndef SILO_LOG_FWB_SCHEME_HH
#define SILO_LOG_FWB_SCHEME_HH

#include <deque>
#include <vector>

#include "log/logging_scheme.hh"

namespace silo::log
{

/** Undo+redo logging with force write-back. */
class FwbScheme : public LoggingScheme
{
  public:
    explicit FwbScheme(SchemeContext ctx);

    const char *name() const override { return "FWB"; }

    void txBegin(unsigned core, std::uint16_t txid) override;
    void store(unsigned core, Addr addr, Word old_val, Word new_val,
               std::function<void()> done) override;
    void txEnd(unsigned core, std::function<void()> done) override;
    bool lastTxCommittedAtCrash(unsigned core) const override;
    void recover(WordStore &media) override;

    std::uint64_t walkerWritebacks() const
    {
        return _walkerWritebacks.value();
    }

  private:
    /** Posted-but-unaccepted log writes a core may have in flight. */
    static constexpr unsigned maxPostedLogs = 16;

    struct CoreState
    {
        std::uint16_t txid = 0;
        bool lastCommitted = false;
        unsigned postedLogs = 0;
        /** Stores stalled on the posted-log queue being full. */
        std::deque<std::function<void()>> stalledStores;
        /** Commit waiting for postedLogs == 0. */
        std::function<void()> pendingCommit;
    };

    void logAccepted(unsigned core);
    void finishCommit(unsigned core);

    void scheduleWalk();
    void walk();

    std::vector<CoreState> _cores;
    stats::Scalar _walkerWritebacks{"fwb_writebacks",
        "dirty lines force-written-back by the FWB walker"};
};

} // namespace silo::log

#endif // SILO_LOG_FWB_SCHEME_HH
