#include "log/logging_scheme.hh"

#include "check/persistency_checker.hh"

namespace silo::log
{

void
LoggingScheme::noteInFlightLog(Addr addr, const LogRecord &record)
{
    if (_ctx.checker)
        _ctx.checker->onLogInFlight(addr, record);
}

} // namespace silo::log
