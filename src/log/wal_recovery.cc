#include "log/wal_recovery.hh"

#include <set>

namespace silo::log
{

void
walRecover(LogRegionStore &logs, unsigned threads, WordStore &media)
{
    for (unsigned t = 0; t < threads; ++t) {
        auto records = logs.liveRecords(t);

        // Pass 1: find the committed transactions of this thread.
        std::set<std::uint16_t> committed;
        for (const auto &[addr, rec] : records) {
            if (rec.kind == LogRecord::Kind::Commit)
                committed.insert(rec.txid);
        }

        // Pass 2: redo committed transactions in log (write) order.
        for (const auto &[addr, rec] : records) {
            if (rec.kind == LogRecord::Kind::UndoRedo &&
                committed.count(rec.txid)) {
                media.store(rec.dataAddr, rec.newData);
            }
        }

        // Pass 3: undo uncommitted transactions in reverse order so a
        // word's oldest old-value lands last.
        for (auto it = records.rbegin(); it != records.rend(); ++it) {
            const auto &rec = it->second;
            if (rec.kind == LogRecord::Kind::UndoRedo &&
                !committed.count(rec.txid)) {
                media.store(rec.dataAddr, rec.oldData);
            }
        }

        logs.truncate(t);
    }
}

} // namespace silo::log
