#include "log/morlog_scheme.hh"

#include "log/wal_recovery.hh"

namespace silo::log
{

MorLogScheme::MorLogScheme(SchemeContext ctx)
    : LoggingScheme(std::move(ctx)), _cores(_ctx.cfg.numCores)
{
}

void
MorLogScheme::txBegin(unsigned core, std::uint16_t txid)
{
    _cores[core].txid = txid;
    _cores[core].lastCommitted = false;
}

void
MorLogScheme::flushEntry(unsigned core, BufEntry entry,
                         std::function<void()> on_accept)
{
    LogRecord rec;
    rec.kind = LogRecord::Kind::UndoRedo;
    rec.tid = std::uint8_t(core);
    rec.txid = entry.txid;
    rec.dataAddr = entry.addr;
    rec.oldData = entry.oldData;
    rec.newData = entry.newData;
    writeLogWithRetry(core, rec, std::move(on_accept));
}

void
MorLogScheme::eraseEntry(unsigned core, const BufEntry &entry)
{
    auto &buffer = _cores[core].buffer;
    for (auto it = buffer.begin(); it != buffer.end(); ++it) {
        if (it->txid == entry.txid && it->addr == entry.addr &&
            it->flushing) {
            buffer.erase(it);
            return;
        }
    }
}

void
MorLogScheme::store(unsigned core, Addr addr, Word old_val,
                    Word new_val, std::function<void()> done)
{
    CoreState &cs = _cores[core];

    // MorLog's morphing eliminates unnecessary log data: a store that
    // does not change the word needs no log at all.
    if (old_val == new_val) {
        done();
        return;
    }

    // Merge with an existing entry of the same word in this tx —
    // morphing away the intermediate redo data.
    for (auto &e : cs.buffer) {
        if (e.txid == cs.txid && e.addr == addr && !e.flushing) {
            e.newData = new_val;
            ++_merged;
            done();
            return;
        }
    }

    if (cs.buffer.size() >= bufferCapacity) {
        // Buffer full: push the oldest idle entry out to the log
        // region. It stays resident (flushing) until accepted so a
        // crash in between still finds it in the ADR buffer.
        for (auto &e : cs.buffer) {
            if (!e.flushing) {
                e.flushing = true;
                BufEntry copy = e;
                flushEntry(core, copy, [this, core, copy] {
                    eraseEntry(core, copy);
                });
                break;
            }
        }
    }
    cs.buffer.push_back(BufEntry{cs.txid, addr, old_val, new_val});
    if (_ctx.checker)
        _ctx.checker->noteAdrUndo(core, cs.txid, addr, old_val);
    done();
}

void
MorLogScheme::commitFlushFinished(unsigned core)
{
    CoreState &cs = _cores[core];
    if (--cs.commitOutstanding > 0)
        return;

    LogRecord marker;
    marker.kind = LogRecord::Kind::Commit;
    marker.tid = std::uint8_t(core);
    marker.txid = cs.txid;
    auto done = std::move(cs.pendingCommit);
    cs.pendingCommit = nullptr;
    writeLogWithRetry(core, marker, [this, core,
                                     done = std::move(done)] {
        _cores[core].lastCommitted = true;
        done();
    });
}

void
MorLogScheme::txEnd(unsigned core, std::function<void()> done)
{
    CoreState &cs = _cores[core];
    cs.pendingCommit = std::move(done);

    // MorLog's ordering constraint: all logs of the transaction must
    // be in the PM log region before the commit completes. Entries
    // stay in the ADR buffer until each write is accepted.
    std::vector<BufEntry> to_flush;
    for (auto &e : cs.buffer) {
        if (e.txid == cs.txid && !e.flushing) {
            e.flushing = true;
            to_flush.push_back(e);
        }
    }

    cs.commitOutstanding = unsigned(to_flush.size()) + 1;
    for (const auto &entry : to_flush) {
        flushEntry(core, entry, [this, core, entry] {
            eraseEntry(core, entry);
            commitFlushFinished(core);
        });
    }
    commitFlushFinished(core);   // the +1 guard
}

void
MorLogScheme::crash()
{
    flushInFlightLogs();
    // The MC log buffer is in the ADR domain: its entries flush to the
    // log region on power failure.
    for (unsigned core = 0; core < _cores.size(); ++core) {
        CoreState &cs = _cores[core];
        for (const auto &e : cs.buffer) {
            LogRecord rec;
            rec.kind = LogRecord::Kind::UndoRedo;
            rec.tid = std::uint8_t(core);
            rec.txid = e.txid;
            rec.dataAddr = e.addr;
            rec.oldData = e.oldData;
            rec.newData = e.newData;
            Addr addr = _ctx.logs.allocate(core, rec.sizeBytes());
            _ctx.logs.persist(addr, rec);
            _stats.crashFlushBytes += rec.sizeBytes();
        }
        cs.buffer.clear();
    }
}

bool
MorLogScheme::lastTxCommittedAtCrash(unsigned core) const
{
    return _cores[core].lastCommitted;
}

void
MorLogScheme::recover(WordStore &media)
{
    walRecover(_ctx.logs, _ctx.cfg.numCores, media);
}

} // namespace silo::log
