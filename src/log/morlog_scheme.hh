/**
 * @file
 * MorLog: morphable hardware logging (§II-D, §VI-A).
 *
 * Stores send undo+redo entries to a persistent (ADR-domain) per-core
 * log buffer in the memory controller, where entries for the same word
 * merge — eliminating the intermediate redo data that FWB writes out.
 * Tx_end must flush every buffered entry of the transaction to the PM
 * log region before it completes (MorLog's commit ordering constraint);
 * data reaches PM by natural eviction ("steal"). Logs are still
 * backups: they are always written to the log region per transaction.
 */

#ifndef SILO_LOG_MORLOG_SCHEME_HH
#define SILO_LOG_MORLOG_SCHEME_HH

#include <deque>
#include <vector>

#include "log/logging_scheme.hh"

namespace silo::log
{

/** Merge-buffered undo+redo logging, flushed at commit. */
class MorLogScheme : public LoggingScheme
{
  public:
    explicit MorLogScheme(SchemeContext ctx);

    const char *name() const override { return "MorLog"; }

    void txBegin(unsigned core, std::uint16_t txid) override;
    void store(unsigned core, Addr addr, Word old_val, Word new_val,
               std::function<void()> done) override;
    void txEnd(unsigned core, std::function<void()> done) override;
    void crash() override;
    bool lastTxCommittedAtCrash(unsigned core) const override;
    void recover(WordStore &media) override;

    std::uint64_t mergedLogs() const { return _merged.value(); }

  private:
    /** Capacity of the per-core merge buffer (entries). */
    static constexpr unsigned bufferCapacity = 64;

    struct BufEntry
    {
        std::uint16_t txid;
        Addr addr;
        Word oldData;
        Word newData;
        /** Entry is being written to the log region; it must stay in
         *  the ADR buffer until the write is accepted, or a crash in
         *  between would lose the undo data. */
        bool flushing = false;
    };

    struct CoreState
    {
        std::uint16_t txid = 0;
        std::deque<BufEntry> buffer;   //!< ADR-domain, survives crash
        unsigned commitOutstanding = 0;
        std::function<void()> pendingCommit;
        bool lastCommitted = false;
    };

    /** Write one entry's record to the PM log region. */
    void flushEntry(unsigned core, BufEntry entry,
                    std::function<void()> on_accept);
    /** Remove a flushed entry from the ADR buffer (post-accept). */
    void eraseEntry(unsigned core, const BufEntry &entry);
    void commitFlushFinished(unsigned core);

    std::vector<CoreState> _cores;
    stats::Scalar _merged{"morlog_merged",
        "log entries merged in the MC buffer"};
};

} // namespace silo::log

#endif // SILO_LOG_MORLOG_SCHEME_HH
