/**
 * @file
 * LAD: logless atomic durability (§V, §VI-A).
 *
 * No logs in the common case. The memory controller (ADR domain)
 * buffers the updated cachelines of an open transaction as "held"
 * entries — durable but not drainable. Tx_end runs two phases: Phase 1
 * flushes every still-cached dirty line of the transaction to the MC
 * (this wait is LAD's ordering cost, worst for low-locality workloads
 * like Array and Queue, §VI-C); Phase 2 releases the held entries.
 * A crash discards held (uncommitted) lines, preserving atomicity.
 *
 * If held entries approach the MC's capacity, LAD falls back to a slow
 * mode: it reads the line's old data from PM and writes undo log
 * entries, after which the line may drain early (§V point 3).
 */

#ifndef SILO_LOG_LAD_SCHEME_HH
#define SILO_LOG_LAD_SCHEME_HH

#include <map>
#include <set>
#include <vector>

#include "log/logging_scheme.hh"

namespace silo::log
{

/** Logless atomic durability via MC-buffered cachelines. */
class LadScheme : public LoggingScheme
{
  public:
    explicit LadScheme(SchemeContext ctx);

    const char *name() const override { return "LAD"; }

    void txBegin(unsigned core, std::uint16_t txid) override;
    void store(unsigned core, Addr addr, Word old_val, Word new_val,
               std::function<void()> done) override;
    void txEnd(unsigned core, std::function<void()> done) override;
    void crash() override;
    bool lastTxCommittedAtCrash(unsigned core) const override;
    void recover(WordStore &media) override;

    /** An open transaction's lines are revocable only by discard. */
    bool dropAtShutdown(Addr line) const override
    {
        return lineIsUncommitted(line);
    }

    std::uint64_t overflowFallbacks() const
    {
        return _fallbacks.value();
    }

    const stats::StatGroup *extraStatGroup() const override
    {
        return &_ladStats;
    }

  private:
    struct CoreState
    {
        std::uint16_t txid = 0;
        bool open = false;
        bool lastCommitted = false;
        /** Dirty lines of the open transaction. */
        std::set<Addr> txLines;
        /** First-store old value per word (slow-mode undo data). */
        std::map<Addr, Word> undoImage;
        /** Lines whose undo is already persisted (slow mode). */
        std::set<Addr> undoLogged;
        /**
         * Lines mid-relieve: marked undoLogged but their undo records
         * not yet handed to the MC (the slow-mode PM read is still in
         * flight). Evictions of these lines must stay held — draining
         * them would put uncommitted data on media with no durable
         * undo coverage.
         */
        std::set<Addr> relieving;
    };

    /** @return core owning @p line, or -1 if outside any data arena. */
    int ownerOf(Addr line) const;

    /** True while @p line belongs to an open transaction. */
    bool lineIsUncommitted(Addr line) const;

    /**
     * Slow mode: persist undo records for the oldest held lines and
     * release them, relieving MC pressure.
     */
    void maybeRelieve();
    void relieveLine(unsigned core, Addr line);

    /** Phase 1 of commit: flush remaining dirty tx lines to the MC. */
    void commitPhase1(unsigned core, std::vector<Addr> lines,
                      std::size_t next, std::function<void()> done);
    /** Phase 2: release held entries; the transaction is committed. */
    void commitPhase2(unsigned core, std::function<void()> done);

    std::vector<CoreState> _cores;
    stats::Scalar _fallbacks{"lad_fallbacks",
        "lines pushed to slow mode (PM read + undo log)"};
    stats::Scalar _phase1Lines{"lad_phase1_lines",
        "dirty lines flushed during commit phase 1"};
    stats::StatGroup _ladStats{"lad"};
};

} // namespace silo::log

#endif // SILO_LOG_LAD_SCHEME_HH
