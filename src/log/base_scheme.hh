/**
 * @file
 * Base: the hardware logging baseline of §VI-A — for every store it
 * persists an undo+redo log entry and then force-flushes the updated
 * cacheline, and Tx_end waits for all of both. Highest write traffic
 * and the strictest ordering of the evaluated designs.
 */

#ifndef SILO_LOG_BASE_SCHEME_HH
#define SILO_LOG_BASE_SCHEME_HH

#include <deque>
#include <vector>

#include "log/logging_scheme.hh"

namespace silo::log
{

/** Per-store log + cacheline flush baseline. */
class BaseScheme : public LoggingScheme
{
  public:
    explicit BaseScheme(SchemeContext ctx);

    const char *name() const override { return "Base"; }

    void txBegin(unsigned core, std::uint16_t txid) override;
    void store(unsigned core, Addr addr, Word old_val, Word new_val,
               std::function<void()> done) override;
    void txEnd(unsigned core, std::function<void()> done) override;
    bool lastTxCommittedAtCrash(unsigned core) const override;
    void recover(WordStore &media) override;

  private:
    /** Cap on in-flight log+flush pairs before stores stall. */
    static constexpr unsigned maxOutstanding = 8;

    struct CoreState
    {
        std::uint16_t txid = 0;
        unsigned outstanding = 0;
        /** Stores waiting because outstanding hit the cap. */
        std::deque<std::function<void()>> stalledStores;
        /** Commit completion waiting for outstanding == 0. */
        std::function<void()> pendingCommit;
        bool lastCommitted = false;
    };

    void opFinished(unsigned core);
    void finishCommit(unsigned core);

    std::vector<CoreState> _cores;
};

} // namespace silo::log

#endif // SILO_LOG_BASE_SCHEME_HH
