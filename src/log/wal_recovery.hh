/**
 * @file
 * Shared write-ahead-log recovery for the "log as backup" baselines
 * (Base, FWB, MorLog).
 *
 * These schemes persist undo+redo records during execution and a
 * commit marker at Tx_end. Recovery replays the redo data of committed
 * transactions in log order and revokes uncommitted transactions with
 * their undo data in reverse log order.
 */

#ifndef SILO_LOG_WAL_RECOVERY_HH
#define SILO_LOG_WAL_RECOVERY_HH

#include "sim/log_region.hh"
#include "sim/word_store.hh"

namespace silo::log
{

/**
 * Recover @p media from the live undo+redo records of @p threads
 * threads in @p logs, then truncate the log.
 */
void walRecover(LogRegionStore &logs, unsigned threads,
                WordStore &media);

} // namespace silo::log

#endif // SILO_LOG_WAL_RECOVERY_HH
