/**
 * @file
 * The hardware-logging scheme interface.
 *
 * A scheme plugs into the memory system at the points the paper's
 * designs differ: transaction boundaries, completed stores (where the
 * log generator captures old+new data), commit gating, and the two
 * rare cases — crash (battery-backed selective flush) and recovery.
 *
 * Concrete schemes: BaseScheme, FwbScheme, MorLogScheme, LadScheme
 * (§VI-A's comparison points) and SiloScheme (§III).
 */

#ifndef SILO_LOG_LOGGING_SCHEME_HH
#define SILO_LOG_LOGGING_SCHEME_HH

#include <functional>
#include <map>
#include <memory>
#include <ostream>

#include "mc/mc_router.hh"
#include "mem/hierarchy.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/log_region.hh"
#include "sim/persist_event_sink.hh"
#include "sim/tracer.hh"
#include "sim/word_store.hh"

namespace silo::log
{

/** Everything a scheme may touch, handed to it at construction. */
struct SchemeContext
{
    EventQueue &eq;
    const SimConfig &cfg;
    mc::McRouter &mc;
    mem::CacheHierarchy &hierarchy;
    LogRegionStore &logs;
    nvm::PmDevice &pm;
    /** Architectural value of a word (the replay engine's view). */
    std::function<Word(Addr)> valueOf;
    /** Write an architectural word (software-logging schemes store
     *  log content through the cache like ordinary data). */
    std::function<void(Addr, Word)> setValue;
    /** Persistency-event sink (the checker), or nullptr when
     *  SimConfig::checker is off. Schemes report battery/ADR-structure
     *  state through it (src/check invariant 1's on-chip coverage
     *  sources); the abstract interface keeps the scheme layer below
     *  src/check in the module DAG (DESIGN.md §4g). */
    PersistEventSink *checker = nullptr;
};

/** Common per-scheme statistics. */
struct SchemeStats
{
    stats::Scalar logWrites{"log_writes",
        "log records sent to the PM log region"};
    stats::Scalar logBytes{"log_bytes",
        "bytes of log records sent to the PM log region"};
    stats::Scalar commitStallCycles{"commit_stall_cycles",
        "cycles transactions waited at Tx_end"};
    stats::Scalar storeStallCycles{"store_stall_cycles",
        "cycles stores waited on the scheme"};
    stats::Scalar crashFlushBytes{"crash_flush_bytes",
        "bytes flushed by battery on a crash"};

    /** All of the above, for the structured stats export. */
    stats::StatGroup group{"scheme"};

    SchemeStats()
    {
        group.addScalar(logWrites);
        group.addScalar(logBytes);
        group.addScalar(commitStallCycles);
        group.addScalar(storeStallCycles);
        group.addScalar(crashFlushBytes);
    }
};

/** Abstract atomic-durability mechanism. */
class LoggingScheme
{
  public:
    explicit LoggingScheme(SchemeContext ctx) : _ctx(std::move(ctx)) {}
    virtual ~LoggingScheme() = default;

    /** Display name matching the paper's figures. */
    virtual const char *name() const = 0;

    /** A core executed Tx_begin. */
    virtual void txBegin(unsigned core, std::uint16_t txid)
    {
        (void)core;
        (void)txid;
    }

    /**
     * A store completed in the core's L1D. The log generator sees the
     * in-flight new data and the old data read during tag match
     * (§III-B). Call @p done when the core may proceed — schemes with
     * per-store persist ordering or full buffers defer it.
     */
    virtual void
    store(unsigned core, Addr addr, Word old_val, Word new_val,
          std::function<void()> done)
    {
        (void)core;
        (void)addr;
        (void)old_val;
        (void)new_val;
        done();
    }

    /**
     * A core executed Tx_end. Call @p done when the scheme's commit
     * requirements hold (the transaction is then durable).
     */
    virtual void txEnd(unsigned core, std::function<void()> done)
    {
        (void)core;
        done();
    }

    /**
     * System crash: the battery-backed flush. Runs after the event
     * loop stops and before the ADR drain; may write log records
     * directly into the log region (battery power, no timing).
     *
     * The default completes the in-flight log writes: a record handed
     * to writeLogWithRetry() lives in the memory controller's
     * ADR-domain log path while it waits for a WPQ slot, so it is
     * durable even if the crash interleaves with the retries.
     * Overrides must call flushInFlightLogs().
     */
    virtual void crash() { flushInFlightLogs(); }

    /**
     * @return true if @p core 's latest transaction must be treated as
     * committed by recovery (used by the crash oracle when a commit
     * was in flight at the crash instant).
     */
    virtual bool lastTxCommittedAtCrash(unsigned core) const
    {
        (void)core;
        return false;
    }

    /** Post-crash recovery: restore atomic durability in @p media. */
    virtual void recover(WordStore &media) { (void)media; }

    /**
     * @return true if a clean shutdown must DROP @p line instead of
     * writing it back: the line carries data of a still-open
     * transaction whose only revocation mechanism is discard (LAD's
     * held lines). A trace can end inside a transaction (litmus
     * `tx abort`), and flushing such a line at drainToMedia() would
     * push an unrevocable uncommitted value into the persistent
     * domain. Schemes whose uncommitted lines always have durable
     * undo coverage keep the default: write-back is safe, recovery
     * could always revoke it.
     */
    virtual bool dropAtShutdown(Addr line) const
    {
        (void)line;
        return false;
    }

    /** Virtual so decorators (check::CheckedScheme) can forward. */
    virtual const SchemeStats &schemeStats() const { return _stats; }

    /**
     * Total entries currently buffered on-chip by the scheme (Silo /
     * MorLog log buffers); 0 for schemes without one. Sampled into the
     * "log_buffer_fill" counter track.
     */
    virtual unsigned logBufferFill() const { return 0; }

    /**
     * Scheme-specific statistics beyond SchemeStats (e.g. Silo's log
     * reduction counters), or nullptr. Registered under "scheme_extra"
     * in the stats export.
     */
    virtual const stats::StatGroup *extraStatGroup() const
    {
        return nullptr;
    }

  protected:
    /**
     * Persist @p record via the MC, retrying while the WPQ is full.
     * The record is tracked until accepted so a crash mid-retry still
     * finds it (it sits in the MC's ADR-domain log path).
     */
    void
    writeLogWithRetry(unsigned tid, LogRecord record,
                      std::function<void()> done)
    {
        Addr addr = _ctx.logs.allocate(tid, record.sizeBytes());
        ++_stats.logWrites;
        _stats.logBytes += record.sizeBytes();
        _inFlightLogs[addr] = record;
        noteInFlightLog(addr, record);
        tryPersist(addr, record, _ctx.eq.now(), std::move(done));
    }

    /**
     * Tell the checker a record entered the MC's ADR log path (it is
     * durable from this point even though no WPQ slot accepted it yet).
     */
    void
    noteInFlightLog(Addr addr, const LogRecord &record)
    {
        if (_ctx.checker)
            _ctx.checker->onLogInFlight(addr, record);
    }

    /** Crash path: make every in-flight log record durable. */
    void
    flushInFlightLogs()
    {
        for (const auto &[addr, record] : _inFlightLogs)
            _ctx.logs.persist(addr, record);
        _inFlightLogs.clear();
    }

    SchemeContext _ctx;
    SchemeStats _stats;
    /** Allocated-but-unaccepted records (durable in the MC log path). */
    std::map<Addr, LogRecord> _inFlightLogs;

  private:
    void
    tryPersist(Addr addr, LogRecord record, Tick started,
               std::function<void()> done)
    {
        if (_ctx.mc.tryWriteLog(addr, record)) {
            if (auto *tr = _ctx.eq.tracer()) {
                tr->completeSpan(tr->track("scheme", name()),
                                 "log-persist", started, _ctx.eq.now());
            }
            _inFlightLogs.erase(addr);
            done();
            return;
        }
        _ctx.mc.requestWriteSlot(
            addr, [this, addr, record, started,
                   done = std::move(done)]() mutable {
                tryPersist(addr, record, started, std::move(done));
            });
    }
};

/** No durability mechanism: raw memory system (calibration runs). */
class NullScheme : public LoggingScheme
{
  public:
    using LoggingScheme::LoggingScheme;
    const char *name() const override { return "None"; }
};

/** Instantiate the scheme selected by @p ctx.cfg.scheme. */
std::unique_ptr<LoggingScheme> makeScheme(SchemeContext ctx);

} // namespace silo::log

#endif // SILO_LOG_LOGGING_SCHEME_HH
