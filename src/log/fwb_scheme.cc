#include "log/fwb_scheme.hh"

#include <memory>
#include <vector>
#include "log/wal_recovery.hh"

namespace silo::log
{

FwbScheme::FwbScheme(SchemeContext ctx)
    : LoggingScheme(std::move(ctx)), _cores(_ctx.cfg.numCores)
{
    scheduleWalk();
}

void
FwbScheme::scheduleWalk()
{
    _ctx.eq.scheduleAfter(_ctx.cfg.fwbIntervalCycles, [this] {
        walk();
        scheduleWalk();
    }, EventQueue::prioDefault, prof::Tag::LogScheme);
}

void
FwbScheme::walk()
{
    // Force-write-back every dirty line, paced one line at a time so
    // the walker shares the WPQ with demand traffic instead of
    // flooding it in one burst. Undo data in the logs keeps atomicity
    // even when uncommitted lines reach PM.
    auto lines = std::make_shared<std::vector<Addr>>(
        _ctx.hierarchy.allDirtyLines());
    auto next = std::make_shared<std::size_t>(0);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, lines, next, step] {
        if (*next >= lines->size())
            return;
        Addr line = (*lines)[(*next)++];
        ++_walkerWritebacks;
        unsigned owner = addr_map::inDataRegion(line)
                             ? addr_map::dataArenaOwner(line) : 0;
        _ctx.hierarchy.flushLine(owner, line, false, [this, step] {
            _ctx.eq.scheduleAfter(4, [step] { (*step)(); },
                                  EventQueue::prioDefault,
                                  prof::Tag::LogScheme);
        });
    };
    (*step)();
}

void
FwbScheme::txBegin(unsigned core, std::uint16_t txid)
{
    _cores[core].txid = txid;
    _cores[core].lastCommitted = false;
}

void
FwbScheme::logAccepted(unsigned core)
{
    CoreState &cs = _cores[core];
    --cs.postedLogs;
    if (!cs.stalledStores.empty() && cs.postedLogs < maxPostedLogs) {
        auto done = std::move(cs.stalledStores.front());
        cs.stalledStores.pop_front();
        done();
    }
    if (cs.postedLogs == 0 && cs.pendingCommit)
        finishCommit(core);
}

void
FwbScheme::store(unsigned core, Addr addr, Word old_val, Word new_val,
                 std::function<void()> done)
{
    CoreState &cs = _cores[core];
    LogRecord rec;
    rec.kind = LogRecord::Kind::UndoRedo;
    rec.tid = std::uint8_t(core);
    rec.txid = cs.txid;
    rec.dataAddr = addr;
    rec.oldData = old_val;
    rec.newData = new_val;

    // The log write is posted: the queue enforces log-before-data
    // ordering, so the store retires immediately unless the posted
    // queue is full.
    ++cs.postedLogs;
    writeLogWithRetry(core, rec, [this, core] { logAccepted(core); });

    if (cs.postedLogs <= maxPostedLogs)
        done();
    else
        cs.stalledStores.push_back(std::move(done));
}

void
FwbScheme::finishCommit(unsigned core)
{
    CoreState &cs = _cores[core];
    LogRecord marker;
    marker.kind = LogRecord::Kind::Commit;
    marker.tid = std::uint8_t(core);
    marker.txid = cs.txid;
    auto done = std::move(cs.pendingCommit);
    cs.pendingCommit = nullptr;
    writeLogWithRetry(core, marker, [this, core,
                                     done = std::move(done)] {
        _cores[core].lastCommitted = true;
        done();
    });
}

void
FwbScheme::txEnd(unsigned core, std::function<void()> done)
{
    // Commit requires every posted log of the transaction to be
    // durable, then the marker.
    CoreState &cs = _cores[core];
    cs.pendingCommit = std::move(done);
    if (cs.postedLogs == 0)
        finishCommit(core);
}

bool
FwbScheme::lastTxCommittedAtCrash(unsigned core) const
{
    return _cores[core].lastCommitted;
}

void
FwbScheme::recover(WordStore &media)
{
    walRecover(_ctx.logs, _ctx.cfg.numCores, media);
}

} // namespace silo::log
