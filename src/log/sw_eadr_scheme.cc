#include "log/sw_eadr_scheme.hh"

#include "log/wal_recovery.hh"

namespace silo::log
{

SwEadrScheme::SwEadrScheme(SchemeContext ctx)
    : LoggingScheme(std::move(ctx)), _cores(_ctx.cfg.numCores)
{
    _stats.crashFlushBytes.reset();
}

void
SwEadrScheme::txBegin(unsigned core, std::uint16_t txid)
{
    _cores[core].txid = txid;
    _cores[core].lastCommitted = false;
}

void
SwEadrScheme::writeLogThroughCache(unsigned core, LogRecord record,
                                   std::function<void()> done)
{
    Addr rec_addr = _ctx.logs.allocate(core, record.sizeBytes());
    ++_stats.logWrites;
    _stats.logBytes += record.sizeBytes();

    // The persistent cache is the durability point: the record is
    // durable the moment its store completes.
    _ctx.logs.persist(rec_addr, record);

    // Fill the log line's words with distinct content so the eventual
    // write-back programs real bits in the media (traffic accounting).
    Addr first = wordAlign(rec_addr);
    Addr last = wordAlign(rec_addr + record.sizeBytes() - 1);
    for (Addr a = first; a <= last; a += wordBytes)
        _ctx.setValue(a, _contentStamp++);

    // One cache write per entry: this is the pollution the paper
    // describes — appended logs always land in fresh lines.
    ++_logCacheWrites;
    _ctx.hierarchy.access(core, rec_addr, true, std::move(done));
}

void
SwEadrScheme::store(unsigned core, Addr addr, Word old_val,
                    Word new_val, std::function<void()> done)
{
    CoreState &cs = _cores[core];
    LogRecord rec;
    rec.kind = LogRecord::Kind::UndoRedo;
    rec.tid = std::uint8_t(core);
    rec.txid = cs.txid;
    rec.dataAddr = addr;
    rec.oldData = old_val;
    rec.newData = new_val;

    // Software logging: the log store is program code on the critical
    // path (Fig. 1a without the clwb/sfence).
    writeLogThroughCache(core, rec, std::move(done));
}

void
SwEadrScheme::txEnd(unsigned core, std::function<void()> done)
{
    // Logs and data are already persistent in the eADR cache; the
    // commit record makes the transaction's outcome durable.
    CoreState &cs = _cores[core];
    LogRecord marker;
    marker.kind = LogRecord::Kind::Commit;
    marker.tid = std::uint8_t(core);
    marker.txid = cs.txid;
    writeLogThroughCache(core, marker, std::move(done));
    // The marker became durable in the persistent cache the moment it
    // was written (inside writeLogThroughCache): if a crash lands
    // before done() fires, recovery will — correctly — treat the
    // transaction as committed.
    cs.lastCommitted = true;
}

void
SwEadrScheme::crash()
{
    flushInFlightLogs();
    // eADR: the platform battery flushes every dirty cacheline to PM
    // (Table IV's eADR flush). Data lines carry their architectural
    // values; log lines' records are already in the log region store.
    for (Addr line : _ctx.hierarchy.allDirtyLines()) {
        _stats.crashFlushBytes += lineBytes;
        if (!addr_map::inDataRegion(line))
            continue;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            Addr a = line + Addr(w) * wordBytes;
            _ctx.pm.media().store(a, _ctx.valueOf(a));
        }
    }
}

bool
SwEadrScheme::lastTxCommittedAtCrash(unsigned core) const
{
    return _cores[core].lastCommitted;
}

void
SwEadrScheme::recover(WordStore &media)
{
    walRecover(_ctx.logs, _ctx.cfg.numCores, media);
}

} // namespace silo::log
