#include "log/lad_scheme.hh"

#include <algorithm>

namespace silo::log
{

namespace
{

/** Hold back this many MC entries of headroom before slow mode. */
constexpr unsigned heldHeadroom = 8;

} // namespace

LadScheme::LadScheme(SchemeContext ctx)
    : LoggingScheme(std::move(ctx)), _cores(_ctx.cfg.numCores)
{
    _ladStats.addScalar(_fallbacks);
    _ladStats.addScalar(_phase1Lines);
    // Dirty L3 victims of uncommitted transactions are buffered in the
    // MC as held entries instead of draining to PM.
    _ctx.hierarchy.setEvictionHeldPredicate([this](Addr line) {
        // An eviction is about to claim an MC slot: relieve pressure
        // first if the held population is near capacity.
        maybeRelieve();
        return lineIsUncommitted(line);
    });
    _ctx.mc.setEvictionObserver([this](Addr) { maybeRelieve(); });
}

int
LadScheme::ownerOf(Addr line) const
{
    if (!addr_map::inDataRegion(line))
        return -1;
    unsigned owner = addr_map::dataArenaOwner(line);
    return owner < _cores.size() ? int(owner) : -1;
}

bool
LadScheme::lineIsUncommitted(Addr line) const
{
    int owner = ownerOf(line);
    if (owner < 0)
        return false;
    const CoreState &cs = _cores[owner];
    return cs.open && cs.txLines.count(line) &&
           (!cs.undoLogged.count(line) || cs.relieving.count(line));
}

void
LadScheme::txBegin(unsigned core, std::uint16_t txid)
{
    CoreState &cs = _cores[core];
    cs.txid = txid;
    cs.open = true;
    cs.lastCommitted = false;
    cs.txLines.clear();
    cs.undoImage.clear();
    cs.undoLogged.clear();
    cs.relieving.clear();
}

void
LadScheme::store(unsigned core, Addr addr, Word old_val, Word new_val,
                 std::function<void()> done)
{
    (void)new_val;
    CoreState &cs = _cores[core];
    Addr line = lineAlign(addr);
    cs.txLines.insert(line);
    bool first = cs.undoImage.emplace(addr, old_val).second;

    // A first store into a line that already went through slow mode
    // brings a word the relieve pass never logged: the line is
    // drainable, so an eviction would put the word's uncommitted value
    // on media with nothing to revoke it. Persist its undo record now
    // (durable from the ADR log path on). Lines still mid-relieve are
    // covered by the relieve callback, which walks undoImage later.
    if (first && cs.undoLogged.count(line) && !cs.relieving.count(line)) {
        LogRecord rec;
        rec.kind = LogRecord::Kind::Undo;
        rec.tid = std::uint8_t(core);
        rec.txid = cs.txid;
        rec.dataAddr = addr;
        rec.oldData = old_val;
        writeLogWithRetry(core, rec, [] {});
    }
    done();
}

void
LadScheme::relieveLine(unsigned core, Addr line)
{
    CoreState &cs = _cores[core];
    if (cs.undoLogged.count(line))
        return;
    cs.undoLogged.insert(line);
    cs.relieving.insert(line);
    ++_fallbacks;
    Tick relieve_start = _ctx.eq.now();

    // Slow mode: read the line's old data from PM, then persist undo
    // records for the words this transaction modified, then let the
    // held entry drain. Until the records are handed to the MC's ADR
    // log path the line stays in `relieving`, so evictions racing with
    // the read are still buffered as held entries.
    _ctx.mc.read(line, [this, core, line, relieve_start] {
        CoreState &cs2 = _cores[core];
        std::vector<std::pair<Addr, Word>> words;
        for (const auto &[addr, old_val] : cs2.undoImage) {
            if (lineAlign(addr) == line)
                words.emplace_back(addr, old_val);
        }
        if (words.empty()) {
            cs2.relieving.erase(line);
            if (auto *tr = _ctx.eq.tracer()) {
                tr->completeSpan(tr->track("scheme", "lad"), "relieve",
                                 relieve_start, _ctx.eq.now());
            }
            _ctx.mc.releaseHeld(line);
            return;
        }
        auto remaining = std::make_shared<unsigned>(
            unsigned(words.size()));
        for (const auto &[addr, old_val] : words) {
            LogRecord rec;
            rec.kind = LogRecord::Kind::Undo;
            rec.tid = std::uint8_t(core);
            rec.txid = cs2.txid;
            rec.dataAddr = addr;
            rec.oldData = old_val;
            writeLogWithRetry(core, rec,
                              [this, line, remaining, relieve_start] {
                if (--*remaining == 0) {
                    if (auto *tr = _ctx.eq.tracer()) {
                        tr->completeSpan(tr->track("scheme", "lad"),
                                         "relieve", relieve_start,
                                         _ctx.eq.now());
                    }
                    _ctx.mc.releaseHeld(line);
                }
            });
        }
        // Records are in the ADR log path now (durable): evictions of
        // the line may drain.
        cs2.relieving.erase(line);
    });
}

void
LadScheme::maybeRelieve()
{
    if (_ctx.mc.heldEntries() + heldHeadroom < _ctx.cfg.ladMcEntries)
        return;
    // Push the busiest open transaction's oldest line to slow mode.
    for (unsigned core = 0; core < _cores.size(); ++core) {
        CoreState &cs = _cores[core];
        if (!cs.open)
            continue;
        for (Addr line : cs.txLines) {
            if (!cs.undoLogged.count(line)) {
                relieveLine(core, line);
                return;
            }
        }
    }
}

void
LadScheme::commitPhase1(unsigned core, std::vector<Addr> lines,
                        std::size_t next, std::function<void()> done)
{
    if (next >= lines.size()) {
        // On-chip pipeline delay for the last line to reach the MC.
        Cycles pipe = _ctx.cfg.l2.latency + _ctx.cfg.l3.latency;
        _ctx.eq.scheduleAfter(pipe, [this, core,
                                     done = std::move(done)]() mutable {
            commitPhase2(core, std::move(done));
        }, EventQueue::prioDefault, prof::Tag::LogScheme);
        return;
    }
    Addr line = lines[next];
    if (!_ctx.hierarchy.isDirty(core, line)) {
        commitPhase1(core, std::move(lines), next + 1, std::move(done));
        return;
    }
    ++_phase1Lines;
    maybeRelieve();
    bool held = !_cores[core].undoLogged.count(line) ||
                _cores[core].relieving.count(line);
    _ctx.hierarchy.flushLine(core, line, held,
                             [this, core, lines = std::move(lines),
                              next, done = std::move(done)]() mutable {
        // The L1 -> LLC -> MC pipeline issues one line per interval
        // (LAD's commit waits on this path, §V point 1).
        _ctx.eq.scheduleAfter(_ctx.cfg.ladFlushPerLineCycles,
                              [this, core, lines = std::move(lines),
                               next, done = std::move(done)]() mutable {
            commitPhase1(core, std::move(lines), next + 1,
                         std::move(done));
        }, EventQueue::prioDefault, prof::Tag::LogScheme);
    });
}

void
LadScheme::commitPhase2(unsigned core, std::function<void()> done)
{
    CoreState &cs = _cores[core];
    if (_ctx.cfg.mutation != MutationKind::DropHeldRelease) {
        for (Addr line : cs.txLines)
            _ctx.mc.releaseHeld(line);
    }
    // Undo logs of slow-mode lines are obsolete after commit.
    _ctx.logs.truncate(core);
    cs.open = false;
    cs.lastCommitted = true;
    cs.txLines.clear();
    cs.undoImage.clear();
    cs.undoLogged.clear();
    cs.relieving.clear();
    done();
}

void
LadScheme::txEnd(unsigned core, std::function<void()> done)
{
    CoreState &cs = _cores[core];
    std::vector<Addr> lines(cs.txLines.begin(), cs.txLines.end());
    commitPhase1(core, std::move(lines), 0, std::move(done));
}

void
LadScheme::crash()
{
    // Held (uncommitted) MC entries are dropped by the ADR drain. The
    // only state to complete is slow-mode undo records still waiting
    // for a WPQ slot inside the MC's ADR log path.
    flushInFlightLogs();
}

bool
LadScheme::lastTxCommittedAtCrash(unsigned core) const
{
    return _cores[core].lastCommitted;
}

void
LadScheme::recover(WordStore &media)
{
    // Only slow-mode undo records can be live (commit truncates them):
    // revoke the partial updates of uncommitted transactions.
    for (unsigned t = 0; t < _ctx.cfg.numCores; ++t) {
        auto records = _ctx.logs.liveRecords(t);
        for (auto it = records.rbegin(); it != records.rend(); ++it) {
            const LogRecord &rec = it->second;
            if (rec.kind == LogRecord::Kind::Undo)
                media.store(rec.dataAddr, rec.oldData);
        }
        _ctx.logs.truncate(t);
    }
}

} // namespace silo::log
