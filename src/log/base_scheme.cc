#include "log/base_scheme.hh"

#include "log/wal_recovery.hh"

namespace silo::log
{

BaseScheme::BaseScheme(SchemeContext ctx)
    : LoggingScheme(std::move(ctx)), _cores(_ctx.cfg.numCores)
{
}

void
BaseScheme::txBegin(unsigned core, std::uint16_t txid)
{
    _cores[core].txid = txid;
    _cores[core].lastCommitted = false;
}

void
BaseScheme::store(unsigned core, Addr addr, Word old_val, Word new_val,
                  std::function<void()> done)
{
    CoreState &cs = _cores[core];
    ++cs.outstanding;

    LogRecord rec;
    rec.kind = LogRecord::Kind::UndoRedo;
    rec.tid = std::uint8_t(core);
    rec.txid = cs.txid;
    rec.dataAddr = addr;
    rec.oldData = old_val;
    rec.newData = new_val;

    // Log first, then force the updated cacheline to PM (the per-write
    // ordering of Fig. 3's undo+redo baseline).
    switch (_ctx.cfg.mutation) {
      case MutationKind::DropUndoLog:
        // Seeded bug: data reaches PM with no undo record at all.
        _ctx.hierarchy.flushLine(core, lineAlign(addr), false,
                                 [this, core] { opFinished(core); });
        break;
      case MutationKind::ReorderLogData:
        // Seeded bug: the flush races ahead of its log record.
        _ctx.hierarchy.flushLine(core, lineAlign(addr), false, [] {});
        writeLogWithRetry(core, rec,
                          [this, core] { opFinished(core); });
        break;
      default:
        writeLogWithRetry(core, rec, [this, core, addr] {
            _ctx.hierarchy.flushLine(core, lineAlign(addr), false,
                                     [this, core] { opFinished(core); });
        });
        break;
    }

    if (cs.outstanding <= maxOutstanding)
        done();
    else
        cs.stalledStores.push_back(std::move(done));
}

void
BaseScheme::opFinished(unsigned core)
{
    CoreState &cs = _cores[core];
    --cs.outstanding;
    if (!cs.stalledStores.empty() && cs.outstanding < maxOutstanding) {
        auto done = std::move(cs.stalledStores.front());
        cs.stalledStores.pop_front();
        done();
    }
    if (cs.outstanding == 0 && cs.pendingCommit)
        finishCommit(core);
}

void
BaseScheme::finishCommit(unsigned core)
{
    CoreState &cs = _cores[core];
    LogRecord marker;
    marker.kind = LogRecord::Kind::Commit;
    marker.tid = std::uint8_t(core);
    marker.txid = cs.txid;

    auto done = std::move(cs.pendingCommit);
    cs.pendingCommit = nullptr;
    if (_ctx.cfg.mutation == MutationKind::SkipCommitMarker) {
        // Seeded bug: Tx_end completes without a durable commit marker.
        _ctx.logs.truncate(core);
        cs.lastCommitted = true;
        done();
        return;
    }
    writeLogWithRetry(core, marker, [this, core,
                                     done = std::move(done)] {
        // All data and logs are durable: the log can truncate (a
        // head-pointer update, no PM write).
        _ctx.logs.truncate(core);
        _cores[core].lastCommitted = true;
        done();
    });
}

void
BaseScheme::txEnd(unsigned core, std::function<void()> done)
{
    CoreState &cs = _cores[core];
    cs.pendingCommit = std::move(done);
    if (cs.outstanding == 0)
        finishCommit(core);
}

bool
BaseScheme::lastTxCommittedAtCrash(unsigned core) const
{
    return _cores[core].lastCommitted;
}

void
BaseScheme::recover(WordStore &media)
{
    walRecover(_ctx.logs, _ctx.cfg.numCores, media);
}

} // namespace silo::log
