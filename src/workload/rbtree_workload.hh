/**
 * @file
 * RBtree micro-benchmark: randomly insert elements in a red-black tree
 * (Table III).
 *
 * A textbook red-black tree with parent pointers, stored in PM one node
 * per cacheline. Insert fix-up performs recolorings and rotations whose
 * scattered single-word stores exercise Silo's log merging on revisited
 * words (e.g., a node recolored twice on one path).
 */

#ifndef SILO_WORKLOAD_RBTREE_WORKLOAD_HH
#define SILO_WORKLOAD_RBTREE_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** Random inserts into a PM-resident red-black tree. */
class RBtreeWorkload : public Workload
{
  public:
    explicit RBtreeWorkload(std::uint64_t key_space = 1u << 20)
        : _keySpace(key_space)
    {}

    const char *name() const override { return "RBtree"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Look up @p key (test hook). @return value or 0. */
    Word lookup(MemClient &mem, std::uint64_t key) const;

    /**
     * Verify red-black invariants (test hook).
     * @return black height, or 0 if a violation was found.
     */
    unsigned validate(MemClient &mem) const;

  private:
    // Node layout, in words:
    //   [0] key  [1] value  [2] color (1 = red)  [3] parent
    //   [4] left [5] right
    static constexpr unsigned offKey = 0;
    static constexpr unsigned offVal = 1;
    static constexpr unsigned offColor = 2;
    static constexpr unsigned offParent = 3;
    static constexpr unsigned offLeft = 4;
    static constexpr unsigned offRight = 5;

    static Addr field(Addr n, unsigned w) { return n + w * wordBytes; }

    bool isRed(MemClient &mem, Addr n) const
    {
        return n && mem.load(field(n, offColor)) != 0;
    }

    void insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                Word value);
    void fixInsert(MemClient &mem, Addr node);
    void rotateLeft(MemClient &mem, Addr node);
    void rotateRight(MemClient &mem, Addr node);
    /** Replace @p old_child of @p parent (0 = root) with @p new_child. */
    void replaceChild(MemClient &mem, Addr parent, Addr old_child,
                      Addr new_child);

    unsigned validateNode(MemClient &mem, Addr node, bool &ok) const;

    std::uint64_t _keySpace;
    Addr _rootPtr = 0;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_RBTREE_WORKLOAD_HH
