#include "workload/workload.hh"

#include "sim/logging.hh"
#include "workload/array_workload.hh"
#include "workload/bank_workload.hh"
#include "workload/btree_workload.hh"
#include "workload/ctrie_workload.hh"
#include "workload/hash_workload.hh"
#include "workload/litmus.hh"
#include "workload/queue_workload.hh"
#include "workload/rbtree_workload.hh"
#include "workload/rtree_workload.hh"
#include "workload/tatp_workload.hh"
#include "workload/tpcc_workload.hh"
#include "workload/ycsb_workload.hh"

namespace silo::workload
{

const char *
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Array: return "Array";
      case WorkloadKind::Btree: return "Btree";
      case WorkloadKind::Hash: return "Hash";
      case WorkloadKind::Queue: return "Queue";
      case WorkloadKind::RBtree: return "RBtree";
      case WorkloadKind::Tpcc: return "TPCC";
      case WorkloadKind::Ycsb: return "YCSB";
      case WorkloadKind::Rtree: return "Rtree";
      case WorkloadKind::Ctrie: return "Ctrie";
      case WorkloadKind::Tatp: return "TATP";
      case WorkloadKind::Bank: return "Bank";
      case WorkloadKind::Litmus: return "Litmus";
    }
    panic("unknown workload kind");
}

WorkloadKind
workloadFromName(const std::string &name)
{
    for (WorkloadKind kind : allWorkloads) {
        if (name == workloadName(kind))
            return kind;
    }
    // Not part of allWorkloads (needs a program attached), but still
    // round-trips through the sweep labels and results JSON.
    if (name == workloadName(WorkloadKind::Litmus))
        return WorkloadKind::Litmus;
    fatal("unknown workload: " + name);
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, const WorkloadOptions &opts)
{
    switch (kind) {
      case WorkloadKind::Array:
        return std::make_unique<ArrayWorkload>();
      case WorkloadKind::Btree:
        return std::make_unique<BtreeWorkload>();
      case WorkloadKind::Hash:
        return std::make_unique<HashWorkload>();
      case WorkloadKind::Queue:
        return std::make_unique<QueueWorkload>();
      case WorkloadKind::RBtree:
        return std::make_unique<RBtreeWorkload>();
      case WorkloadKind::Tpcc:
        return std::make_unique<TpccWorkload>(opts.tpccAllTxTypes);
      case WorkloadKind::Ycsb:
        return std::make_unique<YcsbWorkload>();
      case WorkloadKind::Rtree:
        return std::make_unique<RtreeWorkload>();
      case WorkloadKind::Ctrie:
        return std::make_unique<CtrieWorkload>();
      case WorkloadKind::Tatp:
        return std::make_unique<TatpWorkload>();
      case WorkloadKind::Bank:
        return std::make_unique<BankWorkload>();
      case WorkloadKind::Litmus:
        if (opts.litmus.empty())
            fatal("Litmus workload needs WorkloadOptions::litmus");
        return std::make_unique<LitmusWorkload>(
            parseLitmus(opts.litmus).program);
    }
    panic("unknown workload kind");
}

} // namespace silo::workload
