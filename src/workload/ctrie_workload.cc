#include "workload/ctrie_workload.hh"

namespace silo::workload
{

namespace
{

/** Highest bit position where a and b differ (0 = MSB of 64). */
unsigned
critBit(std::uint64_t a, std::uint64_t b)
{
    return unsigned(__builtin_clzll(a ^ b));
}

/** Extract bit @p idx (0 = MSB). */
unsigned
bitAt(std::uint64_t key, unsigned idx)
{
    return unsigned((key >> (63 - idx)) & 1);
}

} // namespace

void
CtrieWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    _rootPtr = heap.alloc(wordBytes, lineBytes);
    for (unsigned i = 0; i < 4096; ++i) {
        std::uint64_t key = rng.below(_keySpace) + 1;
        Word value = rng.next() | 1;
        insert(mem, heap, key, value);
    }
}

void
CtrieWorkload::transaction(MemClient &mem, PmHeap &heap, Rng &rng)
{
    std::uint64_t key = rng.below(_keySpace) + 1;
    Word value = rng.next() | 1;
    insert(mem, heap, key, value);
}

void
CtrieWorkload::insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                      Word value)
{
    Word root = mem.load(_rootPtr);
    if (!root) {
        Addr leaf = heap.alloc(2 * wordBytes, 16);
        mem.store(leaf, key);
        mem.store(leaf + wordBytes, value);
        mem.store(_rootPtr, leaf);
        return;
    }

    // Walk to the closest leaf.
    Word cur = root;
    while (isInternal(cur)) {
        Addr n = untag(cur);
        unsigned idx = unsigned(mem.load(n));
        cur = mem.load(n + (1 + bitAt(key, idx)) * wordBytes);
    }
    Addr leaf = untag(cur);
    std::uint64_t leaf_key = mem.load(leaf);
    if (leaf_key == key) {
        mem.store(leaf + wordBytes, value);
        return;
    }

    // Allocate the new leaf and the internal node that splits on the
    // first differing bit.
    unsigned new_bit = critBit(key, leaf_key);
    Addr new_leaf = heap.alloc(2 * wordBytes, 16);
    mem.store(new_leaf, key);
    mem.store(new_leaf + wordBytes, value);

    Addr inner = heap.alloc(3 * wordBytes, 32);
    mem.store(inner, new_bit);

    // Descend again to find the edge where the new node belongs: the
    // first edge whose crit-bit index exceeds new_bit.
    Addr parent_slot = _rootPtr;
    cur = mem.load(parent_slot);
    while (isInternal(cur)) {
        Addr n = untag(cur);
        unsigned idx = unsigned(mem.load(n));
        if (idx > new_bit)
            break;
        parent_slot = n + (1 + bitAt(key, idx)) * wordBytes;
        cur = mem.load(parent_slot);
    }

    unsigned side = bitAt(key, new_bit);
    mem.store(inner + (1 + side) * wordBytes, new_leaf);
    mem.store(inner + (1 + (side ^ 1)) * wordBytes, cur);
    mem.store(parent_slot, inner | internalTag);
}

Word
CtrieWorkload::lookup(MemClient &mem, std::uint64_t key) const
{
    Word cur = mem.load(_rootPtr);
    if (!cur)
        return 0;
    while (isInternal(cur)) {
        Addr n = untag(cur);
        unsigned idx = unsigned(mem.load(n));
        cur = mem.load(n + (1 + bitAt(key, idx)) * wordBytes);
    }
    Addr leaf = untag(cur);
    return mem.load(leaf) == key ? mem.load(leaf + wordBytes) : 0;
}

} // namespace silo::workload
