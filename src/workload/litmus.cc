#include "workload/litmus.hh"

#include <map>
#include <memory>
#include <sstream>

#include "sim/address_map.hh"
#include "sim/logging.hh"
#include "workload/func_mem.hh"
#include "workload/trace_recorder.hh"

namespace silo::workload
{

std::size_t
LitmusProgram::txCount() const
{
    std::size_t n = 0;
    for (const LitmusThread &t : threads)
        n += t.txs.size();
    return n;
}

std::size_t
LitmusProgram::opCount() const
{
    std::size_t n = 0;
    for (const LitmusThread &t : threads)
        for (const LitmusTx &tx : t.txs)
            n += tx.ops.size();
    return n;
}

void
validateLitmus(const LitmusProgram &program)
{
    if (program.threads.empty())
        fatal("litmus program has no threads");
    if (program.threads.size() > 255)
        fatal("litmus program exceeds 255 threads");
    for (std::size_t t = 0; t < program.threads.size(); ++t) {
        const LitmusThread &thread = program.threads[t];
        for (std::size_t i = 0; i < thread.txs.size(); ++i) {
            const LitmusTx &tx = thread.txs[i];
            if (!tx.commit && i + 1 != thread.txs.size())
                fatal("litmus thread " + std::to_string(t) +
                      ": `tx abort` must be the thread's last "
                      "transaction");
            for (const LitmusOp &op : tx.ops) {
                if (op.offset % wordBytes != 0)
                    fatal("litmus thread " + std::to_string(t) +
                          ": offset 0x" +
                          [&] {
                              std::ostringstream h;
                              h << std::hex << op.offset;
                              return h.str();
                          }() +
                          " is not word aligned");
                if (op.offset >= addr_map::dataArenaBytes)
                    fatal("litmus thread " + std::to_string(t) +
                          ": offset outside the per-thread data arena");
            }
        }
    }
}

std::string
serializeLitmus(
    const LitmusProgram &program,
    const std::vector<std::pair<std::string, std::string>> &meta)
{
    std::ostringstream os;
    os << "litmus v1\n";
    if (!program.name.empty())
        os << "name " << program.name << "\n";
    for (const auto &[key, value] : meta)
        os << key << " " << value << "\n";
    for (std::size_t t = 0; t < program.threads.size(); ++t) {
        os << "thread " << t << "\n";
        for (const LitmusTx &tx : program.threads[t].txs) {
            os << (tx.commit ? "tx" : "tx abort") << "\n";
            for (const LitmusOp &op : tx.ops) {
                if (op.kind == LitmusOp::Kind::Store) {
                    os << "store 0x" << std::hex << op.offset << std::dec
                       << " " << op.value << "\n";
                } else {
                    os << "load 0x" << std::hex << op.offset << std::dec
                       << "\n";
                }
            }
            os << "end\n";
        }
    }
    return os.str();
}

namespace
{

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) {
        if (tok[0] == '#')
            break;
        tokens.push_back(tok);
    }
    return tokens;
}

std::uint64_t
parseNumber(const std::string &tok, unsigned line_no)
{
    std::size_t used = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(tok, &used, 0);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != tok.size())
        fatal("litmus line " + std::to_string(line_no) + ": \"" + tok +
              "\" is not a number");
    return value;
}

[[noreturn]] void
parseError(unsigned line_no, const std::string &what)
{
    fatal("litmus line " + std::to_string(line_no) + ": " + what);
}

} // namespace

LitmusFile
parseLitmus(const std::string &text)
{
    LitmusFile out;
    out.program.name.clear();
    std::istringstream is(text);
    std::string line;
    unsigned line_no = 0;
    bool saw_header = false;
    bool in_threads = false;
    LitmusTx *open_tx = nullptr;

    while (std::getline(is, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::vector<std::string> tok = tokenize(line);
        if (tok.empty())
            continue;
        if (!saw_header) {
            if (tok.size() != 2 || tok[0] != "litmus" || tok[1] != "v1")
                parseError(line_no, "expected `litmus v1` header");
            saw_header = true;
            continue;
        }
        const std::string &kw = tok[0];
        if (kw == "thread") {
            if (open_tx)
                parseError(line_no, "`thread` inside an open tx");
            if (tok.size() != 2)
                parseError(line_no, "expected `thread <index>`");
            std::uint64_t index = parseNumber(tok[1], line_no);
            if (index != out.program.threads.size())
                parseError(line_no,
                           "thread indices must be dense and in order");
            out.program.threads.emplace_back();
            in_threads = true;
        } else if (kw == "tx") {
            if (!in_threads)
                parseError(line_no, "`tx` before any `thread`");
            if (open_tx)
                parseError(line_no, "`tx` inside an open tx");
            if (tok.size() > 2 || (tok.size() == 2 && tok[1] != "abort"))
                parseError(line_no, "expected `tx` or `tx abort`");
            out.program.threads.back().txs.emplace_back();
            open_tx = &out.program.threads.back().txs.back();
            open_tx->commit = tok.size() == 1;
        } else if (kw == "store") {
            if (!open_tx)
                parseError(line_no, "`store` outside a tx");
            if (tok.size() != 3)
                parseError(line_no, "expected `store <offset> <value>`");
            open_tx->ops.push_back({LitmusOp::Kind::Store,
                                    parseNumber(tok[1], line_no),
                                    parseNumber(tok[2], line_no)});
        } else if (kw == "load") {
            if (!open_tx)
                parseError(line_no, "`load` outside a tx");
            if (tok.size() != 2)
                parseError(line_no, "expected `load <offset>`");
            open_tx->ops.push_back(
                {LitmusOp::Kind::Load, parseNumber(tok[1], line_no), 0});
        } else if (kw == "end") {
            if (!open_tx)
                parseError(line_no, "`end` without an open tx");
            open_tx = nullptr;
        } else if (kw == "name") {
            if (in_threads)
                parseError(line_no, "`name` after the first `thread`");
            if (tok.size() != 2)
                parseError(line_no, "expected `name <token>`");
            out.program.name = tok[1];
        } else {
            // Free-form metadata between the header and the threads;
            // the fuzz layer interprets scheme/crash/expect/... keys.
            if (in_threads)
                parseError(line_no, "unknown directive `" + kw + "`");
            std::string value;
            for (std::size_t i = 1; i < tok.size(); ++i)
                value += (i > 1 ? " " : "") + tok[i];
            out.meta.emplace_back(kw, value);
        }
    }
    if (!saw_header)
        fatal("litmus file has no `litmus v1` header");
    if (open_tx)
        fatal("litmus file ends inside an open tx (missing `end`)");
    if (out.program.name.empty())
        out.program.name = "litmus";
    validateLitmus(out.program);
    return out;
}

// --- LitmusWorkload -----------------------------------------------------

LitmusWorkload::LitmusWorkload(LitmusProgram program)
    : _program(std::move(program))
{
    validateLitmus(_program);
}

const LitmusThread *
LitmusWorkload::boundThread() const
{
    if (!_bound || _thread >= _program.threads.size())
        return nullptr;
    return &_program.threads[_thread];
}

std::size_t
LitmusWorkload::threadTxCount() const
{
    const LitmusThread *t = boundThread();
    return t ? t->txs.size() : 0;
}

void
LitmusWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    (void)rng;
    _thread = addr_map::dataArenaOwner(heap.base());
    _bound = true;
    _cursor = 0;
    const LitmusThread *thread = boundThread();
    if (!thread)
        return; // more cores than program threads: idle thread
    // Give every word the program touches a deterministic initial
    // value, so each store's old value (and the crash oracle's initial
    // image) is well defined. std::map orders the setup stores.
    std::map<Addr, Word> initial;
    for (const LitmusTx &tx : thread->txs)
        for (const LitmusOp &op : tx.ops)
            initial[op.offset] = litmusInitialValue(op.offset);
    for (const auto &[offset, value] : initial)
        mem.store(heap.base() + offset, value);
}

void
LitmusWorkload::transaction(MemClient &mem, PmHeap &heap, Rng &rng)
{
    (void)rng;
    const LitmusThread *thread = boundThread();
    if (!thread || _cursor >= thread->txs.size())
        return; // exhausted: an empty transaction
    const LitmusTx &tx = thread->txs[_cursor++];
    for (const LitmusOp &op : tx.ops) {
        if (op.kind == LitmusOp::Kind::Store)
            mem.store(heap.base() + op.offset, op.value);
        else
            mem.load(heap.base() + op.offset);
    }
}

// --- Direct compilation -------------------------------------------------

WorkloadTraces
litmusTraces(const LitmusProgram &program)
{
    validateLitmus(program);
    WorkloadTraces out;
    out.threads.resize(program.threads.size());

    FuncMem mem;
    std::vector<std::unique_ptr<LitmusWorkload>> workloads;
    std::vector<Rng> rngs;
    std::vector<PmHeap> heaps;
    std::vector<std::unique_ptr<TraceRecorder>> recorders;

    for (unsigned t = 0; t < program.threads.size(); ++t) {
        workloads.push_back(
            std::make_unique<LitmusWorkload>(program));
        rngs.emplace_back(t);
        heaps.push_back(PmHeap::forThread(t));
        recorders.push_back(
            std::make_unique<TraceRecorder>(mem, out.threads[t]));
        workloads[t]->setup(*recorders[t], heaps[t], rngs[t]);
    }

    out.initialMemory = mem;

    for (unsigned t = 0; t < program.threads.size(); ++t) {
        recorders[t]->setRecording(true);
        const LitmusThread &thread = program.threads[t];
        for (const LitmusTx &tx : thread.txs) {
            recorders[t]->txBegin();
            workloads[t]->transaction(*recorders[t], heaps[t], rngs[t]);
            if (!tx.commit)
                break; // `tx abort`: the trace ends inside the tx
            recorders[t]->txEnd();
        }
        recorders[t]->setRecording(false);
    }

    out.finalMemory = mem;
    return out;
}

} // namespace silo::workload
