#include "workload/hash_workload.hh"

namespace silo::workload
{

void
HashWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    _buckets = heap.alloc(Addr(_numBuckets) * wordBytes, lineBytes);
    _countAddr = heap.alloc(wordBytes, lineBytes);
    // Pre-populate ~25% load factor so chains exist.
    for (unsigned i = 0; i < _numBuckets / 4; ++i)
        insert(mem, heap, rng.next(), rng);
}

void
HashWorkload::insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                     Rng &rng)
{
    Addr item = heap.allocLines(2);   // 16 words
    mem.store(item, key);
    for (unsigned w = 2; w < itemWords; ++w)
        mem.store(item + w * wordBytes, rng.next() | 1);

    Addr head_addr = bucket(key);
    Word old_head = mem.load(head_addr);
    mem.store(item + wordBytes, old_head);       // item.next = old head
    mem.store(head_addr, item);                  // bucket head = item
    mem.store(_countAddr, mem.load(_countAddr) + 1);
}

void
HashWorkload::transaction(MemClient &mem, PmHeap &heap, Rng &rng)
{
    insert(mem, heap, rng.next(), rng);
}

Word
HashWorkload::lookup(MemClient &mem, std::uint64_t key) const
{
    for (Addr item = mem.load(bucket(key)); item;
         item = mem.load(item + wordBytes)) {
        if (mem.load(item) == key)
            return mem.load(item + 2 * wordBytes);
    }
    return 0;
}

bool
HashWorkload::remove(MemClient &mem, std::uint64_t key)
{
    Addr prev_link = bucket(key);
    for (Word item = mem.load(prev_link); item;
         item = mem.load(prev_link)) {
        if (mem.load(item) == key) {
            // Unlink: one pointer store plus the count update. The
            // item's storage stays allocated (bump heap), mirroring a
            // tombstone-free chain removal.
            mem.store(prev_link, mem.load(item + wordBytes));
            mem.store(_countAddr, mem.load(_countAddr) - 1);
            return true;
        }
        prev_link = item + wordBytes;
    }
    return false;
}

std::uint64_t
HashWorkload::size(MemClient &mem) const
{
    return mem.load(_countAddr);
}

} // namespace silo::workload
