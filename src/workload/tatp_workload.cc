#include "workload/tatp_workload.hh"

namespace silo::workload
{

namespace
{
constexpr unsigned offFlags = 0, offLocation = 1, offSfActive = 4,
                   offSfData = 5, offCfHead = 6;
} // namespace

void
TatpWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    _subscribers = heap.alloc(Addr(_numSubscribers) * subscriberWords *
                              wordBytes, lineBytes);
    for (unsigned s = 0; s < _numSubscribers; ++s) {
        mem.store(sub(s) + offFlags * wordBytes, rng.next());
        mem.store(sub(s) + offLocation * wordBytes, rng.next() | 1);
    }
}

void
TatpWorkload::transaction(MemClient &mem, PmHeap &heap, Rng &rng)
{
    unsigned s = unsigned(rng.below(_numSubscribers));
    std::uint64_t dice = rng.below(100);

    if (dice < 40) {
        // UPDATE_LOCATION: one word.
        mem.store(sub(s) + offLocation * wordBytes, rng.next() | 1);
    } else if (dice < 75) {
        // UPDATE_SUBSCRIBER_DATA: bit flags + special facility data.
        mem.store(sub(s) + offFlags * wordBytes, rng.next());
        mem.store(sub(s) + offSfActive * wordBytes, rng.below(2));
        mem.store(sub(s) + offSfData * wordBytes, rng.next() | 1);
    } else {
        // INSERT_CALL_FORWARDING: new 4-word row linked at the head.
        Addr row = heap.alloc(4 * wordBytes, 32);
        Word head = mem.load(sub(s) + offCfHead * wordBytes);
        mem.store(row + 0 * wordBytes, rng.below(24));        // start
        mem.store(row + 1 * wordBytes, rng.next() | 1);       // numberx
        mem.store(row + 2 * wordBytes, head);                 // next
        mem.store(sub(s) + offCfHead * wordBytes, row);
    }
}

Word
TatpWorkload::location(MemClient &mem, unsigned s) const
{
    return mem.load(sub(s) + offLocation * wordBytes);
}

} // namespace silo::workload
