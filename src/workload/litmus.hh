/**
 * @file
 * Declarative litmus programs: small, fully explicit multi-core
 * transaction programs for the persistency fuzzer (src/fuzz/) and the
 * regression fixtures under tests/check/litmus/.
 *
 * A litmus program spells out every store of every transaction of
 * every thread — no data structure, no randomness at replay time — so
 * a failing (program, scheme, crash index) triple found by the fuzzer
 * can be shrunk and committed as a self-contained text file that
 * `tools/litmus` replays bit-for-bit. Addresses are byte offsets into
 * the owning thread's standard PM arena (sim/address_map.hh), keeping
 * the repository-wide invariant that threads never race on values.
 *
 * Text format ("litmus v1"), line oriented, `#` comments:
 *
 *   litmus v1
 *   name overlap-2t          (optional display name)
 *   <key> <value...>         (free metadata, kept for the fuzz layer:
 *                             scheme/crash/expect/provenance...)
 *   thread 0
 *   tx                       (or `tx abort` for an open final tx)
 *   store 0x40 7             (word-aligned byte offset, value)
 *   load 0x40
 *   end
 *   thread 1
 *   ...
 *
 * LitmusWorkload adapts a program to the standard Workload interface
 * (one call = one transaction), and litmusTraces() compiles a program
 * straight into WorkloadTraces — including `tx abort`, which leaves
 * the thread's final transaction open so a crash sweep can observe
 * uncommitted state (the Workload-factory path always commits, since
 * the generic trace generator owns the transaction brackets).
 */

#ifndef SILO_WORKLOAD_LITMUS_HH
#define SILO_WORKLOAD_LITMUS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "workload/trace.hh"
#include "workload/workload.hh"

namespace silo::workload
{

/** One operation of a litmus transaction. */
struct LitmusOp
{
    enum class Kind : std::uint8_t
    {
        Load,
        Store,
    };

    Kind kind = Kind::Store;
    /** Word-aligned byte offset into the owning thread's data arena. */
    Addr offset = 0;
    /** Stored value (Store only). */
    Word value = 0;
};

/** One transaction of a litmus thread. */
struct LitmusTx
{
    std::vector<LitmusOp> ops;
    /**
     * false = the transaction never reaches Tx_end ("tx abort"):
     * litmusTraces() leaves it open at the end of the thread's trace,
     * modeling a crash arriving mid-transaction. Only legal for the
     * last transaction of a thread.
     */
    bool commit = true;
};

/** One thread (= one core) of a litmus program. */
struct LitmusThread
{
    std::vector<LitmusTx> txs;
};

/** A complete declarative multi-core transaction program. */
struct LitmusProgram
{
    std::string name = "litmus";
    std::vector<LitmusThread> threads;

    /** Total transactions across all threads. */
    std::size_t txCount() const;
    /** Total load+store operations across all threads. */
    std::size_t opCount() const;
};

/** A parsed litmus file: the program plus free-form metadata lines. */
struct LitmusFile
{
    LitmusProgram program;
    /** Header `<key> <value>` lines in file order (fuzz-layer keys). */
    std::vector<std::pair<std::string, std::string>> meta;
};

/**
 * Reject malformed programs via fatal(): no threads, >255 threads,
 * unaligned or out-of-arena offsets, or `tx abort` before the last
 * transaction of its thread.
 */
void validateLitmus(const LitmusProgram &program);

/** Serialize to canonical "litmus v1" text (stable, golden-testable). */
std::string serializeLitmus(const LitmusProgram &program,
                            const std::vector<std::pair<std::string,
                                                        std::string>>
                                &meta = {});

/** Parse "litmus v1" text; fatal() with line provenance on errors. */
LitmusFile parseLitmus(const std::string &text);

/**
 * Deterministic pre-transaction value of the word at @p offset: the
 * setup phase writes it for every word a program touches, so every
 * store has a well-defined old value distinct from fuzzed new values.
 */
constexpr Word
litmusInitialValue(Addr offset)
{
    return 0xA5A5'0000'0000'0000ULL + offset;
}

/**
 * Compile @p program straight into replayable traces (setup image +
 * per-thread op streams), honouring `tx abort`. finalMemory reflects
 * the functional application of every store, including aborted
 * transactions — the persistency checker keeps its own committed-image
 * oracle, so fuzz harnesses must not compare media against it.
 */
WorkloadTraces litmusTraces(const LitmusProgram &program);

/**
 * Workload adapter: one transaction() call replays the thread's next
 * litmus transaction (no-op once exhausted, yielding an empty
 * transaction — itself a useful adversarial shape). The thread index
 * is bound in setup() from the heap's arena base.
 */
class LitmusWorkload : public Workload
{
  public:
    explicit LitmusWorkload(LitmusProgram program);

    const char *name() const override { return "Litmus"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Transactions of the bound thread (0 before setup()). */
    std::size_t threadTxCount() const;

  private:
    const LitmusThread *boundThread() const;

    LitmusProgram _program;
    unsigned _thread = 0;
    bool _bound = false;
    std::size_t _cursor = 0; //!< next transaction to replay
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_LITMUS_HH
