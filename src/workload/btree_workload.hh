/**
 * @file
 * Btree micro-benchmark: randomly insert elements in a B-tree
 * (Table III).
 *
 * A textbook B-tree of order 8 (7 keys per node) stored in PM. Inserts
 * shift keys/values within leaves and split full nodes, producing the
 * medium-sized, partially-overlapping write sets the paper relies on for
 * log merging.
 */

#ifndef SILO_WORKLOAD_BTREE_WORKLOAD_HH
#define SILO_WORKLOAD_BTREE_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** Random inserts into a PM-resident B-tree. */
class BtreeWorkload : public Workload
{
  public:
    /** Maximum keys per node. */
    static constexpr unsigned maxKeys = 5;

    explicit BtreeWorkload(std::uint64_t key_space = 1u << 20,
                           unsigned prepopulate = 4096)
        : _keySpace(key_space), _prepopulate(prepopulate)
    {}

    const char *name() const override { return "Btree"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Look up @p key (test hook). @return value or 0 if absent. */
    Word lookup(MemClient &mem, std::uint64_t key) const;

  private:
    // Node layout, in words:
    //   [0] isLeaf  [1] count
    //   [2..8]   keys[0..6]
    //   [9..15]  values[0..6]
    //   [16..23] children[0..7]
    static constexpr unsigned nodeWords = 24;
    static constexpr unsigned offIsLeaf = 0;
    static constexpr unsigned offCount = 1;
    static constexpr unsigned offKeys = 2;
    static constexpr unsigned offVals = 9;
    static constexpr unsigned offKids = 16;

    Addr allocNode(MemClient &mem, PmHeap &heap, bool leaf);

    static Addr field(Addr node, unsigned word_idx)
    {
        return node + Addr(word_idx) * wordBytes;
    }

    void insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                Word value);
    void insertNonFull(MemClient &mem, PmHeap &heap, Addr node,
                       std::uint64_t key, Word value);
    /** Split full child @p child (index @p idx) of @p parent. */
    void splitChild(MemClient &mem, PmHeap &heap, Addr parent,
                    unsigned idx, Addr child);

    std::uint64_t _keySpace;
    unsigned _prepopulate;
    Addr _rootPtr = 0;   //!< one-word cell holding the root address
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_BTREE_WORKLOAD_HH
