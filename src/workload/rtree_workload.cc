#include "workload/rtree_workload.hh"

namespace silo::workload
{

void
RtreeWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    _root = heap.allocLines(2);   // 16 pointer words = 128 B
    for (unsigned i = 0; i < 4096; ++i) {
        std::uint64_t key = rng.below(1u << keyBits);
        Word value = rng.next() | 1;
        insert(mem, heap, key, value);
    }
}

void
RtreeWorkload::transaction(MemClient &mem, PmHeap &heap, Rng &rng)
{
    std::uint64_t key = rng.below(1u << keyBits);
    Word value = rng.next() | 1;
    insert(mem, heap, key, value);
}

void
RtreeWorkload::insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                      Word value)
{
    Addr node = _root;
    for (unsigned level = 0; level < levels - 1; ++level) {
        Addr slot = node + nibble(key, level) * wordBytes;
        Word child = mem.load(slot);
        if (!child) {
            child = heap.allocLines(2);
            mem.store(slot, child);
        }
        node = child;
    }
    // Last level holds values directly.
    mem.store(node + nibble(key, levels - 1) * wordBytes, value);
}

Word
RtreeWorkload::lookup(MemClient &mem, std::uint64_t key) const
{
    Addr node = _root;
    for (unsigned level = 0; level < levels - 1; ++level) {
        node = mem.load(node + nibble(key, level) * wordBytes);
        if (!node)
            return 0;
    }
    return mem.load(node + nibble(key, levels - 1) * wordBytes);
}

} // namespace silo::workload
