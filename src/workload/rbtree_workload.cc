#include "workload/rbtree_workload.hh"

namespace silo::workload
{

void
RBtreeWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    _rootPtr = heap.alloc(wordBytes, lineBytes);
    for (unsigned i = 0; i < 4096; ++i) {
        std::uint64_t key = rng.below(_keySpace) + 1;
        Word value = rng.next() | 1;
        insert(mem, heap, key, value);
    }
}

void
RBtreeWorkload::transaction(MemClient &mem, PmHeap &heap, Rng &rng)
{
    std::uint64_t key = rng.below(_keySpace) + 1;
    Word value = rng.next() | 1;
    insert(mem, heap, key, value);
}

void
RBtreeWorkload::replaceChild(MemClient &mem, Addr parent, Addr old_child,
                             Addr new_child)
{
    if (!parent) {
        mem.store(_rootPtr, new_child);
    } else if (mem.load(field(parent, offLeft)) == old_child) {
        mem.store(field(parent, offLeft), new_child);
    } else {
        mem.store(field(parent, offRight), new_child);
    }
}

void
RBtreeWorkload::rotateLeft(MemClient &mem, Addr node)
{
    Addr parent = mem.load(field(node, offParent));
    Addr right = mem.load(field(node, offRight));
    Addr rl = mem.load(field(right, offLeft));

    mem.store(field(node, offRight), rl);
    if (rl)
        mem.store(field(rl, offParent), node);
    mem.store(field(right, offLeft), node);
    mem.store(field(node, offParent), right);
    mem.store(field(right, offParent), parent);
    replaceChild(mem, parent, node, right);
}

void
RBtreeWorkload::rotateRight(MemClient &mem, Addr node)
{
    Addr parent = mem.load(field(node, offParent));
    Addr left = mem.load(field(node, offLeft));
    Addr lr = mem.load(field(left, offRight));

    mem.store(field(node, offLeft), lr);
    if (lr)
        mem.store(field(lr, offParent), node);
    mem.store(field(left, offRight), node);
    mem.store(field(node, offParent), left);
    mem.store(field(left, offParent), parent);
    replaceChild(mem, parent, node, left);
}

void
RBtreeWorkload::insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                       Word value)
{
    // Standard BST descent.
    Addr parent = 0;
    Addr cur = mem.load(_rootPtr);
    while (cur) {
        std::uint64_t k = mem.load(field(cur, offKey));
        if (k == key) {
            mem.store(field(cur, offVal), value);
            return;
        }
        parent = cur;
        cur = mem.load(field(cur, k < key ? offRight : offLeft));
    }

    Addr node = heap.allocLines(1);
    mem.store(field(node, offKey), key);
    mem.store(field(node, offVal), value);
    mem.store(field(node, offColor), 1);   // red
    mem.store(field(node, offParent), parent);

    if (!parent)
        mem.store(_rootPtr, node);
    else if (mem.load(field(parent, offKey)) < key)
        mem.store(field(parent, offRight), node);
    else
        mem.store(field(parent, offLeft), node);

    fixInsert(mem, node);
}

void
RBtreeWorkload::fixInsert(MemClient &mem, Addr node)
{
    while (true) {
        Addr parent = mem.load(field(node, offParent));
        if (!parent || !isRed(mem, parent))
            break;
        Addr grand = mem.load(field(parent, offParent));
        if (!grand)
            break;
        bool parent_is_left =
            mem.load(field(grand, offLeft)) == parent;
        Addr uncle =
            mem.load(field(grand, parent_is_left ? offRight : offLeft));

        if (isRed(mem, uncle)) {
            // Case 1: recolor and climb.
            mem.store(field(parent, offColor), 0);
            mem.store(field(uncle, offColor), 0);
            mem.store(field(grand, offColor), 1);
            node = grand;
            continue;
        }

        if (parent_is_left) {
            if (mem.load(field(parent, offRight)) == node) {
                // Case 2: inner child; rotate to outer.
                rotateLeft(mem, parent);
                node = parent;
                parent = mem.load(field(node, offParent));
            }
            mem.store(field(parent, offColor), 0);
            mem.store(field(grand, offColor), 1);
            rotateRight(mem, grand);
        } else {
            if (mem.load(field(parent, offLeft)) == node) {
                rotateRight(mem, parent);
                node = parent;
                parent = mem.load(field(node, offParent));
            }
            mem.store(field(parent, offColor), 0);
            mem.store(field(grand, offColor), 1);
            rotateLeft(mem, grand);
        }
        break;
    }

    Addr root = mem.load(_rootPtr);
    if (isRed(mem, root))
        mem.store(field(root, offColor), 0);
}

Word
RBtreeWorkload::lookup(MemClient &mem, std::uint64_t key) const
{
    Addr cur = mem.load(_rootPtr);
    while (cur) {
        std::uint64_t k = mem.load(field(cur, offKey));
        if (k == key)
            return mem.load(field(cur, offVal));
        cur = mem.load(field(cur, k < key ? offRight : offLeft));
    }
    return 0;
}

unsigned
RBtreeWorkload::validateNode(MemClient &mem, Addr node, bool &ok) const
{
    if (!node)
        return 1;   // nil nodes are black
    Addr left = mem.load(field(node, offLeft));
    Addr right = mem.load(field(node, offRight));
    std::uint64_t key = mem.load(field(node, offKey));

    if (left && mem.load(field(left, offKey)) >= key)
        ok = false;
    if (right && mem.load(field(right, offKey)) <= key)
        ok = false;
    if (isRed(mem, node) && (isRed(mem, left) || isRed(mem, right)))
        ok = false;   // no red node has a red child

    unsigned lh = validateNode(mem, left, ok);
    unsigned rh = validateNode(mem, right, ok);
    if (lh != rh)
        ok = false;   // equal black heights
    return lh + (isRed(mem, node) ? 0 : 1);
}

unsigned
RBtreeWorkload::validate(MemClient &mem) const
{
    Addr root = mem.load(_rootPtr);
    if (root && isRed(mem, root))
        return 0;
    bool ok = true;
    unsigned height = validateNode(mem, root, ok);
    return ok ? height : 0;
}

} // namespace silo::workload
