/**
 * @file
 * TATP benchmark (telecom application transaction processing), used by
 * the paper for Fig. 4's write-size characterization.
 *
 * A subscriber table with per-subscriber special-facility and
 * call-forwarding rows. The write transactions of the standard TATP mix
 * (UPDATE_SUBSCRIBER_DATA, UPDATE_LOCATION, INSERT/DELETE_CALL_FORWARDING)
 * modify one or a handful of words — the smallest write sets in Fig. 4.
 */

#ifndef SILO_WORKLOAD_TATP_WORKLOAD_HH
#define SILO_WORKLOAD_TATP_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** TATP write-transaction mix over a PM subscriber table. */
class TatpWorkload : public Workload
{
  public:
    explicit TatpWorkload(unsigned num_subscribers = 65536)
        : _numSubscribers(num_subscribers)
    {}

    const char *name() const override { return "TATP"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Location field of @p sub (test hook). */
    Word location(MemClient &mem, unsigned sub) const;

  private:
    // Subscriber: [0] bit flags, [1] location, [2] msc_location,
    //             [3] vlr_location; special facility: [4] sf_active,
    //             [5] sf_data; call forwarding list head: [6].
    static constexpr unsigned subscriberWords = 8;

    Addr sub(unsigned s) const
    {
        return _subscribers + Addr(s) * subscriberWords * wordBytes;
    }

    unsigned _numSubscribers;
    Addr _subscribers = 0;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_TATP_WORKLOAD_HH
