/**
 * @file
 * Rtree workload: insert operations on a radix tree, mirroring the PMDK
 * radix-tree example the paper uses for Fig. 4.
 *
 * A 16-ary (nibble-indexed) radix tree over 24-bit keys. Nodes are 16
 * pointer words; fresh arena memory reads as zero, so a new node costs
 * no initialization stores and inserts write only the path links plus
 * the leaf value — the small write sets Fig. 4 shows for Rtree.
 */

#ifndef SILO_WORKLOAD_RTREE_WORKLOAD_HH
#define SILO_WORKLOAD_RTREE_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** Inserts into a PM-resident 16-ary radix tree. */
class RtreeWorkload : public Workload
{
  public:
    /** Key bits; 24 bits -> 6 nibble levels. */
    static constexpr unsigned keyBits = 24;
    static constexpr unsigned levels = keyBits / 4;

    const char *name() const override { return "Rtree"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Look up @p key (test hook). @return value or 0. */
    Word lookup(MemClient &mem, std::uint64_t key) const;

  private:
    static unsigned
    nibble(std::uint64_t key, unsigned level)
    {
        return unsigned((key >> (4 * (levels - 1 - level))) & 0xf);
    }

    void insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                Word value);

    Addr _root = 0;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_RTREE_WORKLOAD_HH
