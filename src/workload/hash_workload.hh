/**
 * @file
 * Hash micro-benchmark: randomly insert elements in a hash table
 * (Table III).
 *
 * Chained hashing with 128 B items (key, next pointer, 14 payload
 * words). An insert writes ~18 distinct words, which is what makes Hash
 * the workload that sizes Silo's 20-entry log buffer in §VI-D.
 */

#ifndef SILO_WORKLOAD_HASH_WORKLOAD_HH
#define SILO_WORKLOAD_HASH_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** Random inserts into a PM-resident chained hash table. */
class HashWorkload : public Workload
{
  public:
    explicit HashWorkload(unsigned num_buckets = 16384)
        : _numBuckets(num_buckets)
    {}

    const char *name() const override { return "Hash"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Look up @p key (test hook). @return first payload word or 0. */
    Word lookup(MemClient &mem, std::uint64_t key) const;

    /**
     * Unlink @p key from its chain.
     * @return true if the key was present and removed.
     */
    bool remove(MemClient &mem, std::uint64_t key);

    /** Number of elements present (reads the count word). */
    std::uint64_t size(MemClient &mem) const;

  private:
    // Item layout, in words: [0] key, [1] next, [2..15] payload.
    static constexpr unsigned itemWords = 16;

    Addr bucket(std::uint64_t key) const
    {
        // Fibonacci hashing spreads sequential keys across buckets.
        std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
        return _buckets + (h % _numBuckets) * wordBytes;
    }

    void insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                Rng &rng);

    unsigned _numBuckets;
    Addr _buckets = 0;  //!< array of head pointers
    Addr _countAddr = 0;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_HASH_WORKLOAD_HH
