#include "workload/trace_gen.hh"

#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workload/func_mem.hh"
#include "workload/litmus.hh"
#include "workload/trace_recorder.hh"

namespace silo::workload
{

WorkloadTraces
generateTraces(const TraceGenConfig &cfg)
{
    if (cfg.kind == WorkloadKind::Litmus) {
        // A litmus program is fully explicit: thread count, per-thread
        // transaction counts and abort markers all come from the
        // program text, so the generic knobs below do not apply.
        return litmusTraces(parseLitmus(cfg.options.litmus).program);
    }

    WorkloadTraces out;
    out.threads.resize(cfg.numThreads);

    FuncMem mem;
    std::vector<std::unique_ptr<Workload>> workloads;
    std::vector<Rng> rngs;
    std::vector<PmHeap> heaps;
    std::vector<std::unique_ptr<TraceRecorder>> recorders;

    // Phase 1: setup every thread (untimed, unrecorded) so the initial
    // PM image is complete before any transaction is recorded.
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        workloads.push_back(makeWorkload(cfg.kind, cfg.options));
        rngs.emplace_back(cfg.seed * 1000003 + t);
        heaps.push_back(PmHeap::forThread(t));
        recorders.push_back(
            std::make_unique<TraceRecorder>(mem, out.threads[t]));
        workloads[t]->setup(*recorders[t], heaps[t], rngs[t]);
    }

    out.initialMemory = mem;

    // Phase 2: record each thread's transactions. Thread arenas are
    // disjoint so per-thread sequential generation composes into any
    // timing-level interleaving.
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        recorders[t]->setRecording(true);
        for (std::uint64_t i = 0; i < cfg.transactionsPerThread; ++i) {
            recorders[t]->txBegin();
            for (unsigned op = 0; op < cfg.opsPerTransaction; ++op) {
                workloads[t]->transaction(*recorders[t], heaps[t],
                                          rngs[t]);
            }
            recorders[t]->txEnd();
        }
        recorders[t]->setRecording(false);
    }

    out.finalMemory = mem;
    return out;
}

} // namespace silo::workload
