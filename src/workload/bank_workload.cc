#include "workload/bank_workload.hh"

namespace silo::workload
{

void
BankWorkload::setup(MemClient &mem, PmHeap &heap, Rng &)
{
    _accounts = heap.alloc(Addr(_numAccounts) * accountWords * wordBytes,
                           lineBytes);
    for (unsigned a = 0; a < _numAccounts; ++a)
        mem.store(account(a), _initialBalance);
}

void
BankWorkload::transaction(MemClient &mem, PmHeap &, Rng &rng)
{
    unsigned from = unsigned(rng.below(_numAccounts));
    unsigned to = unsigned(rng.below(_numAccounts));
    if (from == to)
        to = (to + 1) % _numAccounts;

    Word from_bal = mem.load(account(from));
    Word amount = from_bal ? rng.range(1, from_bal) : 0;

    mem.store(account(from), from_bal - amount);
    mem.store(account(to), mem.load(account(to)) + amount);
    mem.store(account(from) + wordBytes, _stamp);
    mem.store(account(to) + wordBytes, _stamp);
    ++_stamp;
}

Word
BankWorkload::balance(MemClient &mem, unsigned a) const
{
    return mem.load(account(a));
}

Word
BankWorkload::totalBalance(MemClient &mem) const
{
    Word total = 0;
    for (unsigned a = 0; a < _numAccounts; ++a)
        total += mem.load(account(a));
    return total;
}

} // namespace silo::workload
