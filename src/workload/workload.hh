/**
 * @file
 * Workload abstraction and factory.
 *
 * The eleven workloads mirror Table III and Fig. 4 of the paper:
 * micro-benchmarks (Array, Btree, Hash, Queue, RBtree), macro-benchmarks
 * from Whisper (TPCC, YCSB), the PMDK structures (Rtree, Ctrie), TATP,
 * and Bank. Each is a real data-structure implementation over simulated
 * persistent memory; a workload performs one logical operation per call
 * and the generator wraps calls in transactions.
 */

#ifndef SILO_WORKLOAD_WORKLOAD_HH
#define SILO_WORKLOAD_WORKLOAD_HH

#include <memory>
#include <string>

#include "sim/rng.hh"
#include "workload/mem_client.hh"
#include "workload/pm_heap.hh"

namespace silo::workload
{

/** The benchmark suite (Table III + Fig. 4 extras). */
enum class WorkloadKind
{
    Array,
    Btree,
    Hash,
    Queue,
    RBtree,
    Tpcc,
    Ycsb,
    Rtree,
    Ctrie,
    Tatp,
    Bank,
    /**
     * Declarative litmus program (workload/litmus.hh), driven by
     * WorkloadOptions::litmus. Deliberately absent from allWorkloads:
     * it has no meaning without a program attached.
     */
    Litmus,
};

/** @return display name matching the paper's figures. */
const char *workloadName(WorkloadKind kind);

/** Parse a display name back to a kind; fatal() if unknown. */
WorkloadKind workloadFromName(const std::string &name);

/** Tuning options shared by all workloads. */
struct WorkloadOptions
{
    /** TPCC: run all five transaction types (§VI-D) vs New-Order only. */
    bool tpccAllTxTypes = false;
    /**
     * Litmus only: the serialized "litmus v1" program text
     * (workload/litmus.hh). Ignored by every other workload kind.
     */
    std::string litmus;
};

/**
 * One thread's workload instance.
 *
 * setup() populates the structure (untimed, unrecorded); transaction()
 * performs one logical operation's loads and stores. Transaction
 * boundaries are issued by the caller so a "write set scale" (Fig. 14)
 * can pack several operations into one transaction.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Display name. */
    virtual const char *name() const = 0;

    /**
     * Populate initial state.
     * @param mem Access interface (recording disabled by the caller).
     * @param heap This thread's PM arena.
     * @param rng This thread's deterministic stream.
     */
    virtual void setup(MemClient &mem, PmHeap &heap, Rng &rng) = 0;

    /** Perform one logical operation inside the caller's transaction. */
    virtual void transaction(MemClient &mem, PmHeap &heap, Rng &rng) = 0;
};

/** Instantiate a workload of @p kind. */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind,
                                       const WorkloadOptions &opts = {});

/** All kinds in Fig. 4 order. */
inline constexpr WorkloadKind allWorkloads[] = {
    WorkloadKind::Array, WorkloadKind::Btree, WorkloadKind::Hash,
    WorkloadKind::Queue, WorkloadKind::RBtree, WorkloadKind::Tpcc,
    WorkloadKind::Ycsb, WorkloadKind::Rtree, WorkloadKind::Ctrie,
    WorkloadKind::Tatp, WorkloadKind::Bank,
};

/** The seven benchmarks used in Figs. 11-15. */
inline constexpr WorkloadKind evaluationWorkloads[] = {
    WorkloadKind::Array, WorkloadKind::Btree, WorkloadKind::Hash,
    WorkloadKind::Queue, WorkloadKind::RBtree, WorkloadKind::Tpcc,
    WorkloadKind::Ycsb,
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_WORKLOAD_HH
