/**
 * @file
 * YCSB macro-benchmark (Table III, from Whisper).
 *
 * A PM-resident key-value store with a hash index and fixed 64 B values.
 * Like MorLog's configuration, the operation mix is 20% reads / 80%
 * updates; keys follow a skewed (hot-set) distribution, giving updates
 * the temporal locality that makes on-chip log merging effective.
 */

#ifndef SILO_WORKLOAD_YCSB_WORKLOAD_HH
#define SILO_WORKLOAD_YCSB_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** Read/update mix over a PM key-value store. */
class YcsbWorkload : public Workload
{
  public:
    /**
     * @param num_keys Keys loaded at setup.
     * @param read_pct Percentage of read operations (paper: 20).
     */
    explicit YcsbWorkload(unsigned num_keys = 16384,
                          unsigned read_pct = 20)
        : _numKeys(num_keys), _readPct(read_pct)
    {}

    const char *name() const override { return "YCSB"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Read the first value word of @p key (test hook). */
    Word readValueWord(MemClient &mem, std::uint64_t key) const;

  private:
    /** Skewed key pick: 80% of accesses to the hottest 20% of keys. */
    std::uint64_t pickKey(Rng &rng) const;

    Addr valueAddr(MemClient &mem, std::uint64_t key) const;

    void opRead(MemClient &mem, std::uint64_t key) const;
    void opUpdate(MemClient &mem, std::uint64_t key, Rng &rng);

    unsigned _numKeys;
    unsigned _readPct;
    Addr _index = 0;    //!< dense array of value addresses
    Addr _values = 0;   //!< 64 B records
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_YCSB_WORKLOAD_HH
