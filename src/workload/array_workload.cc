#include "workload/array_workload.hh"

namespace silo::workload
{

namespace
{

/** Payload pattern shared by all elements (makes most swaps silent). */
constexpr Word commonPattern = 0xC0FFEE0000C0FFEEULL;

} // namespace

void
ArrayWorkload::setup(MemClient &mem, PmHeap &heap, Rng &)
{
    _base = heap.allocLines(_numElements);
    for (unsigned i = 0; i < _numElements; ++i) {
        mem.store(elem(i), Word(i) + 1);
        for (unsigned w = 1; w < wordsPerLine; ++w)
            mem.store(elem(i) + w * wordBytes, commonPattern);
    }
}

void
ArrayWorkload::swap(MemClient &mem, unsigned i, unsigned j)
{
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        Addr ai = elem(i) + w * wordBytes;
        Addr aj = elem(j) + w * wordBytes;
        Word vi = mem.load(ai);
        Word vj = mem.load(aj);
        mem.store(ai, vj);
        mem.store(aj, vi);
    }
}

void
ArrayWorkload::transaction(MemClient &mem, PmHeap &, Rng &rng)
{
    // Two independent random swaps per transaction; only the id word of
    // each element differs, so 28 of the 32 stores are silent.
    for (int pair = 0; pair < 2; ++pair) {
        unsigned i = unsigned(rng.below(_numElements));
        unsigned j = unsigned(rng.below(_numElements));
        if (i == j)
            j = (j + 1) % _numElements;
        swap(mem, i, j);
    }
}

} // namespace silo::workload
