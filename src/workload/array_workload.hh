/**
 * @file
 * Array micro-benchmark: randomly swap two elements in an array
 * (Table III).
 *
 * Elements are 64 B; fields other than the element id share a common
 * pattern, so most of a swap's word stores do not change the stored
 * value. This reproduces the paper's observation that ~90% of Array's
 * log entries are ignored by Silo's log-ignorance filter (§VI-D).
 */

#ifndef SILO_WORKLOAD_ARRAY_WORKLOAD_HH
#define SILO_WORKLOAD_ARRAY_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** Random element swaps in a PM-resident array. */
class ArrayWorkload : public Workload
{
  public:
    /** @param num_elements Array length (64 B elements). */
    explicit ArrayWorkload(unsigned num_elements = 4096)
        : _numElements(num_elements)
    {}

    const char *name() const override { return "Array"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    Addr arrayBase() const { return _base; }

  private:
    /** Swap elements @p i and @p j word by word. */
    void swap(MemClient &mem, unsigned i, unsigned j);

    Addr elem(unsigned i) const { return _base + Addr(i) * lineBytes; }

    unsigned _numElements;
    Addr _base = 0;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_ARRAY_WORKLOAD_HH
