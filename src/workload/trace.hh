/**
 * @file
 * Transaction trace format produced by the workload generators and
 * consumed by the timing simulator's replay cores.
 */

#ifndef SILO_WORKLOAD_TRACE_HH
#define SILO_WORKLOAD_TRACE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"
#include "sim/word_store.hh"

namespace silo::workload
{

/** One replayable operation. */
struct TxOp
{
    enum class Kind : std::uint8_t
    {
        TxBegin,
        Load,
        Store,
        TxEnd,
    };

    Kind kind;
    Addr addr = 0;    //!< word-aligned address (Load/Store)
    Word value = 0;   //!< stored value (Store only)
};

/** The full operation stream of one thread. */
struct ThreadTrace
{
    std::vector<TxOp> ops;
    std::uint64_t numTransactions = 0;
};

/** Trace + initial memory image for a whole multi-threaded run. */
struct WorkloadTraces
{
    std::vector<ThreadTrace> threads;
    /** PM contents after the (untimed) setup phase. */
    WordStore initialMemory;
    /** PM contents after functionally applying every transaction. */
    WordStore finalMemory;
};

/** Per-transaction write statistics (drives Fig. 4). */
struct WriteSetStats
{
    double avgStoreOps = 0;        //!< stores per transaction
    double avgUniqueWords = 0;     //!< distinct words written per tx
    double avgWriteSetBytes = 0;   //!< distinct words * 8 (Fig. 4 metric)
    std::uint64_t maxUniqueWords = 0;
};

/** Compute write-set statistics over a thread trace. */
inline WriteSetStats
analyzeWriteSets(const ThreadTrace &trace)
{
    WriteSetStats out;
    std::uint64_t tx_count = 0;
    std::uint64_t total_stores = 0;
    std::uint64_t total_unique = 0;
    // Audited for silo-lint R1: only insert()/clear()/size() — never
    // iterated, so hash order cannot leak into the statistics.
    std::unordered_set<Addr> unique;
    std::uint64_t stores = 0;

    for (const auto &op : trace.ops) {
        switch (op.kind) {
          case TxOp::Kind::TxBegin:
            unique.clear();
            stores = 0;
            break;
          case TxOp::Kind::Store:
            unique.insert(op.addr);
            ++stores;
            break;
          case TxOp::Kind::TxEnd:
            ++tx_count;
            total_stores += stores;
            total_unique += unique.size();
            out.maxUniqueWords =
                std::max<std::uint64_t>(out.maxUniqueWords, unique.size());
            break;
          case TxOp::Kind::Load:
            break;
        }
    }
    if (tx_count) {
        out.avgStoreOps = double(total_stores) / double(tx_count);
        out.avgUniqueWords = double(total_unique) / double(tx_count);
        out.avgWriteSetBytes = out.avgUniqueWords * wordBytes;
    }
    return out;
}

} // namespace silo::workload

#endif // SILO_WORKLOAD_TRACE_HH
