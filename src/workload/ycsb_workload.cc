#include "workload/ycsb_workload.hh"

namespace silo::workload
{

void
YcsbWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    _index = heap.alloc(Addr(_numKeys) * wordBytes, lineBytes);
    _values = heap.allocLines(_numKeys);
    for (unsigned k = 0; k < _numKeys; ++k) {
        Addr v = _values + Addr(k) * lineBytes;
        mem.store(_index + Addr(k) * wordBytes, v);
        for (unsigned w = 0; w < wordsPerLine; ++w)
            mem.store(v + w * wordBytes, rng.next() | 1);
    }
}

std::uint64_t
YcsbWorkload::pickKey(Rng &rng) const
{
    // 80/20 hot set as a cheap stand-in for YCSB's zipfian generator.
    if (rng.chance(0.8))
        return rng.below(_numKeys / 5);
    return _numKeys / 5 + rng.below(_numKeys - _numKeys / 5);
}

Addr
YcsbWorkload::valueAddr(MemClient &mem, std::uint64_t key) const
{
    return mem.load(_index + key * wordBytes);
}

void
YcsbWorkload::opRead(MemClient &mem, std::uint64_t key) const
{
    Addr v = valueAddr(mem, key);
    for (unsigned w = 0; w < wordsPerLine; ++w)
        (void)mem.load(v + w * wordBytes);
}

void
YcsbWorkload::opUpdate(MemClient &mem, std::uint64_t key, Rng &rng)
{
    Addr v = valueAddr(mem, key);
    for (unsigned w = 0; w < wordsPerLine; ++w)
        mem.store(v + w * wordBytes, rng.next() | 1);
}

void
YcsbWorkload::transaction(MemClient &mem, PmHeap &, Rng &rng)
{
    // Two operations per transaction; 20% reads / 80% updates.
    for (int op = 0; op < 2; ++op) {
        std::uint64_t key = pickKey(rng);
        if (rng.below(100) < _readPct)
            opRead(mem, key);
        else
            opUpdate(mem, key, rng);
    }
}

Word
YcsbWorkload::readValueWord(MemClient &mem, std::uint64_t key) const
{
    return mem.load(valueAddr(mem, key));
}

} // namespace silo::workload
