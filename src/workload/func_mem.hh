/**
 * @file
 * Functional memory used by workloads — an alias of the shared sparse
 * WordStore (see sim/word_store.hh).
 */

#ifndef SILO_WORKLOAD_FUNC_MEM_HH
#define SILO_WORKLOAD_FUNC_MEM_HH

#include "sim/word_store.hh"

namespace silo::workload
{

/** Sparse word-granular memory backing trace generation. */
using FuncMem = WordStore;

} // namespace silo::workload

#endif // SILO_WORKLOAD_FUNC_MEM_HH
