/**
 * @file
 * The memory interface workload code is written against.
 *
 * Workloads are real data-structure implementations (B-tree, RB-tree,
 * hash table, ...) whose every persistent access goes through this
 * interface at word granularity — the granularity of one CPU store and
 * of one Silo log entry (Fig. 6). During trace generation a recorder
 * implements it; nothing in a workload knows whether it is being traced
 * or executed functionally.
 */

#ifndef SILO_WORKLOAD_MEM_CLIENT_HH
#define SILO_WORKLOAD_MEM_CLIENT_HH

#include "sim/types.hh"

namespace silo::workload
{

/** Word-granular access to simulated persistent memory. */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** Load the word at @p addr (word aligned). */
    virtual Word load(Addr addr) = 0;

    /** Store @p value to the word at @p addr (word aligned). */
    virtual void store(Addr addr, Word value) = 0;

    /** Mark the start of a transaction (maps to Tx_begin). */
    virtual void txBegin() = 0;

    /** Mark the end of a transaction (maps to Tx_end). */
    virtual void txEnd() = 0;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_MEM_CLIENT_HH
