/**
 * @file
 * Bank benchmark: money transfers between accounts, the banking
 * application the paper uses for Fig. 4's write-size characterization.
 *
 * Each transfer debits one account and credits another and stamps both
 * rows' audit words — four word writes, one of the smallest transaction
 * write sets in the suite. The sum of balances is a global invariant
 * the crash-recovery tests check.
 */

#ifndef SILO_WORKLOAD_BANK_WORKLOAD_HH
#define SILO_WORKLOAD_BANK_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** Random transfers across a PM account table. */
class BankWorkload : public Workload
{
  public:
    explicit BankWorkload(unsigned num_accounts = 65536,
                          Word initial_balance = 1000)
        : _numAccounts(num_accounts), _initialBalance(initial_balance)
    {}

    const char *name() const override { return "Bank"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Balance of @p account (test hook). */
    Word balance(MemClient &mem, unsigned account) const;

    /** Sum of all balances (test hook; the conserved quantity). */
    Word totalBalance(MemClient &mem) const;

    unsigned numAccounts() const { return _numAccounts; }

  private:
    // Account: [0] balance, [1] last_txn_stamp, [2..3] filler.
    static constexpr unsigned accountWords = 4;

    Addr account(unsigned a) const
    {
        return _accounts + Addr(a) * accountWords * wordBytes;
    }

    unsigned _numAccounts;
    Word _initialBalance;
    std::uint64_t _stamp = 1;
    Addr _accounts = 0;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_BANK_WORKLOAD_HH
