/**
 * @file
 * Queue micro-benchmark: randomly enqueue and dequeue elements in a
 * queue (Table III).
 *
 * A singly-linked FIFO with 64 B nodes. Each transaction enqueues one
 * fresh node and dequeues one old node, so the structure's size stays
 * bounded while every transaction touches widely separated lines —
 * the low-spatial-locality behaviour the paper highlights for Queue
 * when comparing against LAD (§VI-C).
 */

#ifndef SILO_WORKLOAD_QUEUE_WORKLOAD_HH
#define SILO_WORKLOAD_QUEUE_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** Enqueue/dequeue pairs on a PM-resident linked queue. */
class QueueWorkload : public Workload
{
  public:
    const char *name() const override { return "Queue"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Current queue length (test hook). */
    std::uint64_t size(MemClient &mem) const;

    /** Value at the queue head (test hook; 0 when empty). */
    Word front(MemClient &mem) const;

  private:
    // Node layout, in words: [0] next, [1..7] payload.
    void enqueue(MemClient &mem, PmHeap &heap, Rng &rng);
    void dequeue(MemClient &mem);

    Addr _headAddr = 0;
    Addr _tailAddr = 0;
    Addr _countAddr = 0;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_QUEUE_WORKLOAD_HH
