#include "workload/btree_workload.hh"

#include "sim/logging.hh"

namespace silo::workload
{

Addr
BtreeWorkload::allocNode(MemClient &mem, PmHeap &heap, bool leaf)
{
    // 24 words = 192 B, rounded to 3 cachelines. Fresh arena memory reads
    // as zero, so only non-zero fields need initialization.
    Addr node = heap.allocLines(3);
    mem.store(field(node, offIsLeaf), leaf ? 1 : 0);
    return node;
}

void
BtreeWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    _rootPtr = heap.alloc(wordBytes);
    Addr root = allocNode(mem, heap, true);
    mem.store(_rootPtr, root);
    // Pre-populate so transactions exercise a realistic tree depth.
    for (unsigned i = 0; i < _prepopulate; ++i) {
        std::uint64_t key = rng.below(_keySpace) + 1;
        Word value = rng.next() | 1;
        insert(mem, heap, key, value);
    }
}

void
BtreeWorkload::transaction(MemClient &mem, PmHeap &heap, Rng &rng)
{
    std::uint64_t key = rng.below(_keySpace) + 1;
    Word value = rng.next() | 1;
    insert(mem, heap, key, value);
}

void
BtreeWorkload::insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                      Word value)
{
    Addr root = mem.load(_rootPtr);
    if (mem.load(field(root, offCount)) == maxKeys) {
        Addr new_root = allocNode(mem, heap, false);
        mem.store(field(new_root, offKids), root);
        splitChild(mem, heap, new_root, 0, root);
        mem.store(_rootPtr, new_root);
        root = new_root;
    }
    insertNonFull(mem, heap, root, key, value);
}

void
BtreeWorkload::splitChild(MemClient &mem, PmHeap &heap, Addr parent,
                          unsigned idx, Addr child)
{
    // Move the upper half of `child` into a fresh sibling and promote
    // the median key into `parent`.
    const bool child_leaf = mem.load(field(child, offIsLeaf)) != 0;
    Addr sibling = allocNode(mem, heap, child_leaf);
    constexpr unsigned half = maxKeys / 2;

    for (unsigned i = 0; i < half; ++i) {
        mem.store(field(sibling, offKeys + i),
                  mem.load(field(child, offKeys + half + 1 + i)));
        mem.store(field(sibling, offVals + i),
                  mem.load(field(child, offVals + half + 1 + i)));
    }
    if (!child_leaf) {
        for (unsigned i = 0; i <= half; ++i) {
            mem.store(field(sibling, offKids + i),
                      mem.load(field(child, offKids + half + 1 + i)));
        }
    }
    mem.store(field(sibling, offCount), half);
    mem.store(field(child, offCount), half);

    // Shift parent's keys/children right of idx to make room.
    std::uint64_t pcount = mem.load(field(parent, offCount));
    for (std::uint64_t i = pcount; i > idx; --i) {
        mem.store(field(parent, offKeys + i),
                  mem.load(field(parent, offKeys + i - 1)));
        mem.store(field(parent, offVals + i),
                  mem.load(field(parent, offVals + i - 1)));
        mem.store(field(parent, offKids + i + 1),
                  mem.load(field(parent, offKids + i)));
    }
    mem.store(field(parent, offKeys + idx),
              mem.load(field(child, offKeys + half)));
    mem.store(field(parent, offVals + idx),
              mem.load(field(child, offVals + half)));
    mem.store(field(parent, offKids + idx + 1), sibling);
    mem.store(field(parent, offCount), pcount + 1);
}

void
BtreeWorkload::insertNonFull(MemClient &mem, PmHeap &heap, Addr node,
                             std::uint64_t key, Word value)
{
    for (;;) {
        std::uint64_t count = mem.load(field(node, offCount));
        if (mem.load(field(node, offIsLeaf))) {
            // Locate the insertion point first (no writes), so a
            // duplicate hit leaves the leaf untouched.
            std::uint64_t pos = count;
            while (pos > 0) {
                std::uint64_t k =
                    mem.load(field(node, offKeys + pos - 1));
                if (k == key) {
                    // Duplicate: update in place.
                    mem.store(field(node, offVals + pos - 1), value);
                    return;
                }
                if (k < key)
                    break;
                --pos;
            }
            // Shift [pos, count) right by one, then place (key, value).
            for (std::uint64_t i = count; i > pos; --i) {
                mem.store(field(node, offKeys + i),
                          mem.load(field(node, offKeys + i - 1)));
                mem.store(field(node, offVals + i),
                          mem.load(field(node, offVals + i - 1)));
            }
            mem.store(field(node, offKeys + pos), key);
            mem.store(field(node, offVals + pos), value);
            mem.store(field(node, offCount), count + 1);
            return;
        }

        // Internal node: descend, splitting full children on the way.
        std::uint64_t i = count;
        while (i > 0 && mem.load(field(node, offKeys + i - 1)) > key)
            --i;
        if (i > 0 && mem.load(field(node, offKeys + i - 1)) == key) {
            mem.store(field(node, offVals + i - 1), value);
            return;
        }
        Addr child = mem.load(field(node, offKids + i));
        if (mem.load(field(child, offCount)) == maxKeys) {
            splitChild(mem, heap, node, unsigned(i), child);
            std::uint64_t promoted = mem.load(field(node, offKeys + i));
            if (promoted == key) {
                mem.store(field(node, offVals + i), value);
                return;
            }
            if (promoted < key)
                child = mem.load(field(node, offKids + i + 1));
        }
        node = child;
    }
}

Word
BtreeWorkload::lookup(MemClient &mem, std::uint64_t key) const
{
    Addr node = mem.load(_rootPtr);
    for (;;) {
        std::uint64_t count = mem.load(field(node, offCount));
        std::uint64_t i = 0;
        while (i < count && mem.load(field(node, offKeys + i)) < key)
            ++i;
        if (i < count && mem.load(field(node, offKeys + i)) == key)
            return mem.load(field(node, offVals + i));
        if (mem.load(field(node, offIsLeaf)))
            return 0;
        node = mem.load(field(node, offKids + i));
    }
}

} // namespace silo::workload
