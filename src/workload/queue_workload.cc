#include "workload/queue_workload.hh"

namespace silo::workload
{

void
QueueWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    Addr control = heap.allocLines(1);
    _headAddr = control;
    _tailAddr = control + wordBytes;
    _countAddr = control + 2 * wordBytes;
    // Seed with a few elements so the first dequeues have work to do.
    for (int i = 0; i < 64; ++i)
        enqueue(mem, heap, rng);
}

void
QueueWorkload::enqueue(MemClient &mem, PmHeap &heap, Rng &rng)
{
    Addr node = heap.allocLines(1);
    for (unsigned w = 1; w < wordsPerLine; ++w)
        mem.store(node + w * wordBytes, rng.next() | 1);

    Word tail = mem.load(_tailAddr);
    if (tail)
        mem.store(tail, node);           // old tail -> next = node
    else
        mem.store(_headAddr, node);      // empty queue: head = node
    mem.store(_tailAddr, node);
    mem.store(_countAddr, mem.load(_countAddr) + 1);
}

void
QueueWorkload::dequeue(MemClient &mem)
{
    Word head = mem.load(_headAddr);
    if (!head)
        return;
    Word next = mem.load(head);
    mem.store(_headAddr, next);
    if (!next)
        mem.store(_tailAddr, 0);
    mem.store(_countAddr, mem.load(_countAddr) - 1);
}

void
QueueWorkload::transaction(MemClient &mem, PmHeap &heap, Rng &rng)
{
    enqueue(mem, heap, rng);
    dequeue(mem);
}

std::uint64_t
QueueWorkload::size(MemClient &mem) const
{
    return mem.load(_countAddr);
}

Word
QueueWorkload::front(MemClient &mem) const
{
    Word head = mem.load(_headAddr);
    return head ? mem.load(head + wordBytes) : 0;
}

} // namespace silo::workload
