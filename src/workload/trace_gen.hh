/**
 * @file
 * Multi-threaded trace generation.
 *
 * Runs each thread's workload functionally (setup untimed, then N
 * transactions recorded) and produces the initial/final PM images plus
 * per-thread operation traces for the timing simulator. Because thread
 * arenas are disjoint, one shared functional memory holds the truth for
 * all threads.
 */

#ifndef SILO_WORKLOAD_TRACE_GEN_HH
#define SILO_WORKLOAD_TRACE_GEN_HH

#include <cstdint>

#include "workload/trace.hh"
#include "workload/workload.hh"

namespace silo::workload
{

/** Parameters of one trace-generation run. */
struct TraceGenConfig
{
    WorkloadKind kind = WorkloadKind::Hash;
    unsigned numThreads = 1;
    std::uint64_t transactionsPerThread = 1000;
    /** Logical operations packed into each transaction (Fig. 14). */
    unsigned opsPerTransaction = 1;
    std::uint64_t seed = 42;
    WorkloadOptions options;
};

/** Generate traces for all threads of a run. */
WorkloadTraces generateTraces(const TraceGenConfig &cfg);

} // namespace silo::workload

#endif // SILO_WORKLOAD_TRACE_GEN_HH
