/**
 * @file
 * Ctrie workload: insert operations on a crit-bit trie, mirroring the
 * PMDK crit-bit example the paper uses for Fig. 4.
 *
 * A classic crit-bit (PATRICIA) trie over 64-bit keys: internal nodes
 * store the distinguishing bit index and two children; leaves store
 * (key, value). Inserts allocate one leaf and at most one internal node
 * and rewrite one link — small, pointer-heavy write sets.
 */

#ifndef SILO_WORKLOAD_CTRIE_WORKLOAD_HH
#define SILO_WORKLOAD_CTRIE_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** Inserts into a PM-resident crit-bit trie. */
class CtrieWorkload : public Workload
{
  public:
    explicit CtrieWorkload(std::uint64_t key_space = 1u << 24)
        : _keySpace(key_space)
    {}

    const char *name() const override { return "Ctrie"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Look up @p key (test hook). @return value or 0. */
    Word lookup(MemClient &mem, std::uint64_t key) const;

  private:
    // Internal node, in words: [0] crit-bit index | tag, [1] child0,
    // [2] child1. Leaf, in words: [0] key, [1] value.
    // Pointers are tagged in their low bit: 1 = internal node.
    static constexpr Word internalTag = 1;

    static bool isInternal(Word ptr) { return ptr & internalTag; }
    static Addr untag(Word ptr) { return ptr & ~internalTag; }

    void insert(MemClient &mem, PmHeap &heap, std::uint64_t key,
                Word value);

    std::uint64_t _keySpace;
    Addr _rootPtr = 0;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_CTRIE_WORKLOAD_HH
