#include "workload/tpcc_workload.hh"

namespace silo::workload
{

// Field offsets (words) within each record.
namespace
{
// Warehouse: [0] ytd, [1] tax.
constexpr unsigned wYtd = 0, wTax = 1;
// District: [0] next_o_id, [1] ytd, [2] tax.
constexpr unsigned dNextOid = 0, dYtd = 1, dTax = 2;
// Customer: [0] balance, [1] ytd_payment, [2] payment_cnt,
//           [3] delivery_cnt.
constexpr unsigned cBalance = 0, cYtdPayment = 1, cPaymentCnt = 2,
                   cDeliveryCnt = 3;
// Item: [0] price.
constexpr unsigned iPrice = 0;
// Stock row: one packed word [qty:16 | ytd:24 | order_cnt:24], so the
// per-line stock update is a single read-modify-write — mirroring how
// the paper's TPC-C keeps a transaction's write set small (§II-E,
// Fig. 13: all remaining write sets fit the 20-entry log buffer).
constexpr unsigned sPacked = 0;
// Order: [0] packed header [c_id:16 | ol_cnt:8 | entry_d:40],
//        [1] ol_base, [2] carrier_id, [3] total.
constexpr unsigned oHeader = 0, oOlBase = 1, oCarrier = 2, oTotal = 3;
// Order line: one packed word [i_id:24 | qty:8 | amount:24 |
// delivered:1].
constexpr Word olDeliveredBit = Word(1) << 63;

Word
packStock(Word qty, Word ytd, Word cnt)
{
    return (qty & 0xffff) | ((ytd & 0xffffff) << 16) | (cnt << 40);
}

Word
stockQty(Word packed)
{
    return packed & 0xffff;
}

Word
packOrderHeader(Word c_id, Word ol_cnt, Word entry_d)
{
    return (c_id & 0xffff) | ((ol_cnt & 0xff) << 16) |
           (entry_d << 24);
}

Word
packOrderLine(Word i_id, Word qty, Word amount)
{
    return (i_id & 0xffffff) | ((qty & 0xff) << 24) |
           ((amount & 0x7fffffff) << 32);
}
} // namespace

void
TpccWorkload::setup(MemClient &mem, PmHeap &heap, Rng &rng)
{
    _warehouse = heap.alloc(warehouseWords * wordBytes, lineBytes);
    _districts = heap.alloc(Addr(numDistricts) * districtWords *
                            wordBytes, lineBytes);
    _customers = heap.alloc(Addr(numDistricts) * customersPerDistrict *
                            customerWords * wordBytes, lineBytes);
    _items = heap.alloc(Addr(numItems) * itemWords * wordBytes,
                        lineBytes);
    _stock = heap.alloc(Addr(numItems) * stockWords * wordBytes,
                        lineBytes);
    _orderDir = heap.alloc(Addr(numDistricts) * orderDirSlots *
                           wordBytes, lineBytes);
    _newOrderRing = heap.alloc(Addr(numDistricts) * newOrderSlots *
                               wordBytes, lineBytes);
    _newOrderHead = heap.alloc(Addr(numDistricts) * wordBytes,
                               lineBytes);
    _newOrderTail = heap.alloc(Addr(numDistricts) * wordBytes,
                               lineBytes);
    _custLastOrder = heap.alloc(Addr(numDistricts) *
                                customersPerDistrict * wordBytes,
                                lineBytes);

    mem.store(_warehouse + wTax * wordBytes, 8);   // 0.08% in basis pts
    for (unsigned d = 0; d < numDistricts; ++d) {
        mem.store(district(d) + dNextOid * wordBytes, 1);
        mem.store(district(d) + dTax * wordBytes, 10 + d);
    }
    for (unsigned c = 0; c < numDistricts * customersPerDistrict; ++c) {
        mem.store(_customers + Addr(c) * customerWords * wordBytes +
                  cBalance * wordBytes, 1000);
    }
    for (unsigned i = 0; i < numItems; ++i) {
        mem.store(item(i) + iPrice * wordBytes, rng.range(100, 10000));
        mem.store(stock(i) + sPacked * wordBytes,
                  packStock(rng.range(50, 100), 0, 0));
    }
    // A few initial orders so Delivery/Order-Status have material.
    for (unsigned i = 0; i < 4 * numDistricts; ++i)
        txNewOrder(mem, heap, rng);
}

void
TpccWorkload::transaction(MemClient &mem, PmHeap &heap, Rng &rng)
{
    if (!_allTxTypes) {
        txNewOrder(mem, heap, rng);
        return;
    }
    // Standard TPC-C mix: 45/43/4/4/4.
    std::uint64_t dice = rng.below(100);
    if (dice < 45)
        txNewOrder(mem, heap, rng);
    else if (dice < 88)
        txPayment(mem, heap, rng);
    else if (dice < 92)
        txOrderStatus(mem, rng);
    else if (dice < 96)
        txDelivery(mem, rng);
    else
        txStockLevel(mem, rng);
}

void
TpccWorkload::txNewOrder(MemClient &mem, PmHeap &heap, Rng &rng)
{
    unsigned d = unsigned(rng.below(numDistricts));
    unsigned c = unsigned(rng.below(customersPerDistrict));
    unsigned ol_cnt = unsigned(rng.range(3, 6));

    Word w_tax = mem.load(_warehouse + wTax * wordBytes);
    Word d_tax = mem.load(district(d) + dTax * wordBytes);

    Word o_id = mem.load(district(d) + dNextOid * wordBytes);
    mem.store(district(d) + dNextOid * wordBytes, o_id + 1);

    Addr order = heap.alloc(orderWords * wordBytes, lineBytes);
    Addr lines = heap.alloc(Addr(ol_cnt) * wordBytes, lineBytes);
    mem.store(order + oHeader * wordBytes,
              packOrderHeader(c, ol_cnt, _clock++));
    mem.store(order + oOlBase * wordBytes, lines);

    std::uint64_t total = 0;
    for (unsigned l = 0; l < ol_cnt; ++l) {
        unsigned i = unsigned(rng.below(numItems));
        unsigned qty = unsigned(rng.range(1, 10));
        Word price = mem.load(item(i) + iPrice * wordBytes);

        // One packed read-modify-write per stock row.
        Word s = mem.load(stock(i) + sPacked * wordBytes);
        Word s_qty = stockQty(s);
        Word new_qty = s_qty > qty + 10 ? s_qty - qty
                                        : s_qty + 91 - qty;
        mem.store(stock(i) + sPacked * wordBytes,
                  packStock(new_qty, ((s >> 16) & 0xffffff) + qty,
                            (s >> 40) + 1));

        // One packed order-line word, and the order total accumulates
        // in place — its log entries merge in Silo's buffer.
        mem.store(lines + Addr(l) * wordBytes,
                  packOrderLine(i, qty, price * qty));
        total += price * qty;
        mem.store(order + oTotal * wordBytes, total);
    }
    (void)w_tax;
    (void)d_tax;

    mem.store(orderDirSlot(d, o_id), order);
    mem.store(_custLastOrder +
              (Addr(d) * customersPerDistrict + c) * wordBytes, order);

    // Append to the district's new-order FIFO.
    Addr tail_addr = _newOrderTail + Addr(d) * wordBytes;
    Word tail = mem.load(tail_addr);
    mem.store(_newOrderRing +
              (Addr(d) * newOrderSlots + tail % newOrderSlots) *
                  wordBytes, order);
    mem.store(tail_addr, tail + 1);
}

void
TpccWorkload::txPayment(MemClient &mem, PmHeap &heap, Rng &rng)
{
    unsigned d = unsigned(rng.below(numDistricts));
    unsigned c = unsigned(rng.below(customersPerDistrict));
    Word amount = rng.range(100, 5000);

    mem.store(_warehouse + wYtd * wordBytes,
              mem.load(_warehouse + wYtd * wordBytes) + amount);
    mem.store(district(d) + dYtd * wordBytes,
              mem.load(district(d) + dYtd * wordBytes) + amount);

    Addr cust = customer(d, c);
    mem.store(cust + cBalance * wordBytes,
              mem.load(cust + cBalance * wordBytes) - amount);
    mem.store(cust + cYtdPayment * wordBytes,
              mem.load(cust + cYtdPayment * wordBytes) + amount);
    mem.store(cust + cPaymentCnt * wordBytes,
              mem.load(cust + cPaymentCnt * wordBytes) + 1);

    Addr hist = heap.alloc(historyWords * wordBytes);
    mem.store(hist + 0 * wordBytes, (Word(d) << 32) | c);
    mem.store(hist + 1 * wordBytes, amount);
    mem.store(hist + 2 * wordBytes, _clock++);
}

void
TpccWorkload::txOrderStatus(MemClient &mem, Rng &rng)
{
    unsigned d = unsigned(rng.below(numDistricts));
    unsigned c = unsigned(rng.below(customersPerDistrict));
    Addr cust = customer(d, c);
    (void)mem.load(cust + cBalance * wordBytes);

    Word order = mem.load(_custLastOrder +
                          (Addr(d) * customersPerDistrict + c) *
                              wordBytes);
    if (!order)
        return;
    Word ol_cnt = (mem.load(order + oHeader * wordBytes) >> 16) & 0xff;
    Word lines = mem.load(order + oOlBase * wordBytes);
    for (Word l = 0; l < ol_cnt; ++l)
        (void)mem.load(lines + l * wordBytes);
}

void
TpccWorkload::txDelivery(MemClient &mem, Rng &rng)
{
    unsigned d = unsigned(rng.below(numDistricts));
    Addr head_addr = _newOrderHead + Addr(d) * wordBytes;
    Addr tail_addr = _newOrderTail + Addr(d) * wordBytes;
    Word head = mem.load(head_addr);
    if (head >= mem.load(tail_addr))
        return;   // nothing to deliver

    Word order = mem.load(_newOrderRing +
                          (Addr(d) * newOrderSlots +
                           head % newOrderSlots) * wordBytes);
    mem.store(head_addr, head + 1);
    mem.store(order + oCarrier * wordBytes, rng.range(1, 10));

    Word header = mem.load(order + oHeader * wordBytes);
    Word ol_cnt = (header >> 16) & 0xff;
    Word lines = mem.load(order + oOlBase * wordBytes);
    std::uint64_t total = 0;
    for (Word l = 0; l < ol_cnt; ++l) {
        Word ol = mem.load(lines + l * wordBytes);
        total += (ol >> 32) & 0x7fffffff;
        mem.store(lines + l * wordBytes, ol | olDeliveredBit);
    }
    ++_clock;

    unsigned c = unsigned(header & 0xffff);
    Addr cust = customer(d, c);
    mem.store(cust + cBalance * wordBytes,
              mem.load(cust + cBalance * wordBytes) + total);
    mem.store(cust + cDeliveryCnt * wordBytes,
              mem.load(cust + cDeliveryCnt * wordBytes) + 1);
}

void
TpccWorkload::txStockLevel(MemClient &mem, Rng &rng)
{
    unsigned d = unsigned(rng.below(numDistricts));
    Word next_oid = mem.load(district(d) + dNextOid * wordBytes);
    Word first = next_oid > 20 ? next_oid - 20 : 1;
    for (Word o = first; o < next_oid; ++o) {
        Word order = mem.load(orderDirSlot(d, o));
        if (!order)
            continue;
        Word ol_cnt =
            (mem.load(order + oHeader * wordBytes) >> 16) & 0xff;
        Word lines = mem.load(order + oOlBase * wordBytes);
        for (Word l = 0; l < ol_cnt; ++l) {
            Word ol = mem.load(lines + l * wordBytes);
            Word i = ol & 0xffffff;
            (void)mem.load(stock(unsigned(i)) + sPacked * wordBytes);
        }
    }
}

Word
TpccWorkload::warehouseYtd(MemClient &mem) const
{
    return mem.load(_warehouse + wYtd * wordBytes);
}

Word
TpccWorkload::districtNextOrderId(MemClient &mem, unsigned d) const
{
    return mem.load(district(d) + dNextOid * wordBytes);
}

Word
TpccWorkload::customerBalance(MemClient &mem, unsigned d,
                              unsigned c) const
{
    return mem.load(customer(d, c) + cBalance * wordBytes);
}

} // namespace silo::workload
