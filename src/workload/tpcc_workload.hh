/**
 * @file
 * TPCC macro-benchmark (Table III, from Whisper).
 *
 * A per-thread TPC-C warehouse with districts, customers, items, stock,
 * orders, order lines, the new-order FIFO, and the history log. Like
 * MorLog's configuration, Figs. 11/12 run the New-Order transaction
 * only; §VI-D sizes the log buffer with all five transaction types
 * (New-Order, Payment, Order-Status, Delivery, Stock-Level), which this
 * workload also implements.
 */

#ifndef SILO_WORKLOAD_TPCC_WORKLOAD_HH
#define SILO_WORKLOAD_TPCC_WORKLOAD_HH

#include "workload/workload.hh"

namespace silo::workload
{

/** One thread's TPC-C warehouse. */
class TpccWorkload : public Workload
{
  public:
    /** @param all_tx_types Run the five-type mix instead of New-Order. */
    explicit TpccWorkload(bool all_tx_types = false)
        : _allTxTypes(all_tx_types)
    {}

    const char *name() const override { return "TPCC"; }
    void setup(MemClient &mem, PmHeap &heap, Rng &rng) override;
    void transaction(MemClient &mem, PmHeap &heap, Rng &rng) override;

    /** Warehouse year-to-date total (test hook). */
    Word warehouseYtd(MemClient &mem) const;

    /** Next order id of district @p d (test hook). */
    Word districtNextOrderId(MemClient &mem, unsigned d) const;

    /** Customer balance (test hook). */
    Word customerBalance(MemClient &mem, unsigned d, unsigned c) const;

  private:
    static constexpr unsigned numDistricts = 10;
    static constexpr unsigned customersPerDistrict = 256;
    static constexpr unsigned numItems = 8192;
    /** Per-district directory of recent orders (power of two). */
    static constexpr unsigned orderDirSlots = 4096;
    /** Per-district new-order FIFO capacity (power of two). */
    static constexpr unsigned newOrderSlots = 65536;

    // Record geometries, in 8-byte words.
    static constexpr unsigned warehouseWords = 8;
    static constexpr unsigned districtWords = 8;
    static constexpr unsigned customerWords = 8;
    static constexpr unsigned itemWords = 4;
    static constexpr unsigned stockWords = 8;
    static constexpr unsigned orderWords = 8;
    static constexpr unsigned orderLineWords = 8;
    static constexpr unsigned historyWords = 4;

    Addr district(unsigned d) const
    {
        return _districts + Addr(d) * districtWords * wordBytes;
    }
    Addr customer(unsigned d, unsigned c) const
    {
        return _customers +
               (Addr(d) * customersPerDistrict + c) *
                   customerWords * wordBytes;
    }
    Addr item(unsigned i) const
    {
        return _items + Addr(i) * itemWords * wordBytes;
    }
    Addr stock(unsigned i) const
    {
        return _stock + Addr(i) * stockWords * wordBytes;
    }
    Addr orderDirSlot(unsigned d, std::uint64_t o_id) const
    {
        return _orderDir +
               (Addr(d) * orderDirSlots + o_id % orderDirSlots) *
                   wordBytes;
    }

    void txNewOrder(MemClient &mem, PmHeap &heap, Rng &rng);
    void txPayment(MemClient &mem, PmHeap &heap, Rng &rng);
    void txOrderStatus(MemClient &mem, Rng &rng);
    void txDelivery(MemClient &mem, Rng &rng);
    void txStockLevel(MemClient &mem, Rng &rng);

    bool _allTxTypes;
    std::uint64_t _clock = 1;   //!< logical timestamp for entry_d fields

    Addr _warehouse = 0;
    Addr _districts = 0;
    Addr _customers = 0;
    Addr _items = 0;
    Addr _stock = 0;
    Addr _orderDir = 0;
    Addr _newOrderRing = 0;   //!< per-district rings
    Addr _newOrderHead = 0;   //!< per-district head indices
    Addr _newOrderTail = 0;   //!< per-district tail indices
    Addr _custLastOrder = 0;  //!< per-customer last order address
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_TPCC_WORKLOAD_HH
