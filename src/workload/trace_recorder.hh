/**
 * @file
 * MemClient that applies accesses to a FuncMem and (optionally) records
 * them into a ThreadTrace.
 *
 * Setup-phase accesses run with recording disabled: the paper times only
 * the transaction phase, and setup writes define the initial PM image.
 */

#ifndef SILO_WORKLOAD_TRACE_RECORDER_HH
#define SILO_WORKLOAD_TRACE_RECORDER_HH

#include "sim/logging.hh"
#include "workload/func_mem.hh"
#include "workload/mem_client.hh"
#include "workload/trace.hh"

namespace silo::workload
{

/** Records a workload's accesses while applying them functionally. */
class TraceRecorder : public MemClient
{
  public:
    /**
     * @param mem The functional memory accesses apply to.
     * @param trace Destination trace; may be touched only when recording.
     */
    TraceRecorder(FuncMem &mem, ThreadTrace &trace)
        : _mem(mem), _trace(trace)
    {}

    /** Enable/disable trace capture (setup runs with capture off). */
    void setRecording(bool on) { _recording = on; }
    bool recording() const { return _recording; }

    Word
    load(Addr addr) override
    {
        if (_recording && _inTx)
            _trace.ops.push_back({TxOp::Kind::Load, addr, 0});
        return _mem.load(addr);
    }

    void
    store(Addr addr, Word value) override
    {
        if (_recording && _inTx)
            _trace.ops.push_back({TxOp::Kind::Store, addr, value});
        else if (_recording && !_inTx)
            panic("store outside a transaction while recording");
        _mem.store(addr, value);
    }

    void
    txBegin() override
    {
        if (_inTx)
            panic("nested transactions are not supported (§III-A)");
        _inTx = true;
        if (_recording)
            _trace.ops.push_back({TxOp::Kind::TxBegin, 0, 0});
    }

    void
    txEnd() override
    {
        if (!_inTx)
            panic("txEnd without txBegin");
        _inTx = false;
        if (_recording) {
            _trace.ops.push_back({TxOp::Kind::TxEnd, 0, 0});
            ++_trace.numTransactions;
        }
    }

  private:
    FuncMem &_mem;
    ThreadTrace &_trace;
    bool _recording = false;
    bool _inTx = false;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_TRACE_RECORDER_HH
