/**
 * @file
 * Bump allocator over one thread's PM data arena.
 *
 * Workload data structures allocate nodes from here. Allocation is
 * metadata-free (a bump pointer) because the reproduced experiments never
 * free memory — the paper's micro-benchmarks are insert/enqueue loops.
 * Allocations are word aligned so every field is one loggable word.
 */

#ifndef SILO_WORKLOAD_PM_HEAP_HH
#define SILO_WORKLOAD_PM_HEAP_HH

#include "sim/address_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace silo::workload
{

/** Word-aligned bump allocator for a contiguous arena. */
class PmHeap
{
  public:
    /**
     * @param base First byte of the arena.
     * @param size_bytes Arena capacity.
     */
    PmHeap(Addr base, Addr size_bytes)
        : _base(base), _end(base + size_bytes), _next(base)
    {}

    /** Convenience: the standard arena of thread @p tid. */
    static PmHeap
    forThread(unsigned tid)
    {
        return PmHeap(addr_map::dataArenaBase(tid),
                      addr_map::dataArenaBytes);
    }

    /**
     * Allocate @p bytes, aligned to @p align (power of two >= 8).
     * @return address of the allocation.
     */
    Addr
    alloc(Addr bytes, Addr align = wordBytes)
    {
        Addr p = (_next + align - 1) & ~(align - 1);
        if (p + bytes > _end)
            fatal("PM arena exhausted; shrink the workload");
        _next = p + bytes;
        return p;
    }

    /** Allocate a whole number of cachelines (64 B aligned). */
    Addr
    allocLines(unsigned lines)
    {
        return alloc(Addr(lines) * lineBytes, lineBytes);
    }

    Addr base() const { return _base; }
    Addr used() const { return _next - _base; }

  private:
    Addr _base;
    Addr _end;
    Addr _next;
};

} // namespace silo::workload

#endif // SILO_WORKLOAD_PM_HEAP_HH
