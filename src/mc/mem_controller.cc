#include "mc/mem_controller.hh"

#include <algorithm>
#include <bit>

namespace silo::mc
{

namespace
{

/** WPQ forwarding / controller overhead for reads. */
constexpr Cycles mcForwardCycles = 4;

/** Channel transfer time for one drained entry. */
Cycles
transferCycles(unsigned bytes)
{
    // 16 B per cycle, minimum 2 cycles of command overhead.
    return std::max<Cycles>(2, bytes / 16);
}

} // namespace

MemController::MemController(EventQueue &eq, const SimConfig &cfg,
                             nvm::PmDevice &pm,
                             log::LogRegionStore &logs, std::string name)
    : _eq(eq), _cfg(cfg), _pm(pm), _logs(logs), _stats(name)
{
    _stats.addScalar(_writes);
    _stats.addScalar(_bytes);
    _stats.addScalar(_coalesced);
    _stats.addScalar(_forwards);
    _stats.addScalar(_reads);
    _stats.addScalar(_fullStalls);
    _stats.addDistribution(_occupancy);
    if (auto *tr = _eq.tracer())
        _track = tr->track("mem", std::move(name));
}

bool
MemController::enqueue(WpqEntry &&entry)
{
    // Coalesce into an existing same-line, same-disposition entry.
    for (auto &e : _wpq) {
        if (e.key == entry.key && e.held == entry.held &&
            e.logRegion == entry.logRegion) {
            std::uint32_t bits = entry.wordMask;
            while (bits) {
                unsigned idx = unsigned(std::countr_zero(bits));
                bits &= bits - 1;
                e.set(idx, entry.values[idx]);
            }
            e.bytes = std::min<unsigned>(lineBytes,
                                         e.bytes + entry.bytes);
            ++_coalesced;
            return true;
        }
    }

    // Two slots stay reserved for log-region writes so that logging
    // can always make forward progress even when buffered data writes
    // (e.g., LAD's held lines) fill the queue.
    unsigned reserve = _cfg.wpqEntries > 8 ? 2 : 0;
    unsigned limit = entry.logRegion ? _cfg.wpqEntries
                                     : _cfg.wpqEntries - reserve;
    if (_wpq.size() >= limit) {
        ++_fullStalls;
        return false;
    }

    if (entry.held)
        ++_heldCount;
    ++_writes;
    _bytes += entry.bytes;
    _wpq.push_back(std::move(entry));
    _occupancy.sample(_wpq.size());
    scheduleDrain();
    return true;
}

bool
MemController::tryWriteLine(Addr line_addr,
                            const std::array<Word, wordsPerLine> &values,
                            bool evicted, bool held)
{
    WpqEntry entry;
    entry.key = lineAlign(line_addr);
    entry.pmLine = pmLineAlign(line_addr);
    entry.bytes = lineBytes;
    entry.held = held;
    unsigned base = unsigned((entry.key - entry.pmLine) / wordBytes);
    for (unsigned w = 0; w < wordsPerLine; ++w)
        entry.set(base + w, values[w]);

    if (!enqueue(std::move(entry)))
        return false;
    if (_check)
        _check->onWpqAcceptLine(lineAlign(line_addr), values, evicted,
                                held);
    if (evicted && _evictionObserver)
        _evictionObserver(lineAlign(line_addr));
    return true;
}

bool
MemController::tryWriteWord(Addr word_addr, Word value)
{
    WpqEntry entry;
    entry.key = lineAlign(word_addr);
    entry.pmLine = pmLineAlign(word_addr);
    entry.bytes = wordBytes;
    entry.set(unsigned((wordAlign(word_addr) - entry.pmLine) /
                       wordBytes),
              value);
    if (!enqueue(std::move(entry)))
        return false;
    if (_check)
        _check->onWpqAcceptWord(wordAlign(word_addr), value);
    return true;
}

bool
MemController::tryWriteLog(Addr rec_addr, const log::LogRecord &record)
{
    WpqEntry entry;
    entry.key = lineAlign(rec_addr);
    entry.pmLine = pmLineAlign(rec_addr);
    entry.logRegion = true;
    entry.bytes = record.sizeBytes();
    // Mark every word the record's byte extent touches.
    Addr first = wordAlign(rec_addr);
    Addr last = wordAlign(rec_addr + record.sizeBytes() - 1);
    for (Addr a = first; a <= last; a += wordBytes)
        entry.set(unsigned((a - entry.pmLine) / wordBytes), 0);

    if (!enqueue(std::move(entry)))
        return false;
    // Accepted into the ADR domain: the record is durable.
    _logs.persist(rec_addr, record);
    return true;
}

void
MemController::requestWriteSlot(std::function<void()> cb)
{
    _writeWaiters.push_back(std::move(cb));
}

void
MemController::notifyWaiters(unsigned count)
{
    while (count-- && !_writeWaiters.empty()) {
        auto cb = std::move(_writeWaiters.front());
        _writeWaiters.pop_front();
        cb();
    }
}

void
MemController::releaseHeld(Addr line_addr)
{
    Addr key = lineAlign(line_addr);
    bool released = false;
    for (auto &e : _wpq) {
        if (e.held && e.key == key) {
            e.held = false;
            --_heldCount;
            released = true;
        }
    }
    if (released && _check)
        _check->onHeldRelease(key);
    scheduleDrain();
}

void
MemController::scheduleDrain(Cycles delay)
{
    if (_drainScheduled)
        return;
    _drainScheduled = true;
    _eq.scheduleAfter(delay, [this] {
        _drainScheduled = false;
        drainOne();
    }, EventQueue::prioDevice, prof::Tag::Mc);
}

void
MemController::drainOne()
{
    // Oldest drainable (non-held) entry first.
    auto it = std::find_if(_wpq.begin(), _wpq.end(),
                           [](const WpqEntry &e) { return !e.held; });
    if (it == _wpq.end())
        return;

    std::vector<nvm::WordWrite> words;
    words.reserve(std::size_t(std::popcount(it->wordMask)));
    std::uint32_t bits = it->wordMask;
    while (bits) {
        unsigned idx = unsigned(std::countr_zero(bits));
        bits &= bits - 1;
        words.push_back({idx, it->values[idx]});
    }

    if (!_pm.tryWrite(it->pmLine, words, it->logRegion)) {
        // Device buffer is saturated; resume when a slot frees.
        _pm.registerSlotWaiter([this] { scheduleDrain(); });
        return;
    }

    Cycles transfer = transferCycles(it->bytes);
    if (auto *tr = _eq.tracer()) {
        tr->completeSpan(_track,
                         it->logRegion ? "drain-log" : "drain-data",
                         _eq.now(), _eq.now() + transfer);
    }
    _wpq.erase(it);
    notifyWaiters(1);
    if (!_wpq.empty())
        scheduleDrain(transfer);
}

void
MemController::read(Addr line_addr, std::function<void()> done)
{
    Addr key = lineAlign(line_addr);
    for (const auto &e : _wpq) {
        if (e.key == key && !e.logRegion) {
            ++_forwards;
            _eq.scheduleAfter(mcForwardCycles, std::move(done),
                              EventQueue::prioDevice, prof::Tag::Mc);
            return;
        }
    }
    ++_reads;
    Tick completion = _pm.read(line_addr) + mcForwardCycles;
    _eq.schedule(completion, std::move(done), EventQueue::prioDevice,
                 prof::Tag::Mc);
}

void
MemController::applyEntry(const WpqEntry &entry)
{
    std::vector<nvm::WordWrite> words;
    std::uint32_t bits = entry.wordMask;
    while (bits) {
        unsigned idx = unsigned(std::countr_zero(bits));
        bits &= bits - 1;
        words.push_back({idx, entry.values[idx]});
    }
    // Push through the device buffer so DCW accounting stays uniform,
    // then let the caller drain the buffer.
    while (!_pm.tryWrite(entry.pmLine, words, entry.logRegion))
        _pm.drainAll();
}

void
MemController::crashDrain()
{
    if (auto *tr = _eq.tracer())
        tr->instant(_track, "adr-crash-drain", _eq.now());
    for (const auto &e : _wpq) {
        if (!e.held)
            applyEntry(e);
        else if (_check)
            _check->onHeldDiscard(e.key);
    }
    _wpq.clear();
    _heldCount = 0;
    _pm.drainAll();
}

void
MemController::drainAll()
{
    // Held entries are revocable-uncommitted (LAD): the final drain
    // discards them exactly like a crash would — applying them would
    // put uncommitted data on media with nothing to revoke it.
    for (const auto &e : _wpq) {
        if (!e.held)
            applyEntry(e);
        else if (_check)
            _check->onHeldDiscard(e.key);
    }
    _wpq.clear();
    _heldCount = 0;
    _pm.drainAll();
}

} // namespace silo::mc
