/**
 * @file
 * The memory controller: a 64-entry write pending queue (WPQ) inside
 * the ADR persistent domain, a read path with WPQ forwarding, and a
 * FIFO drain engine into the PM device (Table II).
 *
 * A write is durable the moment it is accepted into the WPQ (the ADR
 * persist point every scheme's commit rules are defined against).
 * Same-line writes coalesce inside the WPQ. When the queue is full,
 * producers wait in FIFO order — this back-pressure is what couples a
 * scheme's write traffic to its transaction throughput.
 *
 * LAD support: entries can be enqueued "held" — durable but not
 * drainable (LAD's in-MC buffering of uncommitted cachelines); commit
 * releases them and a crash discards them.
 */

#ifndef SILO_MC_MEM_CONTROLLER_HH
#define SILO_MC_MEM_CONTROLLER_HH

#include <array>
#include <deque>
#include <functional>

#include "nvm/pm_device.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/log_region.hh"
#include "sim/persist_event_sink.hh"
#include "sim/stats.hh"
#include "sim/tracer.hh"

namespace silo::mc
{

/** Memory controller with an ADR write pending queue. */
class MemController
{
  public:
    /**
     * @param name Stats/trace label; the multi-MC router passes
     *        "mc<i>" so per-controller statistics stay distinguishable.
     */
    MemController(EventQueue &eq, const SimConfig &cfg,
                  nvm::PmDevice &pm, log::LogRegionStore &logs,
                  std::string name = "mc");

    /** @name Write producers (all return false when the WPQ is full) */
    /// @{

    /**
     * Accept a full 64 B cacheline write.
     * @param line_addr 64 B-aligned address.
     * @param values The line's eight words.
     * @param evicted True on the cacheline-eviction path (CE) — fires
     *        the eviction observer used by Silo's flush-bit logic.
     * @param held True for LAD's buffered uncommitted lines.
     */
    bool tryWriteLine(Addr line_addr,
                      const std::array<Word, wordsPerLine> &values,
                      bool evicted, bool held = false);

    /** Accept an 8 B in-place word update (Silo's log-as-data path). */
    bool tryWriteWord(Addr word_addr, Word value);

    /**
     * Accept a log-region record write of record.sizeBytes() bytes at
     * @p rec_addr; the record becomes durable at acceptance.
     */
    bool tryWriteLog(Addr rec_addr, const log::LogRecord &record);
    /// @}

    /** FIFO wait for WPQ space; @p cb runs once when a slot frees. */
    void requestWriteSlot(std::function<void()> cb);

    unsigned freeWpqSlots() const
    {
        return _cfg.wpqEntries - unsigned(_wpq.size());
    }

    /** @name LAD held-entry control */
    /// @{
    /** Make held entries for @p line_addr drainable (LAD commit). */
    void releaseHeld(Addr line_addr);
    /** Number of held entries currently buffered. */
    unsigned heldEntries() const { return _heldCount; }
    /// @}

    /**
     * Issue a read of the 64 B line at @p line_addr; @p done runs at
     * completion (forwarded from the WPQ or read from media).
     */
    void read(Addr line_addr, std::function<void()> done);

    /** Observer invoked when an evicted data line is accepted. */
    void
    setEvictionObserver(std::function<void(Addr)> observer)
    {
        _evictionObserver = std::move(observer);
    }

    /**
     * Register the persistency checker (nullptr when disabled). Accept,
     * held-release, and crash-discard events are reported to it before
     * any scheme observer runs.
     */
    void setCheckSink(log::PersistEventSink *sink) { _check = sink; }

    /**
     * Crash: ADR drains every non-held entry into the media and the
     * held (uncommitted LAD) entries are discarded.
     */
    void crashDrain();

    /** End of run: drain everything drainable, ignoring timing; held
     *  (revocable-uncommitted) entries are discarded like a crash. */
    void drainAll();

    /** @name Statistics */
    /// @{
    std::uint64_t acceptedWrites() const { return _writes.value(); }
    std::uint64_t acceptedBytes() const { return _bytes.value(); }
    std::uint64_t coalescedWrites() const { return _coalesced.value(); }
    std::uint64_t readForwards() const { return _forwards.value(); }
    std::uint64_t fullStalls() const { return _fullStalls.value(); }
    /** Current WPQ occupancy in entries (interval-sampler probe). */
    unsigned wpqOccupancy() const { return unsigned(_wpq.size()); }
    /// @}

    stats::StatGroup &statGroup() { return _stats; }
    const stats::StatGroup &statGroup() const { return _stats; }

  private:
    struct WpqEntry
    {
        Addr key;          //!< 64 B line key (coalescing granularity)
        Addr pmLine;       //!< 256 B on-PM buffer line
        bool logRegion = false;
        bool held = false;
        /**
         * Dirty words, indexed within the 256 B pm line: bit i of
         * wordMask gates values[i]. Flat storage (the index space is
         * only 32 words) replaced a per-entry std::map whose node
         * churn showed up in whole-simulation profiles; drain paths
         * iterate the mask ascending, matching the map's order.
         */
        std::uint32_t wordMask = 0;
        std::array<Word, pmBufferLineBytes / wordBytes> values;
        unsigned bytes = 0;

        void
        set(unsigned idx, Word value)
        {
            wordMask |= std::uint32_t(1) << idx;
            values[idx] = value;
        }
    };

    /** Core accept path shared by the tryWrite* entry points. */
    bool enqueue(WpqEntry &&entry);

    /** Drain the oldest drainable entry; reschedules itself. */
    void drainOne();
    void scheduleDrain(Cycles delay = 0);
    void notifyWaiters(unsigned count);

    /** Apply one entry straight to media (crash / final drain). */
    void applyEntry(const WpqEntry &entry);

    EventQueue &_eq;
    const SimConfig &_cfg;
    nvm::PmDevice &_pm;
    log::LogRegionStore &_logs;

    std::deque<WpqEntry> _wpq;
    std::deque<std::function<void()>> _writeWaiters;
    std::function<void(Addr)> _evictionObserver;
    log::PersistEventSink *_check = nullptr;
    unsigned _heldCount = 0;
    bool _drainScheduled = false;

    stats::StatGroup _stats;
    stats::Scalar _writes{"wpq_writes", "writes accepted into the WPQ"};
    stats::Scalar _bytes{"wpq_bytes", "bytes accepted into the WPQ"};
    stats::Scalar _coalesced{"wpq_coalesced",
        "writes merged into an existing WPQ entry"};
    stats::Scalar _forwards{"read_forwards",
        "reads served by WPQ forwarding"};
    stats::Scalar _reads{"reads", "reads issued to the PM device"};
    stats::Scalar _fullStalls{"wpq_full_stalls",
        "write attempts rejected because the WPQ was full"};
    stats::Distribution _occupancy{
        "wpq_occupancy", "WPQ entries occupied at each accept", 4, 32};
    /** This controller's trace timeline; 0 when tracing is off. */
    trace::Tracer::TrackId _track = 0;
};

} // namespace silo::mc

#endif // SILO_MC_MEM_CONTROLLER_HH
