#include "mc/mc_router.hh"

#include "sim/address_map.hh"

namespace silo::mc
{

McRouter::McRouter(EventQueue &eq, const SimConfig &cfg,
                   nvm::PmDevice &pm, log::LogRegionStore &logs)
{
    unsigned n = cfg.numMemControllers ? cfg.numMemControllers : 1;
    for (unsigned i = 0; i < n; ++i) {
        std::string name = n == 1 ? "mc" : "mc" + std::to_string(i);
        _mcs.push_back(std::make_unique<MemController>(
            eq, cfg, pm, logs, std::move(name)));
    }
}

unsigned
McRouter::route(Addr addr) const
{
    if (_mcs.size() == 1)
        return 0;
    if (addr_map::inDataRegion(addr)) {
        return addr_map::dataArenaOwner(addr) %
               unsigned(_mcs.size());
    }
    if (addr_map::inLogRegion(addr)) {
        unsigned tid = unsigned((addr - addr_map::logRegionBase) /
                                addr_map::logAreaBytes);
        return tid % unsigned(_mcs.size());
    }
    return unsigned((addr / pmBufferLineBytes) % _mcs.size());
}

unsigned
McRouter::heldEntries() const
{
    unsigned total = 0;
    for (const auto &mc : _mcs)
        total += mc->heldEntries();
    return total;
}

std::uint64_t
McRouter::fullStalls() const
{
    std::uint64_t total = 0;
    for (const auto &mc : _mcs)
        total += mc->fullStalls();
    return total;
}

std::uint64_t
McRouter::acceptedWrites() const
{
    std::uint64_t total = 0;
    for (const auto &mc : _mcs)
        total += mc->acceptedWrites();
    return total;
}

std::uint64_t
McRouter::acceptedBytes() const
{
    std::uint64_t total = 0;
    for (const auto &mc : _mcs)
        total += mc->acceptedBytes();
    return total;
}

std::uint64_t
McRouter::coalescedWrites() const
{
    std::uint64_t total = 0;
    for (const auto &mc : _mcs)
        total += mc->coalescedWrites();
    return total;
}

std::uint64_t
McRouter::readForwards() const
{
    std::uint64_t total = 0;
    for (const auto &mc : _mcs)
        total += mc->readForwards();
    return total;
}

void
McRouter::setEvictionObserver(std::function<void(Addr)> observer)
{
    for (auto &mc : _mcs)
        mc->setEvictionObserver(observer);
}

void
McRouter::crashDrain()
{
    for (auto &mc : _mcs)
        mc->crashDrain();
}

void
McRouter::drainAll()
{
    for (auto &mc : _mcs)
        mc->drainAll();
}

void
McRouter::printStats(std::ostream &os)
{
    for (auto &mc : _mcs)
        mc->statGroup().print(os);
}

} // namespace silo::mc
