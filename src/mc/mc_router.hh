/**
 * @file
 * Routing across multiple memory controllers (§III-D "Multiple MCs").
 *
 * The paper notes that with several MCs, each MC contains a log
 * controller and the log generator sends all logs of one transaction
 * to the same MC, so the logs and the in-place updates end up at the
 * same controller and no cross-MC coordination is needed. We realize
 * that property by routing through the owning thread: a thread's data
 * arena and its log area map to the same controller.
 *
 * With numMemControllers == 1 (the Table II default) the router is a
 * transparent pass-through.
 */

#ifndef SILO_MC_MC_ROUTER_HH
#define SILO_MC_MC_ROUTER_HH

#include <memory>
#include <vector>

#include "mc/mem_controller.hh"

namespace silo::mc
{

/** A bank of memory controllers with thread-affine routing. */
class McRouter
{
  public:
    McRouter(EventQueue &eq, const SimConfig &cfg, nvm::PmDevice &pm,
             log::LogRegionStore &logs);

    /** Number of controllers. */
    unsigned numControllers() const
    {
        return unsigned(_mcs.size());
    }

    /** The controller owning @p addr. */
    MemController &controllerFor(Addr addr) { return *_mcs[route(addr)]; }
    MemController &controllerAt(unsigned i) { return *_mcs[i]; }

    /** @name MemController API, dispatched by address */
    /// @{
    bool
    tryWriteLine(Addr line_addr,
                 const std::array<Word, wordsPerLine> &values,
                 bool evicted, bool held = false)
    {
        return controllerFor(line_addr)
            .tryWriteLine(line_addr, values, evicted, held);
    }

    bool
    tryWriteWord(Addr word_addr, Word value)
    {
        return controllerFor(word_addr).tryWriteWord(word_addr, value);
    }

    bool
    tryWriteLog(Addr rec_addr, const log::LogRecord &record)
    {
        return controllerFor(rec_addr).tryWriteLog(rec_addr, record);
    }

    /** Wait for a slot on the controller owning @p addr. */
    void
    requestWriteSlot(Addr addr, std::function<void()> cb)
    {
        controllerFor(addr).requestWriteSlot(std::move(cb));
    }

    void
    read(Addr line_addr, std::function<void()> done)
    {
        controllerFor(line_addr).read(line_addr, std::move(done));
    }

    void
    releaseHeld(Addr line_addr)
    {
        controllerFor(line_addr).releaseHeld(line_addr);
    }
    /// @}

    /** @name Aggregates and broadcasts */
    /// @{
    unsigned heldEntries() const;
    std::uint64_t fullStalls() const;
    std::uint64_t acceptedWrites() const;
    std::uint64_t acceptedBytes() const;
    std::uint64_t coalescedWrites() const;
    std::uint64_t readForwards() const;

    /** Register the observer with every controller. */
    void setEvictionObserver(std::function<void(Addr)> observer);

    /** Register the persistency checker with every controller. */
    void
    setCheckSink(log::PersistEventSink *sink)
    {
        for (auto &mc : _mcs)
            mc->setCheckSink(sink);
    }

    void crashDrain();
    void drainAll();
    void printStats(std::ostream &os);
    /// @}

  private:
    /**
     * Controller index for @p addr: thread-affine for data arenas and
     * log areas so one transaction's traffic stays on one MC.
     */
    unsigned route(Addr addr) const;

    std::vector<std::unique_ptr<MemController>> _mcs;
};

} // namespace silo::mc

#endif // SILO_MC_MC_ROUTER_HH
