#include "nvm/pm_device.hh"

#include <algorithm>
#include <bit>

namespace silo::nvm
{

PmDevice::PmDevice(EventQueue &eq, const SimConfig &cfg)
    : _eq(eq), _cfg(cfg), _lines(cfg.onPmBufferLines),
      _banks(cfg.pmBanks, 0)
{
    _stats.addScalar(_wordWrites);
    _stats.addScalar(_lineWrites);
    _stats.addScalar(_dcwSuppressed);
    _stats.addScalar(_dataWordWrites);
    _stats.addScalar(_logWordWrites);
    _stats.addScalar(_reads);
    _stats.addScalar(_bufferHits);
    _stats.addScalar(_coalesced);
    _stats.addDistribution(_evictionWords);
    if (auto *tr = _eq.tracer())
        _track = tr->track("mem", "pm");
}

unsigned
PmDevice::busyBanks() const
{
    unsigned busy = 0;
    for (Tick until : _banks)
        busy += until > _eq.now();
    return busy;
}

unsigned
PmDevice::bufferOccupancy() const
{
    unsigned occupied = 0;
    for (const auto &line : _lines)
        occupied += line.valid;
    return occupied;
}

Tick
PmDevice::occupyBank(unsigned bank, Cycles busy)
{
    Tick start = std::max(_eq.now(), _banks[bank]);
    _banks[bank] = start + busy;
    return _banks[bank];
}

int
PmDevice::findLine(Addr pm_line) const
{
    for (unsigned i = 0; i < _lines.size(); ++i) {
        if (_lines[i].valid && !_lines[i].evicting &&
            _lines[i].base == pm_line) {
            return int(i);
        }
    }
    return -1;
}

unsigned
PmDevice::applyToMedia(const BufferLine &line)
{
    if (_check) {
        std::vector<std::pair<unsigned, Word>> words;
        std::uint32_t check_bits = line.wordMask;
        while (check_bits) {
            unsigned idx = unsigned(std::countr_zero(check_bits));
            check_bits &= check_bits - 1;
            words.emplace_back(idx, line.values[idx]);
        }
        _check->onMediaWrite(line.base, words, line.logRegion);
    }
    unsigned changed = 0;
    std::uint32_t bits = line.wordMask;
    while (bits) {
        unsigned idx = unsigned(std::countr_zero(bits));
        bits &= bits - 1;
        Word value = line.values[idx];
        Addr word_addr = line.base + Addr(idx) * wordBytes;
        if (line.logRegion) {
            // Log appends are fresh content; every dirty word writes.
            _media.store(word_addr, value);
            ++changed;
            ++_logWordWrites;
        } else if (_media.load(word_addr) != value) {
            _media.store(word_addr, value);
            ++changed;
            ++_dataWordWrites;
        } else {
            ++_dcwSuppressed;
        }
    }
    _wordWrites += changed;
    return changed;
}

void
PmDevice::startEviction(unsigned idx)
{
    BufferLine &line = _lines[idx];
    line.evicting = true;

    unsigned changed = applyToMedia(line);
    _evictionWords.sample(changed);
    if (changed == 0) {
        // DCW removed every word: no media write happens at all; the
        // slot frees immediately.
        line = BufferLine{};
        _eq.scheduleAfter(0, [this] { notifyOneWaiter(); },
                          EventQueue::prioDevice, prof::Tag::Nvm);
        return;
    }

    ++_lineWrites;
    Cycles busy = _cfg.pmWriteBaseCycles +
                  _cfg.pmWritePerWordCycles * Cycles(changed);
    unsigned bank = bankOf(line.base);
    Tick done = occupyBank(bank, busy);
    if (auto *tr = _eq.tracer()) {
        // One sub-track per bank so concurrent programming pulses on
        // different banks render side by side.
        tr->completeSpan(
            tr->track("mem", "pm-bank" + std::to_string(bank)),
            "program", done - busy, done);
    }
    _eq.schedule(done, [this, idx] {
        _lines[idx] = BufferLine{};
        notifyOneWaiter();
    }, EventQueue::prioDevice, prof::Tag::Nvm);
}

bool
PmDevice::tryWrite(Addr pm_line, const std::vector<WordWrite> &words,
                   bool log_region)
{
    // Coalesce into a resident line if one matches (§III-E cases 1-3).
    int idx = findLine(pm_line);
    if (idx >= 0) {
        BufferLine &line = _lines[idx];
        for (const auto &w : words)
            line.set(w.wordIdx, w.value);
        line.lastUse = _eq.now();
        ++_coalesced;
        return true;
    }

    // Allocate a free slot, or evict the LRU non-evicting line.
    int free_idx = -1;
    int lru_idx = -1;
    for (unsigned i = 0; i < _lines.size(); ++i) {
        if (!_lines[i].valid) {
            free_idx = int(i);
            break;
        }
        if (!_lines[i].evicting &&
            (lru_idx < 0 || _lines[i].lastUse < _lines[lru_idx].lastUse)) {
            lru_idx = int(i);
        }
    }

    if (free_idx < 0) {
        if (lru_idx < 0)
            return false;   // everything is mid-eviction: back-pressure
        startEviction(unsigned(lru_idx));
        if (!_lines[lru_idx].valid) {
            // DCW freed the slot synchronously.
            free_idx = lru_idx;
        } else {
            return false;   // retry once the eviction completes
        }
    }

    BufferLine &line = _lines[free_idx];
    line.valid = true;
    line.base = pm_line;
    line.logRegion = log_region;
    line.lastUse = _eq.now();
    line.wordMask = 0;
    for (const auto &w : words)
        line.set(w.wordIdx, w.value);
    line.evicting = false;
    return true;
}

void
PmDevice::registerSlotWaiter(std::function<void()> cb)
{
    _slotWaiters.push_back(std::move(cb));
}

void
PmDevice::notifyOneWaiter()
{
    if (_slotWaiters.empty())
        return;
    auto cb = std::move(_slotWaiters.front());
    _slotWaiters.pop_front();
    cb();
}

Tick
PmDevice::read(Addr line_addr)
{
    Addr pm_line = pmLineAlign(line_addr);
    for (const auto &line : _lines) {
        if (line.valid && line.base == pm_line) {
            ++_bufferHits;
            // Buffer reads are much faster than media reads.
            return _eq.now() + 8;
        }
    }
    ++_reads;
    unsigned bank = bankOf(pm_line);
    Tick start = std::max(_eq.now(), _banks[bank]);
    _banks[bank] = start + _cfg.pmReadOccupancyCycles;
    return start + _cfg.pmReadCycles;
}

void
PmDevice::drainAll()
{
    if (auto *tr = _eq.tracer())
        tr->instant(_track, "buffer-drain", _eq.now());
    for (auto &line : _lines) {
        if (line.valid && !line.evicting)
            applyToMedia(line);
        line = BufferLine{};
    }
}

} // namespace silo::nvm
