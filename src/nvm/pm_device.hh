/**
 * @file
 * The persistent-memory DIMM model.
 *
 * Implements the paper's PM substrate (§III-E, Table II): banked
 * phase-change media with 50/150 ns read/write latency, an internal
 * ("on-PM") buffer of 256 B lines that coalesces incoming writes, and
 * bit-level write reduction via data-comparison-write (DCW) — only
 * words whose value actually changes are written to the media. The
 * media word-write counter is the metric behind Fig. 11 and Fig. 14b.
 *
 * The buffer is inside the ADR domain: its contents survive a crash
 * (drainAll() models the ADR flush).
 */

#ifndef SILO_NVM_PM_DEVICE_HH
#define SILO_NVM_PM_DEVICE_HH

#include <array>
#include <deque>
#include <functional>
#include <vector>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/persist_event_sink.hh"
#include "sim/stats.hh"
#include "sim/tracer.hh"
#include "sim/word_store.hh"

namespace silo::nvm
{

/** One word of an incoming PM write: index within the 256 B line. */
struct WordWrite
{
    unsigned wordIdx;
    Word value;
};

/** Banked PCM with an internal write-coalescing buffer. */
class PmDevice
{
  public:
    PmDevice(EventQueue &eq, const SimConfig &cfg);

    /**
     * Absorb a write into the on-PM buffer.
     *
     * @param pm_line 256 B-aligned base address.
     * @param words Dirty words within the line.
     * @param log_region True for log-region traffic (no DCW compare;
     *        log appends always change the media).
     * @return false when every buffer line is busy evicting — the
     *         caller must retry after registerSlotWaiter().
     */
    bool tryWrite(Addr pm_line, const std::vector<WordWrite> &words,
                  bool log_region);

    /** Call @p cb once, the next time a buffer slot frees up. */
    void registerSlotWaiter(std::function<void()> cb);

    /**
     * Issue a media read covering @p line_addr (64 B line).
     * @return absolute completion tick.
     */
    Tick read(Addr line_addr);

    /**
     * Flush the whole buffer to media, ignoring timing — models the
     * ADR drain on a crash and finalizes counters at the end of a run.
     */
    void drainAll();

    /** The media image (word values actually persisted). */
    WordStore &media() { return _media; }
    const WordStore &media() const { return _media; }

    /** Register the persistency checker (nullptr when disabled). */
    void setCheckSink(log::PersistEventSink *sink) { _check = sink; }

    /** @name Statistics */
    /// @{
    std::uint64_t mediaWordWrites() const
    {
        return _wordWrites.value();
    }
    std::uint64_t mediaLineWrites() const
    {
        return _lineWrites.value();
    }
    std::uint64_t dcwSuppressedWords() const
    {
        return _dcwSuppressed.value();
    }
    std::uint64_t dataRegionWordWrites() const
    {
        return _dataWordWrites.value();
    }
    std::uint64_t logRegionWordWrites() const
    {
        return _logWordWrites.value();
    }
    std::uint64_t mediaReads() const { return _reads.value(); }
    std::uint64_t bufferReadHits() const { return _bufferHits.value(); }
    std::uint64_t bufferCoalescedWrites() const
    {
        return _coalesced.value();
    }
    /** Banks still busy at the current tick (interval-sampler probe). */
    unsigned busyBanks() const;
    /** Valid on-PM buffer lines (interval-sampler probe). */
    unsigned bufferOccupancy() const;
    /// @}

    stats::StatGroup &statGroup() { return _stats; }
    const stats::StatGroup &statGroup() const { return _stats; }

  private:
    struct BufferLine
    {
        Addr base = 0;   //!< 256 B-aligned address
        /** Dirty words of the line: bit i of wordMask gates values[i]. */
        std::uint32_t wordMask = 0;
        std::array<Word, pmBufferLineBytes / wordBytes> values{};
        bool logRegion = false;
        Tick lastUse = 0;
        bool evicting = false;
        bool valid = false;

        void
        set(unsigned idx, Word value)
        {
            wordMask |= std::uint32_t(1) << idx;
            values[idx] = value;
        }
    };

    unsigned bankOf(Addr addr) const
    {
        return unsigned((addr / pmBufferLineBytes) % _banks.size());
    }

    /** Occupy @p bank for @p busy cycles; @return completion tick. */
    Tick occupyBank(unsigned bank, Cycles busy);

    /** Find the buffer line holding @p pm_line; -1 if absent. */
    int findLine(Addr pm_line) const;

    /** Start evicting @p line; frees the slot at media-write end. */
    void startEviction(unsigned idx);

    /** Apply one line's content to media and count DCW'd word writes. */
    unsigned applyToMedia(const BufferLine &line);

    void notifyOneWaiter();

    EventQueue &_eq;
    const SimConfig &_cfg;
    std::vector<BufferLine> _lines;
    std::vector<Tick> _banks;
    std::deque<std::function<void()>> _slotWaiters;
    WordStore _media;
    log::PersistEventSink *_check = nullptr;

    stats::StatGroup _stats{"pm"};
    stats::Scalar _wordWrites{"media_word_writes",
        "8B words written to the physical media (Fig. 11 metric)"};
    stats::Scalar _lineWrites{"media_line_writes",
        "256B buffer lines written back to the media"};
    stats::Scalar _dcwSuppressed{"dcw_suppressed_words",
        "words skipped by data-comparison-write"};
    stats::Scalar _dataWordWrites{"data_word_writes",
        "media word writes to the data region"};
    stats::Scalar _logWordWrites{"log_word_writes",
        "media word writes to the log region"};
    stats::Scalar _reads{"media_reads", "media line reads"};
    stats::Scalar _bufferHits{"buffer_read_hits",
        "reads served by the on-PM buffer"};
    stats::Scalar _coalesced{"buffer_coalesced_writes",
        "writes merged into a resident buffer line"};
    stats::Distribution _evictionWords{"eviction_changed_words",
        "words actually programmed per buffer-line eviction", 1, 33};
    /** Device trace timeline; 0 when tracing is off. */
    trace::Tracer::TrackId _track = 0;
};

} // namespace silo::nvm

#endif // SILO_NVM_PM_DEVICE_HH
