/**
 * @file
 * A minimal, dependency-free SHA-256 (FIPS 180-4) for content
 * fingerprinting — the golden determinism regression checks the hash
 * of sweep results JSON against a checked-in digest. Not a hot path
 * and not security-sensitive; chosen over std::hash because the
 * digest must be stable across platforms, compilers and processes.
 */

#ifndef SILO_SIM_SHA256_HH
#define SILO_SIM_SHA256_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace silo
{

/** Streaming SHA-256; use sha256Hex() for the one-shot case. */
class Sha256
{
  public:
    void
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        _total += len;
        while (len > 0) {
            std::size_t take = std::min(len, 64 - _fill);
            std::memcpy(_block.data() + _fill, p, take);
            _fill += take;
            p += take;
            len -= take;
            if (_fill == 64) {
                compress();
                _fill = 0;
            }
        }
    }

    /** Finalize and return the digest as 64 lowercase hex chars. */
    std::string
    hex()
    {
        std::uint64_t bits = _total * 8;
        std::uint8_t pad = 0x80;
        update(&pad, 1);
        std::uint8_t zero = 0;
        while (_fill != 56)
            update(&zero, 1);
        std::array<std::uint8_t, 8> len_be;
        for (int i = 0; i < 8; ++i)
            len_be[i] = std::uint8_t(bits >> (56 - 8 * i));
        update(len_be.data(), 8);

        static const char digits[] = "0123456789abcdef";
        std::string out(64, '0');
        for (int i = 0; i < 8; ++i) {
            for (int b = 0; b < 4; ++b) {
                std::uint8_t byte =
                    std::uint8_t(_h[i] >> (24 - 8 * b));
                out[std::size_t(i * 8 + b * 2)] = digits[byte >> 4];
                out[std::size_t(i * 8 + b * 2 + 1)] =
                    digits[byte & 0xF];
            }
        }
        return out;
    }

  private:
    static std::uint32_t
    rotr(std::uint32_t x, unsigned n)
    {
        return (x >> n) | (x << (32 - n));
    }

    void
    compress()
    {
        static constexpr std::uint32_t k[64] = {
            0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
            0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
            0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
            0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
            0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
            0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
            0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
            0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
            0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
            0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
            0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
            0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
            0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
            0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
            0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
            0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

        std::uint32_t w[64];
        for (int i = 0; i < 16; ++i) {
            w[i] = std::uint32_t(_block[std::size_t(i) * 4]) << 24 |
                   std::uint32_t(_block[std::size_t(i) * 4 + 1]) << 16 |
                   std::uint32_t(_block[std::size_t(i) * 4 + 2]) << 8 |
                   std::uint32_t(_block[std::size_t(i) * 4 + 3]);
        }
        for (int i = 16; i < 64; ++i) {
            std::uint32_t s0 = rotr(w[i - 15], 7) ^
                               rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
            std::uint32_t s1 = rotr(w[i - 2], 17) ^
                               rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16] + s0 + w[i - 7] + s1;
        }

        std::uint32_t a = _h[0], b = _h[1], c = _h[2], d = _h[3];
        std::uint32_t e = _h[4], f = _h[5], g = _h[6], h = _h[7];
        for (int i = 0; i < 64; ++i) {
            std::uint32_t s1 =
                rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
            std::uint32_t ch = (e & f) ^ (~e & g);
            std::uint32_t t1 = h + s1 + ch + k[i] + w[i];
            std::uint32_t s0 =
                rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
            std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
            std::uint32_t t2 = s0 + maj;
            h = g;
            g = f;
            f = e;
            e = d + t1;
            d = c;
            c = b;
            b = a;
            a = t1 + t2;
        }
        _h[0] += a;
        _h[1] += b;
        _h[2] += c;
        _h[3] += d;
        _h[4] += e;
        _h[5] += f;
        _h[6] += g;
        _h[7] += h;
    }

    std::array<std::uint32_t, 8> _h{0x6a09e667, 0xbb67ae85,
                                    0x3c6ef372, 0xa54ff53a,
                                    0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};
    std::array<std::uint8_t, 64> _block{};
    std::size_t _fill = 0;
    std::uint64_t _total = 0;
};

/** SHA-256 of @p data as lowercase hex. */
inline std::string
sha256Hex(std::string_view data)
{
    Sha256 h;
    h.update(data.data(), data.size());
    return h.hex();
}

} // namespace silo

#endif // SILO_SIM_SHA256_HH
