/**
 * @file
 * Simulated-system configuration (defaults follow Table II of the paper).
 *
 * One SimConfig fully describes a system: core count, cache geometry,
 * memory-controller queues, PM device timing, and the knobs each logging
 * scheme exposes. The experiment harness mutates copies of the default
 * config to drive parameter sweeps (e.g., Fig. 15's log-buffer latency).
 */

#ifndef SILO_SIM_CONFIG_HH
#define SILO_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace silo
{

/** Which atomic-durability design the memory system implements. */
enum class SchemeKind
{
    None,       //!< no durability mechanism (raw memory system)
    Base,       //!< flush undo+redo log + updated cacheline per store
    Fwb,        //!< hardware undo+redo with force-write-back (FWB)
    MorLog,     //!< morphable logging with on-chip merge buffer
    Lad,        //!< logless atomic durability (LAD)
    Silo,       //!< this paper: speculative "log as data" logging
    SwEadr,     //!< software WAL on an eADR (persistent-cache) machine
};

/** @return short display name used in report tables. */
inline const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::None: return "None";
      case SchemeKind::Base: return "Base";
      case SchemeKind::Fwb: return "FWB";
      case SchemeKind::MorLog: return "MorLog";
      case SchemeKind::Lad: return "LAD";
      case SchemeKind::Silo: return "Silo";
      case SchemeKind::SwEadr: return "SW-eADR";
    }
    panic("unknown scheme kind");
}

/** All six durability designs, in the paper's comparison order. */
inline constexpr SchemeKind allSchemes[] = {
    SchemeKind::Base, SchemeKind::Fwb,  SchemeKind::MorLog,
    SchemeKind::Lad,  SchemeKind::Silo, SchemeKind::SwEadr,
};

/** Parse a schemeName() back to its kind; fatal() if unknown. */
inline SchemeKind
schemeFromName(const std::string &name)
{
    for (SchemeKind kind : allSchemes) {
        if (name == schemeName(kind))
            return kind;
    }
    if (name == schemeName(SchemeKind::None))
        return SchemeKind::None;
    fatal("unknown scheme: " + name);
}

/**
 * Deliberately seeded durability bugs (the checker's mutation harness).
 *
 * Each mutant breaks exactly one ordering/accounting rule of one scheme
 * in a way end-state tests can miss; the persistency checker must flag
 * every one with a specific violation kind (tests/check). Production
 * runs keep None.
 */
enum class MutationKind
{
    None,
    DropUndoLog,        //!< Base: never write the per-store log record
    ReorderLogData,     //!< Base: flush the cacheline before its log
    SkipCommitMarker,   //!< Base: Tx_end completes without the marker
    DropHeldRelease,    //!< LAD: commit never releases held MC entries
    StaleFlushBit,      //!< Silo: flush-bits matched on a stale line
    SkipCrashUndoFlush, //!< Silo: battery drops uncommitted undo logs
    DoubleInPlace,      //!< Silo: in-place update ignores flush-bits
};

/** @return stable kebab-case name of a seeded mutation. */
inline const char *
mutationName(MutationKind kind)
{
    switch (kind) {
      case MutationKind::None: return "none";
      case MutationKind::DropUndoLog: return "drop-undo-log";
      case MutationKind::ReorderLogData: return "reorder-log-data";
      case MutationKind::SkipCommitMarker: return "skip-commit-marker";
      case MutationKind::DropHeldRelease: return "drop-held-release";
      case MutationKind::StaleFlushBit: return "stale-flush-bit";
      case MutationKind::SkipCrashUndoFlush:
        return "skip-crash-undo-flush";
      case MutationKind::DoubleInPlace: return "double-in-place";
    }
    panic("unknown mutation kind");
}

/** All seeded mutations (without None), for the fuzzer's bug harness. */
inline constexpr MutationKind allMutations[] = {
    MutationKind::DropUndoLog,        MutationKind::ReorderLogData,
    MutationKind::SkipCommitMarker,   MutationKind::DropHeldRelease,
    MutationKind::StaleFlushBit,      MutationKind::SkipCrashUndoFlush,
    MutationKind::DoubleInPlace,
};

/** Parse a mutationName() back to its kind; fatal() if unknown. */
inline MutationKind
mutationFromName(const std::string &name)
{
    if (name == mutationName(MutationKind::None))
        return MutationKind::None;
    for (MutationKind kind : allMutations) {
        if (name == mutationName(kind))
            return kind;
    }
    fatal("unknown mutation: " + name);
}

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes;
    unsigned ways;
    Cycles latency;
};

/** Full system configuration. */
struct SimConfig
{
    // --- Processor (Table II) ---
    unsigned numCores = 8;
    double coreGhz = 2.0;
    /** Fixed non-memory cost charged per replayed operation. */
    Cycles opOverheadCycles = 1;

    CacheConfig l1d{32 * 1024, 8, 4};
    CacheConfig l2{256 * 1024, 8, 12};
    CacheConfig l3{8 * 1024 * 1024, 16, 28};

    // --- Memory controller (Table II) ---
    /** Memory controllers; >1 exercises §III-D's multi-MC routing. */
    unsigned numMemControllers = 1;
    unsigned wpqEntries = 64;        //!< write pending queue, ADR domain

    // --- Persistent memory (Table II) ---
    Cycles pmReadCycles = cyclesFromNs(50.0);    //!< 50 ns
    Cycles pmWriteCycles = cyclesFromNs(150.0);  //!< 150 ns
    /**
     * Bank occupancy of one read. PCM reads are non-destructive
     * sensing and pipeline behind one another, while writes hold the
     * bank for the full programming pulse; a read therefore blocks its
     * bank for less than its own latency.
     */
    Cycles pmReadOccupancyCycles = 8;
    /**
     * Media write cost model: a buffer-line write-back occupies its
     * bank for pmWriteBaseCycles plus pmWritePerWordCycles per word
     * that actually programs (after DCW). The per-word term models the
     * PCM write-driver power budget, which limits how many bits one
     * bank programs in parallel; it is what couples media write
     * traffic to throughput (Figs. 11 vs 12).
     */
    Cycles pmWriteBaseCycles = 20;
    Cycles pmWritePerWordCycles = 360;
    unsigned pmBanks = 64;
    unsigned onPmBufferLines = 32;               //!< 256 B lines (§III-E)
    unsigned onPmBufferLineBytes = pmBufferLineBytes;

    // --- Logging scheme ---
    SchemeKind scheme = SchemeKind::Silo;

    /** Silo / MorLog: per-core on-chip log buffer capacity (entries). */
    unsigned logBufferEntries = 20;
    /** Silo: log buffer access latency in cycles (Fig. 15 sweep). */
    Cycles logBufferLatency = 8;
    /** Silo: on-chip ACK round trip for Tx_end (§III-D, "several cycles"). */
    Cycles commitAckCycles = 4;
    /** @name Silo ablation switches (DESIGN.md design choices)
     *  Disable individual reduction mechanisms to quantify their
     *  contribution (the ablation bench sweeps these). */
    /// @{
    bool siloLogIgnorance = true;   //!< §III-C silent-store filter
    bool siloLogMerging = true;     //!< §III-C comparator merging
    bool siloFlushBit = true;       //!< §III-D eviction flush-bits
    /// @}
    /** FWB: force-write-back interval in cycles (§VI-A). */
    Cycles fwbIntervalCycles = 3'000'000;
    /** LAD: MC slots for buffered uncommitted cachelines. */
    unsigned ladMcEntries = 64;
    /** LAD: per-line issue spacing of the commit phase-1 flush. */
    Cycles ladFlushPerLineCycles = 160;

    // --- Observability (src/sim/tracer.hh) ---
    /**
     * Write a Chrome trace-event / Perfetto JSON timeline of this run
     * to the given path; empty disables tracing entirely (no tracer is
     * allocated and hot-path sites reduce to one null-pointer test).
     * Driven by SILO_TRACE / SILO_TRACE_CELL in the harness.
     */
    std::string tracePath;
    /** Interval-sampler period in simulated ns (counter tracks). */
    double traceSampleNs = 100.0;

    // --- Persistency checker (src/check) ---
    /**
     * Shadow the memory system with the durability-invariant checker.
     * Off by default: no checker object exists and every hook site is a
     * single null-pointer test.
     */
    bool checker = false;
    /** Seeded-bug harness; only meaningful with checker = true. */
    MutationKind mutation = MutationKind::None;

    /** Sanity-check the configuration; fatal() on nonsense values. */
    void
    validate() const
    {
        if (numCores == 0 || numCores > 255)
            fatal("numCores must be in [1, 255]");
        if (wpqEntries == 0)
            fatal("wpqEntries must be positive");
        if (logBufferEntries == 0)
            fatal("logBufferEntries must be positive");
        if (onPmBufferLineBytes % lineBytes != 0)
            fatal("on-PM buffer line must be a multiple of 64B");
        if (!(traceSampleNs > 0.0))
            fatal("traceSampleNs must be positive");
    }
};

} // namespace silo

#endif // SILO_SIM_CONFIG_HH
