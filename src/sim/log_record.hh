/**
 * @file
 * The log entry (Fig. 6) and the structural records that logging
 * schemes persist into the PM log region.
 *
 * Log-region traffic is accounted in bytes through the memory
 * controller and on-PM buffer, but the *content* of the log region is
 * kept structurally (a LogRecord per persisted entry) so that crash
 * recovery can interpret it without byte (de)serialization.
 */

#ifndef SILO_SIM_LOG_RECORD_HH
#define SILO_SIM_LOG_RECORD_HH

#include <cstdint>

#include "sim/types.hh"

namespace silo::log
{

/** A persisted log-region record. */
struct LogRecord
{
    enum class Kind : std::uint8_t
    {
        Undo,       //!< metadata + old data (18 B, §III-F)
        Redo,       //!< metadata + new data (18 B)
        UndoRedo,   //!< metadata + old + new data (26 B, Fig. 6)
        Commit,     //!< a baseline scheme's commit marker (8 B)
        IdTuple,    //!< Silo's committed-transaction tuple (8 B, §III-G)
    };

    Kind kind = Kind::UndoRedo;
    std::uint8_t tid = 0;        //!< thread id (8 bits, Fig. 6)
    std::uint16_t txid = 0;      //!< transaction id (16 bits, Fig. 6)
    bool flushBit = false;       //!< Fig. 6 flush-bit
    Addr dataAddr = 0;           //!< 48-bit data word address
    Word oldData = 0;
    Word newData = 0;

    /** Persisted size in bytes. */
    unsigned
    sizeBytes() const
    {
        switch (kind) {
          case Kind::Undo:
          case Kind::Redo:
            return undoLogEntryBytes;           // 18 B
          case Kind::UndoRedo:
            return undoRedoLogEntryBytes;       // 26 B
          case Kind::Commit:
          case Kind::IdTuple:
            return wordBytes;                   // 8 B
        }
        return undoRedoLogEntryBytes;
    }
};

} // namespace silo::log

#endif // SILO_SIM_LOG_RECORD_HH
