/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Workload generators and the crash injector need a fast generator whose
 * streams are reproducible from a seed and independent per thread; the
 * standard library engines are not guaranteed stable across platforms.
 */

#ifndef SILO_SIM_RNG_HH
#define SILO_SIM_RNG_HH

#include <cstdint>

namespace silo
{

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    /** Seed via splitmix64 so nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x5117e57a9e5eedULL)
    {
        std::uint64_t x = seed;
        for (auto &word : _state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound) (bound > 0); unbiased enough here. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace silo

#endif // SILO_SIM_RNG_HH
