#include "sim/profiler.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "sim/logging.hh"

namespace silo::prof
{

namespace
{

std::atomic<Profiler *> g_profiler{nullptr};

/** Round-trippable, locale-independent double formatting. */
std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

const char *
tagName(Tag t)
{
    switch (t) {
      case Tag::Core: return "core";
      case Tag::Mc: return "mc";
      case Tag::Nvm: return "nvm";
      case Tag::LogScheme: return "log_scheme";
      case Tag::Checker: return "checker";
      case Tag::Stats: return "stats";
      case Tag::Other: return "other";
      case Tag::TraceCompile: return "trace_compile";
      case Tag::Simulate: return "simulate";
      case Tag::StatsExport: return "stats_export";
      case Tag::JsonEmit: return "json_emit";
    }
    panic("tagName: invalid prof::Tag");
}

ThreadProfile *
Profiler::threadProfile()
{
    std::lock_guard<std::mutex> lock(_m);
    auto [it, inserted] =
        _byThread.try_emplace(std::this_thread::get_id(), nullptr);
    if (inserted) {
        _profiles.emplace_back();
        it->second = &_profiles.back();
    }
    return it->second;
}

std::size_t
Profiler::threadCount() const
{
    std::lock_guard<std::mutex> lock(_m);
    return _profiles.size();
}

std::array<TagCounters, numTags>
Profiler::merged() const
{
    std::lock_guard<std::mutex> lock(_m);
    std::array<TagCounters, numTags> sum{};
    for (const ThreadProfile &tp : _profiles) {
        const auto &tags = tp.counters();
        for (std::size_t t = 0; t < numTags; ++t) {
            sum[t].selfNanos += tags[t].selfNanos;
            sum[t].totalNanos += tags[t].totalNanos;
            sum[t].count += tags[t].count;
        }
    }
    return sum;
}

void
Profiler::writeJson(const std::string &path, double wall_seconds) const
{
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        fatal("cannot open profile output file " + path);

    std::array<TagCounters, numTags> sum = merged();
    std::uint64_t self_total = 0;
    for (const TagCounters &c : sum)
        self_total += c.selfNanos;
    double coverage =
        wall_seconds > 0 ? double(self_total) * 1e-9 / wall_seconds
                         : 0;

    auto emitTag = [&os](Tag t, const TagCounters &c,
                         const char *count_key, bool last) {
        os << "    \"" << tagName(t) << "\": {\"self_seconds\": "
           << jsonNum(double(c.selfNanos) * 1e-9)
           << ", \"total_seconds\": "
           << jsonNum(double(c.totalNanos) * 1e-9) << ", \""
           << count_key << "\": " << c.count << "}"
           << (last ? "\n" : ",\n");
    };

    os << "{\n";
    os << "  \"schema\": \"silo-prof-v1\",\n";
    os << "  \"wall_seconds\": " << jsonNum(wall_seconds) << ",\n";
    os << "  \"threads\": " << threadCount() << ",\n";
    os << "  \"coverage\": " << jsonNum(coverage) << ",\n";
    os << "  \"domains\": {\n";
    for (std::size_t t = 0; t < numDomains; ++t)
        emitTag(Tag(t), sum[t], "dispatches", t + 1 == numDomains);
    os << "  },\n";
    os << "  \"phases\": {\n";
    for (std::size_t t = numDomains; t < numTags; ++t)
        emitTag(Tag(t), sum[t], "count", t + 1 == numTags);
    os << "  }\n";
    os << "}\n";
    if (!os)
        fatal("failed writing profile output file " + path);
}

Profiler *
Profiler::current()
{
    return g_profiler.load(std::memory_order_acquire);
}

void
Profiler::install(Profiler *p)
{
    g_profiler.store(p, std::memory_order_release);
}

ThreadProfile *
currentThreadProfile()
{
    Profiler *current = Profiler::current();
    if (!current)
        return nullptr;
    // Cache per (thread, profiler): tests install and uninstall
    // profilers around sweeps, so the owner must be re-checked.
    thread_local Profiler *owner = nullptr;
    thread_local ThreadProfile *slab = nullptr;
    if (owner != current) {
        slab = current->threadProfile();
        owner = current;
    }
    return slab;
}

} // namespace silo::prof
