/**
 * @file
 * Epoch-driven interval sampling of simulation state into Tracer
 * counter tracks.
 *
 * The sampler snapshots a set of registered probes (WPQ occupancy,
 * log-buffer fill, PM bank business, per-core commit-stall cycles,
 * ...) every SimConfig::traceSampleNs of simulated time. It exists
 * only when tracing is enabled — a tracer-off run constructs no
 * sampler and installs no hook, so the interval machinery costs one
 * null test per event when off.
 *
 * Samples are driven lazily by the event queue's time-advance hook
 * rather than by self-scheduled events: when the queue is about to
 * advance past one or more epoch boundaries, the sampler reads every
 * probe once per crossed boundary, stamped at the boundary tick. The
 * observed state is exact — all events at ticks <= the boundary have
 * executed, none after it — and, because tracing adds no events of its
 * own, a traced run's event stream, timing, and reported results are
 * identical to the untraced run. Boundaries inside the final partial
 * epoch are collected by flush(), which the harness calls before
 * writing the trace.
 */

#ifndef SILO_SIM_SAMPLER_HH
#define SILO_SIM_SAMPLER_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/tracer.hh"

namespace silo::trace
{

/** Periodic snapshotter feeding Tracer counter tracks. */
class IntervalSampler
{
  public:
    /** Reads one counter's current value at sample time. */
    using Probe = std::function<double()>;

    /**
     * @param eq The event queue whose time advances drive sampling.
     * @param tracer Destination for the counter samples.
     * @param period Sampling period in ticks (>= 1 enforced).
     */
    IntervalSampler(EventQueue &eq, Tracer &tracer, Cycles period)
        : _eq(eq), _tracer(tracer), _period(period ? period : 1)
    {
    }

    IntervalSampler(const IntervalSampler &) = delete;
    IntervalSampler &operator=(const IntervalSampler &) = delete;

    ~IntervalSampler()
    {
        if (_started)
            _eq.setAdvanceHook(nullptr);
    }

    /** Register counter @p name on @p track, sampled via @p probe. */
    void
    addCounter(Tracer::TrackId track, std::string name, Probe probe)
    {
        _counters.push_back(
            Counter{track, std::move(name), std::move(probe)});
    }

    /** Install the advance hook; sampling begins at tick 0. */
    void
    start()
    {
        if (_started)
            return;
        _started = true;
        _eq.setAdvanceHook(
            [this](Tick upcoming) { catchUp(upcoming); });
    }

    /**
     * Sample every boundary not yet taken up to and including
     * @p limit — the end-of-run partial epoch the advance hook never
     * sees. Idempotent for a fixed @p limit.
     */
    void
    flush(Tick limit)
    {
        while (_started && _nextDue <= limit)
            takeSample(_nextDue);
    }

    Cycles period() const { return _period; }
    std::uint64_t samplesTaken() const { return _samples; }

  private:
    struct Counter
    {
        Tracer::TrackId track;
        std::string name;
        Probe probe;
    };

    /** Time is about to advance to @p upcoming: settle boundaries. */
    void
    catchUp(Tick upcoming)
    {
        // Strictly below: events AT `upcoming` have not run yet, so
        // that boundary's state is not settled until a later advance.
        while (_nextDue < upcoming)
            takeSample(_nextDue);
    }

    void
    takeSample(Tick at)
    {
        for (const auto &c : _counters)
            _tracer.counter(c.track, c.name, at, c.probe());
        ++_samples;
        _nextDue = at + _period;
    }

    EventQueue &_eq;
    Tracer &_tracer;
    Cycles _period;
    std::vector<Counter> _counters;
    std::uint64_t _samples = 0;
    Tick _nextDue = 0;
    bool _started = false;
};

} // namespace silo::trace

#endif // SILO_SIM_SAMPLER_HH
