/**
 * @file
 * The persistency-event observer interface.
 *
 * The memory controller, PM device, log region, and logging schemes
 * report durability-relevant events (domain transitions plus the
 * scheme-internal coverage notes) through this interface so the
 * persistency checker (src/check) can shadow the memory system without
 * any of those components depending on it. The interface lives in the
 * sim layer — the bottom of the module DAG (DESIGN.md §4g) — precisely
 * so every producer below src/check can include it. Every hook has an
 * empty default body and every producer guards its sink pointer, so a
 * disabled checker costs one null check per event.
 *
 * Domain model (§II / §III of the paper): a word moves
 *   volatile cache -> ADR WPQ -> on-PM buffer -> media,
 * and becomes durable at WPQ acceptance (the ADR persist point). Log
 * records additionally pass through the MC's ADR log path while they
 * retry for a WPQ slot (in-flight records are durable too).
 */

#ifndef SILO_SIM_PERSIST_EVENT_SINK_HH
#define SILO_SIM_PERSIST_EVENT_SINK_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/log_record.hh"
#include "sim/types.hh"

namespace silo::log
{

/** Observer of durability-relevant memory-system events. */
class PersistEventSink
{
  public:
    virtual ~PersistEventSink() = default;

    /** @name ADR domain (memory controller WPQ) */
    /// @{

    /**
     * A full 64 B line was accepted into the WPQ (durable unless
     * @p held — LAD's revocable buffered entries).
     */
    virtual void
    onWpqAcceptLine(Addr line_addr,
                    const std::array<Word, wordsPerLine> &values,
                    bool evicted, bool held)
    {
        (void)line_addr;
        (void)values;
        (void)evicted;
        (void)held;
    }

    /** An 8 B word write was accepted (Silo's in-place update path). */
    virtual void onWpqAcceptWord(Addr word_addr, Word value)
    {
        (void)word_addr;
        (void)value;
    }

    /** A held (LAD) entry became drainable. */
    virtual void onHeldRelease(Addr line_addr) { (void)line_addr; }

    /** A held entry was discarded by the crash drain (revocation). */
    virtual void onHeldDiscard(Addr line_addr) { (void)line_addr; }
    /// @}

    /** @name PM device */
    /// @{

    /**
     * Words of one on-PM buffer line were programmed into the media
     * (word indices are relative to the 256 B line base).
     */
    virtual void
    onMediaWrite(Addr pm_line,
                 const std::vector<std::pair<unsigned, Word>> &words,
                 bool log_region)
    {
        (void)pm_line;
        (void)words;
        (void)log_region;
    }
    /// }@

    /** @name Log region */
    /// @{

    /** A log record became durable at @p rec_addr. */
    virtual void onLogPersist(Addr rec_addr, const LogRecord &record)
    {
        (void)rec_addr;
        (void)record;
    }

    /** Thread @p tid 's log was truncated over [@p head, @p tail). */
    virtual void onLogTruncate(unsigned tid, Addr head, Addr tail)
    {
        (void)tid;
        (void)head;
        (void)tail;
    }
    /// @}

    /** @name Scheme-internal coverage (battery/ADR structures)
     *
     * Logging schemes report the on-chip state their durability
     * arguments rest on (src/check invariant 1's coverage sources)
     * through these hooks, so the scheme layer never has to name the
     * concrete checker type.
     */
    /// @{

    /** A record entered the MC's ADR log path (durable, pre-accept). */
    virtual void onLogInFlight(Addr rec_addr, const LogRecord &record)
    {
        (void)rec_addr;
        (void)record;
    }

    /** Silo appended an undo entry to the battery-backed log buffer. */
    virtual void noteBatteryUndo(unsigned core, std::uint16_t txid,
                                 Addr addr, Word old_val)
    {
        (void)core;
        (void)txid;
        (void)addr;
        (void)old_val;
    }

    /** MorLog appended an undo entry to its ADR-domain MC buffer. */
    virtual void noteAdrUndo(unsigned core, std::uint16_t txid,
                             Addr addr, Word old_val)
    {
        (void)core;
        (void)txid;
        (void)addr;
        (void)old_val;
    }

    /** Silo set an entry's flush-bit (claims ADR has @p new_data). */
    virtual void noteFlushBit(unsigned core, std::uint16_t txid,
                              Addr addr, Word new_data)
    {
        (void)core;
        (void)txid;
        (void)addr;
        (void)new_data;
    }
    /// @}
};

} // namespace silo::log

#endif // SILO_SIM_PERSIST_EVENT_SINK_HH
