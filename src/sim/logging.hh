/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * configuration errors (clean exit); warn()/inform() report conditions
 * without stopping the simulation.
 */

#ifndef SILO_SIM_LOGGING_HH
#define SILO_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>

namespace silo
{

/** Thrown by panic(); tests catch it instead of aborting the process. */
struct PanicError : std::logic_error
{
    using std::logic_error::logic_error;
};

/** Thrown by fatal(); configuration errors the caller can report. */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Report an internal invariant violation (a simulator bug).
 * @param msg Description of what should never have happened.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

/**
 * Report an unusable user configuration.
 * @param msg Description of the configuration problem.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

namespace detail
{

/** Serializes every warn()/inform() line across sweep worker threads. */
inline std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/**
 * Per-thread worker label set by the parallel sweep engine; -1 (the
 * default) means "not a worker" and emits no prefix.
 */
inline int &
logWorkerIdRef()
{
    thread_local int id = -1;
    return id;
}

inline void
emitLine(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    int id = logWorkerIdRef();
    if (id >= 0)
        std::fprintf(stderr, "[w%d] %s: %s\n", id, tag, msg.c_str());
    else
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

/**
 * Tag this thread's warn()/inform() lines with a worker id (the
 * parallel sweep engine calls this per worker). Negative removes the
 * prefix again.
 */
inline void
setLogWorkerId(int id)
{
    detail::logWorkerIdRef() = id;
}

/**
 * This thread's sweep worker id, or -1 outside a worker. The sweep
 * engine reads it back for per-cell telemetry (which worker ran a
 * cell) in addition to the log-line prefix.
 */
inline int
logWorkerId()
{
    return detail::logWorkerIdRef();
}

/**
 * Alert the user to questionable but survivable behaviour.
 * Thread-safe: concurrent callers never interleave within a line.
 */
inline void
warn(const std::string &msg)
{
    detail::emitLine("warn", msg);
}

/** Like warn(), but each distinct message prints at most once. */
inline void
warn_once(const std::string &msg)
{
    static std::mutex seen_mutex;
    static std::set<std::string> seen;
    {
        std::lock_guard<std::mutex> lock(seen_mutex);
        if (!seen.insert(msg).second)
            return;
    }
    warn(msg);
}

/** Emit a purely informational status message (thread-safe). */
inline void
inform(const std::string &msg)
{
    detail::emitLine("info", msg);
}

} // namespace silo

#endif // SILO_SIM_LOGGING_HH
