/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * configuration errors (clean exit); warn()/inform() report conditions
 * without stopping the simulation.
 */

#ifndef SILO_SIM_LOGGING_HH
#define SILO_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace silo
{

/** Thrown by panic(); tests catch it instead of aborting the process. */
struct PanicError : std::logic_error
{
    using std::logic_error::logic_error;
};

/** Thrown by fatal(); configuration errors the caller can report. */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Report an internal invariant violation (a simulator bug).
 * @param msg Description of what should never have happened.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

/**
 * Report an unusable user configuration.
 * @param msg Description of the configuration problem.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

/** Alert the user to questionable but survivable behaviour. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Emit a purely informational status message. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace silo

#endif // SILO_SIM_LOGGING_HH
