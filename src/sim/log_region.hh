/**
 * @file
 * The distributed PM log region (§III-B).
 *
 * Each thread owns a private log area and appends records at
 * monotonically increasing addresses (tracked by the per-core head and
 * tail registers of Table I). Appends never straddle an on-PM buffer
 * line, matching the batched layout of §III-F. Records become durable
 * when their write is accepted into the ADR domain; recovery iterates
 * the live records in address order.
 */

#ifndef SILO_SIM_LOG_REGION_HH
#define SILO_SIM_LOG_REGION_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/address_map.hh"
#include "sim/log_record.hh"
#include "sim/logging.hh"
#include "sim/persist_event_sink.hh"

namespace silo::log
{

/** Structural contents and allocation state of the PM log region. */
class LogRegionStore
{
  public:
    explicit LogRegionStore(unsigned num_threads)
        : _tail(num_threads), _head(num_threads)
    {
        for (unsigned t = 0; t < num_threads; ++t) {
            _tail[t] = addr_map::logAreaBase(t);
            _head[t] = _tail[t];
        }
    }

    /**
     * Reserve space for a @p bytes record in thread @p tid 's area,
     * padding so the record does not straddle a 256 B on-PM buffer
     * line.
     * @return the record's address.
     */
    Addr
    allocate(unsigned tid, unsigned bytes)
    {
        Addr addr = _tail.at(tid);
        if (pmLineAlign(addr) != pmLineAlign(addr + bytes - 1))
            addr = pmLineAlign(addr) + pmBufferLineBytes;
        _tail[tid] = addr + bytes;
        if (_tail[tid] >= addr_map::logAreaBase(tid) +
                          addr_map::logAreaBytes) {
            fatal("log area exhausted; raise logAreaBytes");
        }
        return addr;
    }

    /** Make @p record durable at @p addr (called at WPQ accept). */
    void
    persist(Addr addr, const LogRecord &record)
    {
        _records[addr] = record;
        if (_sink)
            _sink->onLogPersist(addr, record);
    }

    /**
     * Logically truncate thread @p tid 's log up to the current tail:
     * a head-pointer update in the on-chip register, no PM write.
     */
    void
    truncate(unsigned tid)
    {
        Addr head = _head.at(tid);
        Addr tail = _tail.at(tid);
        if (_sink)
            _sink->onLogTruncate(tid, head, tail);
        _records.erase(_records.lower_bound(head),
                       _records.lower_bound(tail));
        _head[tid] = tail;
    }

    /** Register the persistency checker (nullptr when disabled). */
    void setEventSink(PersistEventSink *sink) { _sink = sink; }

    /** Live records of thread @p tid in ascending address order. */
    std::vector<std::pair<Addr, LogRecord>>
    liveRecords(unsigned tid) const
    {
        std::vector<std::pair<Addr, LogRecord>> out;
        Addr lo = _head.at(tid);
        Addr hi = _tail.at(tid);
        for (auto it = _records.lower_bound(lo);
             it != _records.end() && it->first < hi; ++it) {
            out.push_back(*it);
        }
        return out;
    }

    /** Total number of live records (test hook). */
    std::size_t liveRecordCount() const { return _records.size(); }

    /** Current tail of thread @p tid 's area (test hook). */
    Addr tail(unsigned tid) const { return _tail.at(tid); }

  private:
    std::map<Addr, LogRecord> _records;
    std::vector<Addr> _tail;
    std::vector<Addr> _head;
    PersistEventSink *_sink = nullptr;
};

} // namespace silo::log

#endif // SILO_SIM_LOG_REGION_HH
