#include "sim/stats.hh"

#include <cstdio>
#include <functional>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace silo::stats
{

namespace
{

/** Round-trippable, locale-independent double formatting. */
std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::uint64_t
Distribution::percentile(double frac) const
{
    std::uint64_t total = _stats.count();
    if (total == 0)
        return 0;
    if (frac > 1.0)
        frac = 1.0;
    std::uint64_t rank = std::uint64_t(std::ceil(frac * double(total)));
    rank = std::max<std::uint64_t>(1, std::min(rank, total));

    std::uint64_t max_seen = std::uint64_t(_stats.maximum());
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        cum += _buckets[i];
        if (cum >= rank) {
            std::uint64_t edge =
                std::uint64_t(i + 1) * _bucketWidth - 1;
            return std::min(edge, max_seen);
        }
    }
    // The rank falls in the overflow bucket; the observed maximum is
    // the tightest bound we track.
    return max_seen;
}

void
StatGroup::print(std::ostream &os) const
{
    auto emit = [&](const std::string &stat, double value,
                    const std::string &desc) {
        os << std::left << std::setw(44)
           << (_name.empty() ? stat : _name + "." + stat)
           << std::right << std::setw(16) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };

    for (const auto *s : _scalars)
        emit(s->name(), double(s->value()), s->desc());
    for (const auto *a : _averages) {
        emit(a->name() + ".mean", a->mean(), a->desc());
        emit(a->name() + ".count", double(a->count()), "");
    }
    for (const auto *d : _distributions) {
        emit(d->name() + ".mean", d->summary().mean(), d->desc());
        emit(d->name() + ".max", d->summary().maximum(), "");
        emit(d->name() + ".count", double(d->summary().count()), "");
    }
}

void
StatGroup::printJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    auto key = [&](const std::string &k) {
        os << (first ? "" : ", ") << '"' << jsonEscape(k) << "\": ";
        first = false;
    };

    for (const auto *s : _scalars) {
        key(s->name());
        os << s->value();
    }
    for (const auto *a : _averages) {
        key(a->name());
        os << "{\"mean\": " << jsonNum(a->mean()) << ", \"min\": "
           << jsonNum(a->minimum()) << ", \"max\": "
           << jsonNum(a->maximum()) << ", \"sum\": "
           << jsonNum(a->sum()) << ", \"count\": " << a->count()
           << "}";
    }
    for (const auto *d : _distributions) {
        if (!d->countsConsistent()) {
            panic("distribution " + d->name() +
                  ": bucket counts do not sum to the sample count");
        }
        key(d->name());
        const Average &s = d->summary();
        os << "{\"mean\": " << jsonNum(s.mean()) << ", \"min\": "
           << jsonNum(s.minimum()) << ", \"max\": "
           << jsonNum(s.maximum()) << ", \"count\": " << s.count()
           << ", \"p50\": " << d->p50() << ", \"p95\": " << d->p95()
           << ", \"p99\": " << d->p99() << ", \"bucket_width\": "
           << d->bucketWidth() << ", \"buckets\": [";
        const auto &buckets = d->buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i)
            os << (i ? ", " : "") << buckets[i];
        os << "], \"overflow\": " << d->overflow() << "}";
    }
    os << "}";
}

void
StatRegistry::add(std::string path, const StatGroup &group)
{
    auto [it, inserted] = _groups.emplace(std::move(path), &group);
    if (!inserted)
        panic("StatRegistry: duplicate path " + it->first);
}

void
StatRegistry::writeJson(std::ostream &os) const
{
    // Fold the sorted flat paths into a tree of '/'-separated segments.
    struct Node
    {
        const StatGroup *group = nullptr;
        std::map<std::string, Node> children;
    };
    Node root;
    for (const auto &[path, group] : _groups) {
        Node *n = &root;
        std::size_t pos = 0;
        for (;;) {
            std::size_t slash = path.find('/', pos);
            n = &n->children[path.substr(
                pos, slash == std::string::npos ? std::string::npos
                                                : slash - pos)];
            if (slash == std::string::npos)
                break;
            pos = slash + 1;
        }
        n->group = group;
    }

    std::function<void(const Node &)> emit = [&](const Node &n) {
        if (n.group && n.children.empty()) {
            n.group->printJson(os);
            return;
        }
        os << "{";
        bool first = true;
        if (n.group) {
            // A path that is both a leaf and a prefix of deeper paths
            // keeps its own stats under a reserved "stats" key.
            os << "\"stats\": ";
            n.group->printJson(os);
            first = false;
        }
        for (const auto &[seg, child] : n.children) {
            os << (first ? "" : ", ") << '"' << jsonEscape(seg)
               << "\": ";
            first = false;
            emit(child);
        }
        os << "}";
    };

    os << "{\"schema\": \"silo-stats-v1\", \"groups\": ";
    emit(root);
    os << "}";
}

std::string
StatRegistry::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace silo::stats
