#include "sim/stats.hh"

#include <iomanip>

namespace silo::stats
{

void
StatGroup::print(std::ostream &os) const
{
    auto emit = [&](const std::string &stat, double value,
                    const std::string &desc) {
        os << std::left << std::setw(44)
           << (_name.empty() ? stat : _name + "." + stat)
           << std::right << std::setw(16) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };

    for (const auto *s : _scalars)
        emit(s->name(), double(s->value()), s->desc());
    for (const auto *a : _averages) {
        emit(a->name() + ".mean", a->mean(), a->desc());
        emit(a->name() + ".count", double(a->count()), "");
    }
    for (const auto *d : _distributions) {
        emit(d->name() + ".mean", d->summary().mean(), d->desc());
        emit(d->name() + ".max", d->summary().maximum(), "");
        emit(d->name() + ".count", double(d->summary().count()), "");
    }
}

} // namespace silo::stats
