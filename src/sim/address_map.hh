/**
 * @file
 * Physical address-space layout of the simulated machine.
 *
 * The paper's setup gives each thread its own persistent structures and a
 * distributed per-thread log area (§III-B "Log Region"), so the address
 * space is partitioned: thread-private data arenas in the PM data region
 * and thread-private log areas in the PM log region. The partition also
 * guarantees replayed traces never race on values across threads.
 */

#ifndef SILO_SIM_ADDRESS_MAP_HH
#define SILO_SIM_ADDRESS_MAP_HH

#include "sim/types.hh"

namespace silo
{

/** Partitioned PM address map. */
namespace addr_map
{

/** Base of the PM data region. */
constexpr Addr dataRegionBase = 0x10'0000'0000ULL;

/** Bytes of data arena reserved per thread (256 MB). */
constexpr Addr dataArenaBytes = 0x1000'0000ULL;

/** Base of the PM log region. */
constexpr Addr logRegionBase = 0x70'0000'0000ULL;

/** Bytes of log area reserved per thread (16 MB). */
constexpr Addr logAreaBytes = 0x100'0000ULL;

/** @return base of thread @p tid 's data arena. */
constexpr Addr
dataArenaBase(unsigned tid)
{
    return dataRegionBase + Addr(tid) * dataArenaBytes;
}

/** @return base of thread @p tid 's log area. */
constexpr Addr
logAreaBase(unsigned tid)
{
    return logRegionBase + Addr(tid) * logAreaBytes;
}

/** @return true if @p addr falls inside the PM data region. */
constexpr bool
inDataRegion(Addr addr)
{
    return addr >= dataRegionBase && addr < logRegionBase;
}

/** @return true if @p addr falls inside the PM log region. */
constexpr bool
inLogRegion(Addr addr)
{
    return addr >= logRegionBase;
}

/** @return owning thread of a data-region address. */
constexpr unsigned
dataArenaOwner(Addr addr)
{
    return unsigned((addr - dataRegionBase) / dataArenaBytes);
}

} // namespace addr_map

} // namespace silo

#endif // SILO_SIM_ADDRESS_MAP_HH
