/**
 * @file
 * Exact host-time attribution for the simulator's own cost.
 *
 * PR 3's tracer observes *simulated* time; this layer measures where
 * the simulator spends *host* time, so the "raw speed inside a cell"
 * work (ROADMAP) knows whether a big cell burns its wall clock in
 * event dispatch, WPQ drains, log-persist bookkeeping, or stats
 * export. It is exact, not sampling: every event dispatched by the
 * EventQueue is timed under the static domain tag it was scheduled
 * with (core / mc / nvm / log-scheme / checker / stats), and the
 * non-event phases of a run (trace-compile / simulate / stats-export
 * / json-emit) are bracketed by the same scope mechanism, nesting
 * hierarchically: a scope's *self* time excludes its children, its
 * *total* time includes them.
 *
 * Threading model: each thread that wants attribution registers one
 * ThreadProfile slab with the process Profiler (sweep workers do this
 * lazily on first scope). Slabs are written only by their owning
 * thread — the hot path is two monotonic-clock reads and a handful of
 * uint64 adds, no locks, no allocation after the stack warms up — and
 * merged after the threads quiesce. The merge is a commutative uint64
 * sum per tag, so the merged profile is deterministic regardless of
 * worker scheduling; only the *host times inside* the slabs vary run
 * to run, never the dispatch counts (the event stream itself is
 * deterministic).
 *
 * Off path (no profiler installed / attached) the cost is one branch
 * on a null pointer per event — measured in the noise on the Fig. 12
 * matrix. Host times never flow into SimReport or the results JSON
 * goldens; the optional per-cell "perf" block the sweep engine can
 * emit is gated behind SILO_PROF precisely so default outputs stay
 * byte-identical.
 */

#ifndef SILO_SIM_PROFILER_HH
#define SILO_SIM_PROFILER_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace silo::prof
{

/**
 * Static attribution tag carried by every scope. The first numDomains
 * values are *event domains* — a scheduled event is stamped with the
 * domain of the component scheduling it and timed under that tag at
 * dispatch. The rest are *host phases* bracketing the non-event parts
 * of a run. Checker and Stats currently have no event sources (the
 * checker shadows the persist path inline; the sampler rides the
 * queue's advance hook), so their dispatch counts are zero in today's
 * tree — they exist so those components can schedule work without a
 * schema change, and the completeness test pins the expectation.
 */
enum class Tag : std::uint8_t
{
    Core,           //!< replay cores: trace issue, commit waits
    Mc,             //!< memory controllers: WPQ drains, router hops
    Nvm,            //!< PM device: bank programming, buffer sweeps
    LogScheme,      //!< logging schemes: persists, walkers, drains
    Checker,        //!< persistency checker (no event sources today)
    Stats,          //!< stats machinery (no event sources today)
    Other,          //!< untagged events; the completeness test pins 0
    TraceCompile,   //!< phase: workload trace generation
    Simulate,       //!< phase: one cell's run/settle/drain
    StatsExport,    //!< phase: stats registry -> silo-stats-v1 JSON
    JsonEmit,       //!< phase: sweep results/*.json serialization
};

constexpr std::size_t numDomains = 7;
constexpr std::size_t numTags = 11;

/** Stable snake_case name used in silo-prof-v1 JSON and tests. */
const char *tagName(Tag t);

/** True for event-domain tags, false for host-phase tags. */
constexpr bool
isDomain(Tag t)
{
    return std::size_t(t) < numDomains;
}

/** Monotonic host clock in integer nanoseconds. */
inline std::uint64_t
nowNanos()
{
    // silo-lint: allow(ambient-entropy) host-time profiling is the one consumer of wall time besides harness::wallSeconds; values never reach SimReport or goldens
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now().time_since_epoch()).count());
}

/** Accumulated cost of one tag inside one thread's slab. */
struct TagCounters
{
    std::uint64_t selfNanos = 0;    //!< elapsed minus child scopes
    std::uint64_t totalNanos = 0;   //!< elapsed including children
    std::uint64_t count = 0;        //!< dispatches / scope entries
};

/**
 * One thread's attribution slab plus its scope stack. Written only by
 * the owning thread; read by Profiler::merged() after the thread
 * quiesces (the sweep engine joins its workers before merging).
 */
class ThreadProfile
{
  public:
    /** Open a scope tagged @p t. Hot path: one clock read, one push. */
    void
    enter(Tag t)
    {
        _stack.push_back(Frame{t, nowNanos(), 0});
    }

    /** Close the innermost scope, folding its cost into the slab. */
    void
    exit()
    {
        Frame f = _stack.back();
        _stack.pop_back();
        std::uint64_t elapsed = nowNanos() - f.startNanos;
        TagCounters &c = _tags[std::size_t(f.tag)];
        c.selfNanos +=
            elapsed > f.childNanos ? elapsed - f.childNanos : 0;
        c.totalNanos += elapsed;
        ++c.count;
        if (!_stack.empty())
            _stack.back().childNanos += elapsed;
    }

    /** Open-scope depth (0 when balanced; tests assert this). */
    std::size_t depth() const { return _stack.size(); }

    const std::array<TagCounters, numTags> &
    counters() const
    {
        return _tags;
    }

  private:
    struct Frame
    {
        Tag tag;
        std::uint64_t startNanos;
        /** Total nanoseconds of directly nested scopes. */
        std::uint64_t childNanos;
    };

    std::array<TagCounters, numTags> _tags{};
    std::vector<Frame> _stack;
};

/**
 * RAII scope: times the enclosed region under @p t when @p profile is
 * non-null, costs exactly one branch when it is null. This is the
 * construct the EventQueue wraps every dispatch in and the harness
 * wraps its phases in.
 */
class TimedScope
{
  public:
    TimedScope(ThreadProfile *profile, Tag t) : _profile(profile)
    {
        if (_profile)
            _profile->enter(t);
    }

    ~TimedScope()
    {
        if (_profile)
            _profile->exit();
    }

    TimedScope(const TimedScope &) = delete;
    TimedScope &operator=(const TimedScope &) = delete;

  private:
    ThreadProfile *_profile;
};

/**
 * Process-wide profile: owns one ThreadProfile per participating
 * thread and merges them deterministically. Registration is the only
 * locked operation; the slabs themselves are thread-private.
 *
 * Exactly one Profiler may be installed at a time (install()); the
 * harness installs one when SILO_PROF is set, tests install their own
 * around a sweep and uninstall afterwards.
 */
class Profiler
{
  public:
    /**
     * The calling thread's slab in this profiler, registering it on
     * first use. Stable address for the profiler's lifetime.
     */
    ThreadProfile *threadProfile();

    /** Slabs registered so far (threads that ever profiled). */
    std::size_t threadCount() const;

    /**
     * Merge every slab: per-tag commutative uint64 sums, so the
     * result is independent of thread registration and scheduling
     * order. Call only while no registered thread is inside a scope.
     */
    std::array<TagCounters, numTags> merged() const;

    /**
     * Write the merged profile as silo-prof-v1 JSON. @p wall_seconds
     * is the caller-measured wall time the profile covers; the file
     * records it plus a coverage ratio (sum of self times over wall —
     * above 1 when multiple workers profiled in parallel). Parent
     * directories are created as needed.
     */
    void writeJson(const std::string &path, double wall_seconds) const;

    /** The installed process profiler, or nullptr. */
    static Profiler *current();

    /**
     * Install @p p as the process profiler (nullptr uninstalls).
     * Install before spawning the threads that should profile;
     * threads cache their slab per installed profiler.
     */
    static void install(Profiler *p);

  private:
    mutable std::mutex _m;
    /** Deque: registration never moves earlier slabs. */
    std::deque<ThreadProfile> _profiles;
    /**
     * Slab per registering thread, so repeated threadProfile() calls
     * from one thread are idempotent. A recycled thread id may adopt
     * a dead thread's slab — harmless, since only one live thread can
     * hold an id and the merge sums slabs regardless.
     */
    std::map<std::thread::id, ThreadProfile *> _byThread;
};

/**
 * The calling thread's slab in the installed profiler, or nullptr
 * when none is installed. This is the single lookup every
 * instrumentation site goes through; it caches per (thread,
 * profiler), so repeated calls are two loads and a compare.
 */
ThreadProfile *currentThreadProfile();

} // namespace silo::prof

#endif // SILO_SIM_PROFILER_HH
