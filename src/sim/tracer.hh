/**
 * @file
 * Simulated-time tracing with Chrome trace-event / Perfetto JSON export.
 *
 * The Tracer records three kinds of timeline events against simulated
 * time (ticks):
 *
 *  - spans ("complete" events, ph "X"): an interval of work on a track,
 *    e.g. one WPQ drain, one PM bank programming pulse, one
 *    transaction's commit wait. Nested intervals on the same track
 *    render as a flame graph.
 *  - counters (ph "C"): a sampled value over time, e.g. WPQ occupancy
 *    or log-buffer fill (fed by trace::IntervalSampler).
 *  - instants (ph "i"): a point event, e.g. the ADR crash drain.
 *
 * Tracks are (process, thread) name pairs; every component registers
 * its own track so the exported timeline groups by subsystem (core,
 * mc, pm, mem, scheme). Events are buffered in memory and written once
 * by writeJson() — the file loads directly in https://ui.perfetto.dev
 * or chrome://tracing.
 *
 * Cost model: a disabled Tracer records nothing and allocates nothing;
 * every recording method starts with one branch on enabled(). The hot
 * paths of the simulator never even reach that branch — they guard on
 * EventQueue::tracer(), which is a null pointer unless the run was
 * started with tracing on (SimConfig::tracePath / SILO_TRACE), so the
 * tracer-off overhead is a single pointer test per site.
 */

#ifndef SILO_SIM_TRACER_HH
#define SILO_SIM_TRACER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace silo::trace
{

/** Simulated-time span/counter recorder with Chrome-trace export. */
class Tracer
{
  public:
    /** Identifies one (process, thread) timeline. */
    using TrackId = std::uint32_t;

    /** Constructed disabled: all recording calls are no-ops. */
    Tracer() = default;

    /**
     * Start recording.
     * @param ticks_per_us Simulated ticks per exported microsecond
     *        (Chrome traces use µs; 2 GHz cores → 2000 ticks/µs).
     */
    void
    enable(double ticks_per_us = 2000.0)
    {
        _enabled = true;
        _ticksPerUs = ticks_per_us > 0 ? ticks_per_us : 1.0;
    }

    bool enabled() const { return _enabled; }

    /**
     * Register (or look up) the track named (@p process, @p thread).
     * Tracks are deduplicated by name pair, so components may call
     * this lazily from hot paths. @return 0 when disabled.
     */
    TrackId track(const std::string &process, const std::string &thread);

    /** Record a completed interval [@p start, @p end] on @p track. */
    void completeSpan(TrackId track, std::string name, Tick start,
                      Tick end);

    /** Record one sample of counter @p name at time @p ts. */
    void counter(TrackId track, std::string name, Tick ts, double value);

    /** Record a point event at time @p ts. */
    void instant(TrackId track, std::string name, Tick ts);

    /** Number of recorded timeline events (excludes track metadata). */
    std::size_t eventCount() const { return _events.size(); }

    /** Number of registered tracks. */
    std::size_t trackCount() const { return _tracks.size(); }

    /**
     * Write the Chrome trace-event JSON. Events are emitted sorted by
     * timestamp (stable, so same-tick events keep recording order),
     * which also makes timestamps monotone per track in file order.
     */
    void writeJson(std::ostream &os) const;

    /** Write to @p path, creating parent directories as needed. */
    void writeJson(const std::string &path) const;

  private:
    enum class Kind : std::uint8_t { Complete, Counter, Instant };

    struct Event
    {
        Kind kind;
        TrackId track;
        std::string name;
        Tick ts;
        Tick dur = 0;      //!< Complete only
        double value = 0;  //!< Counter only
    };

    struct Track
    {
        std::string process;
        std::string thread;
        std::uint32_t pid;  //!< one per distinct process name
    };

    bool _enabled = false;
    double _ticksPerUs = 2000.0;
    std::vector<Track> _tracks;
    std::vector<std::string> _processes;  //!< index + 1 == pid
    std::vector<Event> _events;
};

} // namespace silo::trace

#endif // SILO_SIM_TRACER_HH
