/**
 * @file
 * Plain-text table formatting for experiment reports.
 *
 * The bench binaries print one paper-style table each (e.g., Fig. 11's
 * normalized write traffic); TablePrinter keeps the formatting in one
 * place so all reports align and round identically.
 */

#ifndef SILO_SIM_TABLE_HH
#define SILO_SIM_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace silo
{

/** Accumulates rows of strings and prints them column-aligned. */
class TablePrinter
{
  public:
    /** @param title Caption printed above the table. */
    explicit TablePrinter(std::string title) : _title(std::move(title)) {}

    /** Set the header row. */
    void
    header(std::vector<std::string> cells)
    {
        _header = std::move(cells);
    }

    /** Append a data row. */
    void
    row(std::vector<std::string> cells)
    {
        _rows.push_back(std::move(cells));
    }

    /** Format a double with @p digits fractional digits. */
    static std::string num(double v, int digits = 3);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace silo

#endif // SILO_SIM_TABLE_HH
