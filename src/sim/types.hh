/**
 * @file
 * Fundamental simulator types: time, addresses, and geometry helpers.
 *
 * The simulator counts time in CPU cycles of the (single) core clock
 * domain described in Table II of the paper (2 GHz). PM latencies given
 * in nanoseconds are converted into cycles with cyclesFromNs().
 */

#ifndef SILO_SIM_TYPES_HH
#define SILO_SIM_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace silo
{

/** Simulated time, in CPU cycles (2 GHz by default). */
using Tick = std::uint64_t;

/** A relative duration in CPU cycles. */
using Cycles = std::uint64_t;

/** A 48-bit physical address (stored in 64 bits). */
using Addr = std::uint64_t;

/** A machine word as stored in PM (8 bytes on 64-bit CPUs). */
using Word = std::uint64_t;

/** Sentinel for "no time scheduled". */
constexpr Tick maxTick = ~Tick(0);

/** Size of a machine word in bytes (one CPU store, one log data slot). */
constexpr unsigned wordBytes = 8;

/** Size of a cacheline in bytes (Table II). */
constexpr unsigned lineBytes = 64;

/** Words per cacheline. */
constexpr unsigned wordsPerLine = lineBytes / wordBytes;

/** Default line size of the on-PM internal buffer in bytes (§III-E). */
constexpr unsigned pmBufferLineBytes = 256;

/** Undo log entry size in bytes: metadata + old word (§III-F). */
constexpr unsigned undoLogEntryBytes = 18;

/** Undo+redo log entry size in bytes: metadata + old + new (§VI-D). */
constexpr unsigned undoRedoLogEntryBytes = 26;

/** Align @p addr down to the containing word. */
constexpr Addr
wordAlign(Addr addr)
{
    return addr & ~Addr(wordBytes - 1);
}

/** Align @p addr down to the containing cacheline. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~Addr(lineBytes - 1);
}

/** Align @p addr down to the containing on-PM buffer line. */
constexpr Addr
pmLineAlign(Addr addr)
{
    return addr & ~Addr(pmBufferLineBytes - 1);
}

/** Index of the word containing @p addr within its cacheline. */
constexpr unsigned
wordInLine(Addr addr)
{
    return unsigned((addr & (lineBytes - 1)) / wordBytes);
}

/** Convert nanoseconds to cycles at @p ghz (rounding up). */
constexpr Cycles
cyclesFromNs(double ns, double ghz = 2.0)
{
    return Cycles(ns * ghz + 0.5);
}

} // namespace silo

#endif // SILO_SIM_TYPES_HH
