/**
 * @file
 * A sparse, word-granular value store.
 *
 * Used as the functional memory behind trace generation, as the PM
 * media image in the NVM device, and as the architectural value map in
 * the replay cores. Unwritten words read as zero, matching a zero-filled
 * device.
 *
 * Layout: a page-granular sparse directory over 4 KiB pages, so 16 GB
 * of simulated PM costs memory proportional to the pages actually
 * touched. Each page is a flat 512-word array plus a written bitmap
 * (which words count toward the footprint); the directory mapping page
 * number -> page is an open-addressing, power-of-two, linear-probing
 * table (pages are never removed, so probing needs no tombstones), and
 * the single-page hit cache short-circuits the probe for the common
 * run of same-page accesses a replay core produces. This replaced an
 * std::unordered_map<Addr, Word> whose per-word nodes, rehashes and
 * teardown dominated whole-simulation profiles (see DESIGN.md §4e).
 *
 * Iteration order is deterministic: ascending address, via a sorted
 * page index maintained on page creation. Crash-image comparison in
 * src/check/ and the golden-JSON tests rely on this.
 */

#ifndef SILO_SIM_WORD_STORE_HH
#define SILO_SIM_WORD_STORE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace silo
{

/** Sparse map from word-aligned address to word value. */
class WordStore
{
  public:
    WordStore() = default;

    /** Adopt a plain map image (test convenience). */
    WordStore(const std::unordered_map<Addr, Word> &map_image)
    {
        loadImage(map_image);
    }

    /** Read the word at @p addr; zero if never written. */
    Word
    load(Addr addr) const
    {
        checkAligned(addr);
        Addr page_no = addr >> pageByteBits;
        std::size_t idx;
        if (page_no == _hitPageNo) {
            idx = _hitPage;
        } else {
            idx = findPage(page_no);
            if (idx == npos)
                return 0;
        }
        // Unwritten words are zero-initialized, so no bitmap test.
        return _pages[idx].words[wordIndex(addr)];
    }

    /** Write @p value at @p addr. */
    void
    store(Addr addr, Word value)
    {
        checkAligned(addr);
        Page &page = pageFor(addr >> pageByteBits);
        markWritten(page, wordIndex(addr));
        page.words[wordIndex(addr)] = value;
    }

    /**
     * Reference to the word at @p addr, creating it as zero (and
     * counting it written) if absent — unordered_map::operator[]
     * semantics, for oracle-building test code.
     */
    Word &
    operator[](Addr addr)
    {
        checkAligned(addr);
        Page &page = pageFor(addr >> pageByteBits);
        markWritten(page, wordIndex(addr));
        return page.words[wordIndex(addr)];
    }

    /** @return true if @p addr was ever written. */
    bool
    contains(Addr addr) const
    {
        checkAligned(addr);
        std::size_t idx = findPage(addr >> pageByteBits);
        if (idx == npos)
            return false;
        unsigned w = wordIndex(addr);
        return (_pages[idx].written[w >> 6] >>
                (w & 63)) & 1;
    }

    /** Number of distinct words ever written. */
    std::size_t footprintWords() const { return _footprint; }

    /** Alias of footprintWords() (map-like spelling). */
    std::size_t size() const { return _footprint; }

    /** @return true if no word was ever written. */
    bool empty() const { return _footprint == 0; }

    /**
     * Snapshot of every written (address, value) pair in ascending
     * address order.
     */
    std::vector<std::pair<Addr, Word>>
    words() const
    {
        std::vector<std::pair<Addr, Word>> out;
        out.reserve(_footprint);
        for (const auto &[addr, value] : *this)
            out.emplace_back(addr, value);
        return out;
    }

    /** Bulk-overlay another store's written words onto this one. */
    void
    loadImage(const WordStore &image)
    {
        for (std::uint32_t src_idx : image._order) {
            const Page &src = image._pages[src_idx];
            Page &dst = pageFor(image._pageNos[src_idx]);
            for (unsigned bw = 0; bw < bitmapWords; ++bw) {
                std::uint64_t bits = src.written[bw];
                while (bits) {
                    unsigned w = bw * 64 +
                                 unsigned(std::countr_zero(bits));
                    bits &= bits - 1;
                    markWritten(dst, w);
                    dst.words[w] = src.words[w];
                }
            }
        }
    }

    /** Bulk-load a plain map image. */
    void
    loadImage(const std::unordered_map<Addr, Word> &map_image)
    {
        // Collect, then sort: page-creation order (and therefore the
        // directory layout) must not depend on the hash iteration
        // order of a caller's map, even though reads are unaffected.
        std::vector<std::pair<Addr, Word>> pairs;
        pairs.reserve(map_image.size());
        // silo-lint: allow(nondet-iteration) order-insensitive collect; the pairs are sorted by address before any store()
        for (const auto &[addr, value] : map_image)
            pairs.emplace_back(addr, value);
        std::sort(pairs.begin(), pairs.end());
        for (const auto &[addr, value] : pairs)
            store(addr, value);
    }

    /**
     * Forward const iterator over written (address, value) pairs,
     * in ascending address order.
     */
    class const_iterator
    {
      public:
        using value_type = std::pair<Addr, Word>;

        value_type
        operator*() const
        {
            std::size_t idx = _store->_order[_orderPos];
            return {(_store->_pageNos[idx] << pageByteBits) +
                        Addr(_word) * wordBytes,
                    _store->_pages[idx].words[_word]};
        }

        const_iterator &
        operator++()
        {
            ++_word;
            seek();
            return *this;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return _orderPos == o._orderPos && _word == o._word;
        }

        bool
        operator!=(const const_iterator &o) const
        {
            return !(*this == o);
        }

      private:
        friend class WordStore;

        const_iterator(const WordStore *store, std::size_t order_pos)
            : _store(store), _orderPos(order_pos)
        {
            seek();
        }

        /** Advance to the next written word at or after the cursor. */
        void
        seek()
        {
            while (_orderPos < _store->_order.size()) {
                const Page &page =
                    _store->_pages[_store->_order[_orderPos]];
                while (_word < pageWords) {
                    std::uint64_t bits = page.written[_word >> 6] >>
                                         (_word & 63);
                    if (bits) {
                        _word += unsigned(std::countr_zero(bits));
                        return;
                    }
                    _word = (_word | 63) + 1;
                }
                ++_orderPos;
                _word = 0;
            }
            _word = 0;   // canonical end position
        }

        const WordStore *_store;
        std::size_t _orderPos;
        unsigned _word = 0;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, _order.size()}; }

  private:
    static constexpr unsigned pageByteBits = 12;   //!< 4 KiB pages
    static constexpr std::size_t pageWords =
        (std::size_t(1) << pageByteBits) / wordBytes;
    static constexpr std::size_t bitmapWords = pageWords / 64;
    static constexpr std::size_t npos = ~std::size_t(0);

    struct Page
    {
        std::array<Word, pageWords> words{};
        std::array<std::uint64_t, bitmapWords> written{};
    };

    static void
    checkAligned(Addr addr)
    {
        if (addr % wordBytes != 0)
            panic("unaligned word access");
    }

    static unsigned
    wordIndex(Addr addr)
    {
        return unsigned((addr & ((Addr(1) << pageByteBits) - 1)) /
                        wordBytes);
    }

    /** Fibonacci-hash a page number into the directory table. */
    std::size_t
    hashSlot(Addr page_no) const
    {
        return std::size_t(
            (page_no * 0x9E3779B97F4A7C15ull) >> _tableShift);
    }

    /** @return index of @p page_no's page, or npos. */
    std::size_t
    findPage(Addr page_no) const
    {
        if (_table.empty())
            return npos;
        std::size_t mask = _table.size() - 1;
        for (std::size_t slot = hashSlot(page_no);;
             slot = (slot + 1) & mask) {
            std::uint32_t entry = _table[slot];
            if (entry == 0)
                return npos;
            if (_pageNos[entry - 1] == page_no)
                return entry - 1;
        }
    }

    /** Find or create the page for @p page_no; updates the hit cache. */
    Page &
    pageFor(Addr page_no)
    {
        if (page_no == _hitPageNo)
            return _pages[_hitPage];
        std::size_t idx = findPage(page_no);
        if (idx == npos) {
            if ((_pages.size() + 1) * 4 >= _table.size() * 3)
                growTable();
            idx = _pages.size();
            _pages.emplace_back();
            _pageNos.push_back(page_no);
            insertSlot(page_no, std::uint32_t(idx));
            // Keep the iteration order sorted by address: pages are
            // created rarely, so the O(#pages) insert is cheap.
            auto pos = std::lower_bound(
                _order.begin(), _order.end(), page_no,
                [this](std::uint32_t existing, Addr no) {
                    return _pageNos[existing] < no;
                });
            _order.insert(pos, std::uint32_t(idx));
        }
        _hitPageNo = page_no;
        _hitPage = idx;
        return _pages[idx];
    }

    void
    insertSlot(Addr page_no, std::uint32_t idx)
    {
        std::size_t mask = _table.size() - 1;
        std::size_t slot = hashSlot(page_no);
        while (_table[slot] != 0)
            slot = (slot + 1) & mask;
        _table[slot] = idx + 1;
    }

    void
    growTable()
    {
        std::size_t capacity =
            _table.empty() ? 64 : _table.size() * 2;
        _table.assign(capacity, 0);
        _tableShift = unsigned(
            64 - std::countr_zero(std::uint64_t(capacity)));
        for (std::size_t i = 0; i < _pageNos.size(); ++i)
            insertSlot(_pageNos[i], std::uint32_t(i));
    }

    void
    markWritten(Page &page, unsigned word)
    {
        std::uint64_t bit = std::uint64_t(1) << (word & 63);
        if (!(page.written[word >> 6] & bit)) {
            page.written[word >> 6] |= bit;
            ++_footprint;
        }
    }

    std::vector<Page> _pages;
    std::vector<Addr> _pageNos;      //!< page number of _pages[i]
    std::vector<std::uint32_t> _order;   //!< page indices, by address
    std::vector<std::uint32_t> _table;   //!< directory: page index + 1
    unsigned _tableShift = 64;
    std::size_t _footprint = 0;
    /** @name Last-touched-page hit cache (read-only in const paths) */
    /// @{
    Addr _hitPageNo = ~Addr(0);
    std::size_t _hitPage = 0;
    /// @}
};

} // namespace silo

#endif // SILO_SIM_WORD_STORE_HH
