/**
 * @file
 * A sparse, word-granular value store.
 *
 * Used as the functional memory behind trace generation, as the PM
 * media image in the NVM device, and as the architectural value map in
 * the replay cores. Unwritten words read as zero, matching a zero-filled
 * device.
 */

#ifndef SILO_SIM_WORD_STORE_HH
#define SILO_SIM_WORD_STORE_HH

#include <unordered_map>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace silo
{

/** Sparse map from word-aligned address to word value. */
class WordStore
{
  public:
    /** Read the word at @p addr; zero if never written. */
    Word
    load(Addr addr) const
    {
        auto it = _words.find(checkAligned(addr));
        return it == _words.end() ? 0 : it->second;
    }

    /** Write @p value at @p addr. */
    void
    store(Addr addr, Word value)
    {
        _words[checkAligned(addr)] = value;
    }

    /** Number of distinct words ever written. */
    std::size_t footprintWords() const { return _words.size(); }

    /** Direct access for snapshotting / comparison. */
    const std::unordered_map<Addr, Word> &words() const { return _words; }

    /** Bulk-load an image (e.g., the workload's initial memory). */
    void
    loadImage(const std::unordered_map<Addr, Word> &image)
    {
        for (const auto &[addr, value] : image)
            _words[addr] = value;
    }

  private:
    static Addr
    checkAligned(Addr addr)
    {
        if (addr % wordBytes != 0)
            panic("unaligned word access");
        return addr;
    }

    std::unordered_map<Addr, Word> _words;
};

} // namespace silo

#endif // SILO_SIM_WORD_STORE_HH
