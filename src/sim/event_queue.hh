/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Components schedule callbacks at absolute ticks. Events scheduled for
 * the same tick execute in (priority, insertion order), which keeps every
 * simulation bit-for-bit reproducible across runs — a requirement for the
 * crash-injection property tests, which replay a run up to an arbitrary
 * event index.
 */

#ifndef SILO_SIM_EVENT_QUEUE_HH
#define SILO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace silo
{

namespace trace { class Tracer; }

/**
 * The central event queue driving a simulated system.
 *
 * Single-threaded by design: the simulated hardware is concurrent, the
 * simulator is not.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Event priorities; lower runs first within a tick. */
    enum Priority : int
    {
        prioDevice = -10,   //!< memory devices complete first
        prioDefault = 0,
        prioCore = 10,      //!< cores observe completed hardware state
    };

    /** Current simulated time (tick of the last executed event). */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb at absolute time @p when.
     * @pre when >= now()
     */
    void
    schedule(Tick when, Callback cb, int priority = prioDefault)
    {
        if (when < _now)
            when = _now;
        _heap.push(Scheduled{when, priority, _nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb @p delta ticks from now. */
    void
    scheduleAfter(Cycles delta, Callback cb, int priority = prioDefault)
    {
        schedule(_now + delta, std::move(cb), priority);
    }

    /** @return true if no events remain. */
    bool empty() const { return _heap.empty(); }

    /** Number of events executed so far. */
    std::uint64_t executedEvents() const { return _executed; }

    /** Ask the run loop to stop after the current event (crash inject). */
    void requestStop() { _stopRequested = true; }

    /** Allow running again after a stop (post-run settling). */
    void clearStop() { _stopRequested = false; }

    /**
     * Execute events whose time is at most @p limit.
     * @return number of events executed.
     */
    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t n = 0;
        while (!_stopRequested && !_heap.empty() &&
               _heap.top().when <= limit && runNext()) {
            ++n;
        }
        return n;
    }

    /** @return true once requestStop() has been called. */
    bool stopRequested() const { return _stopRequested; }

    /**
     * Execute the next event.
     * @return false if the queue was empty.
     */
    bool
    runNext()
    {
        if (_heap.empty())
            return false;
        // Move the callback out before popping so it can reschedule.
        Scheduled ev = _heap.top();
        _heap.pop();
        // Observers (the interval sampler) see the settled state of the
        // outgoing tick just before time advances. Driving them from
        // here instead of from their own scheduled events keeps a
        // traced run's event stream identical to an untraced one.
        if (_advanceHook && ev.when > _now)
            _advanceHook(ev.when);
        _now = ev.when;
        ++_executed;
        ev.callback();
        return true;
    }

    /**
     * Install @p hook, called with the upcoming tick whenever the next
     * event advances simulated time (null uninstalls). During the call
     * now() still reports the outgoing tick, whose state is final: all
     * of its events have executed. Used by the tracing interval
     * sampler; unset for untraced runs, costing one test per event.
     */
    void
    setAdvanceHook(std::function<void(Tick)> hook)
    {
        _advanceHook = std::move(hook);
    }

    /**
     * Run until the queue drains, a stop is requested, or @p max_events
     * more events have executed.
     * @return number of events executed by this call.
     */
    std::uint64_t
    run(std::uint64_t max_events = ~std::uint64_t(0))
    {
        std::uint64_t n = 0;
        while (n < max_events && !_stopRequested && runNext())
            ++n;
        return n;
    }

    /**
     * Attach the run's tracer (null detaches). The queue only carries
     * the pointer so every component reachable from the queue can trace
     * without extra plumbing; with tracing off it stays null and each
     * instrumentation site costs one pointer test.
     */
    void setTracer(trace::Tracer *tracer) { _tracer = tracer; }

    /** @return the attached tracer, or nullptr when tracing is off. */
    trace::Tracer *tracer() const { return _tracer; }

    /** Drop all pending events and reset time (used between experiments). */
    void
    reset()
    {
        _heap = {};
        _now = 0;
        _executed = 0;
        _nextSeq = 0;
        _stopRequested = false;
    }

  private:
    struct Scheduled
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Scheduled &a, const Scheduled &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Scheduled, std::vector<Scheduled>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _executed = 0;
    std::uint64_t _nextSeq = 0;
    bool _stopRequested = false;
    trace::Tracer *_tracer = nullptr;
    std::function<void(Tick)> _advanceHook;
};

} // namespace silo

#endif // SILO_SIM_EVENT_QUEUE_HH
