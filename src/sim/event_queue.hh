/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Components schedule callbacks at absolute ticks. Events scheduled for
 * the same tick execute in (priority, insertion order), which keeps every
 * simulation bit-for-bit reproducible across runs — a requirement for the
 * crash-injection property tests, which replay a run up to an arbitrary
 * event index.
 *
 * Internally the queue is a calendar queue (a bucketed timing wheel),
 * not a binary heap: almost every event in this simulator lands within a
 * few thousand cycles of now (cache latencies, WPQ drains, PM
 * programming pulses), so hashing events into per-tick buckets makes
 * schedule() an append and pop a short bitmap scan instead of O(log n)
 * heap churn. Far-future events (e.g. FWB's multi-million-cycle walker
 * period) fall back to a lazily sorted overflow list and are promoted
 * into the wheel once the cursor comes within one horizon of them. The
 * pop order is *exactly* the old heap's (when, priority, sequence)
 * order — DESIGN.md §4e documents the tiebreak contract, and
 * tests/sim/event_queue_diff_test.cc proves equivalence against a
 * reference std::priority_queue over a million randomized operations.
 *
 * Invariants:
 *  - every wheel event's tick lies in [_cursor, _cursor + wheelSize),
 *    so a bucket only ever holds events of one tick;
 *  - every overflow event's tick is >= _cursor + wheelSize;
 *  - _cursor <= the earliest pending event's tick.
 * schedule() below now() clamps to now(); scheduling below the cursor
 * (legal between run phases, e.g. post-crash settling) rewinds the
 * cursor and demotes wheel events that fell out of the shrunk horizon.
 */

#ifndef SILO_SIM_EVENT_QUEUE_HH
#define SILO_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/profiler.hh"
#include "sim/types.hh"

namespace silo
{

namespace trace { class Tracer; }

/**
 * The central event queue driving a simulated system.
 *
 * Single-threaded by design: the simulated hardware is concurrent, the
 * simulator is not.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Event priorities; lower runs first within a tick. */
    enum Priority : int
    {
        prioDevice = -10,   //!< memory devices complete first
        prioDefault = 0,
        prioCore = 10,      //!< cores observe completed hardware state
    };

    /** Current simulated time (tick of the last executed event). */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb at absolute time @p when.
     *
     * @p domain is the static profiling tag the dispatch is timed
     * under when a profiler is attached (see sim/profiler.hh); it has
     * no effect on simulation semantics or ordering. Component
     * schedule sites pass their own domain; the default keeps
     * untagged callers visible as "other" in profiles.
     * @pre when >= now()
     */
    void
    schedule(Tick when, Callback cb, int priority = prioDefault,
             prof::Tag domain = prof::Tag::Other)
    {
        if (when < _now)
            when = _now;
        if (_size == 0)
            _cursor = when;
        else if (when < _cursor)
            rewindCursor(when);
        if (_peekValid && when <= _peekWhen) {
            // A fresh event always carries the largest seq, so it only
            // pops first on earlier tick or same-tick lower priority.
            if (when < _peekWhen || priority < _peekPriority)
                _peekValid = false;
        }
        ++_size;
        if (when < _cursor + wheelSize) {
            placeInWheel(Scheduled{when, priority, _nextSeq++, domain,
                                   std::move(cb)});
        } else {
            _overflowMin = std::min(_overflowMin, when);
            _overflow.push_back(Scheduled{when, priority, _nextSeq++,
                                          domain, std::move(cb)});
            _overflowSorted = false;
        }
    }

    /** Schedule @p cb @p delta ticks from now. */
    void
    scheduleAfter(Cycles delta, Callback cb, int priority = prioDefault,
                  prof::Tag domain = prof::Tag::Other)
    {
        schedule(_now + delta, std::move(cb), priority, domain);
    }

    /** @return true if no events remain. */
    bool empty() const { return _size == 0; }

    /** Number of events executed so far. */
    std::uint64_t executedEvents() const { return _executed; }

    /** Ask the run loop to stop after the current event (crash inject). */
    void requestStop() { _stopRequested = true; }

    /** Allow running again after a stop (post-run settling). */
    void clearStop() { _stopRequested = false; }

    /**
     * Execute events whose time is at most @p limit.
     * @return number of events executed.
     */
    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t n = 0;
        while (!_stopRequested && findNext() && _peekWhen <= limit &&
               runNext()) {
            ++n;
        }
        return n;
    }

    /** @return true once requestStop() has been called. */
    bool stopRequested() const { return _stopRequested; }

    /**
     * Execute the next event.
     * @return false if the queue was empty.
     */
    bool
    runNext()
    {
        if (!findNext())
            return false;
        std::vector<Scheduled> &bucket = _wheel[_peekBucket];
        Scheduled ev = std::move(bucket[_peekIndex]);
        // Swap-remove: bucket order is irrelevant, the pop path always
        // scans the (single-tick) bucket for the (priority, seq) min.
        if (_peekIndex + 1 != bucket.size())
            bucket[_peekIndex] = std::move(bucket.back());
        bucket.pop_back();
        if (bucket.empty())
            clearOccupied(_peekBucket);
        --_wheelCount;
        --_size;
        _peekValid = false;
        // Observers (the interval sampler) see the settled state of the
        // outgoing tick just before time advances. Driving them from
        // here instead of from their own scheduled events keeps a
        // traced run's event stream identical to an untraced one.
        if (_advanceHook && ev.when > _now)
            _advanceHook(ev.when);
        _now = ev.when;
        ++_executed;
        {
            // The profiling choke point: every dispatch is timed
            // under its domain tag. Unprofiled runs pay one branch on
            // the null pointer inside TimedScope.
            prof::TimedScope dispatch(_prof, ev.domain);
            ev.callback();
        }
        return true;
    }

    /**
     * Install @p hook, called with the upcoming tick whenever the next
     * event advances simulated time (null uninstalls). During the call
     * now() still reports the outgoing tick, whose state is final: all
     * of its events have executed. Used by the tracing interval
     * sampler; unset for untraced runs, costing one test per event.
     */
    void
    setAdvanceHook(std::function<void(Tick)> hook)
    {
        _advanceHook = std::move(hook);
    }

    /**
     * Run until the queue drains, a stop is requested, or @p max_events
     * more events have executed.
     * @return number of events executed by this call.
     */
    std::uint64_t
    run(std::uint64_t max_events = ~std::uint64_t(0))
    {
        std::uint64_t n = 0;
        while (n < max_events && !_stopRequested && runNext())
            ++n;
        return n;
    }

    /**
     * Attach the run's tracer (null detaches). The queue only carries
     * the pointer so every component reachable from the queue can trace
     * without extra plumbing; with tracing off it stays null and each
     * instrumentation site costs one pointer test.
     */
    void setTracer(trace::Tracer *tracer) { _tracer = tracer; }

    /** @return the attached tracer, or nullptr when tracing is off. */
    trace::Tracer *tracer() const { return _tracer; }

    /**
     * Attach the owning thread's profiling slab (null detaches).
     * Mirrors setTracer(): the queue carries the pointer so the one
     * dispatch site can attribute host time without any plumbing
     * through components; unprofiled runs keep it null.
     */
    void setProfiler(prof::ThreadProfile *profile) { _prof = profile; }

    /** @return the attached profiling slab, or nullptr. */
    prof::ThreadProfile *profiler() const { return _prof; }

    /** Drop all pending events and reset time (used between experiments). */
    void
    reset()
    {
        for (std::vector<Scheduled> &bucket : _wheel)
            bucket.clear();
        _occupied.fill(0);
        _occupiedSummary.fill(0);
        _overflow.clear();
        _overflowSorted = true;
        _overflowMin = maxTick;
        _wheelCount = 0;
        _size = 0;
        _cursor = 0;
        _peekValid = false;
        _now = 0;
        _executed = 0;
        _nextSeq = 0;
        _stopRequested = false;
    }

  private:
    struct Scheduled
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        /** Profiling domain the dispatch is attributed to. */
        prof::Tag domain;
        Callback callback;
    };

    /**
     * Wheel geometry: one bucket per tick, 16K ticks of horizon —
     * large enough that everything except multi-million-cycle
     * periodics (the FWB walker) stays out of the overflow list.
     */
    static constexpr unsigned wheelBits = 14;
    static constexpr Tick wheelSize = Tick(1) << wheelBits;
    static constexpr Tick wheelMask = wheelSize - 1;
    static constexpr std::size_t occWords = wheelSize / 64;

    void
    placeInWheel(Scheduled ev)
    {
        auto b = std::size_t(ev.when & wheelMask);
        if (_wheel[b].empty())
            setOccupied(b);
        _wheel[b].push_back(std::move(ev));
        ++_wheelCount;
    }

    void
    setOccupied(std::size_t b)
    {
        _occupied[b >> 6] |= std::uint64_t(1) << (b & 63);
        _occupiedSummary[b >> 12] |= std::uint64_t(1) << ((b >> 6) & 63);
    }

    void
    clearOccupied(std::size_t b)
    {
        _occupied[b >> 6] &= ~(std::uint64_t(1) << (b & 63));
        if (_occupied[b >> 6] == 0) {
            _occupiedSummary[b >> 12] &=
                ~(std::uint64_t(1) << ((b >> 6) & 63));
        }
    }

    /**
     * The cursor moved backwards (scheduling below it between run
     * phases): wheel events beyond the shrunk horizon drop back to the
     * overflow list so buckets stay single-tick. O(pending events),
     * and pending counts are tiny whenever this path triggers.
     */
    void
    rewindCursor(Tick when)
    {
        _cursor = when;
        if (_wheelCount == 0)
            return;
        Tick end = _cursor + wheelSize;
        for (std::size_t w = 0; w < occWords; ++w) {
            std::uint64_t bits = _occupied[w];
            while (bits) {
                auto b = (w << 6) +
                         std::size_t(std::countr_zero(bits));
                bits &= bits - 1;
                std::vector<Scheduled> &bucket = _wheel[b];
                if (bucket.front().when < end)
                    continue;   // buckets are single-tick: all stay
                _overflowMin =
                    std::min(_overflowMin, bucket.front().when);
                _wheelCount -= bucket.size();
                for (Scheduled &ev : bucket)
                    _overflow.push_back(std::move(ev));
                _overflowSorted = false;
                bucket.clear();
                clearOccupied(b);
            }
        }
        _peekValid = false;
    }

    /** Move overflow events that entered the horizon into the wheel. */
    void
    promoteOverflow()
    {
        if (_overflowMin >= _cursor + wheelSize)
            return;
        if (!_overflowSorted) {
            // Descending (when, priority, seq): the nearest event sits
            // at the back, so promotion pops cheaply in order.
            std::sort(_overflow.begin(), _overflow.end(),
                      [](const Scheduled &a, const Scheduled &b) {
                          if (a.when != b.when)
                              return a.when > b.when;
                          if (a.priority != b.priority)
                              return a.priority > b.priority;
                          return a.seq > b.seq;
                      });
            _overflowSorted = true;
        }
        while (!_overflow.empty() &&
               _overflow.back().when < _cursor + wheelSize) {
            placeInWheel(std::move(_overflow.back()));
            _overflow.pop_back();
        }
        _overflowMin =
            _overflow.empty() ? maxTick : _overflow.back().when;
    }

    /** First occupied bucket at or after @p from, in circular order. */
    std::size_t
    nextOccupiedBucket(std::size_t from) const
    {
        std::size_t w = from >> 6;
        std::uint64_t word = _occupied[w] >> (from & 63);
        if (word)
            return from + std::size_t(std::countr_zero(word));
        // Two-level bitmap walk: summary bit i covers _occupied[i].
        for (std::size_t step = 1; step <= occWords; ++step) {
            std::size_t ww = (w + step) & (occWords - 1);
            std::uint64_t s = _occupiedSummary[ww >> 6] >> (ww & 63);
            if (s == 0) {
                // Skip to the end of this summary word.
                step += 63 - (ww & 63);
                continue;
            }
            if ((s & 1) == 0) {
                // Skip to the next set summary bit.
                step += std::size_t(std::countr_zero(s)) - 1;
                continue;
            }
            return (ww << 6) +
                   std::size_t(std::countr_zero(_occupied[ww]));
        }
        return wheelSize;   // wheel is empty
    }

    /**
     * Locate the next event — advance the cursor to its tick and cache
     * its (bucket, index, when, priority) for runNext().
     * @return false if the queue is empty.
     */
    bool
    findNext()
    {
        if (_peekValid)
            return true;
        if (_size == 0)
            return false;
        promoteOverflow();
        if (_wheelCount == 0) {
            // Every pending event is far-future: jump the horizon.
            _cursor = _overflowMin;
            promoteOverflow();
        }
        std::size_t b =
            nextOccupiedBucket(std::size_t(_cursor & wheelMask));
        const std::vector<Scheduled> &bucket = _wheel[b];
        std::size_t best = 0;
        for (std::size_t i = 1; i < bucket.size(); ++i) {
            if (bucket[i].priority < bucket[best].priority ||
                (bucket[i].priority == bucket[best].priority &&
                 bucket[i].seq < bucket[best].seq)) {
                best = i;
            }
        }
        _cursor += (Tick(b) - _cursor) & wheelMask;
        _peekBucket = b;
        _peekIndex = best;
        _peekWhen = bucket[best].when;
        _peekPriority = bucket[best].priority;
        _peekValid = true;
        return true;
    }

    std::array<std::vector<Scheduled>, wheelSize> _wheel;
    std::array<std::uint64_t, occWords> _occupied{};
    std::array<std::uint64_t, occWords / 64> _occupiedSummary{};
    /** Events beyond the horizon, sorted descending on demand. */
    std::vector<Scheduled> _overflow;
    bool _overflowSorted = true;
    Tick _overflowMin = maxTick;
    /** Lower bound on every pending event's tick. */
    Tick _cursor = 0;
    std::size_t _wheelCount = 0;
    std::size_t _size = 0;
    /** @name Cached position of the next event (set by findNext()) */
    /// @{
    bool _peekValid = false;
    std::size_t _peekBucket = 0;
    std::size_t _peekIndex = 0;
    Tick _peekWhen = 0;
    int _peekPriority = 0;
    /// @}
    Tick _now = 0;
    std::uint64_t _executed = 0;
    std::uint64_t _nextSeq = 0;
    bool _stopRequested = false;
    trace::Tracer *_tracer = nullptr;
    prof::ThreadProfile *_prof = nullptr;
    std::function<void(Tick)> _advanceHook;
};

} // namespace silo

#endif // SILO_SIM_EVENT_QUEUE_HH
