#include "sim/tracer.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "sim/logging.hh"

namespace silo::trace
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Locale-independent, round-trippable number formatting. */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

Tracer::TrackId
Tracer::track(const std::string &process, const std::string &thread)
{
    if (!_enabled)
        return 0;
    for (TrackId i = 0; i < _tracks.size(); ++i) {
        if (_tracks[i].process == process && _tracks[i].thread == thread)
            return i;
    }
    std::uint32_t pid = 0;
    for (std::uint32_t p = 0; p < _processes.size(); ++p) {
        if (_processes[p] == process)
            pid = p + 1;
    }
    if (pid == 0) {
        _processes.push_back(process);
        pid = std::uint32_t(_processes.size());
    }
    _tracks.push_back(Track{process, thread, pid});
    return TrackId(_tracks.size() - 1);
}

void
Tracer::completeSpan(TrackId track, std::string name, Tick start,
                     Tick end)
{
    if (!_enabled)
        return;
    if (end < start)
        end = start;
    _events.push_back(Event{Kind::Complete, track, std::move(name),
                            start, end - start, 0});
}

void
Tracer::counter(TrackId track, std::string name, Tick ts, double value)
{
    if (!_enabled)
        return;
    _events.push_back(
        Event{Kind::Counter, track, std::move(name), ts, 0, value});
}

void
Tracer::instant(TrackId track, std::string name, Tick ts)
{
    if (!_enabled)
        return;
    _events.push_back(
        Event{Kind::Instant, track, std::move(name), ts, 0, 0});
}

void
Tracer::writeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        os << (first ? "\n" : ",\n");
        first = false;
    };

    // Track metadata first (ts 0 keeps per-track timestamps monotone).
    for (std::uint32_t p = 0; p < _processes.size(); ++p) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << p + 1
           << ",\"tid\":0,\"ts\":0,\"name\":\"process_name\","
              "\"args\":{\"name\":\""
           << jsonEscape(_processes[p]) << "\"}}";
    }
    for (TrackId t = 0; t < _tracks.size(); ++t) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << _tracks[t].pid << ",\"tid\":"
           << t + 1
           << ",\"ts\":0,\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(_tracks[t].thread) << "\"}}";
    }

    // Emit events sorted by start time; the sort is stable, so
    // same-tick events keep recording order and timestamps are
    // monotone within every track.
    std::vector<std::size_t> order(_events.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return _events[a].ts < _events[b].ts;
                     });

    for (std::size_t i : order) {
        const Event &e = _events[i];
        const Track &tr = _tracks[e.track];
        sep();
        os << "{\"ph\":\"";
        switch (e.kind) {
          case Kind::Complete: os << 'X'; break;
          case Kind::Counter: os << 'C'; break;
          case Kind::Instant: os << 'i'; break;
        }
        os << "\",\"pid\":" << tr.pid << ",\"tid\":" << e.track + 1
           << ",\"ts\":" << num(double(e.ts) / _ticksPerUs)
           << ",\"name\":\"" << jsonEscape(e.name) << "\"";
        switch (e.kind) {
          case Kind::Complete:
            os << ",\"dur\":" << num(double(e.dur) / _ticksPerUs);
            break;
          case Kind::Counter:
            os << ",\"args\":{\"value\":" << num(e.value) << "}";
            break;
          case Kind::Instant:
            os << ",\"s\":\"t\"";
            break;
        }
        os << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void
Tracer::writeJson(const std::string &path) const
{
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        fatal("cannot open trace file " + path);
    writeJson(os);
    if (!os)
        fatal("failed writing trace file " + path);
}

} // namespace silo::trace
