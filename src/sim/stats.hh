/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components own named statistics registered in a StatGroup; groups can
 * be dumped as text after a run. All statistics are plain counters so
 * resetting a system between experiments is cheap and exact.
 */

#ifndef SILO_SIM_STATS_HH
#define SILO_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace silo::stats
{

/** A named 64-bit event counter. */
class Scalar
{
  public:
    Scalar() = default;
    Scalar(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(std::uint64_t v) { _value += v; return *this; }

    std::uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    void reset() { _value = 0; }

  private:
    std::string _name;
    std::string _desc;
    std::uint64_t _value = 0;
};

/** A running mean over sampled values. */
class Average
{
  public:
    Average() = default;
    Average(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    void
    sample(double v)
    {
        _sum += v;
        ++_count;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }
    double minimum() const { return _count ? _min : 0.0; }
    double maximum() const { return _count ? _max : 0.0; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    void
    reset()
    {
        _sum = 0;
        _count = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

  private:
    std::string _name;
    std::string _desc;
    double _sum = 0;
    std::uint64_t _count = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** A fixed-bucket-width histogram with overflow bucket. */
class Distribution
{
  public:
    Distribution() = default;

    /**
     * @param name Stat name.
     * @param desc Human description.
     * @param bucket_width Width of each bucket (> 0).
     * @param num_buckets Number of regular buckets before overflow.
     */
    Distribution(std::string name, std::string desc,
                 std::uint64_t bucket_width, unsigned num_buckets)
        : _name(std::move(name)), _desc(std::move(desc)),
          _bucketWidth(bucket_width ? bucket_width : 1),
          _buckets(num_buckets, 0)
    {}

    void
    sample(std::uint64_t v)
    {
        _stats.sample(double(v));
        std::uint64_t idx = v / _bucketWidth;
        if (idx < _buckets.size())
            ++_buckets[idx];
        else
            ++_overflow;
    }

    const Average &summary() const { return _stats; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t bucketWidth() const { return _bucketWidth; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /**
     * Upper-bound estimate of the @p frac quantile (frac in (0, 1]):
     * the inclusive upper edge of the bucket where the cumulative
     * count reaches ceil(frac * count), clamped to the observed
     * maximum (exact when samples hit bucket edges). Samples that
     * landed in the overflow bucket resolve to the observed maximum.
     * @return 0 when no samples were recorded.
     */
    std::uint64_t percentile(double frac) const;

    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }

    /**
     * Invariant: every sample landed in exactly one bucket, so the
     * bucket counts plus the overflow must equal the summary count.
     * The JSON serializer asserts this before exporting.
     */
    bool
    countsConsistent() const
    {
        std::uint64_t total = _overflow;
        for (std::uint64_t b : _buckets)
            total += b;
        return total == _stats.count();
    }

    void
    reset()
    {
        _stats.reset();
        std::fill(_buckets.begin(), _buckets.end(), 0);
        _overflow = 0;
    }

  private:
    std::string _name;
    std::string _desc;
    std::uint64_t _bucketWidth = 1;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _overflow = 0;
    Average _stats;
};

/**
 * A registry of statistics owned by one component.
 *
 * Registration keeps raw pointers; the owning component must outlive the
 * group (they are members of the same object in practice). Because the
 * pointers refer into the owning object, copying or moving a component
 * holding a StatGroup would leave the copy's group pointing at the
 * original's statistics — the group is therefore neither copyable nor
 * movable, which makes every such component immovable by construction.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    Scalar &
    addScalar(Scalar &s)
    {
        _scalars.push_back(&s);
        return s;
    }

    Average &
    addAverage(Average &a)
    {
        _averages.push_back(&a);
        return a;
    }

    Distribution &
    addDistribution(Distribution &d)
    {
        _distributions.push_back(&d);
        return d;
    }

    /** Dump all registered statistics as "group.stat value # desc". */
    void print(std::ostream &os) const;

    /**
     * Emit the group as one JSON object: scalars as numbers, averages
     * as {mean,min,max,count,sum} objects, distributions additionally
     * with p50/p95/p99, bucket_width, buckets[] and overflow. Panics
     * if a distribution fails countsConsistent().
     */
    void printJson(std::ostream &os) const;

    /** Reset every registered statistic. */
    void
    reset()
    {
        for (auto *s : _scalars)
            s->reset();
        for (auto *a : _averages)
            a->reset();
        for (auto *d : _distributions)
            d->reset();
    }

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::vector<Scalar *> _scalars;
    std::vector<Average *> _averages;
    std::vector<Distribution *> _distributions;
};

/**
 * A hierarchical registry of StatGroups for structured export.
 *
 * Components register under slash-separated paths ("mc/0", "cache/l1d0",
 * "core/3"); writeJson() nests the path segments into one JSON tree
 * under the versioned "silo-stats-v1" schema, which the sweep engine
 * embeds per cell in results/*.json. Paths are kept sorted, so the
 * serialization is deterministic regardless of registration order.
 *
 * Like StatGroup, the registry holds raw pointers: the registered
 * groups must outlive it (it is built transiently at export time).
 */
class StatRegistry
{
  public:
    /** Register @p group under @p path ('/'-separated hierarchy). */
    void add(std::string path, const StatGroup &group);

    /** Write {"schema":"silo-stats-v1","groups":{...}} to @p os. */
    void writeJson(std::ostream &os) const;

    /** writeJson() into a string. */
    std::string toJson() const;

    std::size_t size() const { return _groups.size(); }

  private:
    std::map<std::string, const StatGroup *> _groups;
};

} // namespace silo::stats

#endif // SILO_SIM_STATS_HH
