#include "sim/table.hh"

#include <algorithm>
#include <cstdio>

namespace silo
{

std::string
TablePrinter::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

void
TablePrinter::print(std::ostream &os) const
{
    // Column widths across header + all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(_header);
    for (const auto &r : _rows)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << (i ? "  " : "") << cell
               << std::string(widths[i] - cell.size(), ' ');
        }
        os << '\n';
    };

    os << "== " << _title << " ==\n";
    if (!_header.empty()) {
        emit(_header);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &r : _rows)
        emit(r);
    os.flush();
}

} // namespace silo
