#include "mem/cache.hh"

#include "sim/logging.hh"

namespace silo::mem
{

Cache::Cache(const std::string &name, const CacheConfig &cfg)
    : _cfg(cfg), _stats(name)
{
    std::uint64_t lines = cfg.sizeBytes / lineBytes;
    if (cfg.ways == 0 || lines % cfg.ways != 0)
        fatal("cache geometry: lines must divide evenly into ways");
    _numSets = unsigned(lines / cfg.ways);
    _ways.resize(lines);

    _stats.addScalar(_hits);
    _stats.addScalar(_misses);
    _stats.addScalar(_evictions);
    _stats.addScalar(_dirtyEvictions);
}

Cache::Way *
Cache::findWay(Addr line_addr)
{
    unsigned set = setOf(line_addr);
    for (unsigned w = 0; w < _cfg.ways; ++w) {
        Way &way = _ways[std::size_t(set) * _cfg.ways + w];
        if (way.valid && way.tag == line_addr)
            return &way;
    }
    return nullptr;
}

const Cache::Way *
Cache::findWay(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findWay(line_addr);
}

bool
Cache::access(Addr line_addr, bool set_dirty)
{
    if (Way *way = findWay(line_addr)) {
        way->lastUse = ++_useClock;
        way->dirty |= set_dirty;
        ++_hits;
        return true;
    }
    ++_misses;
    return false;
}

bool
Cache::contains(Addr line_addr) const
{
    return findWay(line_addr) != nullptr;
}

bool
Cache::isDirty(Addr line_addr) const
{
    const Way *way = findWay(line_addr);
    return way && way->dirty;
}

std::optional<Victim>
Cache::insert(Addr line_addr, bool dirty)
{
    if (findWay(line_addr))
        panic("inserting a line that is already present");

    unsigned set = setOf(line_addr);
    Way *target = nullptr;
    for (unsigned w = 0; w < _cfg.ways; ++w) {
        Way &way = _ways[std::size_t(set) * _cfg.ways + w];
        if (!way.valid) {
            target = &way;
            break;
        }
        if (!target || way.lastUse < target->lastUse)
            target = &way;
    }

    std::optional<Victim> victim;
    if (target->valid) {
        victim = Victim{target->tag, target->dirty};
        ++_evictions;
        if (target->dirty)
            ++_dirtyEvictions;
    }
    target->tag = line_addr;
    target->valid = true;
    target->dirty = dirty;
    target->lastUse = ++_useClock;
    return victim;
}

std::optional<Victim>
Cache::extract(Addr line_addr)
{
    if (Way *way = findWay(line_addr)) {
        Victim v{way->tag, way->dirty};
        way->valid = false;
        way->dirty = false;
        return v;
    }
    return std::nullopt;
}

void
Cache::clean(Addr line_addr)
{
    if (Way *way = findWay(line_addr))
        way->dirty = false;
}

std::vector<Addr>
Cache::dirtyLines() const
{
    std::vector<Addr> out;
    for (const Way &way : _ways) {
        if (way.valid && way.dirty)
            out.push_back(way.tag);
    }
    return out;
}

void
Cache::invalidateAll()
{
    for (Way &way : _ways)
        way = Way{};
}

} // namespace silo::mem
