#include "mem/cache.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace silo::mem
{

Cache::Cache(const std::string &name, const CacheConfig &cfg)
    : _cfg(cfg), _stats(name)
{
    std::uint64_t lines = cfg.sizeBytes / lineBytes;
    if (cfg.ways == 0 || lines % cfg.ways != 0)
        fatal("cache geometry: lines must divide evenly into ways");
    if (cfg.ways > 64)
        fatal("cache geometry: at most 64 ways (per-set bitmasks)");
    _numSets = unsigned(lines / cfg.ways);
    _waysMask = cfg.ways == 64 ? ~std::uint64_t(0)
                               : (std::uint64_t(1) << cfg.ways) - 1;
    _tags.resize(lines);
    _lastUse.resize(lines);
    _valid.resize(_numSets);
    _dirty.resize(_numSets);
    _dirtySummary.resize((_numSets + 63) / 64);

    _stats.addScalar(_hits);
    _stats.addScalar(_misses);
    _stats.addScalar(_evictions);
    _stats.addScalar(_dirtyEvictions);
}

int
Cache::findWay(unsigned set, Addr line_addr) const
{
    const Addr *tags = &_tags[std::size_t(set) * _cfg.ways];
    std::uint64_t live = _valid[set];
    while (live) {
        unsigned w = unsigned(std::countr_zero(live));
        live &= live - 1;
        if (tags[w] == line_addr)
            return int(w);
    }
    return -1;
}

bool
Cache::access(Addr line_addr, bool set_dirty)
{
    unsigned set = setOf(line_addr);
    int w = findWay(set, line_addr);
    if (w >= 0) {
        _lastUse[std::size_t(set) * _cfg.ways + unsigned(w)] =
            ++_useClock;
        if (set_dirty)
            setDirty(set, unsigned(w));
        ++_hits;
        return true;
    }
    ++_misses;
    return false;
}

bool
Cache::contains(Addr line_addr) const
{
    return findWay(setOf(line_addr), line_addr) >= 0;
}

bool
Cache::isDirty(Addr line_addr) const
{
    unsigned set = setOf(line_addr);
    int w = findWay(set, line_addr);
    return w >= 0 && ((_dirty[set] >> unsigned(w)) & 1);
}

std::optional<Victim>
Cache::insert(Addr line_addr, bool dirty)
{
    unsigned set = setOf(line_addr);
    if (findWay(set, line_addr) >= 0)
        panic("inserting a line that is already present");

    std::size_t base = std::size_t(set) * _cfg.ways;
    std::uint64_t free = ~_valid[set] & _waysMask;
    unsigned target;
    std::optional<Victim> victim;
    if (free) {
        // Lowest free way: matches the original first-invalid scan.
        target = unsigned(std::countr_zero(free));
    } else {
        // LRU over a full set; strict < keeps the lowest way on ties.
        target = 0;
        for (unsigned w = 1; w < _cfg.ways; ++w) {
            if (_lastUse[base + w] < _lastUse[base + target])
                target = w;
        }
        victim = Victim{_tags[base + target],
                        ((_dirty[set] >> target) & 1) != 0};
        ++_evictions;
        if (victim->dirty)
            ++_dirtyEvictions;
    }

    _tags[base + target] = line_addr;
    _lastUse[base + target] = ++_useClock;
    _valid[set] |= std::uint64_t(1) << target;
    if (dirty)
        setDirty(set, target);
    else
        clearDirty(set, target);
    return victim;
}

std::optional<Victim>
Cache::extract(Addr line_addr)
{
    unsigned set = setOf(line_addr);
    int w = findWay(set, line_addr);
    if (w < 0)
        return std::nullopt;
    Victim v{line_addr, ((_dirty[set] >> unsigned(w)) & 1) != 0};
    _valid[set] &= ~(std::uint64_t(1) << unsigned(w));
    clearDirty(set, unsigned(w));
    return v;
}

void
Cache::clean(Addr line_addr)
{
    unsigned set = setOf(line_addr);
    int w = findWay(set, line_addr);
    if (w >= 0)
        clearDirty(set, unsigned(w));
}

std::vector<Addr>
Cache::dirtyLines() const
{
    // Set-major, way-ascending: the documented enumeration order.
    std::vector<Addr> out;
    for (std::size_t sw = 0; sw < _dirtySummary.size(); ++sw) {
        std::uint64_t sets = _dirtySummary[sw];
        while (sets) {
            auto set = unsigned(sw * 64) +
                       unsigned(std::countr_zero(sets));
            sets &= sets - 1;
            const Addr *tags = &_tags[std::size_t(set) * _cfg.ways];
            std::uint64_t bits = _dirty[set];
            while (bits) {
                unsigned w = unsigned(std::countr_zero(bits));
                bits &= bits - 1;
                out.push_back(tags[w]);
            }
        }
    }
    return out;
}

void
Cache::invalidateAll()
{
    // Stale tags/lastUse are never read once their valid bit is gone.
    std::fill(_valid.begin(), _valid.end(), 0);
    std::fill(_dirty.begin(), _dirty.end(), 0);
    std::fill(_dirtySummary.begin(), _dirtySummary.end(), 0);
}

} // namespace silo::mem
