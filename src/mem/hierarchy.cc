#include "mem/hierarchy.hh"

namespace silo::mem
{

CacheHierarchy::CacheHierarchy(EventQueue &eq, const SimConfig &cfg,
                               mc::McRouter &mc, ValueSource values)
    : _eq(eq), _cfg(cfg), _mc(mc), _values(std::move(values))
{
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        _l1.push_back(std::make_unique<Cache>(
            "l1d" + std::to_string(c), cfg.l1d));
        _l2.push_back(std::make_unique<Cache>(
            "l2_" + std::to_string(c), cfg.l2));
    }
    _l3 = std::make_unique<Cache>("l3", cfg.l3);
    if (auto *tr = _eq.tracer())
        _track = tr->track("mem", "writeback");
}

std::array<Word, wordsPerLine>
CacheHierarchy::lineValues(Addr line_addr) const
{
    std::array<Word, wordsPerLine> values;
    for (unsigned w = 0; w < wordsPerLine; ++w)
        values[w] = _values(line_addr + Addr(w) * wordBytes);
    return values;
}

void
CacheHierarchy::writebackWithRetry(Addr line_addr, bool evicted,
                                   bool held, std::function<void()> done)
{
    writebackAttempt(line_addr, evicted, held, _eq.now(),
                     std::move(done));
}

void
CacheHierarchy::writebackAttempt(Addr line_addr, bool evicted, bool held,
                                 Tick first, std::function<void()> done)
{
    if (_mc.tryWriteLine(line_addr, lineValues(line_addr), evicted,
                         held)) {
        if (auto *tr = _eq.tracer())
            tr->completeSpan(_track, "writeback", first, _eq.now());
        done();
        return;
    }
    _mc.requestWriteSlot(line_addr,
                         [this, line_addr, evicted, held, first,
                          done = std::move(done)]() mutable {
        writebackAttempt(line_addr, evicted, held, first,
                         std::move(done));
    });
}

void
CacheHierarchy::fill(unsigned core, Addr line_addr, bool dirty,
                     Cycles delay, std::function<void()> done)
{
    auto v1 = _l1[core]->insert(line_addr, dirty);
    std::optional<Victim> v3;
    if (v1) {
        auto v2 = _l2[core]->insert(v1->lineAddr, v1->dirty);
        if (v2)
            v3 = _l3->insert(v2->lineAddr, v2->dirty);
    }

    if (v3 && v3->dirty) {
        // The dirty L3 victim must secure a WPQ slot before the access
        // retires — full WPQ means real back-pressure on the core.
        bool held = _evictionHeld && _evictionHeld(v3->lineAddr);
        writebackWithRetry(v3->lineAddr, /*evicted=*/true, held,
                           [this, delay, done = std::move(done)] {
            _eq.scheduleAfter(delay, std::move(done),
                              EventQueue::prioCore, prof::Tag::Core);
        });
        return;
    }
    _eq.scheduleAfter(delay, std::move(done), EventQueue::prioCore,
                      prof::Tag::Core);
}

void
CacheHierarchy::access(unsigned core, Addr addr, bool write,
                       std::function<void()> done)
{
    Addr line = lineAlign(addr);

    if (_l1[core]->access(line, write)) {
        _eq.scheduleAfter(_cfg.l1d.latency, std::move(done),
                          EventQueue::prioCore, prof::Tag::Core);
        return;
    }

    Cycles base = _cfg.l1d.latency;
    if (_l2[core]->access(line, false)) {
        auto state = _l2[core]->extract(line);
        fill(core, line, state->dirty || write,
             base + _cfg.l2.latency, std::move(done));
        return;
    }

    base += _cfg.l2.latency;
    if (_l3->access(line, false)) {
        auto state = _l3->extract(line);
        fill(core, line, state->dirty || write,
             base + _cfg.l3.latency, std::move(done));
        return;
    }

    // Miss to memory.
    base += _cfg.l3.latency;
    _mc.read(line, [this, core, line, write, base,
                    done = std::move(done)]() mutable {
        fill(core, line, write, base, std::move(done));
    });
}

void
CacheHierarchy::flushLine(unsigned core, Addr line_addr, bool held,
                          std::function<void()> done)
{
    _l1[core]->clean(line_addr);
    _l2[core]->clean(line_addr);
    _l3->clean(line_addr);
    writebackWithRetry(line_addr, /*evicted=*/false, held,
                       std::move(done));
}

bool
CacheHierarchy::isDirty(unsigned core, Addr line_addr) const
{
    return _l1[core]->isDirty(line_addr) ||
           _l2[core]->isDirty(line_addr) || _l3->isDirty(line_addr);
}

std::vector<Addr>
CacheHierarchy::dirtyLines(unsigned core) const
{
    std::vector<Addr> out = _l1[core]->dirtyLines();
    auto l2_lines = _l2[core]->dirtyLines();
    out.insert(out.end(), l2_lines.begin(), l2_lines.end());
    auto l3_lines = _l3->dirtyLines();
    out.insert(out.end(), l3_lines.begin(), l3_lines.end());
    return out;
}

std::vector<Addr>
CacheHierarchy::allDirtyLines() const
{
    std::vector<Addr> out;
    for (unsigned c = 0; c < _cfg.numCores; ++c) {
        auto l1_lines = _l1[c]->dirtyLines();
        out.insert(out.end(), l1_lines.begin(), l1_lines.end());
        auto l2_lines = _l2[c]->dirtyLines();
        out.insert(out.end(), l2_lines.begin(), l2_lines.end());
    }
    auto l3_lines = _l3->dirtyLines();
    out.insert(out.end(), l3_lines.begin(), l3_lines.end());
    return out;
}

void
CacheHierarchy::invalidateAll()
{
    for (auto &cache : _l1)
        cache->invalidateAll();
    for (auto &cache : _l2)
        cache->invalidateAll();
    _l3->invalidateAll();
}

} // namespace silo::mem
