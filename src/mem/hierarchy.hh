/**
 * @file
 * The three-level cache hierarchy of Table II: private L1D and L2 per
 * core, shared L3, write-back/write-allocate throughout. Lines move up
 * on access and trickle down on eviction; only dirty L3 victims reach
 * the memory controller. When the WPQ is full the victim write-back
 * stalls the access that caused it — the contention path that throttles
 * write-heavy logging schemes.
 */

#ifndef SILO_MEM_HIERARCHY_HH
#define SILO_MEM_HIERARCHY_HH

#include <functional>
#include <memory>
#include <vector>

#include "mc/mc_router.hh"
#include "mem/cache.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/tracer.hh"

namespace silo::mem
{

/** Per-core L1/L2 plus shared L3, backed by the memory controller. */
class CacheHierarchy
{
  public:
    /** Supplies the current architectural value of a word. */
    using ValueSource = std::function<Word(Addr)>;

    CacheHierarchy(EventQueue &eq, const SimConfig &cfg,
                   mc::McRouter &mc, ValueSource values);

    /**
     * Perform one core access (load or store) to @p addr.
     * @p done runs when the access completes, including any
     * write-back back-pressure it incurred.
     */
    void access(unsigned core, Addr addr, bool write,
                std::function<void()> done);

    /**
     * Write the line's current values to the memory controller and
     * mark it clean everywhere (clwb semantics; LAD uses @p held).
     * @p done runs when the write is accepted into the WPQ.
     */
    void flushLine(unsigned core, Addr line_addr, bool held,
                   std::function<void()> done);

    /** @return true if the line is dirty in any level core can reach. */
    bool isDirty(unsigned core, Addr line_addr) const;

    /** Dirty lines reachable by @p core (its L1/L2 plus shared L3). */
    std::vector<Addr> dirtyLines(unsigned core) const;

    /** All dirty lines in the system (FWB walker). */
    std::vector<Addr> allDirtyLines() const;

    /** Drop every cached line (crash: caches are volatile). */
    void invalidateAll();

    /**
     * Policy hook (LAD): when set, a dirty L3 victim whose address
     * satisfies the predicate is enqueued "held" in the WPQ — durable
     * but not drainable until the owning transaction commits.
     */
    void
    setEvictionHeldPredicate(std::function<bool(Addr)> pred)
    {
        _evictionHeld = std::move(pred);
    }

    Cache &l1(unsigned core) { return *_l1[core]; }
    Cache &l2(unsigned core) { return *_l2[core]; }
    Cache &l3() { return *_l3; }

  private:
    /** Read the eight words of @p line_addr from the value source. */
    std::array<Word, wordsPerLine> lineValues(Addr line_addr) const;

    /**
     * Install @p line_addr into L1, cascade victims down, and finish
     * after @p delay once any dirty L3 victim has a WPQ slot.
     */
    void fill(unsigned core, Addr line_addr, bool dirty, Cycles delay,
              std::function<void()> done);

    /** Retry a write-back until the WPQ accepts it, then @p done. */
    void writebackWithRetry(Addr line_addr, bool evicted, bool held,
                            std::function<void()> done);

    /** Retry loop body; @p first is the first attempt's tick. */
    void writebackAttempt(Addr line_addr, bool evicted, bool held,
                          Tick first, std::function<void()> done);

    EventQueue &_eq;
    const SimConfig &_cfg;
    mc::McRouter &_mc;
    ValueSource _values;

    std::vector<std::unique_ptr<Cache>> _l1;
    std::vector<std::unique_ptr<Cache>> _l2;
    std::unique_ptr<Cache> _l3;
    std::function<bool(Addr)> _evictionHeld;
    /** Write-back timeline; 0 when tracing is off. */
    trace::Tracer::TrackId _track = 0;
};

} // namespace silo::mem

#endif // SILO_MEM_HIERARCHY_HH
