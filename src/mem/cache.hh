/**
 * @file
 * One set-associative, write-back, LRU cache level.
 *
 * The timing simulator tracks tags and dirty bits only; word values
 * live in the replay engine's architectural value store (threads never
 * share lines, so the line's content at eviction time always equals
 * the owning thread's current values — see core/replay_core.hh).
 *
 * State is struct-of-arrays with per-set valid/dirty bitmasks (one bit
 * per way), so a lookup only compares tags of valid ways, the LRU
 * victim search finds free ways with a bit scan, and dirtyLines() —
 * the FWB walker's and the crash path's full-cache sweep — skips clean
 * sets entirely via a set-level dirty summary bitmap instead of
 * touching every way of (say) a 4 MB L3. The enumeration order of
 * dirtyLines() is part of the determinism contract: set-major,
 * way-ascending, exactly as the original array-of-structs scan
 * produced (the FWB walk order feeds the event stream).
 */

#ifndef SILO_MEM_CACHE_HH
#define SILO_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace silo::mem
{

/** An evicted line reported by Cache::insert(). */
struct Victim
{
    Addr lineAddr;
    bool dirty;
};

/** Tag/dirty state of one set-associative cache level. */
class Cache
{
  public:
    /**
     * @param name Stat prefix (e.g., "l1d0").
     * @param cfg Geometry and latency.
     */
    Cache(const std::string &name, const CacheConfig &cfg);

    /** Access latency of this level. */
    Cycles latency() const { return _cfg.latency; }

    /**
     * Look up @p line_addr; updates LRU and hit/miss stats.
     * @param set_dirty Mark the line dirty on a hit.
     * @return true on hit.
     */
    bool access(Addr line_addr, bool set_dirty);

    /** @return true if the line is present (no LRU/stat side effects). */
    bool contains(Addr line_addr) const;

    /** @return true if present and dirty. */
    bool isDirty(Addr line_addr) const;

    /**
     * Insert @p line_addr (must not be present), evicting the LRU way
     * of its set if full.
     * @return the evicted victim, if any.
     */
    std::optional<Victim> insert(Addr line_addr, bool dirty);

    /**
     * Remove @p line_addr.
     * @return the line's state if it was present.
     */
    std::optional<Victim> extract(Addr line_addr);

    /** Clear a present line's dirty bit (clwb / force write-back). */
    void clean(Addr line_addr);

    /** All dirty lines (FWB walker, LAD commit, crash loss checks). */
    std::vector<Addr> dirtyLines() const;

    /** Drop all contents (crash: volatile caches lose state). */
    void invalidateAll();

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    stats::StatGroup &statGroup() { return _stats; }
    const stats::StatGroup &statGroup() const { return _stats; }

  private:
    unsigned setOf(Addr line_addr) const
    {
        return unsigned((line_addr / lineBytes) % _numSets);
    }

    /** Way index of @p line_addr within its set, or -1. */
    int findWay(unsigned set, Addr line_addr) const;

    void
    setDirty(unsigned set, unsigned way)
    {
        _dirty[set] |= std::uint64_t(1) << way;
        _dirtySummary[set >> 6] |= std::uint64_t(1) << (set & 63);
    }

    void
    clearDirty(unsigned set, unsigned way)
    {
        _dirty[set] &= ~(std::uint64_t(1) << way);
        if (_dirty[set] == 0) {
            _dirtySummary[set >> 6] &=
                ~(std::uint64_t(1) << (set & 63));
        }
    }

    CacheConfig _cfg;
    unsigned _numSets;
    std::uint64_t _waysMask;               //!< low _cfg.ways bits set
    std::vector<Addr> _tags;               //!< numSets x associativity
    std::vector<std::uint64_t> _lastUse;   //!< numSets x associativity
    std::vector<std::uint64_t> _valid;     //!< per-set way bitmask
    std::vector<std::uint64_t> _dirty;     //!< per-set way bitmask
    /** Bit per set: the set has at least one dirty way. */
    std::vector<std::uint64_t> _dirtySummary;
    std::uint64_t _useClock = 0;

    stats::StatGroup _stats;
    stats::Scalar _hits{"hits", "demand hits"};
    stats::Scalar _misses{"misses", "demand misses"};
    stats::Scalar _evictions{"evictions", "valid lines evicted"};
    stats::Scalar _dirtyEvictions{"dirty_evictions",
        "dirty lines evicted"};
};

} // namespace silo::mem

#endif // SILO_MEM_CACHE_HH
