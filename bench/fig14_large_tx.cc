/**
 * @file
 * Fig. 14: processing large transactions under Silo (§VI-F). The
 * write set of each transaction is scaled to 1-16x; throughput (a)
 * and PM write traffic (b) are normalized to the 1x configuration.
 * Large write sets overflow the 20-entry log buffer and exercise the
 * batched undo-log eviction path (§III-F). The (workload × scale)
 * matrix runs on the parallel sweep engine.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <string>

#include "harness/sweep.hh"

int
main()
{
    using namespace silo;

    constexpr unsigned scales[] = {1, 2, 4, 8, 16};

    harness::Sweep sweep;
    std::vector<std::pair<std::string, unsigned>> keys;
    for (auto kind : workload::evaluationWorkloads) {
        for (unsigned scale : scales) {
            harness::CellSpec spec;
            spec.trace.kind = kind;
            spec.trace.numThreads =
                unsigned(harness::envOr("SILO_CORES", 8));
            spec.trace.transactionsPerThread =
                std::max<std::uint64_t>(
                    harness::envOr("SILO_TX", 400) / scale, 25);
            spec.trace.opsPerTransaction = scale;
            spec.sim.numCores = spec.trace.numThreads;
            spec.sim.scheme = SchemeKind::Silo;
            spec.label = std::string("Fig14/") +
                         workload::workloadName(kind) + "/x" +
                         std::to_string(scale);
            keys.emplace_back(workload::workloadName(kind), scale);
            sweep.add(std::move(spec));
        }
    }
    sweep.run();
    sweep.writeJson(harness::jsonOutputPath("fig14_large_tx"),
                    "fig14_large_tx");

    std::map<std::pair<std::string, unsigned>, harness::SimReport>
        results;
    for (std::size_t i = 0; i < keys.size(); ++i)
        results[keys[i]] = sweep.results()[i].report;

    // Both panels normalize per unit of work: a 16x transaction packs
    // 16x the logical operations, so throughput counts operations and
    // write traffic is per operation.
    auto print = [&](const char *title, auto metric, int digits) {
        TablePrinter table(title);
        std::vector<std::string> header = {"Workload"};
        for (unsigned scale : scales)
            header.push_back(std::to_string(scale) + "x");
        table.header(std::move(header));
        for (auto kind : workload::evaluationWorkloads) {
            std::vector<std::string> cells = {
                workload::workloadName(kind)};
            double base = metric(
                results[{workload::workloadName(kind), 1}], 1);
            for (unsigned scale : scales) {
                double v = metric(
                    results[{workload::workloadName(kind), scale}],
                    scale);
                cells.push_back(
                    TablePrinter::num(base > 0 ? v / base : 0,
                                      digits));
            }
            table.row(std::move(cells));
        }
        table.print(std::cout);
    };

    print("Fig. 14a — operation throughput vs write-set scale, "
          "normalized to 1x (Silo)",
          [](const harness::SimReport &r, unsigned scale) {
              return r.txPerMillionCycles * double(scale);
          }, 3);
    // Traffic uses media *line* write-backs: the quantity the batched
    // undo-log eviction (N = S/18 entries per 256 B line, §III-F) is
    // designed to keep low.
    print("Fig. 14b — PM media line writes per operation vs write-set "
          "scale, normalized to 1x (Silo)",
          [](const harness::SimReport &r, unsigned scale) {
              return double(r.mediaLineWrites) /
                     double(std::max<std::uint64_t>(
                         r.committedTransactions * scale, 1));
          }, 2);
    std::cout << "# Paper: throughput drops only ~7.4% on average at "
                 "16x; per-tx write traffic grows by up to ~1.9x "
                 "(batched overflow keeps amplification low).\n";
    return 0;
}
