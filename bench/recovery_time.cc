/**
 * @file
 * Recovery-cost model (extension; the paper evaluates no recovery
 * figure). For each scheme, crash a run mid-flight and measure the
 * work recovery performs: live log records scanned, words rewritten
 * into the data region, and the modeled PM time (reads of the live
 * log region plus media word writes). One sweep-engine cell per
 * scheme; all six schemes share one cached Hash trace set.
 */

#include <iostream>
#include <vector>

#include "harness/sweep.hh"

namespace
{

using namespace silo;

struct RecoveryRow
{
    std::uint64_t liveRecords = 0;
    std::uint64_t wordsRewritten = 0;
    double modelNs = 0;
    std::uint64_t crashFlushBytes = 0;
};

} // namespace

int
main()
{
    constexpr SchemeKind kinds[] = {
        SchemeKind::Base, SchemeKind::Fwb, SchemeKind::MorLog,
        SchemeKind::Lad, SchemeKind::Silo, SchemeKind::SwEadr,
    };
    constexpr std::size_t n = sizeof(kinds) / sizeof(kinds[0]);
    std::vector<RecoveryRow> rows(n);
    std::uint64_t crash_events =
        harness::envOr("SILO_CRASH_EVENTS", 200000);

    harness::Sweep sweep;
    for (std::size_t i = 0; i < n; ++i) {
        harness::CellSpec spec;
        spec.trace.kind = workload::WorkloadKind::Hash;
        spec.trace.numThreads =
            unsigned(harness::envOr("SILO_CORES", 8));
        spec.trace.transactionsPerThread =
            harness::envOr("SILO_TX", 300);
        spec.sim.numCores = spec.trace.numThreads;
        spec.sim.scheme = kinds[i];
        spec.label = std::string("Recovery/") + schemeName(kinds[i]);
        spec.runner = [&rows, i, crash_events](
                          const SimConfig &cfg,
                          const workload::WorkloadTraces &tr) {
            harness::System sys(cfg, tr);
            sys.runEvents(crash_events);
            sys.crash();

            RecoveryRow row;
            row.crashFlushBytes =
                sys.scheme().schemeStats().crashFlushBytes.value();
            row.liveRecords = sys.logRegion().liveRecordCount();

            WordStore before = sys.pm().media();
            sys.recover();
            for (const auto &[addr, value] : sys.pm().media()) {
                if (!before.contains(addr) ||
                    before.load(addr) != value)
                    ++row.wordsRewritten;
            }
            // Model: one 64B-line read per live record + one media
            // word write per rewritten word.
            SimConfig defaults;
            double ns_per_read = double(defaults.pmReadCycles) / 2.0;
            double ns_per_word =
                double(defaults.pmWritePerWordCycles) / 2.0;
            row.modelNs = double(row.liveRecords) * ns_per_read +
                          double(row.wordsRewritten) * ns_per_word;
            rows[i] = row;
            return sys.report();
        };
        sweep.add(std::move(spec));
    }
    sweep.run();

    TablePrinter table(
        "Recovery cost after a mid-run crash, Hash @ 8 cores "
        "(extension)");
    table.header({"Design", "battery flush B", "live log records",
                  "words rewritten", "modeled PM time (us)"});
    for (std::size_t i = 0; i < n; ++i) {
        const auto &r = rows[i];
        table.row({schemeName(kinds[i]),
                   std::to_string(r.crashFlushBytes),
                   std::to_string(r.liveRecords),
                   std::to_string(r.wordsRewritten),
                   TablePrinter::num(r.modelNs / 1000.0, 1)});
    }
    table.print(std::cout);
    std::cout << "# Silo's recovery reads only the selectively "
                 "flushed logs; FWB/MorLog replay their whole live "
                 "log tail.\n";
    return 0;
}
