/**
 * @file
 * Recovery-cost model (extension; the paper evaluates no recovery
 * figure). For each scheme, crash a run mid-flight and measure the
 * work recovery performs: live log records scanned, words rewritten
 * into the data region, and the modeled PM time (reads of the live
 * log region plus media word writes).
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "harness/experiment.hh"

namespace
{

using namespace silo;

struct RecoveryRow
{
    std::uint64_t liveRecords = 0;
    std::uint64_t wordsRewritten = 0;
    double modelNs = 0;
    std::uint64_t crashFlushBytes = 0;
};

std::map<std::string, RecoveryRow> rows;

void
runScheme(benchmark::State &state, SchemeKind kind)
{
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Hash;
    tg.numThreads = unsigned(harness::envOr("SILO_CORES", 8));
    tg.transactionsPerThread = harness::envOr("SILO_TX", 300);

    for (auto _ : state) {
        auto traces = workload::generateTraces(tg);
        SimConfig cfg;
        cfg.numCores = tg.numThreads;
        cfg.scheme = kind;
        harness::System sys(cfg, traces);
        sys.runEvents(harness::envOr("SILO_CRASH_EVENTS", 200000));
        sys.crash();

        RecoveryRow row;
        row.crashFlushBytes =
            sys.scheme().schemeStats().crashFlushBytes.value();
        row.liveRecords = sys.logRegion().liveRecordCount();

        auto before = sys.pm().media().words();
        sys.recover();
        for (const auto &[addr, value] : sys.pm().media().words()) {
            auto it = before.find(addr);
            if (it == before.end() || it->second != value)
                ++row.wordsRewritten;
        }
        // Model: one 64B-line read per live record + one media word
        // write per rewritten word.
        SimConfig defaults;
        double ns_per_read = double(defaults.pmReadCycles) / 2.0;
        double ns_per_word =
            double(defaults.pmWritePerWordCycles) / 2.0;
        row.modelNs = double(row.liveRecords) * ns_per_read +
                      double(row.wordsRewritten) * ns_per_word;
        rows[schemeName(kind)] = row;
        state.counters["live_records"] = double(row.liveRecords);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr SchemeKind kinds[] = {
        SchemeKind::Base, SchemeKind::Fwb, SchemeKind::MorLog,
        SchemeKind::Lad, SchemeKind::Silo, SchemeKind::SwEadr,
    };
    for (auto kind : kinds) {
        benchmark::RegisterBenchmark(
            (std::string("Recovery/") + schemeName(kind)).c_str(),
            [kind](benchmark::State &s) { runScheme(s, kind); })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    TablePrinter table(
        "Recovery cost after a mid-run crash, Hash @ 8 cores "
        "(extension)");
    table.header({"Design", "battery flush B", "live log records",
                  "words rewritten", "modeled PM time (us)"});
    for (auto kind : kinds) {
        const auto &r = rows[schemeName(kind)];
        table.row({schemeName(kind),
                   std::to_string(r.crashFlushBytes),
                   std::to_string(r.liveRecords),
                   std::to_string(r.wordsRewritten),
                   TablePrinter::num(r.modelNs / 1000.0, 1)});
    }
    table.print(std::cout);
    std::cout << "# Silo's recovery reads only the selectively "
                 "flushed logs; FWB/MorLog replay their whole live "
                 "log tail.\n";
    return 0;
}
