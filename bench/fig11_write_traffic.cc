/**
 * @file
 * Fig. 11: write traffic to the PM physical media, normalized to Base,
 * for 1/2/4/8 cores across the seven benchmarks. The metric is media
 * word writes after on-PM buffer coalescing and data-comparison-write
 * (§III-E, §VI-B).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "matrix_common.hh"

namespace
{

using namespace silo;
using namespace silo::bench;

MatrixResults results;
std::vector<unsigned> coreCounts;

void
runCores(benchmark::State &state, unsigned cores)
{
    for (auto _ : state) {
        auto partial = runMatrix({cores});
        for (auto &[key, value] : partial)
            results[key] = value;
    }
    auto silo_avg = results.at(
        {cores, SchemeKind::Silo, workload::WorkloadKind::Hash});
    state.counters["silo_media_words"] =
        double(silo_avg.mediaWordWrites);
}

} // namespace

int
main(int argc, char **argv)
{
    using harness::envOr;
    unsigned max_cores = unsigned(envOr("SILO_MAX_CORES", 8));
    for (unsigned c = 1; c <= max_cores; c *= 2)
        coreCounts.push_back(c);

    for (unsigned cores : coreCounts) {
        benchmark::RegisterBenchmark(
            ("Fig11/cores:" + std::to_string(cores)).c_str(),
            [cores](benchmark::State &s) { runCores(s, cores); })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    SimConfig defaults;
    harness::printConfigBanner(defaults, std::cout);
    for (unsigned cores : coreCounts) {
        auto m = matrixFor(results, cores,
                           [](const harness::SimReport &r) {
                               return double(r.mediaWordWrites);
                           });
        m.toTable("Fig. 11(" + std::to_string(cores) +
                      " cores) — PM media write traffic, "
                      "normalized to Base",
                  0).print(std::cout);
    }
    std::cout << "# Paper (8 cores): Silo reduces writes by 76.5% vs "
                 "MorLog and 82% vs FWB; Silo ~= LAD.\n";
    return 0;
}
