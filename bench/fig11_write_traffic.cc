/**
 * @file
 * Fig. 11: write traffic to the PM physical media, normalized to Base,
 * for 1/2/4/8 cores across the seven benchmarks. The metric is media
 * word writes after on-PM buffer coalescing and data-comparison-write
 * (§III-E, §VI-B). The matrix runs on the parallel sweep engine;
 * results land in results/fig11_write_traffic.json.
 */

#include <iostream>

#include "matrix_common.hh"

int
main()
{
    using namespace silo;
    using namespace silo::bench;

    unsigned max_cores =
        unsigned(harness::envOr("SILO_MAX_CORES", 8));
    std::vector<unsigned> core_counts;
    for (unsigned c = 1; c <= max_cores; c *= 2)
        core_counts.push_back(c);

    harness::Sweep sweep;
    auto results = runMatrix(sweep, core_counts);
    sweep.writeJson(harness::jsonOutputPath("fig11_write_traffic"),
                    "fig11_write_traffic");

    SimConfig defaults;
    harness::printConfigBanner(defaults, std::cout);
    for (unsigned cores : core_counts) {
        auto m = matrixFor(results, cores,
                           [](const harness::SimReport &r) {
                               return double(r.mediaWordWrites);
                           });
        m.toTable("Fig. 11(" + std::to_string(cores) +
                      " cores) — PM media write traffic, "
                      "normalized to Base",
                  0).print(std::cout);
    }
    std::cout << "# Paper (8 cores): Silo reduces writes by 76.5% vs "
                 "MorLog and 82% vs FWB; Silo ~= LAD.\n";
    return 0;
}
