/**
 * @file
 * Ablation study (extension; not a paper figure).
 *
 * Part 1 quantifies each of Silo's log-reduction mechanisms (§III-C/D)
 * by disabling them one at a time: log ignorance, log merging, and the
 * eviction flush-bit.
 *
 * Part 2 compares Silo against the §II-C strawman the paper argues
 * against: software undo+redo logging on an eADR machine, whose
 * appended log entries pollute the cache and inflate PM write-backs.
 *
 * Every variant is one sweep-engine cell with a custom runner that
 * extracts the Silo reduction statistics where applicable.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/sweep.hh"
#include "log/sw_eadr_scheme.hh"
#include "silo/silo_scheme.hh"

namespace
{

using namespace silo;

struct AblationRow
{
    double txPerMcy = 0;
    double mediaWordsPerTx = 0;
    double busBytesPerTx = 0;
    double remainingLogsPerTx = 0;
};

} // namespace

int
main()
{
    using workload::WorkloadKind;

    struct Variant
    {
        const char *label;
        WorkloadKind kind;
        SimConfig cfg;
        unsigned ops = 1;
    };
    std::vector<Variant> variants;

    auto silo_cfg = [](bool ignorance, bool merging, bool flush_bit) {
        SimConfig cfg;
        cfg.scheme = SchemeKind::Silo;
        cfg.siloLogIgnorance = ignorance;
        cfg.siloLogMerging = merging;
        cfg.siloFlushBit = flush_bit;
        return cfg;
    };

    // Part 1: mechanism ablation. Array showcases ignorance, TPCC
    // showcases merging, Queue (high eviction rate) the flush-bit.
    variants.push_back({"Array/full", WorkloadKind::Array,
                        silo_cfg(true, true, true)});
    variants.push_back({"Array/no-ignorance", WorkloadKind::Array,
                        silo_cfg(false, true, true)});
    variants.push_back({"TPCC/full", WorkloadKind::Tpcc,
                        silo_cfg(true, true, true)});
    variants.push_back({"TPCC/no-merging", WorkloadKind::Tpcc,
                        silo_cfg(true, false, true)});
    // The flush-bit matters when a line evicts to the MC *during its
    // own transaction* — with Table II caches that takes enormous
    // transactions, so this variant shrinks the hierarchy until
    // Queue's streaming nodes spill mid-transaction.
    auto tiny_caches = [&](bool flush_bit) {
        SimConfig cfg = silo_cfg(true, true, flush_bit);
        cfg.l1d = {1024, 2, 4};
        cfg.l2 = {2048, 2, 12};
        cfg.l3 = {4096, 2, 28};
        // A research-sized buffer keeps entries resident long enough
        // for their cachelines to evict mid-transaction.
        cfg.logBufferEntries = 1024;
        return cfg;
    };
    variants.push_back({"Queue/bigTx-full", WorkloadKind::Queue,
                        tiny_caches(true), 64});
    variants.push_back({"Queue/bigTx-no-flush-bit",
                        WorkloadKind::Queue, tiny_caches(false), 64});

    // Part 2: SW-eADR strawman vs Silo on the macro benchmarks.
    SimConfig sweadr;
    sweadr.scheme = SchemeKind::SwEadr;
    variants.push_back({"TPCC/silo", WorkloadKind::Tpcc,
                        silo_cfg(true, true, true)});
    variants.push_back({"TPCC/sw-eadr", WorkloadKind::Tpcc, sweadr});
    variants.push_back({"YCSB/silo", WorkloadKind::Ycsb,
                        silo_cfg(true, true, true)});
    variants.push_back({"YCSB/sw-eadr", WorkloadKind::Ycsb, sweadr});

    std::vector<AblationRow> rows(variants.size());
    harness::Sweep sweep;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const Variant &v = variants[i];
        harness::CellSpec spec;
        spec.trace.kind = v.kind;
        spec.trace.numThreads =
            unsigned(harness::envOr("SILO_CORES", 8));
        spec.trace.transactionsPerThread =
            harness::envOr("SILO_TX", 300) / v.ops;
        spec.trace.opsPerTransaction = v.ops;
        spec.sim = v.cfg;
        spec.sim.numCores = spec.trace.numThreads;
        spec.label = std::string("Ablation/") + v.label;
        spec.runner = [&rows, i](const SimConfig &cfg,
                                 const workload::WorkloadTraces &tr) {
            harness::System sys(cfg, tr);
            sys.run();
            sys.settle();
            sys.drainToMedia();
            auto report = sys.report();
            AblationRow row;
            row.txPerMcy = report.txPerMillionCycles;
            double tx_count = double(std::max<std::uint64_t>(
                report.committedTransactions, 1));
            row.mediaWordsPerTx =
                double(report.mediaWordWrites) / tx_count;
            row.busBytesPerTx =
                double(report.wpqAcceptedBytes) / tx_count;
            if (auto *silo_p =
                    dynamic_cast<silo_scheme::SiloScheme *>(
                        &sys.scheme())) {
                row.remainingLogsPerTx =
                    silo_p->reductionStats().remainingLogsPerTx.mean();
            }
            rows[i] = row;
            return report;
        };
        sweep.add(std::move(spec));
    }
    sweep.run();
    sweep.writeJson(harness::jsonOutputPath("ablation_mechanisms"),
                    "ablation_mechanisms");

    TablePrinter table("Ablation — Silo mechanisms and the SW-eADR "
                       "strawman (extension)");
    table.header({"Variant", "tx/Mcycle", "media words/tx",
                  "MC-to-PM B/tx", "remaining logs/tx"});
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto &r = rows[i];
        table.row({variants[i].label, TablePrinter::num(r.txPerMcy, 1),
                   TablePrinter::num(r.mediaWordsPerTx, 1),
                   TablePrinter::num(r.busBytesPerTx, 1),
                   TablePrinter::num(r.remainingLogsPerTx, 1)});
    }
    table.print(std::cout);
    std::cout << "# Expectations: no-ignorance inflates Array's "
                 "buffer load; no-merging inflates TPCC's; SW-eADR "
                 "writes far more PM words than Silo and pays cache "
                 "pollution (§II-C).\n";
    return 0;
}
