# ctest script: run bench/selfperf with a pruned matrix and validate
# the silo-selfperf-v2 JSON it emits — schema, structure, positive
# throughput numbers — plus a deliberately generous wall-clock ceiling
# per section. The ceiling only catches order-of-magnitude regressions
# (an accidental O(n^2) hot path); it is far above normal run-to-run
# noise so the test never flakes on a loaded machine. Invoked by the
# perf_smoke test with -DBENCH_BINARY and -DJSON_PATH.

file(REMOVE "${JSON_PATH}")

# Pruned matrix: 1 core count x 7 workloads x 5 schemes at 40 tx.
set(ENV{SILO_SELFPERF_TX} 40)
set(ENV{SILO_SELFPERF_MAX_CORES} 1)
set(ENV{SILO_JOBS} 1)
set(ENV{SILO_JSON} "${JSON_PATH}")

execute_process(COMMAND "${BENCH_BINARY}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "perf_smoke: ${BENCH_BINARY} exited with ${rc}\n${out}\n${err}")
endif()

if(NOT EXISTS "${JSON_PATH}")
    message(FATAL_ERROR
        "perf_smoke: JSON file ${JSON_PATH} was not written")
endif()

# string(JSON) raises a fatal error itself if the file is not valid
# JSON or a queried member is missing.
file(READ "${JSON_PATH}" json)
string(JSON schema GET "${json}" schema)
if(NOT schema STREQUAL "silo-selfperf-v2")
    message(FATAL_ERROR "perf_smoke: unexpected schema \"${schema}\"")
endif()

string(JSON cells GET "${json}" matrix cells)
if(NOT cells EQUAL 35)
    message(FATAL_ERROR
        "perf_smoke: expected 35 matrix cells, got ${cells}")
endif()
string(JSON matrix_wall GET "${json}" matrix wall_seconds)
string(JSON cells_per_s GET "${json}" matrix cells_per_second)
if(cells_per_s LESS_EQUAL 0)
    message(FATAL_ERROR
        "perf_smoke: non-positive cells/s (${cells_per_s})")
endif()

# Per-cell wall-time distribution: ordered, positive, slowest labeled.
string(JSON dist_min GET "${json}" matrix cell_wall_seconds min)
string(JSON dist_p50 GET "${json}" matrix cell_wall_seconds p50)
string(JSON dist_p90 GET "${json}" matrix cell_wall_seconds p90)
string(JSON dist_max GET "${json}" matrix cell_wall_seconds max)
string(JSON dist_sum GET "${json}" matrix cell_wall_seconds sum)
if(dist_min LESS 0 OR dist_p50 LESS dist_min OR dist_p90 LESS dist_p50
   OR dist_max LESS dist_p90 OR dist_sum LESS dist_max)
    message(FATAL_ERROR "perf_smoke: cell_wall_seconds not ordered: "
        "min=${dist_min} p50=${dist_p50} p90=${dist_p90} "
        "max=${dist_max} sum=${dist_sum}")
endif()
string(JSON slowest GET "${json}" matrix slowest_cell)
if(slowest STREQUAL "")
    message(FATAL_ERROR "perf_smoke: slowest_cell is empty")
endif()

# Per-component microbenchmarks: ops recorded, positive rates.
foreach(pair
        "event_queue;events_per_second"
        "word_store;words_per_second"
        "cache_probe;probes_per_second"
        "recovery_path;recoveries_per_second"
        "litmus_compile;compiles_per_second")
    list(GET pair 0 section)
    list(GET pair 1 rate_key)
    string(JSON ops GET "${json}" micro ${section} ops)
    string(JSON rate GET "${json}" micro ${section} ${rate_key})
    string(JSON wall GET "${json}" micro ${section} wall_seconds)
    if(ops LESS 1 OR rate LESS_EQUAL 0)
        message(FATAL_ERROR "perf_smoke: micro.${section} reports "
            "ops=${ops} ${rate_key}=${rate}")
    endif()
    # Generous ceiling: each micro section times a few seconds of
    # work on the build host; 120 s means ~30x slower than today.
    if(wall GREATER 120)
        message(FATAL_ERROR "perf_smoke: micro.${section} took "
            "${wall} s (ceiling 120 s) — hot-path regression?")
    endif()
endforeach()

# The pruned 35-cell matrix runs in well under a second today; 60 s
# is an order-of-magnitude guard, not a tight threshold.
if(matrix_wall GREATER 60)
    message(FATAL_ERROR "perf_smoke: pruned matrix took "
        "${matrix_wall} s (ceiling 60 s) — hot-path regression?")
endif()

# peak_rss_kib is a positive integer on Linux and null elsewhere
# (/proc/self/status absent) — both are schema-valid.
string(JSON rss_type TYPE "${json}" peak_rss_kib)
if(rss_type STREQUAL "NUMBER")
    string(JSON rss GET "${json}" peak_rss_kib)
    if(rss LESS 1)
        message(FATAL_ERROR "perf_smoke: peak_rss_kib=${rss}")
    endif()
elseif(NOT rss_type STREQUAL "NULL")
    message(FATAL_ERROR
        "perf_smoke: peak_rss_kib has JSON type ${rss_type}")
endif()

message(STATUS "perf_smoke: ${cells} cells in ${matrix_wall} s "
    "(${cells_per_s} cells/s), micro sections OK (${JSON_PATH})")
