/**
 * @file
 * Fig. 13: the number of total and remaining on-chip log entries per
 * transaction, per core, under Silo (§VI-D). "Total" counts the log
 * entries transactions would produce with no reduction; "remaining"
 * counts what survives log ignorance and merging — the number that
 * sizes the 20-entry log buffer. TPCC runs all five transaction types
 * here, as in the paper. One sweep cell per workload, each with a
 * custom runner that reads the Silo scheme's reduction statistics.
 */

#include <iostream>
#include <vector>

#include "harness/sweep.hh"
#include "silo/silo_scheme.hh"

namespace
{

using namespace silo;

struct Fig13Row
{
    double total = 0;
    double remaining = 0;
    std::uint64_t maxRemaining = 0;
    double ignoredPct = 0;
};

} // namespace

int
main()
{
    constexpr std::size_t n =
        sizeof(workload::evaluationWorkloads) /
        sizeof(workload::evaluationWorkloads[0]);
    std::vector<Fig13Row> rows(n);

    harness::Sweep sweep;
    for (std::size_t i = 0; i < n; ++i) {
        auto kind = workload::evaluationWorkloads[i];
        harness::CellSpec spec;
        spec.trace.kind = kind;
        spec.trace.numThreads =
            unsigned(harness::envOr("SILO_CORES", 8));
        spec.trace.transactionsPerThread =
            harness::envOr("SILO_TX", 500);
        spec.trace.options.tpccAllTxTypes = true; // §VI-D: all five
        spec.sim.numCores = spec.trace.numThreads;
        spec.sim.scheme = SchemeKind::Silo;
        // A large buffer so "remaining" is observed, not clipped.
        spec.sim.logBufferEntries = 4096;
        spec.label = std::string("Fig13/") +
                     workload::workloadName(kind);
        spec.runner = [&rows, i](const SimConfig &cfg,
                                 const workload::WorkloadTraces &tr) {
            harness::System sys(cfg, tr);
            sys.run();
            const auto &red =
                dynamic_cast<silo_scheme::SiloScheme &>(sys.scheme())
                    .reductionStats();
            Fig13Row row;
            row.total = red.totalLogsPerTx.mean();
            row.remaining = red.remainingLogsPerTx.mean();
            row.maxRemaining = red.maxRemainingLogs;
            double total_logs = red.totalLogsPerTx.sum();
            row.ignoredPct =
                total_logs > 0
                    ? 100.0 * double(red.ignored.value()) / total_logs
                    : 0;
            rows[i] = row;
            return sys.report();
        };
        sweep.add(std::move(spec));
    }
    sweep.run();
    sweep.writeJson(harness::jsonOutputPath("fig13_log_buffer"),
                    "fig13_log_buffer");

    TablePrinter table(
        "Fig. 13 — total vs remaining on-chip log entries per "
        "transaction (Silo)");
    table.header({"Workload", "total", "remaining", "max remaining",
                  "ignored %"});
    double tot = 0, rem = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto &r = rows[i];
        table.row({workload::workloadName(
                       workload::evaluationWorkloads[i]),
                   TablePrinter::num(r.total, 1),
                   TablePrinter::num(r.remaining, 1),
                   std::to_string(r.maxRemaining),
                   TablePrinter::num(r.ignoredPct, 1)});
        tot += r.total;
        rem += r.remaining;
    }
    table.row({"Average", TablePrinter::num(tot / double(n), 1),
               TablePrinter::num(rem / double(n), 1), "", ""});
    table.print(std::cout);
    std::cout << "# Paper: reduction schemes remove 64.3% of logs on "
                 "average; Array ignores 90.4%; the max remaining is "
                 "20 (Hash), which sizes the log buffer.\n";
    return 0;
}
