/**
 * @file
 * Fig. 13: the number of total and remaining on-chip log entries per
 * transaction, per core, under Silo (§VI-D). "Total" counts the log
 * entries transactions would produce with no reduction; "remaining"
 * counts what survives log ignorance and merging — the number that
 * sizes the 20-entry log buffer. TPCC runs all five transaction types
 * here, as in the paper.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "harness/experiment.hh"
#include "silo/silo_scheme.hh"

namespace
{

using namespace silo;

struct Fig13Row
{
    double total = 0;
    double remaining = 0;
    std::uint64_t maxRemaining = 0;
    double ignoredPct = 0;
};

std::map<std::string, Fig13Row> results;

void
runWorkload(benchmark::State &state, workload::WorkloadKind kind)
{
    workload::TraceGenConfig tg;
    tg.kind = kind;
    tg.numThreads = unsigned(harness::envOr("SILO_CORES", 8));
    tg.transactionsPerThread = harness::envOr("SILO_TX", 500);
    tg.options.tpccAllTxTypes = true;   // §VI-D: all five types

    for (auto _ : state) {
        auto traces = workload::generateTraces(tg);
        SimConfig cfg;
        cfg.numCores = tg.numThreads;
        cfg.scheme = SchemeKind::Silo;
        // A large buffer so "remaining" is observed, not clipped.
        cfg.logBufferEntries = 4096;

        harness::System sys(cfg, traces);
        sys.run();
        const auto &red = dynamic_cast<silo_scheme::SiloScheme &>(
                              sys.scheme()).reductionStats();
        Fig13Row row;
        row.total = red.totalLogsPerTx.mean();
        row.remaining = red.remainingLogsPerTx.mean();
        row.maxRemaining = red.maxRemainingLogs;
        double total_logs = red.totalLogsPerTx.sum();
        row.ignoredPct = total_logs > 0
            ? 100.0 * double(red.ignored.value()) / total_logs : 0;
        results[workload::workloadName(kind)] = row;
        state.counters["remaining"] = row.remaining;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (auto kind : silo::workload::evaluationWorkloads) {
        benchmark::RegisterBenchmark(
            (std::string("Fig13/") + workload::workloadName(kind)).c_str(),
            [kind](benchmark::State &s) { runWorkload(s, kind); })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    TablePrinter table(
        "Fig. 13 — total vs remaining on-chip log entries per "
        "transaction (Silo)");
    table.header({"Workload", "total", "remaining", "max remaining",
                  "ignored %"});
    double tot = 0, rem = 0;
    unsigned n = 0;
    for (auto kind : silo::workload::evaluationWorkloads) {
        const auto &r = results[workload::workloadName(kind)];
        table.row({workload::workloadName(kind),
                   TablePrinter::num(r.total, 1),
                   TablePrinter::num(r.remaining, 1),
                   std::to_string(r.maxRemaining),
                   TablePrinter::num(r.ignoredPct, 1)});
        tot += r.total;
        rem += r.remaining;
        ++n;
    }
    table.row({"Average", TablePrinter::num(tot / n, 1),
               TablePrinter::num(rem / n, 1), "", ""});
    table.print(std::cout);
    std::cout << "# Paper: reduction schemes remove 64.3% of logs on "
                 "average; Array ignores 90.4%; the max remaining is "
                 "20 (Hash), which sizes the log buffer.\n";
    return 0;
}
