/**
 * @file
 * Table IV: battery requirements of eADR, BBB, and Silo (8 cores) —
 * flush size, flush energy, and supercapacitor / lithium thin-film
 * volume and area. Pure model arithmetic; no simulation sweep.
 */

#include <iostream>

#include "energy/battery_model.hh"
#include "sim/table.hh"

int
main()
{
    using namespace silo;

    SimConfig cfg;   // Table II defaults, 8 cores
    auto eadr = energy::eadrBattery(cfg);
    auto bbb = energy::bbbBattery(cfg);
    auto silo_req = energy::siloBattery(cfg);

    TablePrinter table(
        "Table IV — Battery requirements of different systems "
        "(8 cores)");
    table.header({"", "eADR", "BBB", "Our Silo"});
    auto row = [&](const char *label, double e, double b, double s,
                   int digits) {
        table.row({label, TablePrinter::num(e, digits),
                   TablePrinter::num(b, digits),
                   TablePrinter::num(s, digits)});
    };
    row("Flush Size (KB)", eadr.flushSizeKB, bbb.flushSizeKB,
        silo_req.flushSizeKB, 4);
    row("Flush Energy (uJ)", eadr.flushEnergyUj, bbb.flushEnergyUj,
        silo_req.flushEnergyUj, 0);
    row("Cap volume (mm^3)", eadr.capVolumeMm3, bbb.capVolumeMm3,
        silo_req.capVolumeMm3, 3);
    row("Cap area (mm^2)", eadr.capAreaMm2, bbb.capAreaMm2,
        silo_req.capAreaMm2, 3);
    row("Li volume (mm^3)", eadr.liVolumeMm3, bbb.liVolumeMm3,
        silo_req.liVolumeMm3, 4);
    row("Li area (mm^2)", eadr.liAreaMm2, bbb.liAreaMm2,
        silo_req.liAreaMm2, 4);
    table.print(std::cout);
    std::cout << "# Paper Table IV: eADR 10,496KB/54,377uJ/151;28.4/"
                 "1.51;1.32 - BBB 16KB/194uJ/0.54;0.66/0.0054;0.031 - "
                 "Silo 5.3125KB/62uJ/0.17;0.31/0.0017;0.014.\n";
    return 0;
}
