/**
 * @file
 * Fig. 15: transaction throughput sensitivity to the access latency
 * of Silo's log buffer, swept from 8 to 128 cycles (§VI-G). Reading
 * and writing the buffer is off the critical path, so throughput
 * should stay nearly flat.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "harness/experiment.hh"

namespace
{

using namespace silo;

constexpr Cycles latencies[] = {8, 16, 32, 64, 96, 128};

std::map<std::pair<std::string, Cycles>, double> throughput;

void
runPoint(benchmark::State &state, workload::WorkloadKind kind,
         Cycles latency, harness::TraceCache &cache)
{
    workload::TraceGenConfig tg;
    tg.kind = kind;
    tg.numThreads = unsigned(harness::envOr("SILO_CORES", 8));
    tg.transactionsPerThread = harness::envOr("SILO_TX", 400);

    for (auto _ : state) {
        const auto &traces = cache.get(tg);
        SimConfig cfg;
        cfg.numCores = tg.numThreads;
        cfg.scheme = SchemeKind::Silo;
        cfg.logBufferLatency = latency;
        auto report = harness::runCell(cfg, traces);
        throughput[{workload::workloadName(kind), latency}] =
            report.txPerMillionCycles;
        state.counters["tx_per_Mcy"] = report.txPerMillionCycles;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    static silo::harness::TraceCache cache;
    for (auto kind : silo::workload::evaluationWorkloads) {
        for (Cycles latency : latencies) {
            benchmark::RegisterBenchmark(
                (std::string("Fig15/") + workload::workloadName(kind) +
                    "/lat:" + std::to_string(latency)).c_str(),
                [kind, latency](benchmark::State &s) {
                    runPoint(s, kind, latency, cache);
                })
                ->Iterations(1)
                ->Unit(benchmark::kSecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    TablePrinter table(
        "Fig. 15 — throughput vs log buffer latency, normalized to "
        "the 8-cycle buffer (Silo)");
    std::vector<std::string> header = {"Workload"};
    for (Cycles latency : latencies)
        header.push_back(std::to_string(latency) + "cy");
    table.header(std::move(header));

    double worst = 1.0;
    for (auto kind : silo::workload::evaluationWorkloads) {
        std::vector<std::string> cells = {
            workload::workloadName(kind)};
        double base = throughput[{workload::workloadName(kind), 8}];
        for (Cycles latency : latencies) {
            double norm =
                base > 0
                    ? throughput[{workload::workloadName(kind),
                                  latency}] / base
                    : 0;
            worst = std::min(worst, norm);
            cells.push_back(TablePrinter::num(norm, 3));
        }
        table.row(std::move(cells));
    }
    table.print(std::cout);
    std::cout << "# worst-case normalized throughput: "
              << TablePrinter::num(worst, 3)
              << " (paper: a 128-cycle buffer costs only ~3.3% on "
                 "average)\n";
    return 0;
}
