/**
 * @file
 * Fig. 15: transaction throughput sensitivity to the access latency
 * of Silo's log buffer, swept from 8 to 128 cycles (§VI-G). Reading
 * and writing the buffer is off the critical path, so throughput
 * should stay nearly flat. All six latencies of one workload share a
 * single cached trace set via the sweep engine's trace pre-generation.
 */

#include <iostream>
#include <map>
#include <string>

#include "harness/sweep.hh"

int
main()
{
    using namespace silo;

    constexpr Cycles latencies[] = {8, 16, 32, 64, 96, 128};

    harness::Sweep sweep;
    std::vector<std::pair<std::string, Cycles>> keys;
    for (auto kind : workload::evaluationWorkloads) {
        for (Cycles latency : latencies) {
            harness::CellSpec spec;
            spec.trace.kind = kind;
            spec.trace.numThreads =
                unsigned(harness::envOr("SILO_CORES", 8));
            spec.trace.transactionsPerThread =
                harness::envOr("SILO_TX", 400);
            spec.sim.numCores = spec.trace.numThreads;
            spec.sim.scheme = SchemeKind::Silo;
            spec.sim.logBufferLatency = latency;
            spec.label = std::string("Fig15/") +
                         workload::workloadName(kind) + "/lat:" +
                         std::to_string(latency);
            keys.emplace_back(workload::workloadName(kind), latency);
            sweep.add(std::move(spec));
        }
    }
    sweep.run();
    sweep.writeJson(harness::jsonOutputPath("fig15_buffer_latency"),
                    "fig15_buffer_latency");

    std::map<std::pair<std::string, Cycles>, double> throughput;
    for (std::size_t i = 0; i < keys.size(); ++i)
        throughput[keys[i]] =
            sweep.results()[i].report.txPerMillionCycles;

    TablePrinter table(
        "Fig. 15 — throughput vs log buffer latency, normalized to "
        "the 8-cycle buffer (Silo)");
    std::vector<std::string> header = {"Workload"};
    for (Cycles latency : latencies)
        header.push_back(std::to_string(latency) + "cy");
    table.header(std::move(header));

    double worst = 1.0;
    for (auto kind : workload::evaluationWorkloads) {
        std::vector<std::string> cells = {
            workload::workloadName(kind)};
        double base = throughput[{workload::workloadName(kind), 8}];
        for (Cycles latency : latencies) {
            double norm =
                base > 0
                    ? throughput[{workload::workloadName(kind),
                                  latency}] / base
                    : 0;
            worst = std::min(worst, norm);
            cells.push_back(TablePrinter::num(norm, 3));
        }
        table.row(std::move(cells));
    }
    table.print(std::cout);
    std::cout << "# worst-case normalized throughput: "
              << TablePrinter::num(worst, 3)
              << " (paper: a 128-cycle buffer costs only ~3.3% on "
                 "average)\n";
    return 0;
}
