/**
 * @file
 * Fig. 4: the write size (bytes) in one transaction for the eleven
 * workloads. Regenerated from functional traces — the metric is the
 * per-transaction write set (distinct words x 8 B), which motivates
 * Silo's small 20-entry log buffer (§II-E).
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "harness/experiment.hh"
#include "workload/trace_gen.hh"

namespace
{

using namespace silo;
using namespace silo::workload;

std::map<std::string, WriteSetStats> results;

void
runWorkload(benchmark::State &state, WorkloadKind kind)
{
    TraceGenConfig tg;
    tg.kind = kind;
    tg.numThreads = 1;
    tg.transactionsPerThread =
        harness::envOr("SILO_TX", 2000);
    tg.seed = harness::envOr("SILO_SEED", 42);

    for (auto _ : state) {
        auto traces = generateTraces(tg);
        auto stats = analyzeWriteSets(traces.threads[0]);
        results[workloadName(kind)] = stats;
        state.counters["write_set_B"] = stats.avgWriteSetBytes;
        state.counters["stores_per_tx"] = stats.avgStoreOps;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (auto kind : silo::workload::allWorkloads) {
        benchmark::RegisterBenchmark(
            (std::string("Fig04/") + workloadName(kind)).c_str(),
            [kind](benchmark::State &s) { runWorkload(s, kind); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    TablePrinter table(
        "Fig. 4 — Write size (bytes) per transaction");
    table.header({"Workload", "write set (B)", "stores/tx",
                  "unique words/tx", "max words/tx"});
    double sum = 0;
    unsigned n = 0;
    for (auto kind : silo::workload::allWorkloads) {
        const auto &s = results[workloadName(kind)];
        table.row({workloadName(kind),
                   TablePrinter::num(s.avgWriteSetBytes, 1),
                   TablePrinter::num(s.avgStoreOps, 1),
                   TablePrinter::num(s.avgUniqueWords, 1),
                   std::to_string(s.maxUniqueWords)});
        sum += s.avgWriteSetBytes;
        ++n;
    }
    table.row({"Average", TablePrinter::num(sum / n, 1), "", "", ""});
    table.print(std::cout);
    std::cout << "# Paper: write sizes are generally below 0.5 KB "
                 "per transaction (§II-E).\n";
    return 0;
}
