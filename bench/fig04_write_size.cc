/**
 * @file
 * Fig. 4: the write size (bytes) in one transaction for the eleven
 * workloads. Regenerated from functional traces — the metric is the
 * per-transaction write set (distinct words x 8 B), which motivates
 * Silo's small 20-entry log buffer (§II-E). Trace generation runs in
 * parallel on the sweep engine's worker pool; the per-cell runner only
 * analyzes the cached trace (no timing simulation).
 */

#include <iostream>
#include <vector>

#include "harness/sweep.hh"

int
main()
{
    using namespace silo;
    using namespace silo::workload;

    constexpr std::size_t n =
        sizeof(allWorkloads) / sizeof(allWorkloads[0]);
    std::vector<WriteSetStats> stats(n);

    harness::Sweep sweep;
    for (std::size_t i = 0; i < n; ++i) {
        harness::CellSpec spec;
        spec.trace.kind = allWorkloads[i];
        spec.trace.numThreads = 1;
        spec.trace.transactionsPerThread =
            harness::envOr("SILO_TX", 2000);
        spec.trace.seed = harness::envOr("SILO_SEED", 42);
        spec.label = std::string("Fig04/") +
                     workloadName(allWorkloads[i]);
        spec.runner = [&stats, i](const SimConfig &,
                                  const WorkloadTraces &traces) {
            stats[i] = analyzeWriteSets(traces.threads[0]);
            return harness::SimReport{};
        };
        sweep.add(std::move(spec));
    }
    sweep.run();

    TablePrinter table(
        "Fig. 4 — Write size (bytes) per transaction");
    table.header({"Workload", "write set (B)", "stores/tx",
                  "unique words/tx", "max words/tx"});
    double sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto &s = stats[i];
        table.row({workloadName(allWorkloads[i]),
                   TablePrinter::num(s.avgWriteSetBytes, 1),
                   TablePrinter::num(s.avgStoreOps, 1),
                   TablePrinter::num(s.avgUniqueWords, 1),
                   std::to_string(s.maxUniqueWords)});
        sum += s.avgWriteSetBytes;
    }
    table.row({"Average", TablePrinter::num(sum / double(n), 1), "",
               "", ""});
    table.print(std::cout);
    std::cout << "# Paper: write sizes are generally below 0.5 KB "
                 "per transaction (§II-E).\n";
    return 0;
}
