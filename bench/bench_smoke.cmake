# ctest script: run a tiny Fig. 12 matrix through the parallel sweep
# engine and check that the JSON results file is written and parses.
# Invoked by the bench_smoke test with -DBENCH_BINARY and -DJSON_PATH.
#
# Trace mode (-DTRACE_PATH, the trace_smoke test): a smaller matrix
# with SILO_TRACE targeting one cell; additionally validates the
# Chrome trace-event JSON that cell writes — required keys, monotone
# timestamps per track, span and counter coverage.

file(REMOVE "${JSON_PATH}")

if(TRACE_PATH)
    set(ENV{SILO_TX} 10)
    set(ENV{SILO_MAX_CORES} 1)
    set(ENV{SILO_JOBS} 2)
    set(ENV{SILO_TRACE} "${TRACE_PATH}")
    # Cell 4 of the 1-core matrix is Array/Silo/1c (5 schemes x 7
    # workloads, scheme-major): cheap, and exercises the speculative
    # scheme's spans.
    set(ENV{SILO_TRACE_CELL} 4)
else()
    set(ENV{SILO_TX} 20)
    set(ENV{SILO_MAX_CORES} 2)
    set(ENV{SILO_JOBS} 4)
endif()
set(ENV{SILO_JSON} "${JSON_PATH}")

execute_process(COMMAND "${BENCH_BINARY}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "bench_smoke: ${BENCH_BINARY} exited with ${rc}\n${out}\n${err}")
endif()

if(NOT EXISTS "${JSON_PATH}")
    message(FATAL_ERROR
        "bench_smoke: JSON results file ${JSON_PATH} was not written")
endif()

# string(JSON) raises a fatal error itself if the file is not valid
# JSON or the queried members are missing.
file(READ "${JSON_PATH}" json)
string(JSON schema GET "${json}" schema)
if(NOT schema STREQUAL "silo-sweep-v1")
    message(FATAL_ERROR
        "bench_smoke: unexpected schema \"${schema}\"")
endif()
string(JSON n_cells LENGTH "${json}" cells)
if(TRACE_PATH)
    # SILO_MAX_CORES=1 -> 1 core count x 7 workloads x 5 schemes.
    set(expected_cells 35)
else()
    # SILO_MAX_CORES=2 -> 2 core counts x 7 workloads x 5 schemes.
    set(expected_cells 70)
endif()
if(NOT n_cells EQUAL expected_cells)
    message(FATAL_ERROR "bench_smoke: expected ${expected_cells} "
        "cells, JSON has ${n_cells}")
endif()
string(JSON commits GET "${json}" cells 0 report
    committed_transactions)
if(commits LESS 1)
    message(FATAL_ERROR
        "bench_smoke: first cell committed ${commits} transactions")
endif()

# Every cell embeds the hierarchical stats block.
string(JSON stats_schema GET "${json}" cells 0 report stats schema)
if(NOT stats_schema STREQUAL "silo-stats-v1")
    message(FATAL_ERROR
        "bench_smoke: per-cell stats schema is \"${stats_schema}\"")
endif()

if(NOT TRACE_PATH)
    message(STATUS
        "bench_smoke: ${n_cells} cells OK, JSON parses (${JSON_PATH})")
    return()
endif()

# ---- Trace mode: validate the Chrome trace-event file of the traced
# cell (Array/Silo/1c; the sweep engine names it via tracePathFor).
get_filename_component(trace_dir "${TRACE_PATH}" DIRECTORY)
get_filename_component(trace_stem "${TRACE_PATH}" NAME_WE)
set(trace_file "${trace_dir}/${trace_stem}-Silo-Array-1c.json")
if(NOT EXISTS "${trace_file}")
    message(FATAL_ERROR
        "trace_smoke: trace file ${trace_file} was not written")
endif()
file(READ "${trace_file}" trace)
string(JSON n_events LENGTH "${trace}" traceEvents)
if(n_events LESS 10)
    message(FATAL_ERROR
        "trace_smoke: only ${n_events} trace events recorded")
endif()

# Walk every event: required keys present, timestamps monotone per
# (pid, tid) track, and tally coverage along the way.
set(span_count 0)
set(counter_names "")
math(EXPR last "${n_events} - 1")
foreach(i RANGE ${last})
    string(JSON ph GET "${trace}" traceEvents ${i} ph)
    string(JSON ts GET "${trace}" traceEvents ${i} ts)
    string(JSON pid GET "${trace}" traceEvents ${i} pid)
    string(JSON tid GET "${trace}" traceEvents ${i} tid)
    string(JSON name GET "${trace}" traceEvents ${i} name)
    if(ph STREQUAL "M")
        continue()
    endif()
    if(DEFINED last_ts_${pid}_${tid} AND
       ts LESS last_ts_${pid}_${tid})
        message(FATAL_ERROR "trace_smoke: event ${i} (${name}) ts "
            "${ts} < ${last_ts_${pid}_${tid}} on track "
            "${pid}:${tid} — not monotone")
    endif()
    set(last_ts_${pid}_${tid} ${ts})
    if(ph STREQUAL "X")
        math(EXPR span_count "${span_count} + 1")
        list(APPEND span_names "${name}")
    elseif(ph STREQUAL "C")
        list(APPEND counter_names "${name}")
    endif()
endforeach()

# Spans from all the instrumented layers of the traced cell: core tx
# phases, the scheme's log lifecycle, the WPQ drain, PM programming.
foreach(required "tx" "speculate" "persist" "drain-data" "program")
    list(FIND span_names "${required}" found)
    if(found EQUAL -1)
        message(FATAL_ERROR
            "trace_smoke: no \"${required}\" span in ${trace_file}")
    endif()
endforeach()
list(REMOVE_DUPLICATES counter_names)
list(LENGTH counter_names n_counters)
if(n_counters LESS 2)
    message(FATAL_ERROR "trace_smoke: expected >= 2 counter tracks, "
        "got ${n_counters} (${counter_names})")
endif()
message(STATUS "trace_smoke: ${n_cells} cells OK, ${n_events} trace "
    "events, ${span_count} spans, ${n_counters} counters "
    "(${trace_file})")
