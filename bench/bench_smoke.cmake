# ctest script: run a tiny Fig. 12 matrix through the parallel sweep
# engine and check that the JSON results file is written and parses.
# Invoked by the bench_smoke test with -DBENCH_BINARY and -DJSON_PATH.

file(REMOVE "${JSON_PATH}")

set(ENV{SILO_TX} 20)
set(ENV{SILO_MAX_CORES} 2)
set(ENV{SILO_JOBS} 4)
set(ENV{SILO_JSON} "${JSON_PATH}")

execute_process(COMMAND "${BENCH_BINARY}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "bench_smoke: ${BENCH_BINARY} exited with ${rc}\n${out}\n${err}")
endif()

if(NOT EXISTS "${JSON_PATH}")
    message(FATAL_ERROR
        "bench_smoke: JSON results file ${JSON_PATH} was not written")
endif()

# string(JSON) raises a fatal error itself if the file is not valid
# JSON or the queried members are missing.
file(READ "${JSON_PATH}" json)
string(JSON schema GET "${json}" schema)
if(NOT schema STREQUAL "silo-sweep-v1")
    message(FATAL_ERROR
        "bench_smoke: unexpected schema \"${schema}\"")
endif()
string(JSON n_cells LENGTH "${json}" cells)
# SILO_MAX_CORES=2 -> 2 core counts x 7 workloads x 5 schemes.
if(NOT n_cells EQUAL 70)
    message(FATAL_ERROR
        "bench_smoke: expected 70 cells, JSON has ${n_cells}")
endif()
string(JSON commits GET "${json}" cells 0 report
    committed_transactions)
if(commits LESS 1)
    message(FATAL_ERROR
        "bench_smoke: first cell committed ${commits} transactions")
endif()
message(STATUS
    "bench_smoke: ${n_cells} cells OK, JSON parses (${JSON_PATH})")
