/**
 * @file
 * Simulator self-performance benchmark: wall-clock cost of the
 * simulator itself (not simulated time). Times a fixed Fig. 12 matrix
 * through the sweep engine plus three per-component microbenchmarks
 * covering the hot paths rebuilt in this PR — event schedule/pop
 * (calendar queue), word load/store (flat page-directory WordStore)
 * and cache probes (struct-of-arrays Cache) — and emits
 * BENCH_PR4.json ("silo-selfperf-v1": wall seconds, events/sec,
 * cells/sec, peak RSS) so perf trajectories are comparable across
 * commits.
 *
 * The matrix is pinned (tx=120, seed=42, 1/2/4/8 cores) rather than
 * reading the usual SILO_TX knob, so numbers from different checkouts
 * time the same work. SILO_SELFPERF_TX / SILO_SELFPERF_MAX_CORES
 * shrink it for the perf_smoke ctest; SILO_JOBS (default 1 here, for
 * stable timing) selects sweep workers.
 */

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "harness/walltime.hh"
#include "matrix_common.hh"
#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/word_store.hh"
#include "workload/trace_gen.hh"

namespace
{

using namespace silo;

double
nowSeconds()
{
    return harness::wallSeconds();
}

/** Peak resident set size in KiB (ru_maxrss is KiB on Linux). */
std::uint64_t
peakRssKib()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return std::uint64_t(ru.ru_maxrss);
}

struct MicroResult
{
    std::uint64_t ops = 0;
    double wallSeconds = 0;
    double opsPerSecond() const
    {
        return wallSeconds > 0 ? double(ops) / wallSeconds : 0;
    }
};

/**
 * Calendar-queue schedule/pop throughput with the bench-matrix delay
 * mix: same-cycle bursts, short device/core latencies, wheel-spanning
 * delays and far-future overflow residents.
 */
MicroResult
benchEventQueue(std::uint64_t target_events)
{
    EventQueue q;
    std::mt19937_64 rng(42);
    std::uint64_t scheduled = 0;
    volatile std::uint64_t sink = 0;

    auto scheduleOne = [&] {
        Tick delay;
        switch (rng() % 64) {
          case 0: case 1: case 2: case 3: case 4: case 5:
          case 6: case 7: case 8: case 9: case 10: case 11:
            delay = 0;
            break;
          case 12: case 13: case 14: case 15: case 16: case 17:
          case 18: case 19: case 20: case 21: case 22: case 23:
          case 24: case 25: case 26: case 27: case 28: case 29:
          case 30: case 31: case 32: case 33: case 34: case 35:
            delay = rng() % 64;
            break;
          case 62:
            // Rare far-future resident (refresh-style), landing on
            // the overflow list until the cursor catches up.
            delay = (Tick(1) << 14) + rng() % (Tick(1) << 16);
            break;
          default:
            delay = rng() % (Tick(1) << 13);
            break;
        }
        int prio = int(rng() % 3) * 10 - 10;
        // silo-lint: allow(R7) sink outlives every dispatch — the benchmark drains the queue before leaving this frame
        q.schedule(q.now() + delay, [&sink] { sink = sink + 1; },
                   prio);
        ++scheduled;
    };

    double t0 = nowSeconds();
    // Steady state: ~8K events in flight, like a busy 8-core system
    // tick, then one pop per schedule.
    for (int i = 0; i < 8192; ++i)
        scheduleOne();
    while (scheduled < target_events) {
        scheduleOne();
        q.runNext();
    }
    q.run();
    double wall = nowSeconds() - t0;
    // Each event is one schedule and one pop.
    return {q.executedEvents() * 2, wall};
}

/** WordStore load/store throughput over a hot-page working set. */
MicroResult
benchWordStore(std::uint64_t target_ops)
{
    WordStore store;
    std::mt19937_64 rng(42);
    constexpr Addr pageBytes = 4096;
    std::vector<Addr> bases;
    for (int i = 0; i < 512; ++i)
        bases.push_back((rng() % (Addr(1) << 34)) * pageBytes);

    volatile Word sink = 0;
    double t0 = nowSeconds();
    for (std::uint64_t op = 0; op < target_ops; ++op) {
        Addr base = bases[rng() % bases.size()];
        Addr addr =
            base + (rng() % (pageBytes / wordBytes)) * wordBytes;
        if (rng() % 2)
            store.store(addr, Word(op));
        else
            sink = sink + store.load(addr);
    }
    double wall = nowSeconds() - t0;
    return {target_ops, wall};
}

/** Cache probe (access/insert/evict) throughput, L1-sized geometry. */
MicroResult
benchCacheProbe(std::uint64_t target_ops)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.ways = 8;
    cfg.latency = Cycles(4);
    mem::Cache cache("selfperf_l1", cfg);

    std::mt19937_64 rng(42);
    // 4x the cache's line capacity: a healthy miss/evict mix.
    std::uint64_t lines = cfg.sizeBytes / lineBytes * 4;

    double t0 = nowSeconds();
    for (std::uint64_t op = 0; op < target_ops; ++op) {
        Addr line = (rng() % lines) * lineBytes;
        bool dirty = (rng() & 1) != 0;
        if (!cache.access(line, dirty))
            cache.insert(line, dirty);
    }
    double wall = nowSeconds() - t0;
    return {target_ops, wall};
}

void
appendMicroJson(std::string &json, const char *name,
                const char *rate_key, const MicroResult &r,
                bool last = false)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    \"%s\": {\"ops\": %llu, "
                  "\"wall_seconds\": %.3f, \"%s\": %.0f}%s\n",
                  name, static_cast<unsigned long long>(r.ops),
                  r.wallSeconds, rate_key, r.opsPerSecond(),
                  last ? "" : ",");
    json += buf;
}

} // namespace

int
main()
{
    using namespace silo;

    std::uint64_t tx = harness::envOr("SILO_SELFPERF_TX", 120);
    unsigned max_cores =
        unsigned(harness::envOr("SILO_SELFPERF_MAX_CORES", 8));
    unsigned jobs = unsigned(harness::envOr("SILO_JOBS", 1));

    std::vector<unsigned> core_counts;
    for (unsigned c = 1; c <= max_cores; c *= 2)
        core_counts.push_back(c);

    // --- Fixed Fig. 12 matrix through the sweep engine ---
    harness::Sweep sweep({.jobs = jobs, .progress = true});
    for (unsigned cores : core_counts) {
        for (auto wl : workload::evaluationWorkloads) {
            workload::TraceGenConfig tg;
            tg.kind = wl;
            tg.numThreads = cores;
            tg.transactionsPerThread = tx;
            tg.seed = 42;
            for (auto scheme : bench::evaluatedSchemes) {
                harness::CellSpec spec;
                spec.sim.numCores = cores;
                spec.sim.scheme = scheme;
                spec.trace = tg;
                spec.label =
                    std::string(workload::workloadName(wl)) + "/" +
                    schemeName(scheme) + "/" +
                    std::to_string(cores) + "c";
                sweep.add(std::move(spec));
            }
        }
    }

    double matrix_t0 = nowSeconds();
    sweep.run();
    double matrix_wall = nowSeconds() - matrix_t0;
    double cells_per_second =
        matrix_wall > 0 ? double(sweep.size()) / matrix_wall : 0;

    // --- Per-component microbenchmarks ---
    MicroResult eq = benchEventQueue(4'000'000);
    MicroResult ws = benchWordStore(20'000'000);
    MicroResult cp = benchCacheProbe(20'000'000);
    std::uint64_t rss_kib = peakRssKib();

    // --- Report ---
    std::cout << "selfperf: matrix " << sweep.size() << " cells in "
              << matrix_wall << " s (" << cells_per_second
              << " cells/s, jobs=" << jobs << ", tx=" << tx << ")\n"
              << "selfperf: event queue  "
              << std::uint64_t(eq.opsPerSecond()) << " events/s\n"
              << "selfperf: word store   "
              << std::uint64_t(ws.opsPerSecond()) << " words/s\n"
              << "selfperf: cache probe  "
              << std::uint64_t(cp.opsPerSecond()) << " probes/s\n"
              << "selfperf: peak RSS     " << rss_kib << " KiB\n";

    std::string path =
        harness::envStrOr("SILO_JSON", "BENCH_PR4.json");

    std::string json;
    json += "{\n";
    json += "  \"schema\": \"silo-selfperf-v1\",\n";
    json += "  \"benchmark\": \"selfperf\",\n";
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "  \"matrix\": {\"cells\": %zu, "
                  "\"tx_per_thread\": %llu, \"seed\": 42, "
                  "\"max_cores\": %u, \"jobs\": %u, "
                  "\"wall_seconds\": %.3f, "
                  "\"cells_per_second\": %.3f},\n",
                  sweep.size(), static_cast<unsigned long long>(tx),
                  max_cores, jobs, matrix_wall, cells_per_second);
    json += buf;
    json += "  \"micro\": {\n";
    appendMicroJson(json, "event_queue", "events_per_second", eq);
    appendMicroJson(json, "word_store", "words_per_second", ws);
    appendMicroJson(json, "cache_probe", "probes_per_second", cp,
                    true);
    json += "  },\n";
    std::snprintf(buf, sizeof buf, "  \"peak_rss_kib\": %llu\n",
                  static_cast<unsigned long long>(rss_kib));
    json += buf;
    json += "}\n";

    std::filesystem::path out(path);
    if (out.has_parent_path())
        std::filesystem::create_directories(out.parent_path());
    std::ofstream file(out);
    file << json;
    if (!file) {
        std::cerr << "selfperf: cannot write " << path << "\n";
        return 1;
    }
    std::cout << "selfperf: wrote " << path << "\n";
    return 0;
}
