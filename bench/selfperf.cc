/**
 * @file
 * Simulator self-performance benchmark: wall-clock cost of the
 * simulator itself (not simulated time). Times a fixed Fig. 12 matrix
 * through the sweep engine plus five per-component microbenchmarks —
 * event schedule/pop (calendar queue), word load/store (flat
 * page-directory WordStore), cache probes (struct-of-arrays Cache),
 * the crash/recovery path, and litmus program parse+compile — and
 * emits BENCH_PR8.json ("silo-selfperf-v2": wall seconds, per-cell
 * wall-time distribution, per-micro rates, peak RSS) so perf
 * trajectories are comparable across commits; `tools/silo-report`
 * renders any set of these files into a regression report.
 *
 * The matrix is pinned (tx=120, seed=42, 1/2/4/8 cores) rather than
 * reading the usual SILO_TX knob, so numbers from different checkouts
 * time the same work. SILO_SELFPERF_TX / SILO_SELFPERF_MAX_CORES
 * shrink it for the perf_smoke ctest; SILO_JOBS (default 1 here, for
 * stable timing) selects sweep workers. Set SILO_PROF on top to get a
 * silo-prof-v1 host-time profile of the matrix portion.
 *
 * Peak RSS comes from /proc/self/status (VmHWM); on systems without
 * procfs the field is emitted as JSON null rather than failing the
 * run, so the schema stays valid everywhere.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "harness/walltime.hh"
#include "matrix_common.hh"
#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/word_store.hh"
#include "workload/litmus.hh"
#include "workload/trace_gen.hh"

namespace
{

using namespace silo;

double
nowSeconds()
{
    return harness::wallSeconds();
}

/**
 * Peak resident set size in KiB from /proc/self/status (VmHWM).
 * Returns nullopt where procfs does not exist (non-Linux hosts) —
 * the caller emits JSON null instead of failing the run.
 */
std::optional<std::uint64_t>
peakRssKib()
{
    std::ifstream status("/proc/self/status");
    if (!status)
        return std::nullopt;
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        std::uint64_t kib = 0;
        if (std::sscanf(line.c_str(), "VmHWM: %llu kB",
                        reinterpret_cast<unsigned long long *>(
                            &kib)) == 1)
            return kib;
        return std::nullopt;
    }
    return std::nullopt;
}

struct MicroResult
{
    std::uint64_t ops = 0;
    double wallSeconds = 0;
    double opsPerSecond() const
    {
        return wallSeconds > 0 ? double(ops) / wallSeconds : 0;
    }
};

/**
 * Calendar-queue schedule/pop throughput with the bench-matrix delay
 * mix: same-cycle bursts, short device/core latencies, wheel-spanning
 * delays and far-future overflow residents.
 */
MicroResult
benchEventQueue(std::uint64_t target_events)
{
    EventQueue q;
    std::mt19937_64 rng(42);
    std::uint64_t scheduled = 0;
    volatile std::uint64_t sink = 0;

    auto scheduleOne = [&] {
        Tick delay;
        switch (rng() % 64) {
          case 0: case 1: case 2: case 3: case 4: case 5:
          case 6: case 7: case 8: case 9: case 10: case 11:
            delay = 0;
            break;
          case 12: case 13: case 14: case 15: case 16: case 17:
          case 18: case 19: case 20: case 21: case 22: case 23:
          case 24: case 25: case 26: case 27: case 28: case 29:
          case 30: case 31: case 32: case 33: case 34: case 35:
            delay = rng() % 64;
            break;
          case 62:
            // Rare far-future resident (refresh-style), landing on
            // the overflow list until the cursor catches up.
            delay = (Tick(1) << 14) + rng() % (Tick(1) << 16);
            break;
          default:
            delay = rng() % (Tick(1) << 13);
            break;
        }
        int prio = int(rng() % 3) * 10 - 10;
        // silo-lint: allow(R7) sink outlives every dispatch — the benchmark drains the queue before leaving this frame
        q.schedule(q.now() + delay, [&sink] { sink = sink + 1; },
                   prio);
        ++scheduled;
    };

    double t0 = nowSeconds();
    // Steady state: ~8K events in flight, like a busy 8-core system
    // tick, then one pop per schedule.
    for (int i = 0; i < 8192; ++i)
        scheduleOne();
    while (scheduled < target_events) {
        scheduleOne();
        q.runNext();
    }
    q.run();
    double wall = nowSeconds() - t0;
    // Each event is one schedule and one pop.
    return {q.executedEvents() * 2, wall};
}

/** WordStore load/store throughput over a hot-page working set. */
MicroResult
benchWordStore(std::uint64_t target_ops)
{
    WordStore store;
    std::mt19937_64 rng(42);
    constexpr Addr pageBytes = 4096;
    std::vector<Addr> bases;
    for (int i = 0; i < 512; ++i)
        bases.push_back((rng() % (Addr(1) << 34)) * pageBytes);

    volatile Word sink = 0;
    double t0 = nowSeconds();
    for (std::uint64_t op = 0; op < target_ops; ++op) {
        Addr base = bases[rng() % bases.size()];
        Addr addr =
            base + (rng() % (pageBytes / wordBytes)) * wordBytes;
        if (rng() % 2)
            store.store(addr, Word(op));
        else
            sink = sink + store.load(addr);
    }
    double wall = nowSeconds() - t0;
    return {target_ops, wall};
}

/** Cache probe (access/insert/evict) throughput, L1-sized geometry. */
MicroResult
benchCacheProbe(std::uint64_t target_ops)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.ways = 8;
    cfg.latency = Cycles(4);
    mem::Cache cache("selfperf_l1", cfg);

    std::mt19937_64 rng(42);
    // 4x the cache's line capacity: a healthy miss/evict mix.
    std::uint64_t lines = cfg.sizeBytes / lineBytes * 4;

    double t0 = nowSeconds();
    for (std::uint64_t op = 0; op < target_ops; ++op) {
        Addr line = (rng() % lines) * lineBytes;
        bool dirty = (rng() & 1) != 0;
        if (!cache.access(line, dirty))
            cache.insert(line, dirty);
    }
    double wall = nowSeconds() - t0;
    return {target_ops, wall};
}

/**
 * Crash/recovery-path cost: run a 2-core Silo cell partway, crash it,
 * and recover against the PM media image. Only the crash+recover
 * portion is timed; System construction and the event run reset the
 * micro-state between iterations but are excluded from the rate, so
 * the number tracks the recovery walk (selective log flush, WPQ
 * crash-drain, log replay), not trace replay speed.
 */
MicroResult
benchRecovery(std::uint64_t iterations)
{
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Hash;
    tg.numThreads = 2;
    tg.transactionsPerThread = 40;
    tg.seed = 42;
    workload::WorkloadTraces traces = workload::generateTraces(tg);

    SimConfig cfg;
    cfg.numCores = 2;
    cfg.scheme = SchemeKind::Silo;

    double wall = 0;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        harness::System sys(cfg, traces);
        sys.runEvents(20000);
        double t0 = nowSeconds();
        sys.crash();
        sys.recover();
        wall += nowSeconds() - t0;
    }
    return {iterations, wall};
}

/**
 * Litmus front-end cost: parse + compile a fixed 3-thread program
 * (the fuzzer's inner loop does exactly this once per generated
 * program, thousands of times per campaign).
 */
MicroResult
benchLitmusCompile(std::uint64_t iterations)
{
    static const char *programText =
        "litmus v1\n"
        "name selfperf-compile\n"
        "thread 0\n"
        "tx\n"
        "store 0x40 1\n"
        "store 0x80 2\n"
        "load 0x40\n"
        "end\n"
        "tx\n"
        "store 0xc0 3\n"
        "end\n"
        "thread 1\n"
        "tx\n"
        "store 0x100 4\n"
        "store 0x140 5\n"
        "end\n"
        "tx abort\n"
        "store 0x180 6\n"
        "end\n"
        "thread 2\n"
        "tx\n"
        "load 0x1c0\n"
        "store 0x1c0 7\n"
        "store 0x200 8\n"
        "end\n";

    volatile std::uint64_t sink = 0;
    double t0 = nowSeconds();
    for (std::uint64_t i = 0; i < iterations; ++i) {
        workload::LitmusFile file = workload::parseLitmus(programText);
        workload::WorkloadTraces traces =
            workload::litmusTraces(file.program);
        sink = sink + traces.threads.size();
    }
    double wall = nowSeconds() - t0;
    return {iterations, wall};
}

/** Order statistics of the per-cell wall times (nearest rank). */
struct CellWallDist
{
    double min = 0, p50 = 0, p90 = 0, max = 0, mean = 0, sum = 0;
    std::string slowestLabel;
};

CellWallDist
cellWallDist(const harness::Sweep &sweep)
{
    CellWallDist d;
    const auto &results = sweep.results();
    if (results.empty())
        return d;
    std::vector<double> walls;
    std::size_t slowest = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        walls.push_back(results[i].wallSeconds);
        d.sum += results[i].wallSeconds;
        if (results[i].wallSeconds > results[slowest].wallSeconds)
            slowest = i;
    }
    std::sort(walls.begin(), walls.end());
    auto rank = [&walls](std::size_t pct) {
        return walls[std::min(walls.size() - 1,
                              walls.size() * pct / 100)];
    };
    d.min = walls.front();
    d.p50 = rank(50);
    d.p90 = rank(90);
    d.max = walls.back();
    d.mean = d.sum / double(walls.size());
    d.slowestLabel = sweep.specs()[slowest].label;
    return d;
}

void
appendMicroJson(std::string &json, const char *name,
                const char *rate_key, const MicroResult &r,
                bool last = false)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    \"%s\": {\"ops\": %llu, "
                  "\"wall_seconds\": %.3f, \"%s\": %.0f}%s\n",
                  name, static_cast<unsigned long long>(r.ops),
                  r.wallSeconds, rate_key, r.opsPerSecond(),
                  last ? "" : ",");
    json += buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

int
main()
{
    using namespace silo;

    std::uint64_t tx = harness::envOr("SILO_SELFPERF_TX", 120);
    unsigned max_cores =
        unsigned(harness::envOr("SILO_SELFPERF_MAX_CORES", 8));
    unsigned jobs = unsigned(harness::envOr("SILO_JOBS", 1));

    std::vector<unsigned> core_counts;
    for (unsigned c = 1; c <= max_cores; c *= 2)
        core_counts.push_back(c);

    // --- Fixed Fig. 12 matrix through the sweep engine ---
    harness::Sweep sweep({.jobs = jobs, .progress = true});
    for (unsigned cores : core_counts) {
        for (auto wl : workload::evaluationWorkloads) {
            workload::TraceGenConfig tg;
            tg.kind = wl;
            tg.numThreads = cores;
            tg.transactionsPerThread = tx;
            tg.seed = 42;
            for (auto scheme : bench::evaluatedSchemes) {
                harness::CellSpec spec;
                spec.sim.numCores = cores;
                spec.sim.scheme = scheme;
                spec.trace = tg;
                spec.label =
                    std::string(workload::workloadName(wl)) + "/" +
                    schemeName(scheme) + "/" +
                    std::to_string(cores) + "c";
                sweep.add(std::move(spec));
            }
        }
    }

    double matrix_t0 = nowSeconds();
    sweep.run();
    double matrix_wall = nowSeconds() - matrix_t0;
    double cells_per_second =
        matrix_wall > 0 ? double(sweep.size()) / matrix_wall : 0;
    CellWallDist dist = cellWallDist(sweep);

    // --- Per-component microbenchmarks ---
    MicroResult eq = benchEventQueue(4'000'000);
    MicroResult ws = benchWordStore(20'000'000);
    MicroResult cp = benchCacheProbe(20'000'000);
    MicroResult rec = benchRecovery(300);
    MicroResult lit = benchLitmusCompile(20'000);
    std::optional<std::uint64_t> rss_kib = peakRssKib();

    // --- Report ---
    std::cout << "selfperf: matrix " << sweep.size() << " cells in "
              << matrix_wall << " s (" << cells_per_second
              << " cells/s, jobs=" << jobs << ", tx=" << tx << ")\n"
              << "selfperf: cell wall    p50 " << dist.p50
              << " s, p90 " << dist.p90 << " s, max " << dist.max
              << " s (" << dist.slowestLabel << ")\n"
              << "selfperf: event queue  "
              << std::uint64_t(eq.opsPerSecond()) << " events/s\n"
              << "selfperf: word store   "
              << std::uint64_t(ws.opsPerSecond()) << " words/s\n"
              << "selfperf: cache probe  "
              << std::uint64_t(cp.opsPerSecond()) << " probes/s\n"
              << "selfperf: recovery     "
              << std::uint64_t(rec.opsPerSecond())
              << " recoveries/s\n"
              << "selfperf: litmus       "
              << std::uint64_t(lit.opsPerSecond()) << " compiles/s\n";
    if (rss_kib)
        std::cout << "selfperf: peak RSS     " << *rss_kib
                  << " KiB\n";
    else
        std::cout << "selfperf: peak RSS     unavailable "
                  << "(no /proc/self/status)\n";

    std::string path =
        harness::envStrOr("SILO_JSON", "BENCH_PR8.json");

    std::string json;
    json += "{\n";
    json += "  \"schema\": \"silo-selfperf-v2\",\n";
    json += "  \"benchmark\": \"selfperf\",\n";
    char buf[640];
    std::snprintf(buf, sizeof buf,
                  "  \"matrix\": {\"cells\": %zu, "
                  "\"tx_per_thread\": %llu, \"seed\": 42, "
                  "\"max_cores\": %u, \"jobs\": %u, "
                  "\"wall_seconds\": %.3f, "
                  "\"cells_per_second\": %.3f,\n",
                  sweep.size(), static_cast<unsigned long long>(tx),
                  max_cores, jobs, matrix_wall, cells_per_second);
    json += buf;
    std::snprintf(buf, sizeof buf,
                  "    \"cell_wall_seconds\": {\"min\": %.6f, "
                  "\"p50\": %.6f, \"p90\": %.6f, \"max\": %.6f, "
                  "\"mean\": %.6f, \"sum\": %.3f},\n",
                  dist.min, dist.p50, dist.p90, dist.max, dist.mean,
                  dist.sum);
    json += buf;
    json += "    \"slowest_cell\": \"" +
            jsonEscape(dist.slowestLabel) + "\"},\n";
    json += "  \"micro\": {\n";
    appendMicroJson(json, "event_queue", "events_per_second", eq);
    appendMicroJson(json, "word_store", "words_per_second", ws);
    appendMicroJson(json, "cache_probe", "probes_per_second", cp);
    appendMicroJson(json, "recovery_path", "recoveries_per_second",
                    rec);
    appendMicroJson(json, "litmus_compile", "compiles_per_second",
                    lit, true);
    json += "  },\n";
    if (rss_kib) {
        std::snprintf(buf, sizeof buf, "  \"peak_rss_kib\": %llu\n",
                      static_cast<unsigned long long>(*rss_kib));
        json += buf;
    } else {
        json += "  \"peak_rss_kib\": null\n";
    }
    json += "}\n";

    std::filesystem::path out(path);
    if (out.has_parent_path())
        std::filesystem::create_directories(out.parent_path());
    std::ofstream file(out);
    file << json;
    if (!file) {
        std::cerr << "selfperf: cannot write " << path << "\n";
        return 1;
    }
    std::cout << "selfperf: wrote " << path << "\n";
    return 0;
}
