/**
 * @file
 * Table I: the hardware overhead of Silo — per-core log buffer,
 * comparators, battery, and head/tail registers. Pure model
 * arithmetic; no simulation sweep.
 */

#include <iostream>
#include <sstream>

#include "energy/battery_model.hh"
#include "sim/table.hh"

int
main()
{
    using namespace silo;

    SimConfig cfg;
    auto hw = energy::siloHardwareOverhead(cfg);

    TablePrinter table("Table I — The hardware overhead of Silo");
    table.header({"Components", "Types", "Sizes"});
    {
        std::ostringstream size;
        size << hw.logBufferEntriesPerCore << " entries, "
             << hw.logBufferBytesPerCore << "B per core";
        table.row({"Log buffer", "SRAM", size.str()});
    }
    {
        std::ostringstream size;
        size << hw.comparatorsPerLogBuffer
             << " comparators per log buffer";
        table.row({"64-bit comparators", "CMOS cells", size.str()});
    }
    {
        std::ostringstream size;
        size << TablePrinter::num(hw.liBatteryMm3PerLogBuffer / 1e-4,
                                  3)
             << "e-4 mm^3 per log buffer";
        table.row({"Battery", "Lithium thin-film", size.str()});
    }
    {
        std::ostringstream size;
        size << hw.headTailRegisterBytesPerCore << "B per core";
        table.row({"Log head and tail", "Flip-flops", size.str()});
    }
    table.print(std::cout);
    std::cout << "# Paper Table I: 20 entries / 680B per core, 20 "
                 "comparators, 2.125e-4 mm^3 battery, 16B registers.\n";
    return 0;
}
