/**
 * @file
 * Persistency-checker sweep (extension; not a paper figure). Runs
 * every scheme over a set of workloads with the durability checker
 * enabled, both to completion and crashed at several event counts
 * (with recovery validated against the committed-image oracle), and
 * prints a pass/fail matrix plus checker event counters. The
 * (scheme × workload × crash point) cells run on the parallel sweep
 * engine; violation reports are collected per cell and printed in
 * deterministic order after the sweep.
 *
 * Exit status is non-zero if any cell reports a violation, so the
 * sweep doubles as a CI gate:
 *
 *   ./bench/check_all            # default sweep
 *   SILO_TX=50 SILO_CORES=2 SILO_JOBS=8 ./bench/check_all
 */

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace
{

using namespace silo;

constexpr SchemeKind schemes[] = {
    SchemeKind::Base,   SchemeKind::Fwb, SchemeKind::MorLog,
    SchemeKind::Lad,    SchemeKind::Silo, SchemeKind::SwEadr,
};

constexpr workload::WorkloadKind workloads[] = {
    workload::WorkloadKind::Array, workload::WorkloadKind::Queue,
    workload::WorkloadKind::Hash,  workload::WorkloadKind::Tpcc,
};

struct Cell
{
    std::uint64_t violations = 0;
    std::uint64_t wordsChecked = 0;
    std::uint64_t wpqAccepts = 0;
    std::uint64_t commits = 0;
    /** Violation details, shown with -v after the sweep finishes. */
    std::string reportText;
};

} // namespace

int
main(int argc, char **argv)
{
    bool verbose = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "-v")
            verbose = true;

    unsigned cores = unsigned(harness::envOr("SILO_CORES", 4));
    std::uint64_t tx = harness::envOr("SILO_TX", 200);
    std::uint64_t seed = harness::envOr("SILO_SEED", 42);
    const std::vector<std::uint64_t> crash_points = {
        0, 997, 9973, 99991};

    // One cell per (scheme, workload, crash point); crash == 0 means
    // run to completion.
    harness::Sweep sweep;
    std::vector<Cell> cells;
    for (auto scheme : schemes) {
        for (auto wl : workloads) {
            for (std::uint64_t crash : crash_points) {
                std::size_t slot = cells.size();
                cells.emplace_back();
                harness::CellSpec spec;
                spec.trace.kind = wl;
                spec.trace.numThreads = cores;
                spec.trace.transactionsPerThread = tx;
                spec.trace.seed = seed;
                spec.sim.numCores = cores;
                spec.sim.scheme = scheme;
                spec.sim.checker = true;
                spec.label = std::string(schemeName(scheme)) + "/" +
                             workload::workloadName(wl) + "/crash:" +
                             std::to_string(crash);
                spec.runner = [&cells, slot, crash](
                                  const SimConfig &cfg,
                                  const workload::WorkloadTraces &tr) {
                    harness::System sys(cfg, tr);
                    if (crash == 0) {
                        sys.run();
                        sys.settle();
                        sys.drainToMedia();
                    } else {
                        sys.runEvents(crash);
                        sys.crash();
                        sys.recover();
                    }
                    const check::PersistencyChecker &ck =
                        *sys.checker();
                    Cell &out = cells[slot];
                    out.violations = ck.violations().size();
                    out.wordsChecked =
                        ck.counters().wordsCheckedAtRecovery;
                    out.wpqAccepts = ck.counters().wpqLineAccepts +
                                     ck.counters().wpqWordAccepts;
                    out.commits = ck.counters().commits;
                    if (!ck.clean()) {
                        std::ostringstream os;
                        ck.report(os);
                        out.reportText = os.str();
                    }
                    return sys.report();
                };
                sweep.add(std::move(spec));
            }
        }
    }
    sweep.run();

    std::uint64_t total_violations = 0;
    TablePrinter table("Persistency checker sweep: violations per "
                       "(scheme, workload), summed over crash points "
                       "{none, ~1k, ~10k, ~100k events}");
    {
        std::vector<std::string> header{"Design"};
        for (auto wl : workloads)
            header.push_back(workload::workloadName(wl));
        header.push_back("WPQ accepts");
        header.push_back("commits");
        header.push_back("oracle words");
        table.header(header);
    }

    std::size_t slot = 0;
    for (auto scheme : schemes) {
        std::vector<std::string> row{schemeName(scheme)};
        Cell totals;
        for ([[maybe_unused]] auto wl : workloads) {
            std::uint64_t cell_violations = 0;
            for ([[maybe_unused]] std::uint64_t crash : crash_points) {
                const Cell &c = cells[slot++];
                cell_violations += c.violations;
                totals.wordsChecked += c.wordsChecked;
                totals.wpqAccepts += c.wpqAccepts;
                totals.commits += c.commits;
                if (verbose && !c.reportText.empty())
                    std::cerr << c.reportText;
            }
            total_violations += cell_violations;
            row.push_back(cell_violations == 0
                              ? "ok"
                              : std::to_string(cell_violations));
        }
        row.push_back(std::to_string(totals.wpqAccepts));
        row.push_back(std::to_string(totals.commits));
        row.push_back(std::to_string(totals.wordsChecked));
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "# 'ok' = every durability invariant held at store, "
                 "WPQ accept, commit, crash and recovery.\n";
    if (total_violations != 0) {
        std::cerr << "check_all: " << total_violations
                  << " violation(s); rerun with -v for details\n";
        return 1;
    }
    return 0;
}
