/**
 * @file
 * Persistency-checker sweep (extension; not a paper figure). Runs
 * every scheme over a set of workloads with the durability checker
 * enabled, both to completion and crashed at several event counts
 * (with recovery validated against the committed-image oracle), and
 * prints a pass/fail matrix plus checker event counters.
 *
 * Exit status is non-zero if any cell reports a violation, so the
 * sweep doubles as a CI gate:
 *
 *   ./bench/check_all            # default sweep
 *   SILO_TX=50 SILO_CORES=2 ./bench/check_all
 */

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace
{

using namespace silo;

constexpr SchemeKind schemes[] = {
    SchemeKind::Base,   SchemeKind::Fwb, SchemeKind::MorLog,
    SchemeKind::Lad,    SchemeKind::Silo, SchemeKind::SwEadr,
};

constexpr workload::WorkloadKind workloads[] = {
    workload::WorkloadKind::Array, workload::WorkloadKind::Queue,
    workload::WorkloadKind::Hash,  workload::WorkloadKind::Tpcc,
};

struct Cell
{
    std::uint64_t violations = 0;
    std::uint64_t wordsChecked = 0;
    std::uint64_t wpqAccepts = 0;
    std::uint64_t commits = 0;
};

/** One checked run; crash_events == 0 means run to completion. */
Cell
runOne(SchemeKind scheme, const workload::WorkloadTraces &traces,
       unsigned cores, std::uint64_t crash_events, bool verbose)
{
    SimConfig cfg;
    cfg.numCores = cores;
    cfg.scheme = scheme;
    cfg.checker = true;
    harness::System sys(cfg, traces);
    if (crash_events == 0) {
        sys.run();
        sys.settle();
        sys.drainToMedia();
    } else {
        sys.runEvents(crash_events);
        sys.crash();
        sys.recover();
    }
    const check::PersistencyChecker &ck = *sys.checker();
    if (!ck.clean() && verbose)
        ck.report(std::cerr);
    return Cell{ck.violations().size(),
                ck.counters().wordsCheckedAtRecovery,
                ck.counters().wpqLineAccepts + ck.counters().wpqWordAccepts,
                ck.counters().commits};
}

} // namespace

int
main(int argc, char **argv)
{
    bool verbose = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "-v")
            verbose = true;

    unsigned cores = unsigned(harness::envOr("SILO_CORES", 4));
    std::uint64_t tx = harness::envOr("SILO_TX", 200);
    std::uint64_t seed = harness::envOr("SILO_SEED", 42);
    const std::vector<std::uint64_t> crash_points = {
        0, 997, 9973, 99991};

    harness::TraceCache cache;
    std::uint64_t total_violations = 0;

    TablePrinter table("Persistency checker sweep: violations per "
                       "(scheme, workload), summed over crash points "
                       "{none, ~1k, ~10k, ~100k events}");
    {
        std::vector<std::string> header{"Design"};
        for (auto wl : workloads)
            header.push_back(workload::workloadName(wl));
        header.push_back("WPQ accepts");
        header.push_back("commits");
        header.push_back("oracle words");
        table.header(header);
    }

    for (auto scheme : schemes) {
        std::vector<std::string> row{schemeName(scheme)};
        Cell totals;
        for (auto wl : workloads) {
            workload::TraceGenConfig tg;
            tg.kind = wl;
            tg.numThreads = cores;
            tg.transactionsPerThread = tx;
            tg.seed = seed;
            const auto &traces = cache.get(tg);
            std::uint64_t cell_violations = 0;
            for (std::uint64_t crash : crash_points) {
                Cell c = runOne(scheme, traces, cores, crash, verbose);
                cell_violations += c.violations;
                totals.wordsChecked += c.wordsChecked;
                totals.wpqAccepts += c.wpqAccepts;
                totals.commits += c.commits;
            }
            total_violations += cell_violations;
            row.push_back(cell_violations == 0
                              ? "ok"
                              : std::to_string(cell_violations));
        }
        row.push_back(std::to_string(totals.wpqAccepts));
        row.push_back(std::to_string(totals.commits));
        row.push_back(std::to_string(totals.wordsChecked));
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "# 'ok' = every durability invariant held at store, "
                 "WPQ accept, commit, crash and recovery.\n";
    if (total_violations != 0) {
        std::cerr << "check_all: " << total_violations
                  << " violation(s); rerun with -v for details\n";
        return 1;
    }
    return 0;
}
