/**
 * @file
 * Fig. 12: transaction throughput normalized to Base, for 1/2/4/8
 * cores across the seven benchmarks (§VI-C). The 140-cell matrix runs
 * on the parallel sweep engine (SILO_JOBS workers); results land in
 * results/fig12_throughput.json next to the printed tables.
 */

#include <iostream>

#include "matrix_common.hh"

int
main()
{
    using namespace silo;
    using namespace silo::bench;

    unsigned max_cores =
        unsigned(harness::envOr("SILO_MAX_CORES", 8));
    std::vector<unsigned> core_counts;
    for (unsigned c = 1; c <= max_cores; c *= 2)
        core_counts.push_back(c);

    harness::Sweep sweep;
    auto results = runMatrix(sweep, core_counts);
    sweep.writeJson(harness::jsonOutputPath("fig12_throughput"),
                    "fig12_throughput");

    SimConfig defaults;
    harness::printConfigBanner(defaults, std::cout);
    for (unsigned cores : core_counts) {
        auto m = matrixFor(results, cores,
                           [](const harness::SimReport &r) {
                               return r.txPerMillionCycles;
                           });
        m.toTable("Fig. 12(" + std::to_string(cores) +
                      " cores) — transaction throughput, "
                      "normalized to Base",
                  0).print(std::cout);
    }
    std::cout << "# Paper (8 cores): Silo = 1.5x LAD, 4.3x MorLog, "
                 "6.4x FWB; Base is lowest.\n";
    return 0;
}
