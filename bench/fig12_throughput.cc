/**
 * @file
 * Fig. 12: transaction throughput normalized to Base, for 1/2/4/8
 * cores across the seven benchmarks (§VI-C).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "matrix_common.hh"

namespace
{

using namespace silo;
using namespace silo::bench;

MatrixResults results;
std::vector<unsigned> coreCounts;

void
runCores(benchmark::State &state, unsigned cores)
{
    for (auto _ : state) {
        auto partial = runMatrix({cores});
        for (auto &[key, value] : partial)
            results[key] = value;
    }
    state.counters["cells"] = double(results.size());
}

} // namespace

int
main(int argc, char **argv)
{
    using harness::envOr;
    unsigned max_cores = unsigned(envOr("SILO_MAX_CORES", 8));
    for (unsigned c = 1; c <= max_cores; c *= 2)
        coreCounts.push_back(c);

    for (unsigned cores : coreCounts) {
        benchmark::RegisterBenchmark(
            ("Fig12/cores:" + std::to_string(cores)).c_str(),
            [cores](benchmark::State &s) { runCores(s, cores); })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    SimConfig defaults;
    harness::printConfigBanner(defaults, std::cout);
    for (unsigned cores : coreCounts) {
        auto m = matrixFor(results, cores,
                           [](const harness::SimReport &r) {
                               return r.txPerMillionCycles;
                           });
        m.toTable("Fig. 12(" + std::to_string(cores) +
                      " cores) — transaction throughput, "
                      "normalized to Base",
                  0).print(std::cout);
    }
    std::cout << "# Paper (8 cores): Silo = 1.5x LAD, 4.3x MorLog, "
                 "6.4x FWB; Base is lowest.\n";
    return 0;
}
