/**
 * @file
 * Shared sweep driver for Figs. 11 and 12: run every evaluated design
 * (Base, FWB, MorLog, LAD, Silo) over the seven benchmarks on 1/2/4/8
 * cores through the parallel sweep engine and collect the SimReports.
 */

#ifndef SILO_BENCH_MATRIX_COMMON_HH
#define SILO_BENCH_MATRIX_COMMON_HH

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "harness/sweep.hh"

namespace silo::bench
{

inline constexpr SchemeKind evaluatedSchemes[] = {
    SchemeKind::Base, SchemeKind::Fwb, SchemeKind::MorLog,
    SchemeKind::Lad, SchemeKind::Silo,
};

/** Results keyed by (cores, scheme, workload). */
using MatrixResults =
    std::map<std::tuple<unsigned, SchemeKind, workload::WorkloadKind>,
             harness::SimReport>;

/** Append the full Figs. 11/12 matrix to @p sweep as cells. */
inline void
addMatrixCells(harness::Sweep &sweep,
               const std::vector<unsigned> &core_counts)
{
    std::uint64_t tx = harness::envOr("SILO_TX", 500);
    std::uint64_t seed = harness::envOr("SILO_SEED", 42);

    for (unsigned cores : core_counts) {
        for (auto wl : workload::evaluationWorkloads) {
            workload::TraceGenConfig tg;
            tg.kind = wl;
            tg.numThreads = cores;
            tg.transactionsPerThread = tx;
            tg.seed = seed;
            for (auto scheme : evaluatedSchemes) {
                harness::CellSpec spec;
                spec.sim.numCores = cores;
                spec.sim.scheme = scheme;
                spec.trace = tg;
                spec.label =
                    std::string(workload::workloadName(wl)) + "/" +
                    schemeName(scheme) + "/" + std::to_string(cores) +
                    "c";
                sweep.add(std::move(spec));
            }
        }
    }
}

/**
 * Run the full Figs. 11/12 matrix on @p sweep. Results come back in
 * spec order regardless of which worker finished first, so the keyed
 * map is rebuilt by mirroring addMatrixCells()'s loop order.
 */
inline MatrixResults
runMatrix(harness::Sweep &sweep,
          const std::vector<unsigned> &core_counts)
{
    addMatrixCells(sweep, core_counts);
    sweep.run();

    MatrixResults results;
    std::size_t i = 0;
    for (unsigned cores : core_counts)
        for (auto wl : workload::evaluationWorkloads)
            for (auto scheme : evaluatedSchemes)
                results[{cores, scheme, wl}] =
                    sweep.results()[i++].report;
    return results;
}

/** Build a NormalizedMatrix for one core count from a field getter. */
template <typename Getter>
harness::NormalizedMatrix
matrixFor(const MatrixResults &results, unsigned cores, Getter get)
{
    harness::NormalizedMatrix m;
    for (auto wl : workload::evaluationWorkloads)
        m.colNames.push_back(workload::workloadName(wl));
    for (auto scheme : evaluatedSchemes) {
        m.rowNames.push_back(schemeName(scheme));
        std::vector<double> row;
        for (auto wl : workload::evaluationWorkloads)
            row.push_back(get(results.at({cores, scheme, wl})));
        m.raw.push_back(std::move(row));
    }
    return m;
}

} // namespace silo::bench

#endif // SILO_BENCH_MATRIX_COMMON_HH
