/**
 * @file
 * Shared sweep driver for Figs. 11 and 12: run every evaluated design
 * (Base, FWB, MorLog, LAD, Silo) over the seven benchmarks on 1/2/4/8
 * cores and collect the SimReports.
 */

#ifndef SILO_BENCH_MATRIX_COMMON_HH
#define SILO_BENCH_MATRIX_COMMON_HH

#include <map>
#include <tuple>
#include <vector>

#include "harness/experiment.hh"

namespace silo::bench
{

inline constexpr SchemeKind evaluatedSchemes[] = {
    SchemeKind::Base, SchemeKind::Fwb, SchemeKind::MorLog,
    SchemeKind::Lad, SchemeKind::Silo,
};

/** Results keyed by (cores, scheme, workload). */
using MatrixResults =
    std::map<std::tuple<unsigned, SchemeKind, workload::WorkloadKind>,
             harness::SimReport>;

/** Run the full Figs. 11/12 matrix. */
inline MatrixResults
runMatrix(const std::vector<unsigned> &core_counts)
{
    harness::TraceCache cache;
    MatrixResults results;
    std::uint64_t tx = harness::envOr("SILO_TX", 500);
    std::uint64_t seed = harness::envOr("SILO_SEED", 42);

    for (unsigned cores : core_counts) {
        for (auto wl : workload::evaluationWorkloads) {
            workload::TraceGenConfig tg;
            tg.kind = wl;
            tg.numThreads = cores;
            tg.transactionsPerThread = tx;
            tg.seed = seed;
            const auto &traces = cache.get(tg);
            for (auto scheme : evaluatedSchemes) {
                SimConfig cfg;
                cfg.numCores = cores;
                cfg.scheme = scheme;
                results[{cores, scheme, wl}] =
                    harness::runCell(cfg, traces);
            }
        }
    }
    return results;
}

/** Build a NormalizedMatrix for one core count from a field getter. */
template <typename Getter>
harness::NormalizedMatrix
matrixFor(const MatrixResults &results, unsigned cores, Getter get)
{
    harness::NormalizedMatrix m;
    for (auto wl : workload::evaluationWorkloads)
        m.colNames.push_back(workload::workloadName(wl));
    for (auto scheme : evaluatedSchemes) {
        m.rowNames.push_back(schemeName(scheme));
        std::vector<double> row;
        for (auto wl : workload::evaluationWorkloads)
            row.push_back(get(results.at({cores, scheme, wl})));
        m.raw.push_back(std::move(row));
    }
    return m;
}

} // namespace silo::bench

#endif // SILO_BENCH_MATRIX_COMMON_HH
