/**
 * @file
 * silo-report core: turn a set of perf JSON documents into a
 * markdown regression report.
 *
 * Two document families, distinguished by their "schema" member:
 *
 *  - selfperf trajectories ("silo-selfperf-v1" / "-v2", the committed
 *    BENCH_*.json files plus fresh runs): every matrix/micro rate is
 *    tracked across the files in the order given, and the first vs
 *    last file of each metric gets a verdict against configurable
 *    slowdown thresholds;
 *  - host-time profiles ("silo-prof-v1", written when SILO_PROF is
 *    set): the top-N hot domains by self time, and — when exactly two
 *    profiles are given — the per-domain ratio between them.
 *
 * The split from main.cc mirrors silo-lint: this core is a static
 * library (silo_report_core) so tests/tools/silo_report_test.cc can
 * drive classification, ratio math and verdicts directly on fixture
 * documents without spawning the CLI.
 */

#ifndef SILO_TOOLS_REPORT_REPORT_HH
#define SILO_TOOLS_REPORT_REPORT_HH

#include <string>
#include <vector>

#include "silo-report/json.hh"

namespace silo::report
{

/** Regression thresholds and rendering knobs. */
struct ReportOptions
{
    /**
     * Slowdown fractions: a metric whose last/first rate ratio drops
     * below 1-warn is WARN, below 1-fail is FAIL. Defaults catch a
     * 1.5x slowdown (ratio 0.667 < 0.70) while tolerating 10% noise.
     */
    double warn = 0.10;
    double fail = 0.30;
    /** Hot-domain rows to show per profile. */
    int top = 5;
};

enum class Verdict { Ok, Warn, Fail };

/** Name of @p v as printed in tables ("ok", "warn", "FAIL"). */
const char *verdictName(Verdict v);

/** One input document, already parsed. */
struct InputDoc
{
    std::string path;
    JsonValue doc;
};

/** One metric's first-to-last trajectory comparison. */
struct MetricVerdict
{
    std::string metric;
    double first = 0;
    double last = 0;
    /** last/first; > 1 is a speedup. 0 when first is 0. */
    double ratio = 0;
    Verdict verdict = Verdict::Ok;
};

/** Full report: markdown plus the machine-readable gate outcome. */
struct ReportResult
{
    std::string markdown;
    /** Worst metric verdict; Ok when fewer than two selfperf docs. */
    Verdict worst = Verdict::Ok;
    std::vector<MetricVerdict> verdicts;
    /** Fatal input problems (unknown schema, >2 profiles, ...). */
    std::vector<std::string> errors;
};

/**
 * Extract the named rates from one selfperf document:
 * "matrix" (cells_per_second) plus every micro section's
 * "*_per_second" member, in document order. Works for both the v1
 * and v2 schemas, so trajectories can span the format change.
 */
std::vector<std::pair<std::string, double>>
selfperfMetrics(const JsonValue &doc);

/**
 * Parse a "warn,fail" fraction pair (the format of the
 * SILO_PROF_THRESHOLDS environment variable and the --warn/--fail
 * flags) into @p opts. Requires 0 <= warn <= fail < 1.
 */
bool parseThresholds(const std::string &text, ReportOptions &opts);

/**
 * Apply $SILO_PROF_THRESHOLDS when set; leaves @p opts untouched when
 * unset. @return false with @p error filled on a malformed value.
 */
bool thresholdsFromEnv(ReportOptions &opts, std::string &error);

/** Classify, compare and render @p docs per the header comment. */
ReportResult buildReport(const std::vector<InputDoc> &docs,
                         const ReportOptions &opts);

} // namespace silo::report

#endif // SILO_TOOLS_REPORT_REPORT_HH
