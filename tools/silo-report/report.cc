#include "silo-report/report.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace silo::report
{

namespace
{

/** Last path component, for compact table headers. */
std::string
baseName(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string
fmt(const char *spec, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, spec, v);
    return buf;
}

/** Rates: integral display above 1000, three decimals below. */
std::string
fmtRate(double v)
{
    return v >= 1000 ? fmt("%.0f", v) : fmt("%.3f", v);
}

Verdict
judge(double ratio, const ReportOptions &opts)
{
    if (ratio < 1.0 - opts.fail)
        return Verdict::Fail;
    if (ratio < 1.0 - opts.warn)
        return Verdict::Warn;
    return Verdict::Ok;
}

/** One profile's domains (or phases), sorted by self time, desc. */
struct ProfRow
{
    std::string name;
    double selfSeconds = 0;
    double totalSeconds = 0;
    double count = 0;
};

std::vector<ProfRow>
profRows(const JsonValue &doc, const char *section,
         const char *count_key)
{
    std::vector<ProfRow> rows;
    const JsonValue *obj = doc.find(section);
    if (!obj || !obj->isObject())
        return rows;
    for (const auto &[name, v] : obj->object) {
        ProfRow row;
        row.name = name;
        row.selfSeconds = v.numOr("self_seconds", 0);
        row.totalSeconds = v.numOr("total_seconds", 0);
        row.count = v.numOr(count_key, 0);
        rows.push_back(std::move(row));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const ProfRow &a, const ProfRow &b) {
                         return a.selfSeconds > b.selfSeconds;
                     });
    return rows;
}

void
renderProfile(std::string &md, const InputDoc &in,
              const ReportOptions &opts)
{
    const JsonValue &doc = in.doc;
    double wall = doc.numOr("wall_seconds", 0);
    md += "## Host-time profile: " + baseName(in.path) + "\n\n";
    md += "wall " + fmt("%.3f", wall) + " s, threads " +
          fmt("%.0f", doc.numOr("threads", 0)) + ", domain coverage " +
          fmt("%.1f", doc.numOr("coverage", 0) * 100) + "%\n\n";

    md += "| domain | self s | share | dispatches |\n";
    md += "|---|---:|---:|---:|\n";
    auto rows = profRows(doc, "domains", "dispatches");
    int shown = 0;
    for (const ProfRow &row : rows) {
        if (shown++ >= opts.top)
            break;
        double share = wall > 0 ? row.selfSeconds / wall : 0;
        md += "| " + row.name + " | " + fmt("%.3f", row.selfSeconds) +
              " | " + fmt("%.1f", share * 100) + "% | " +
              fmt("%.0f", row.count) + " |\n";
    }
    if (int(rows.size()) > opts.top)
        md += "\n(top " + std::to_string(opts.top) + " of " +
              std::to_string(rows.size()) + " domains)\n";

    md += "\n| phase | self s | total s | count |\n";
    md += "|---|---:|---:|---:|\n";
    for (const ProfRow &row : profRows(doc, "phases", "count")) {
        md += "| " + row.name + " | " + fmt("%.3f", row.selfSeconds) +
              " | " + fmt("%.3f", row.totalSeconds) + " | " +
              fmt("%.0f", row.count) + " |\n";
    }
    md += "\n";
}

void
renderProfileDelta(std::string &md, const InputDoc &a,
                   const InputDoc &b)
{
    md += "## Profile comparison: " + baseName(a.path) + " vs " +
          baseName(b.path) + "\n\n";
    md += "| domain | self s (A) | self s (B) | B/A |\n";
    md += "|---|---:|---:|---:|\n";
    auto rows_a = profRows(a.doc, "domains", "dispatches");
    for (const ProfRow &row : rows_a) {
        const JsonValue *domains = b.doc.find("domains");
        const JsonValue *other =
            domains ? domains->find(row.name) : nullptr;
        double self_b = other ? other->numOr("self_seconds", 0) : 0;
        std::string ratio =
            row.selfSeconds > 0 ? fmt("%.2f", self_b / row.selfSeconds)
                                : "-";
        md += "| " + row.name + " | " + fmt("%.3f", row.selfSeconds) +
              " | " + fmt("%.3f", self_b) + " | " + ratio + " |\n";
    }
    md += "\n";
}

} // namespace

bool
parseThresholds(const std::string &text, ReportOptions &opts)
{
    auto fraction = [](const std::string &s, double &out) {
        char *end = nullptr;
        out = std::strtod(s.c_str(), &end);
        return end != s.c_str() && *end == '\0' && out >= 0 &&
               out < 1.0;
    };
    std::size_t comma = text.find(',');
    double warn = 0, fail = 0;
    if (comma == std::string::npos ||
        !fraction(text.substr(0, comma), warn) ||
        !fraction(text.substr(comma + 1), fail) || fail < warn)
        return false;
    opts.warn = warn;
    opts.fail = fail;
    return true;
}

bool
thresholdsFromEnv(ReportOptions &opts, std::string &error)
{
    // tools/ sits outside the simulator's determinism boundary, so
    // the plain getenv (not harness::envStrOr) is deliberate here.
    const char *env = std::getenv("SILO_PROF_THRESHOLDS");
    if (!env || !*env)
        return true;
    if (!parseThresholds(env, opts)) {
        error = std::string("SILO_PROF_THRESHOLDS=\"") + env +
                "\" is not \"warn,fail\" with 0 <= warn <= fail < 1";
        return false;
    }
    return true;
}

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Ok: return "ok";
      case Verdict::Warn: return "warn";
      case Verdict::Fail: return "FAIL";
    }
    return "?";
}

std::vector<std::pair<std::string, double>>
selfperfMetrics(const JsonValue &doc)
{
    std::vector<std::pair<std::string, double>> metrics;
    if (const JsonValue *matrix = doc.find("matrix")) {
        double rate = matrix->numOr("cells_per_second", 0);
        if (rate > 0)
            metrics.emplace_back("matrix cells/s", rate);
    }
    const JsonValue *micro = doc.find("micro");
    if (micro && micro->isObject()) {
        for (const auto &[section, v] : micro->object) {
            for (const auto &[key, member] : v.object) {
                if (key.size() > 11 &&
                    key.compare(key.size() - 11, 11, "_per_second") ==
                        0 &&
                    member.isNumber()) {
                    metrics.emplace_back(section, member.number);
                    break;
                }
            }
        }
    }
    return metrics;
}

ReportResult
buildReport(const std::vector<InputDoc> &docs,
            const ReportOptions &opts)
{
    ReportResult result;
    std::vector<const InputDoc *> trajectory;
    std::vector<const InputDoc *> profiles;

    for (const InputDoc &in : docs) {
        std::string schema = in.doc.strOr("schema", "");
        if (schema == "silo-selfperf-v1" ||
            schema == "silo-selfperf-v2") {
            trajectory.push_back(&in);
        } else if (schema == "silo-prof-v1") {
            profiles.push_back(&in);
        } else {
            result.errors.push_back(
                in.path + ": unknown schema \"" + schema + "\"");
        }
    }
    if (profiles.size() > 2)
        result.errors.push_back(
            "at most two silo-prof-v1 profiles can be compared (got " +
            std::to_string(profiles.size()) + ")");
    if (!result.errors.empty())
        return result;

    std::string &md = result.markdown;
    md += "# silo-report\n\n";

    if (!trajectory.empty()) {
        // Union of metric names across the trajectory, in first-seen
        // order, so a v1 -> v2 format change appends new micros
        // instead of breaking old columns.
        std::vector<std::string> names;
        std::vector<std::vector<std::pair<std::string, double>>> all;
        for (const InputDoc *in : trajectory) {
            all.push_back(selfperfMetrics(in->doc));
            for (const auto &[name, rate] : all.back()) {
                if (std::find(names.begin(), names.end(), name) ==
                    names.end())
                    names.push_back(name);
            }
        }
        auto rateOf = [&](std::size_t doc_idx,
                          const std::string &name) -> double {
            for (const auto &[n, rate] : all[doc_idx]) {
                if (n == name)
                    return rate;
            }
            return 0;
        };

        md += "## Perf trajectory (rates, higher is better)\n\n";
        md += "| metric |";
        for (const InputDoc *in : trajectory)
            md += " " + baseName(in->path) + " |";
        md += "\n|---|";
        for (std::size_t i = 0; i < trajectory.size(); ++i)
            md += "---:|";
        md += "\n";
        for (const std::string &name : names) {
            md += "| " + name + " |";
            for (std::size_t i = 0; i < trajectory.size(); ++i) {
                double rate = rateOf(i, name);
                md += rate > 0 ? " " + fmtRate(rate) + " |" : " - |";
            }
            md += "\n";
        }
        md += "\n";

        if (trajectory.size() >= 2) {
            std::size_t first = 0, last = trajectory.size() - 1;
            md += "## Regression verdicts (" +
                  baseName(trajectory[first]->path) + " vs " +
                  baseName(trajectory[last]->path) + ")\n\n";
            md += "| metric | first | last | ratio | verdict |\n";
            md += "|---|---:|---:|---:|---|\n";
            for (const std::string &name : names) {
                double a = rateOf(first, name);
                double b = rateOf(last, name);
                if (a <= 0 || b <= 0)
                    continue; // metric absent at one end: no verdict
                MetricVerdict mv;
                mv.metric = name;
                mv.first = a;
                mv.last = b;
                mv.ratio = b / a;
                mv.verdict = judge(mv.ratio, opts);
                result.worst = std::max(result.worst, mv.verdict);
                md += "| " + name + " | " + fmtRate(a) + " | " +
                      fmtRate(b) + " | " + fmt("%.3f", mv.ratio) +
                      " | " + verdictName(mv.verdict) + " |\n";
                result.verdicts.push_back(std::move(mv));
            }
            md += "\nThresholds: warn below " +
                  fmt("%.2f", 1.0 - opts.warn) + "x, fail below " +
                  fmt("%.2f", 1.0 - opts.fail) + "x.\n\n";
        } else {
            md += "(one selfperf document: trajectory only, no "
                  "verdicts)\n\n";
        }
    }

    for (const InputDoc *in : profiles)
        renderProfile(md, *in, opts);
    if (profiles.size() == 2)
        renderProfileDelta(md, *profiles[0], *profiles[1]);

    if (trajectory.empty() && profiles.empty())
        md += "(no recognized input documents)\n";
    return result;
}

} // namespace silo::report
