#include "silo-report/json.hh"

#include <cctype>
#include <cstdlib>

namespace silo::report
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::strOr(const std::string &key,
                 const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string : fallback;
}

double
JsonValue::numOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : fallback;
}

namespace
{

/** Cursor over the input with line tracking for error messages. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::size_t line = 1;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &message)
    {
        if (error.empty())
            error = "line " + std::to_string(line) + ": " + message;
        return false;
    }

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return atEnd() ? '\0' : text[pos]; }

    char
    next()
    {
        char c = text[pos++];
        if (c == '\n')
            ++line;
        return c;
    }

    void
    skipSpace()
    {
        while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                            text[pos] == '\n' || text[pos] == '\r'))
            next();
    }

    bool
    expect(char c)
    {
        skipSpace();
        if (atEnd() || peek() != c)
            return fail(std::string("expected '") + c + "'");
        next();
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("bad literal, expected ") + word);
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = next();
            if (c == '"')
                return true;
            if (c == '\\') {
                if (atEnd())
                    return fail("unterminated escape");
                char esc = next();
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    // The repo's emitters never write \u escapes;
                    // decode the BMP ones to keep the parser honest.
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = next();
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    if (code < 0x80) {
                        out += char(code);
                    } else if (code < 0x800) {
                        out += char(0xc0 | (code >> 6));
                        out += char(0x80 | (code & 0x3f));
                    } else {
                        out += char(0xe0 | (code >> 12));
                        out += char(0x80 | ((code >> 6) & 0x3f));
                        out += char(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape character");
                }
            } else {
                out += c;
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos;
        if (peek() == '-')
            next();
        while (!atEnd() && (std::isdigit(unsigned(peek())) != 0 ||
                            peek() == '.' || peek() == 'e' ||
                            peek() == 'E' || peek() == '+' ||
                            peek() == '-'))
            next();
        std::string token = text.substr(start, pos - start);
        char *end = nullptr;
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            return fail("bad number \"" + token + "\"");
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (atEnd())
            return fail("unexpected end of document");
        char c = peek();
        if (c == '{') {
            next();
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (peek() == '}') {
                next();
                return true;
            }
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!expect(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                if (!out.find(key))
                    out.object.emplace_back(std::move(key),
                                            std::move(member));
                skipSpace();
                if (peek() == ',') {
                    next();
                    continue;
                }
                return expect('}');
            }
        }
        if (c == '[') {
            next();
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (peek() == ']') {
                next();
                return true;
            }
            while (true) {
                JsonValue element;
                if (!parseValue(element))
                    return false;
                out.array.push_back(std::move(element));
                skipSpace();
                if (peek() == ',') {
                    next();
                    continue;
                }
                return expect(']');
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
        }
        if (c == '-' || std::isdigit(unsigned(c)) != 0)
            return parseNumber(out);
        return fail(std::string("unexpected character '") + c + "'");
    }
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    Parser p(text);
    out = JsonValue{};
    if (!p.parseValue(out)) {
        error = p.error;
        return false;
    }
    p.skipSpace();
    if (!p.atEnd()) {
        error = "line " + std::to_string(p.line) +
                ": trailing content after document";
        return false;
    }
    error.clear();
    return true;
}

} // namespace silo::report
