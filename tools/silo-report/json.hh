/**
 * @file
 * Minimal JSON value + recursive-descent parser for silo-report.
 *
 * Standalone like silo-lint: tools must not depend on the simulator
 * library, so this carries its own ~200-line reader instead of
 * linking `silo`. It parses the documents the repo itself emits
 * (BENCH_*.json selfperf files, silo-prof-v1 profiles) — strict JSON,
 * no extensions — and keeps object members in document order so
 * report tables list metrics in the order the emitter wrote them.
 */

#ifndef SILO_TOOLS_REPORT_JSON_HH
#define SILO_TOOLS_REPORT_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace silo::report
{

/** One parsed JSON value; objects preserve member order. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    /** Members in document order; duplicate keys keep the first. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** String member @p key, or @p fallback when absent/mistyped. */
    std::string strOr(const std::string &key,
                      const std::string &fallback) const;

    /** Number member @p key, or @p fallback when absent/mistyped. */
    double numOr(const std::string &key, double fallback) const;
};

/**
 * Parse @p text as one JSON document.
 * @return true on success; on failure @p error describes the first
 * syntax problem with a line number and @p out is unspecified.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

} // namespace silo::report

#endif // SILO_TOOLS_REPORT_JSON_HH
