/**
 * @file
 * silo-report CLI: cross-run perf regression report.
 *
 * Usage:
 *   silo-report [--top N] [--warn F] [--fail F] [--gate]
 *               [--out PATH] FILE...
 *
 * FILEs are perf JSON documents the repo emits: BENCH_*.json selfperf
 * trajectories (silo-selfperf-v1/-v2, compared oldest-first in the
 * order given) and up to two silo-prof-v1 host-time profiles (written
 * by runs with SILO_PROF set). The markdown report goes to stdout, or
 * to PATH with --out.
 *
 * `--warn` / `--fail` are slowdown fractions for the first-vs-last
 * trajectory verdicts (defaults 0.10 / 0.30: a metric is WARN below
 * 0.90x of its first rate, FAIL below 0.70x). The
 * SILO_PROF_THRESHOLDS environment variable ("warn,fail", e.g.
 * "0.1,0.3") sets the same pair for CI jobs that cannot pass flags;
 * explicit flags win over it.
 *
 * Exits 0 normally (including WARN verdicts), 1 when --gate is given
 * and any metric verdict is FAIL, 2 on usage or input errors.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "silo-report/report.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--top N] [--warn F] [--fail F] [--gate]"
                 " [--out PATH] FILE...\n",
                 argv0);
    return 2;
}

bool
parseFraction(const std::string &text, double &out)
{
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0' && out >= 0 &&
           out < 1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    silo::report::ReportOptions opts;
    bool gate = false;
    std::string out_path;
    std::vector<std::string> files;

    std::string env_error;
    if (!silo::report::thresholdsFromEnv(opts, env_error)) {
        std::fprintf(stderr, "silo-report: %s\n", env_error.c_str());
        return 2;
    }

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            opts.top = std::atoi(argv[++i]);
            if (opts.top < 1)
                return usage(argv[0]);
        } else if (arg == "--warn" && i + 1 < argc) {
            if (!parseFraction(argv[++i], opts.warn))
                return usage(argv[0]);
        } else if (arg == "--fail" && i + 1 < argc) {
            if (!parseFraction(argv[++i], opts.fail))
                return usage(argv[0]);
        } else if (arg == "--gate") {
            gate = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty())
        return usage(argv[0]);
    if (opts.fail < opts.warn) {
        std::fprintf(stderr,
                     "silo-report: --fail (%.2f) must be >= --warn "
                     "(%.2f)\n",
                     opts.fail, opts.warn);
        return 2;
    }

    std::vector<silo::report::InputDoc> docs;
    for (const std::string &path : files) {
        std::ifstream is(path);
        if (!is) {
            std::fprintf(stderr, "silo-report: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        std::ostringstream text;
        text << is.rdbuf();
        silo::report::InputDoc doc;
        doc.path = path;
        std::string error;
        if (!silo::report::parseJson(text.str(), doc.doc, error)) {
            std::fprintf(stderr, "silo-report: %s: %s\n", path.c_str(),
                         error.c_str());
            return 2;
        }
        docs.push_back(std::move(doc));
    }

    silo::report::ReportResult result =
        silo::report::buildReport(docs, opts);
    for (const std::string &error : result.errors)
        std::fprintf(stderr, "silo-report: %s\n", error.c_str());
    if (!result.errors.empty())
        return 2;

    if (out_path.empty() || out_path == "-") {
        std::cout << result.markdown;
    } else {
        std::ofstream os(out_path, std::ios::trunc);
        if (!os) {
            std::fprintf(stderr, "silo-report: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        os << result.markdown;
        std::fprintf(stderr, "silo-report: wrote %s\n",
                     out_path.c_str());
    }

    if (gate && result.worst == silo::report::Verdict::Fail) {
        std::fprintf(stderr,
                     "silo-report: gate FAILED — at least one metric "
                     "regressed past the fail threshold\n");
        return 1;
    }
    return 0;
}
