/**
 * @file
 * Command-line front end of the persistency litmus fuzzer (src/fuzz).
 *
 *   litmus fuzz [--seed N] [--programs N] [--budget SECONDS]
 *               [--stride N] [--mutation NAME] [--scheme NAME]
 *               [--out DIR] [-v]
 *       Generate adversarial litmus programs, sweep a crash at every
 *       (strided) event index of every scheme, shrink each failing
 *       case and write fixtures to --out. Prints the campaign summary
 *       JSON on stdout; exits non-zero if any finding had no seeded
 *       mutation (i.e. a real scheme bug).
 *
 *   litmus replay FILE...
 *       Replay fixture files (tests/check/litmus/): all six
 *       schemes must be clean, and a recorded mutation must still be
 *       caught. Exits non-zero on any broken promise.
 *
 *   litmus gen [--seed N] [--programs N]
 *       Print the generated programs (debug aid for the generator).
 *
 * Every flag falls back to an environment knob so CI can steer the
 * nightly job without editing the workflow command: SILO_FUZZ_SEED,
 * SILO_FUZZ_PROGRAMS, SILO_FUZZ_BUDGET_S, SILO_FUZZ_CRASH_STRIDE,
 * SILO_FUZZ_MUTATION, SILO_FUZZ_OUT (flags win). A fixed --seed and
 * --programs reproduce a run byte-for-byte; --budget alone stops
 * between programs, so partial runs are prefixes of longer ones.
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/campaign.hh"
#include "fuzz/fixture.hh"
#include "harness/experiment.hh"
#include "sim/logging.hh"

namespace
{

using namespace silo;

[[noreturn]] void
usage(const std::string &what = "")
{
    if (!what.empty())
        std::cerr << "litmus: " << what << "\n";
    std::cerr <<
        "usage: litmus fuzz [--seed N] [--programs N] [--budget S]\n"
        "                   [--stride N] [--mutation NAME]\n"
        "                   [--scheme NAME] [--out DIR] [-v]\n"
        "       litmus replay FILE...\n"
        "       litmus gen [--seed N] [--programs N]\n";
    std::exit(2);
}

/** Flag parser over argv[2..]; every value flag takes one argument. */
struct Args
{
    std::uint64_t seed;
    std::uint64_t programs;
    double budgetSeconds;
    std::uint64_t stride;
    std::string mutation;
    std::string scheme;
    std::string outDir;
    bool verbose = false;
    std::vector<std::string> positional;

    Args(int argc, char **argv)
        : seed(harness::envOr("SILO_FUZZ_SEED", 1)),
          programs(harness::envOr("SILO_FUZZ_PROGRAMS", 0)),
          budgetSeconds(double(harness::envOr("SILO_FUZZ_BUDGET_S", 0))),
          stride(harness::envOr("SILO_FUZZ_CRASH_STRIDE", 1)),
          mutation(harness::envStrOr("SILO_FUZZ_MUTATION", "none")),
          outDir(harness::envStrOr("SILO_FUZZ_OUT", ""))
    {
        auto value = [&](int &i, const char *flag) -> std::string {
            if (i + 1 >= argc)
                usage(std::string(flag) + " needs a value");
            return argv[++i];
        };
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--seed")
                seed = std::stoull(value(i, "--seed"));
            else if (arg == "--programs")
                programs = std::stoull(value(i, "--programs"));
            else if (arg == "--budget")
                budgetSeconds = std::stod(value(i, "--budget"));
            else if (arg == "--stride")
                stride = std::stoull(value(i, "--stride"));
            else if (arg == "--mutation")
                mutation = value(i, "--mutation");
            else if (arg == "--scheme")
                scheme = value(i, "--scheme");
            else if (arg == "--out")
                outDir = value(i, "--out");
            else if (arg == "-v")
                verbose = true;
            else if (!arg.empty() && arg[0] == '-')
                usage("unknown flag " + arg);
            else
                positional.push_back(arg);
        }
    }

    fuzz::FuzzOptions
    fuzzOptions() const
    {
        fuzz::FuzzOptions opts;
        opts.seed = seed;
        // Default shape: a fixed small program count, overridden by
        // an explicit wall-clock budget (the nightly mode).
        opts.maxPrograms = programs;
        opts.budgetSeconds = budgetSeconds;
        if (opts.maxPrograms == 0 && !(opts.budgetSeconds > 0))
            opts.maxPrograms = 5;
        opts.crashStride = stride;
        opts.mutation = mutationFromName(mutation);
        if (!scheme.empty())
            opts.schemes.push_back(schemeFromName(scheme));
        opts.outDir = outDir;
        return opts;
    }
};

int
cmdFuzz(const Args &args)
{
    fuzz::FuzzOptions opts = args.fuzzOptions();
    fuzz::FuzzCampaignResult result = fuzz::runFuzzCampaign(
        opts, args.verbose ? &std::cerr : nullptr);
    std::cout << result.summaryJson(opts);
    // Findings under a seeded mutation are the expected self-test
    // outcome; findings on the real schemes are bugs.
    for (const fuzz::FuzzFinding &finding : result.findings)
        if (finding.mutation == MutationKind::None)
            return 1;
    return 0;
}

int
cmdReplay(const Args &args)
{
    if (args.positional.empty())
        usage("replay needs at least one fixture file");
    int failures = 0;
    for (const std::string &path : args.positional) {
        fuzz::LitmusFixture fixture = fuzz::loadFixtureFile(path);
        std::vector<std::string> broken =
            fuzz::replayFixture(fixture);
        if (broken.empty()) {
            std::cout << "ok " << path << "\n";
            continue;
        }
        ++failures;
        std::cout << "FAIL " << path << "\n";
        for (const std::string &msg : broken)
            std::cout << "  " << msg << "\n";
    }
    return failures == 0 ? 0 : 1;
}

int
cmdGen(const Args &args)
{
    Rng rng(args.seed);
    fuzz::LitmusGenConfig gen;
    std::uint64_t count = args.programs ? args.programs : 1;
    for (std::uint64_t i = 0; i < count; ++i) {
        workload::LitmusProgram program = fuzz::generateLitmus(
            rng, gen,
            "fuzz-" + std::to_string(args.seed) + "-" +
                std::to_string(i));
        std::cout << workload::serializeLitmus(program);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    Args args(argc, argv);
    if (cmd == "fuzz")
        return cmdFuzz(args);
    if (cmd == "replay")
        return cmdReplay(args);
    if (cmd == "gen")
        return cmdGen(args);
    usage("unknown command " + cmd);
}
