# Nightly output-contract check (driven by the lint_schema_validate
# ctest): run silo_lint over the repository, then validate the fresh
# silo-lint-v1 JSON and SARIF documents — and every checked-in golden
# — against the schemas in tools/silo-lint/schemas/. The perf formats
# ride along: the committed BENCH_PR8.json and the silo-prof fixture
# documents must validate against the silo-selfperf-v2 and
# silo-prof-v1 schemas.
#
# Usage:
#   cmake -DLINT=<silo_lint exe> -DROOT=<repo root> -DPY=<python3>
#         -DTOOL_DIR=<tools/silo-lint> -DOUT=<scratch dir>
#         -P validate_outputs.cmake

foreach(var LINT ROOT PY TOOL_DIR OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "validate_outputs.cmake: -D${var}= is required")
    endif()
endforeach()

execute_process(
    COMMAND "${LINT}" --root "${ROOT}"
            "--json=${OUT}/silo-lint.json"
            "--sarif=${OUT}/silo-lint.sarif"
    RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
    message(FATAL_ERROR "silo_lint self-run failed (rc=${lint_rc}) — "
                        "fix or suppress findings before validating schemas")
endif()

file(GLOB golden_json "${ROOT}/tests/tools/golden/*.json")
file(GLOB golden_sarif "${ROOT}/tests/tools/golden/*.sarif")

execute_process(
    COMMAND "${PY}" "${TOOL_DIR}/check_schema.py"
            "${TOOL_DIR}/schemas/silo-lint-v1.schema.json"
            "${OUT}/silo-lint.json" ${golden_json}
    RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "silo-lint-v1 schema validation failed")
endif()

execute_process(
    COMMAND "${PY}" "${TOOL_DIR}/check_schema.py"
            "${TOOL_DIR}/schemas/sarif-2.1.0-subset.schema.json"
            "${OUT}/silo-lint.sarif" ${golden_sarif}
    RESULT_VARIABLE sarif_rc)
if(NOT sarif_rc EQUAL 0)
    message(FATAL_ERROR "SARIF schema validation failed")
endif()

execute_process(
    COMMAND "${PY}" "${TOOL_DIR}/check_schema.py"
            "${TOOL_DIR}/schemas/silo-selfperf-v2.schema.json"
            "${ROOT}/BENCH_PR8.json"
    RESULT_VARIABLE selfperf_rc)
if(NOT selfperf_rc EQUAL 0)
    message(FATAL_ERROR "silo-selfperf-v2 schema validation failed")
endif()

file(GLOB prof_fixtures "${ROOT}/tests/tools/fixtures/report/prof-*.json")
execute_process(
    COMMAND "${PY}" "${TOOL_DIR}/check_schema.py"
            "${TOOL_DIR}/schemas/silo-prof-v1.schema.json"
            ${prof_fixtures}
    RESULT_VARIABLE prof_rc)
if(NOT prof_rc EQUAL 0)
    message(FATAL_ERROR "silo-prof-v1 schema validation failed")
endif()
