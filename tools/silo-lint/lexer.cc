#include "silo-lint/lexer.hh"

#include <algorithm>
#include <cctype>

namespace silo::lint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Encoding prefixes that may glue onto a string or char literal. */
bool
literalPrefix(const std::string &ident)
{
    return ident == "R" || ident == "L" || ident == "u" ||
           ident == "U" || ident == "u8" || ident == "LR" ||
           ident == "uR" || ident == "UR" || ident == "u8R";
}

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> out;
    const std::size_t n = src.size();
    std::size_t i = 0;
    int line = 1;

    auto peek = [&](std::size_t k) -> char {
        return i + k < n ? src[i + k] : '\0';
    };

    // Consume a "..." literal at src[i]; returns the body. Tracks
    // newlines (only raw strings may legally contain them).
    auto lexQuoted = [&](char quote) -> std::string {
        std::size_t start = ++i;   // past the opening quote
        while (i < n && src[i] != quote) {
            if (src[i] == '\\' && i + 1 < n)
                ++i;
            if (src[i] == '\n')
                ++line;
            ++i;
        }
        std::string body = src.substr(start, i - start);
        if (i < n)
            ++i;   // closing quote
        return body;
    };

    // Consume a raw string R"delim(...)delim" with i at the opening
    // quote; returns the body between the parentheses.
    auto lexRawString = [&]() -> std::string {
        ++i;   // past the quote
        std::string delim;
        while (i < n && src[i] != '(')
            delim += src[i++];
        if (i < n)
            ++i;   // '('
        std::string close = ")" + delim + "\"";
        std::size_t end = src.find(close, i);
        if (end == std::string::npos)
            end = n;
        std::string body = src.substr(i, end - i);
        line += int(std::count(body.begin(), body.end(), '\n'));
        i = std::min(n, end + close.size());
        return body;
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            std::size_t start = i + 2;
            while (i < n && src[i] != '\n')
                ++i;
            out.push_back({TokKind::Comment,
                           src.substr(start, i - start), line});
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            int start_line = line;
            std::size_t start = i + 2;
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            std::size_t end = i + 1 < n ? i : n;
            out.push_back({TokKind::Comment,
                           src.substr(start, end - start), start_line});
            i = std::min(n, i + 2);
            continue;
        }
        if (identStart(c)) {
            std::size_t start = i;
            int start_line = line;
            while (i < n && identChar(src[i]))
                ++i;
            std::string ident = src.substr(start, i - start);
            if (i < n && src[i] == '"' && literalPrefix(ident)) {
                std::string body = ident.back() == 'R'
                                       ? lexRawString()
                                       : lexQuoted('"');
                out.push_back({TokKind::String, std::move(body),
                               start_line});
            } else if (i < n && src[i] == '\'' &&
                       literalPrefix(ident)) {
                out.push_back({TokKind::CharLit, lexQuoted('\''),
                               start_line});
            } else {
                out.push_back({TokKind::Identifier, std::move(ident),
                               start_line});
            }
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            std::size_t start = i;
            while (i < n) {
                char d = src[i];
                if (identChar(d) || d == '.' || d == '\'') {
                    // Exponents carry a sign: 1e+5, 0x1p-3.
                    if ((d == 'e' || d == 'E' || d == 'p' ||
                         d == 'P') &&
                        (peek(1) == '+' || peek(1) == '-')) {
                        i += 2;
                        continue;
                    }
                    ++i;
                    continue;
                }
                break;
            }
            out.push_back({TokKind::Number, src.substr(start, i - start),
                           line});
            continue;
        }
        if (c == '"') {
            int start_line = line;
            out.push_back({TokKind::String, lexQuoted('"'),
                           start_line});
            continue;
        }
        if (c == '\'') {
            int start_line = line;
            out.push_back({TokKind::CharLit, lexQuoted('\''),
                           start_line});
            continue;
        }
        if (c == ':' && peek(1) == ':') {
            out.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        out.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

} // namespace silo::lint
