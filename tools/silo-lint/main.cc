/**
 * @file
 * silo-lint CLI.
 *
 * Usage:
 *   silo-lint [--root DIR] [--json[=PATH]] [--doc FILE]...
 *             [--no-default-docs] [--list-rules] [-v] [FILE...]
 *
 * With no FILE arguments, scans src/, bench/ and tests/ under the
 * root (the repository checkout) plus README.md/DESIGN.md for the R3
 * parity rule. Exits 0 when the tree is clean (suppressed findings do
 * not fail the run), 1 on any unsuppressed finding, 2 on usage
 * errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "silo-lint/driver.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--json[=PATH]] [--doc FILE]"
                 " [--no-default-docs] [--list-rules] [-v] [FILE...]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    silo::lint::Options opts;
    bool verbose = false;
    bool want_json = false;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            opts.root = argv[++i];
        } else if (arg.rfind("--root=", 0) == 0) {
            opts.root = arg.substr(7);
        } else if (arg == "--json") {
            want_json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            want_json = true;
            json_path = arg.substr(7);
        } else if (arg == "--doc" && i + 1 < argc) {
            opts.docs.push_back(argv[++i]);
        } else if (arg == "--no-default-docs") {
            opts.defaultDocs = false;
        } else if (arg == "-v" || arg == "--verbose") {
            verbose = true;
        } else if (arg == "--list-rules") {
            for (const auto &r : silo::lint::ruleCatalogue())
                std::printf("%s %-18s %s\n", r.code, r.slug,
                            r.summary);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            opts.files.push_back(arg);
        }
    }

    silo::lint::Result result = silo::lint::runLint(opts);

    if (want_json && (json_path.empty() || json_path == "-")) {
        std::cout << silo::lint::toJson(result);
        std::cerr << silo::lint::toHuman(result, verbose);
    } else {
        if (want_json) {
            std::ofstream os(json_path, std::ios::trunc);
            if (!os) {
                std::fprintf(stderr,
                             "silo-lint: cannot write %s\n",
                             json_path.c_str());
                return 2;
            }
            os << silo::lint::toJson(result);
        }
        std::cout << silo::lint::toHuman(result, verbose);
    }
    return result.errors ? 1 : 0;
}
