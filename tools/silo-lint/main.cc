/**
 * @file
 * silo-lint CLI.
 *
 * Usage:
 *   silo-lint [--root DIR] [--json[=PATH]] [--sarif[=PATH]]
 *             [--changed[=REF]] [--doc FILE]... [--no-default-docs]
 *             [--list-rules] [-v] [FILE...]
 *
 * With no FILE arguments, scans src/, bench/ and tests/ under the
 * root (the repository checkout) plus README.md/DESIGN.md/
 * EXPERIMENTS.md for the R3 parity rule. The root is canonicalized up
 * front and passed explicitly to every subprocess (git), so the tool
 * behaves identically from any working directory — in particular from
 * out-of-tree build dirs. `--changed` narrows the *report* to files
 * touched since REF (default HEAD, plus untracked files) while still
 * analyzing the whole corpus, for pre-commit speed-of-reading.
 *
 * Exits 0 when the tree is clean (suppressed findings do not fail the
 * run), 1 on any unsuppressed finding, 2 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "silo-lint/driver.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--json[=PATH]]"
                 " [--sarif[=PATH]] [--changed[=REF]] [--doc FILE]"
                 " [--no-default-docs] [--list-rules] [-v] [FILE...]\n",
                 argv0);
    return 2;
}

/**
 * Root-relative paths changed since @p ref (plus untracked files),
 * via git run explicitly against @p root — never the CWD.
 * @return false when git fails (not a repository, bad ref).
 */
bool
gitChangedFiles(const std::string &root, const std::string &ref,
                std::vector<std::string> &out)
{
    const std::string base = "git -C '" + root + "' ";
    for (const std::string &cmd :
         {base + "diff --name-only " + ref + " -- 2>/dev/null",
          base + "ls-files --others --exclude-standard 2>/dev/null"}) {
        FILE *pipe = popen(cmd.c_str(), "r");
        if (!pipe)
            return false;
        std::string line;
        int c;
        while ((c = std::fgetc(pipe)) != EOF) {
            if (c == '\n') {
                if (!line.empty())
                    out.push_back(line);
                line.clear();
            } else {
                line += char(c);
            }
        }
        if (!line.empty())
            out.push_back(line);
        if (pclose(pipe) != 0)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    silo::lint::Options opts;
    bool verbose = false;
    bool want_json = false;
    bool want_sarif = false;
    bool want_changed = false;
    std::string json_path;
    std::string sarif_path;
    std::string changed_ref = "HEAD";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            opts.root = argv[++i];
        } else if (arg.rfind("--root=", 0) == 0) {
            opts.root = arg.substr(7);
        } else if (arg == "--json") {
            want_json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            want_json = true;
            json_path = arg.substr(7);
        } else if (arg == "--sarif") {
            want_sarif = true;
        } else if (arg.rfind("--sarif=", 0) == 0) {
            want_sarif = true;
            sarif_path = arg.substr(8);
        } else if (arg == "--changed") {
            want_changed = true;
        } else if (arg.rfind("--changed=", 0) == 0) {
            want_changed = true;
            changed_ref = arg.substr(10);
        } else if (arg == "--doc" && i + 1 < argc) {
            opts.docs.push_back(argv[++i]);
        } else if (arg == "--no-default-docs") {
            opts.defaultDocs = false;
        } else if (arg == "-v" || arg == "--verbose") {
            verbose = true;
        } else if (arg == "--list-rules") {
            for (const auto &r : silo::lint::ruleCatalogue())
                std::printf("%-4s %-20s %s\n", r.code, r.slug,
                            r.summary);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            opts.files.push_back(arg);
        }
    }

    // Canonicalize once so every later path (and the git subprocess)
    // is independent of the working directory.
    std::error_code ec;
    std::filesystem::path canon =
        std::filesystem::canonical(opts.root, ec);
    if (ec) {
        std::fprintf(stderr, "silo-lint: bad --root %s: %s\n",
                     opts.root.c_str(), ec.message().c_str());
        return 2;
    }
    opts.root = canon.string();

    if (want_changed) {
        opts.changedOnly = true;
        if (!gitChangedFiles(opts.root, changed_ref,
                             opts.changedFiles)) {
            std::fprintf(stderr,
                         "silo-lint: --changed: git failed under %s "
                         "(not a repository, or bad ref '%s')\n",
                         opts.root.c_str(), changed_ref.c_str());
            return 2;
        }
    }

    silo::lint::Result result = silo::lint::runLint(opts);

    if (want_json && (json_path.empty() || json_path == "-")) {
        std::cout << silo::lint::toJson(result);
    } else if (want_json) {
        std::ofstream os(json_path, std::ios::trunc);
        if (!os) {
            std::fprintf(stderr, "silo-lint: cannot write %s\n",
                         json_path.c_str());
            return 2;
        }
        os << silo::lint::toJson(result);
    }
    if (want_sarif && (sarif_path.empty() || sarif_path == "-")) {
        std::cout << silo::lint::toSarif(result);
    } else if (want_sarif) {
        std::ofstream os(sarif_path, std::ios::trunc);
        if (!os) {
            std::fprintf(stderr, "silo-lint: cannot write %s\n",
                         sarif_path.c_str());
            return 2;
        }
        os << silo::lint::toSarif(result);
    }
    bool stdout_taken =
        (want_json && (json_path.empty() || json_path == "-")) ||
        (want_sarif && (sarif_path.empty() || sarif_path == "-"));
    if (stdout_taken)
        std::cerr << silo::lint::toHuman(result, verbose);
    else
        std::cout << silo::lint::toHuman(result, verbose);
    return result.errors ? 1 : 0;
}
