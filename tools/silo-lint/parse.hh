/**
 * @file
 * The lightweight semantic layer under the v2 rules (R6–R8).
 *
 * silo-lint deliberately has no real C++ frontend; this header adds
 * the three narrow views the semantic rules need on top of the raw
 * token stream:
 *
 *  - collectIncludes(): the quoted `#include` directives of a file,
 *    feeding the include-graph / module-DAG rule (R6).
 *  - ScopeModel: a heuristic brace/paren scope model answering one
 *    question — "is this name a local or parameter of the enclosing
 *    function?" — for the callback-lifetime rule (R7).
 *  - collectFloatNames(): names declared with type float/double, for
 *    the float-determinism rule (R8).
 *
 * All three are conservative pattern matchers, not parsers: they are
 * documented in DESIGN.md §4g together with their known blind spots,
 * and every rule built on them accepts the standard suppression
 * grammar for the residual false positives.
 */

#ifndef SILO_LINT_PARSE_HH
#define SILO_LINT_PARSE_HH

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "silo-lint/rules.hh"

namespace silo::lint
{

/** One quoted `#include "..."` directive. */
struct IncludeDirective
{
    std::string target;   //!< the quoted path, exactly as written
    int line = 0;
};

/**
 * Every quoted include of @p file, in source order. Angle-bracket
 * (system) includes are not reported: the module DAG only constrains
 * project headers.
 */
std::vector<IncludeDirective> collectIncludes(const SourceFile &file);

/**
 * Heuristic declaration/scope model of one file.
 *
 * Built once per file from the comment-free token stream; queries walk
 * the brace structure around a token index, classify the enclosing
 * braces (namespace/class bodies vs function bodies vs control
 * blocks), and look for declaration-shaped token patterns between the
 * function-body opener and the query point.
 */
class ScopeModel
{
  public:
    explicit ScopeModel(const SourceFile &file) : _code(file.code) {}

    /**
     * True when @p name looks like a parameter or local variable of
     * the function whose body encloses code-token index @p idx.
     * False when @p idx is not inside a recognizable function body —
     * the caller gets no finding rather than a speculative one.
     */
    bool isLocalAt(std::size_t idx, const std::string &name) const;

  private:
    /** Opener index matching the closer at @p close, or npos. */
    std::size_t matchBackward(std::size_t close, const char *opener,
                              const char *closer) const;

    /**
     * Code index of the `{` opening the outermost function body that
     * encloses @p idx (skipping namespace/class braces), or npos.
     */
    std::size_t enclosingFunctionBody(std::size_t idx) const;

    const std::vector<Token> &_code;
};

/**
 * Names declared with type `float` or `double` anywhere in @p file
 * (locals, members and parameters alike — like R1, scoping is per
 * file). Used by R8 to spot nondeterministically-ordered accumulation.
 */
std::set<std::string> collectFloatNames(const SourceFile &file);

} // namespace silo::lint

#endif // SILO_LINT_PARSE_HH
