#include "silo-lint/driver.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

namespace silo::lint
{

namespace fs = std::filesystem;

namespace
{

/** One parsed `silo-lint: allow*(...)` directive. */
struct Directive
{
    std::string file;
    int line = 0;
    std::string rule;     //!< canonical slug; empty when unknown
    std::string rawRule;  //!< as written (for diagnostics)
    std::string reason;
    bool fileLevel = false;
    bool malformed = false;
    std::string problem;
    bool used = false;
};

std::string
trimmed(std::string s)
{
    auto ws = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    };
    while (!s.empty() && ws(s.front()))
        s.erase(s.begin());
    while (!s.empty() && ws(s.back()))
        s.pop_back();
    return s;
}

std::string
readFile(const fs::path &p)
{
    std::ifstream is(p, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(std::move(cur));
    return lines;
}

/** Parse every directive out of one file's comment tokens. */
void
parseDirectives(const SourceFile &file, std::vector<Directive> &out)
{
    static const std::string marker = "silo-lint:";
    for (const Token &tok : file.tokens) {
        if (tok.kind != TokKind::Comment)
            continue;
        std::size_t pos = tok.text.find(marker);
        if (pos == std::string::npos)
            continue;
        Directive d;
        d.file = file.path;
        d.line = tok.line;
        std::string rest = trimmed(tok.text.substr(pos + marker.size()));
        bool file_level = rest.rfind("allowfile(", 0) == 0;
        bool line_level = rest.rfind("allow(", 0) == 0;
        if (!file_level && !line_level) {
            d.malformed = true;
            d.problem = "expected allow(<rule>) or allowfile(<rule>)";
            out.push_back(std::move(d));
            continue;
        }
        d.fileLevel = file_level;
        std::size_t open = rest.find('(');
        std::size_t close = rest.find(')', open);
        if (close == std::string::npos) {
            d.malformed = true;
            d.problem = "unterminated rule list";
            out.push_back(std::move(d));
            continue;
        }
        d.rawRule = trimmed(rest.substr(open + 1, close - open - 1));
        d.rule = slugForRule(d.rawRule);
        d.reason = trimmed(rest.substr(close + 1));
        // Multi-line block comments: the reason is the first line.
        std::size_t nl = d.reason.find('\n');
        if (nl != std::string::npos)
            d.reason = trimmed(d.reason.substr(0, nl));
        if (d.rule.empty()) {
            d.malformed = true;
            d.problem = "unknown rule '" + d.rawRule + "'";
        } else if (d.reason.empty()) {
            d.malformed = true;
            d.problem = "suppression of " + d.rawRule +
                        " must carry a reason";
        }
        out.push_back(std::move(d));
    }
}

void
collectSources(const fs::path &root, const Options &opts,
               std::vector<fs::path> &sources)
{
    auto wanted = [](const fs::path &p) {
        std::string ext = p.extension().string();
        return ext == ".cc" || ext == ".hh";
    };
    auto in_fixtures = [](const fs::path &p) {
        for (const auto &part : p)
            if (part == "fixtures")
                return true;
        return false;
    };
    if (!opts.files.empty()) {
        for (const std::string &f : opts.files)
            sources.push_back(root / f);
        return;
    }
    std::vector<fs::path> dirs;
    for (const char *d : {"src", "bench", "tests"})
        if (fs::is_directory(root / d))
            dirs.push_back(root / d);
    if (dirs.empty())
        dirs.push_back(root);
    for (const fs::path &dir : dirs) {
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            if (entry.is_regular_file() && wanted(entry.path()) &&
                !in_fixtures(entry.path()))
                sources.push_back(entry.path());
        }
    }
}

void
collectBuildFiles(const fs::path &root, const Options &opts,
                  std::vector<fs::path> &build_files)
{
    if (!opts.files.empty())
        return;   // explicit-file runs lint just those sources
    if (fs::is_regular_file(root / "CMakeLists.txt"))
        build_files.push_back(root / "CMakeLists.txt");
    for (const char *d : {"src", "bench", "tests", "tools"}) {
        if (!fs::is_directory(root / d))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(root / d)) {
            if (!entry.is_regular_file())
                continue;
            const fs::path &p = entry.path();
            if (p.filename() == "CMakeLists.txt" ||
                p.extension() == ".cmake")
                build_files.push_back(p);
        }
    }
}

} // namespace

Result
runLint(const Options &opts)
{
    fs::path root(opts.root);

    std::vector<fs::path> source_paths;
    collectSources(root, opts, source_paths);
    std::sort(source_paths.begin(), source_paths.end());

    std::vector<SourceFile> files;
    files.reserve(source_paths.size());
    for (const fs::path &p : source_paths) {
        SourceFile f;
        f.path = fs::relative(p, root).generic_string();
        f.tokens = lex(readFile(p));
        for (const Token &tok : f.tokens)
            if (tok.kind != TokKind::Comment)
                f.code.push_back(tok);
        files.push_back(std::move(f));
    }

    std::vector<fs::path> build_paths;
    collectBuildFiles(root, opts, build_paths);
    std::sort(build_paths.begin(), build_paths.end());
    std::vector<TextFile> build_files;
    for (const fs::path &p : build_paths) {
        build_files.push_back({fs::relative(p, root).generic_string(),
                               splitLines(readFile(p))});
    }

    std::vector<std::string> doc_names = opts.docs;
    if (opts.defaultDocs) {
        for (const char *d : {"README.md", "DESIGN.md"})
            if (fs::is_regular_file(root / d))
                doc_names.push_back(d);
    }
    std::vector<TextFile> docs;
    for (const std::string &d : doc_names)
        docs.push_back({d, splitLines(readFile(root / d))});

    std::vector<Finding> findings;
    std::vector<Directive> directives;
    for (const SourceFile &f : files) {
        runNondetIteration(f, findings);
        runAmbientEntropy(f, findings);
        runHandlerHygiene(f, findings);
        runStatsNames(f, findings);
        parseDirectives(f, directives);
    }
    runEnvDocParity(files, build_files, docs, findings);

    // Apply suppressions: a directive covers findings of its rule in
    // its file — on its own or the following line for allow(), or
    // anywhere for allowfile().
    for (Finding &f : findings) {
        if (f.suppressed)
            continue;   // R3 text-marker suppressions arrive pre-set
        for (Directive &d : directives) {
            if (d.malformed || d.file != f.file || d.rule != f.rule)
                continue;
            if (!d.fileLevel &&
                !(d.line == f.line || d.line == f.line - 1))
                continue;
            f.suppressed = true;
            f.reason = d.reason;
            d.used = true;
            break;
        }
    }

    // Directives are themselves linted: malformed or unmatched ones
    // are findings, so the suppression surface stays auditable.
    for (const Directive &d : directives) {
        if (d.malformed) {
            findings.push_back({d.file, d.line, "S0", "suppression",
                                "malformed silo-lint directive: " +
                                    d.problem,
                                false, ""});
        } else if (!d.used) {
            findings.push_back({d.file, d.line, "S0", "suppression",
                                "unused suppression for " + d.rawRule +
                                    " — nothing on this or the next "
                                    "line triggers it",
                                false, ""});
        }
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.code, a.message) <
                         std::tie(b.file, b.line, b.code, b.message);
              });

    Result result;
    result.findings = std::move(findings);
    result.filesScanned = files.size();
    for (const Finding &f : result.findings) {
        if (f.suppressed)
            ++result.suppressed;
        else
            ++result.errors;
    }
    return result;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
toJson(const Result &result)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"silo-lint-v1\",\n";
    os << "  \"summary\": {\"files_scanned\": " << result.filesScanned
       << ", \"errors\": " << result.errors
       << ", \"suppressed\": " << result.suppressed << "},\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"file\": \"" << jsonEscape(f.file)
           << "\", \"line\": " << f.line << ", \"code\": \"" << f.code
           << "\", \"rule\": \"" << f.rule
           << "\", \"severity\": \"error\", \"suppressed\": "
           << (f.suppressed ? "true" : "false");
        if (f.suppressed)
            os << ", \"reason\": \"" << jsonEscape(f.reason) << "\"";
        os << ", \"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    os << (result.findings.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
    return os.str();
}

std::string
toHuman(const Result &result, bool verbose)
{
    std::ostringstream os;
    for (const Finding &f : result.findings) {
        if (f.suppressed && !verbose)
            continue;
        os << f.file << ":" << f.line << ": "
           << (f.suppressed ? "allowed" : "error") << " [" << f.code
           << " " << f.rule << "] " << f.message;
        if (f.suppressed)
            os << " (reason: " << f.reason << ")";
        os << "\n";
    }
    os << "silo-lint: " << result.errors << " error(s), "
       << result.suppressed << " suppressed, " << result.filesScanned
       << " file(s) scanned\n";
    return os.str();
}

} // namespace silo::lint
