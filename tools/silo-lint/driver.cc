#include "silo-lint/driver.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace silo::lint
{

namespace fs = std::filesystem;

namespace
{

/** Scope of one suppression directive. */
enum class DirScope
{
    Line,       //!< allow(): the directive's own or the next line
    NextLine,   //!< allow-next-line(): the next line only
    File,       //!< allowfile(): the whole file
};

/** One rule named in a directive's (possibly multi-rule) allow list. */
struct RuleRef
{
    std::string rule;     //!< canonical slug; empty when unknown
    std::string rawRule;  //!< as written (for diagnostics)
    bool used = false;
};

/** One parsed `silo-lint: allow*(...)` directive. */
struct Directive
{
    std::string file;
    int line = 0;
    DirScope scope = DirScope::Line;
    std::vector<RuleRef> rules;
    std::string reason;
    bool malformed = false;
    std::string problem;
};

std::string
trimmed(std::string s)
{
    auto ws = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    };
    while (!s.empty() && ws(s.front()))
        s.erase(s.begin());
    while (!s.empty() && ws(s.back()))
        s.pop_back();
    return s;
}

std::string
readFile(const fs::path &p)
{
    std::ifstream is(p, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(std::move(cur));
    return lines;
}

/** Parse every directive out of one file's comment tokens. */
void
parseDirectives(const SourceFile &file, std::vector<Directive> &out)
{
    static const std::string marker = "silo-lint:";
    for (const Token &tok : file.tokens) {
        if (tok.kind != TokKind::Comment)
            continue;
        std::size_t pos = tok.text.find(marker);
        if (pos == std::string::npos)
            continue;
        Directive d;
        d.file = file.path;
        d.line = tok.line;
        std::string rest = trimmed(tok.text.substr(pos + marker.size()));
        if (rest.rfind("allowfile(", 0) == 0)
            d.scope = DirScope::File;
        else if (rest.rfind("allow-next-line(", 0) == 0)
            d.scope = DirScope::NextLine;
        else if (rest.rfind("allow(", 0) == 0)
            d.scope = DirScope::Line;
        else {
            d.malformed = true;
            d.problem = "expected allow(<rules>), "
                        "allow-next-line(<rules>) or "
                        "allowfile(<rules>)";
            out.push_back(std::move(d));
            continue;
        }
        std::size_t open = rest.find('(');
        std::size_t close = rest.find(')', open);
        if (close == std::string::npos) {
            d.malformed = true;
            d.problem = "unterminated rule list";
            out.push_back(std::move(d));
            continue;
        }
        // Comma-separated rule list; every entry must resolve.
        std::string list = rest.substr(open + 1, close - open - 1);
        std::size_t start = 0;
        while (start <= list.size()) {
            std::size_t comma = list.find(',', start);
            std::size_t len = comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start;
            RuleRef r;
            r.rawRule = trimmed(list.substr(start, len));
            r.rule = slugForRule(r.rawRule);
            if (r.rule.empty() && !d.malformed) {
                d.malformed = true;
                d.problem = r.rawRule.empty()
                                ? "empty rule in allow list"
                                : "unknown rule '" + r.rawRule + "'";
            }
            d.rules.push_back(std::move(r));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        d.reason = trimmed(rest.substr(close + 1));
        // Multi-line block comments: the reason is the first line.
        std::size_t nl = d.reason.find('\n');
        if (nl != std::string::npos)
            d.reason = trimmed(d.reason.substr(0, nl));
        if (!d.malformed && d.reason.empty()) {
            d.malformed = true;
            d.problem = "suppression of " +
                        (d.rules.size() == 1 ? d.rules[0].rawRule
                                             : "a rule list") +
                        " must carry a reason";
        }
        out.push_back(std::move(d));
    }
}

/**
 * R10: the directive corpus itself is linted — duplicated grants and
 * allowfile() directives buried below code are findings.
 */
void
runSuppressionHygiene(const std::vector<SourceFile> &files,
                      std::vector<Directive> &directives,
                      std::vector<Finding> &findings)
{
    // (a) allowfile() must precede the file's first code token, so a
    // whole-file allowance is visible at the top of the file.
    std::map<std::string, int> first_code;
    for (const SourceFile &f : files)
        if (!f.code.empty())
            first_code[f.path] = f.code.front().line;
    for (const Directive &d : directives) {
        if (d.malformed || d.scope != DirScope::File)
            continue;
        auto it = first_code.find(d.file);
        if (it != first_code.end() && d.line > it->second) {
            findings.push_back(
                {d.file, d.line, "R10", "suppression-hygiene",
                 "allowfile() must appear before the first code of "
                 "the file (line " + std::to_string(it->second) +
                     ") so whole-file allowances are visible up front",
                 false, ""});
        }
    }

    // (b) duplicate grants: two directives in one file granting the
    // same rule over overlapping scope. allowfile() vs a line-level
    // allow is deliberately not flagged (the narrow one documents a
    // specific site).
    auto covered = [](const Directive &d) {
        std::vector<int> lines{d.line + 1};
        if (d.scope == DirScope::Line)
            lines.push_back(d.line);
        return lines;
    };
    for (std::size_t a = 0; a < directives.size(); ++a) {
        for (std::size_t b = a + 1; b < directives.size(); ++b) {
            const Directive &x = directives[a];
            const Directive &y = directives[b];
            if (x.malformed || y.malformed || x.file != y.file)
                continue;
            bool x_file = x.scope == DirScope::File;
            bool y_file = y.scope == DirScope::File;
            bool overlap = x_file && y_file;
            if (!x_file && !y_file) {
                for (int lx : covered(x))
                    for (int ly : covered(y))
                        if (lx == ly)
                            overlap = true;
            }
            if (!overlap)
                continue;
            for (const RuleRef &rx : x.rules) {
                for (const RuleRef &ry : y.rules) {
                    if (rx.rule.empty() || rx.rule != ry.rule)
                        continue;
                    findings.push_back(
                        {y.file, y.line, "R10", "suppression-hygiene",
                         "duplicate suppression of " + ry.rawRule +
                             " — already granted by the directive at "
                             "line " + std::to_string(x.line),
                         false, ""});
                }
            }
        }
    }
}

void
collectSources(const fs::path &root, const Options &opts,
               std::vector<fs::path> &sources)
{
    auto wanted = [](const fs::path &p) {
        std::string ext = p.extension().string();
        return ext == ".cc" || ext == ".hh";
    };
    auto in_fixtures = [](const fs::path &p) {
        for (const auto &part : p)
            if (part == "fixtures")
                return true;
        return false;
    };
    if (!opts.files.empty()) {
        for (const std::string &f : opts.files)
            sources.push_back(root / f);
        return;
    }
    std::vector<fs::path> dirs;
    // tools/litmus is a simulator front end like bench/ and is held
    // to the same rules; silo-lint's own sources are not scanned (the
    // analyzer reads files and environments by trade).
    for (const char *d : {"src", "bench", "tests", "tools/litmus"})
        if (fs::is_directory(root / d))
            dirs.push_back(root / d);
    if (dirs.empty())
        dirs.push_back(root);
    for (const fs::path &dir : dirs) {
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            if (entry.is_regular_file() && wanted(entry.path()) &&
                !in_fixtures(entry.path()))
                sources.push_back(entry.path());
        }
    }
}

void
collectBuildFiles(const fs::path &root, const Options &opts,
                  std::vector<fs::path> &build_files)
{
    if (!opts.files.empty())
        return;   // explicit-file runs lint just those sources
    if (fs::is_regular_file(root / "CMakeLists.txt"))
        build_files.push_back(root / "CMakeLists.txt");
    for (const char *d : {"src", "bench", "tests", "tools"}) {
        if (!fs::is_directory(root / d))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(root / d)) {
            if (!entry.is_regular_file())
                continue;
            const fs::path &p = entry.path();
            if (p.filename() == "CMakeLists.txt" ||
                p.extension() == ".cmake")
                build_files.push_back(p);
        }
    }
}

} // namespace

Result
runLint(const Options &opts)
{
    fs::path root(opts.root);

    std::vector<fs::path> source_paths;
    collectSources(root, opts, source_paths);
    std::sort(source_paths.begin(), source_paths.end());

    std::vector<SourceFile> files;
    files.reserve(source_paths.size());
    for (const fs::path &p : source_paths) {
        SourceFile f;
        f.path = fs::relative(p, root).generic_string();
        f.tokens = lex(readFile(p));
        for (const Token &tok : f.tokens)
            if (tok.kind != TokKind::Comment)
                f.code.push_back(tok);
        files.push_back(std::move(f));
    }

    std::vector<fs::path> build_paths;
    collectBuildFiles(root, opts, build_paths);
    std::sort(build_paths.begin(), build_paths.end());
    std::vector<TextFile> build_files;
    for (const fs::path &p : build_paths) {
        build_files.push_back({fs::relative(p, root).generic_string(),
                               splitLines(readFile(p))});
    }

    std::vector<std::string> doc_names = opts.docs;
    if (opts.defaultDocs) {
        for (const char *d : {"README.md", "DESIGN.md",
                              "EXPERIMENTS.md"})
            if (fs::is_regular_file(root / d))
                doc_names.push_back(d);
    }
    std::vector<TextFile> docs;
    for (const std::string &d : doc_names)
        docs.push_back({d, splitLines(readFile(root / d))});

    std::vector<Finding> findings;
    std::vector<Directive> directives;
    for (const SourceFile &f : files) {
        runNondetIteration(f, findings);
        runAmbientEntropy(f, findings);
        runHandlerHygiene(f, findings);
        runStatsNames(f, findings);
        runCallbackLifetime(f, findings);
        runFloatDeterminism(f, findings);
        parseDirectives(f, directives);
    }
    runEnvDocParity(files, build_files, docs, findings);
    runLayering(files, findings);
    runStatsRegistration(files, findings);
    runSuppressionHygiene(files, directives, findings);

    // Apply suppressions: a directive covers findings of its listed
    // rules in its file — its own or the following line for allow(),
    // the following line for allow-next-line(), anywhere for
    // allowfile().
    for (Finding &f : findings) {
        if (f.suppressed)
            continue;   // R3 text-marker suppressions arrive pre-set
        for (Directive &d : directives) {
            if (d.malformed || d.file != f.file)
                continue;
            bool covers =
                d.scope == DirScope::File ||
                (d.scope == DirScope::Line &&
                 (d.line == f.line || d.line == f.line - 1)) ||
                (d.scope == DirScope::NextLine && d.line == f.line - 1);
            if (!covers)
                continue;
            bool matched = false;
            for (RuleRef &r : d.rules) {
                if (r.rule != f.rule)
                    continue;
                f.suppressed = true;
                f.reason = d.reason;
                r.used = true;
                matched = true;
                break;
            }
            if (matched)
                break;
        }
    }

    // Directives are themselves linted: malformed directives and
    // unmatched listed rules are findings, so the suppression surface
    // stays auditable.
    for (const Directive &d : directives) {
        if (d.malformed) {
            findings.push_back({d.file, d.line, "S0", "suppression",
                                "malformed silo-lint directive: " +
                                    d.problem,
                                false, ""});
            continue;
        }
        for (const RuleRef &r : d.rules) {
            if (r.used)
                continue;
            std::string tail =
                d.scope == DirScope::NextLine
                    ? " — nothing on the next line triggers it"
                    : " — nothing on this or the next "
                      "line triggers it";
            findings.push_back({d.file, d.line, "S0", "suppression",
                                "unused suppression for " + r.rawRule +
                                    tail,
                                false, ""});
        }
    }

    // Incremental mode: the corpus rules above saw the whole tree;
    // only findings in the changed set are reported.
    if (opts.changedOnly) {
        std::set<std::string> changed(opts.changedFiles.begin(),
                                      opts.changedFiles.end());
        findings.erase(
            std::remove_if(findings.begin(), findings.end(),
                           [&](const Finding &f) {
                               return !changed.count(f.file);
                           }),
            findings.end());
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.code, a.message) <
                         std::tie(b.file, b.line, b.code, b.message);
              });

    Result result;
    result.findings = std::move(findings);
    result.filesScanned = files.size();
    for (const Finding &f : result.findings) {
        if (f.suppressed)
            ++result.suppressed;
        else
            ++result.errors;
    }
    return result;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
toJson(const Result &result)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"silo-lint-v1\",\n";
    os << "  \"summary\": {\"files_scanned\": " << result.filesScanned
       << ", \"errors\": " << result.errors
       << ", \"suppressed\": " << result.suppressed << "},\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"file\": \"" << jsonEscape(f.file)
           << "\", \"line\": " << f.line << ", \"code\": \"" << f.code
           << "\", \"rule\": \"" << f.rule
           << "\", \"severity\": \"error\", \"suppressed\": "
           << (f.suppressed ? "true" : "false");
        if (f.suppressed)
            os << ", \"reason\": \"" << jsonEscape(f.reason) << "\"";
        os << ", \"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    os << (result.findings.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
    return os.str();
}

std::string
toSarif(const Result &result)
{
    // Rule index: the catalogue in code order, then the S0 meta rule.
    std::map<std::string, std::size_t> rule_index;
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"silo-lint\",\n"
       << "          \"rules\": [\n";
    std::size_t n = 0;
    for (const RuleInfo &r : ruleCatalogue()) {
        rule_index[r.code] = n++;
        os << "            {\"id\": \"" << r.code << "\", \"name\": \""
           << r.slug << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(r.summary) << "\"}},\n";
    }
    rule_index["S0"] = n;
    os << "            {\"id\": \"S0\", \"name\": \"suppression\", "
          "\"shortDescription\": {\"text\": \"the suppression grammar "
          "itself: malformed or unused directives\"}}\n"
       << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"columnKind\": \"utf16CodeUnits\",\n"
       << "      \"originalUriBaseIds\": {\"SRCROOT\": "
          "{\"description\": {\"text\": \"repository root\"}}},\n"
       << "      \"results\": [";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        os << (i ? ",\n" : "\n");
        os << "        {\"ruleId\": \"" << f.code
           << "\", \"ruleIndex\": " << rule_index[f.code]
           << ", \"level\": \"error\", \"message\": {\"text\": \""
           << jsonEscape(f.message) << "\"}, \"locations\": "
           << "[{\"physicalLocation\": {\"artifactLocation\": "
           << "{\"uri\": \"" << jsonEscape(f.file)
           << "\", \"uriBaseId\": \"SRCROOT\"}, \"region\": "
           << "{\"startLine\": " << std::max(f.line, 1) << "}}}]";
        if (f.suppressed) {
            os << ", \"suppressions\": [{\"kind\": \"inSource\", "
               << "\"justification\": \"" << jsonEscape(f.reason)
               << "\"}]";
        }
        os << "}";
    }
    os << (result.findings.empty() ? "]\n" : "\n      ]\n");
    os << "    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

std::string
toHuman(const Result &result, bool verbose)
{
    std::ostringstream os;
    for (const Finding &f : result.findings) {
        if (f.suppressed && !verbose)
            continue;
        os << f.file << ":" << f.line << ": "
           << (f.suppressed ? "allowed" : "error") << " [" << f.code
           << " " << f.rule << "] " << f.message;
        if (f.suppressed)
            os << " (reason: " << f.reason << ")";
        os << "\n";
    }
    os << "silo-lint: " << result.errors << " error(s), "
       << result.suppressed << " suppressed, " << result.filesScanned
       << " file(s) scanned\n";
    return os.str();
}

} // namespace silo::lint
