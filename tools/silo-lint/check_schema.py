#!/usr/bin/env python3
"""Validate a JSON document against a draft-07 schema subset.

Standard library only (no jsonschema dependency in CI): supports the
keywords the silo-lint schemas actually use — type, const, enum,
pattern, minimum, required, properties, additionalProperties, items.
Anything else in a schema is an error, not silently ignored, so the
schemas cannot quietly outgrow the validator.

Usage: check_schema.py SCHEMA.json INSTANCE.json [INSTANCE.json ...]
Exit 0 when every instance validates, 1 on the first violation, 2 on
usage or file errors.
"""

import json
import re
import sys

KNOWN_KEYWORDS = {
    "$schema", "title", "description",          # annotations
    "type", "const", "enum", "pattern", "minimum",
    "required", "properties", "additionalProperties", "items",
}

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(Exception):
    """The schema itself uses something this validator can't check."""


def check_type(value, expected, path):
    if isinstance(expected, list):
        # Draft-07 union types, e.g. ["integer", "null"] for
        # peak_rss_kib on hosts without /proc.
        for option in expected:
            if not check_type(value, option, path):
                return []
        return [f"{path}: expected one of {expected}, "
                f"got {type(value).__name__}"]
    if expected == "integer":
        # bool is an int subclass in Python; JSON says it isn't.
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif expected == "number":
        ok = (isinstance(value, (int, float))
              and not isinstance(value, bool))
    else:
        py = TYPES.get(expected)
        if py is None:
            raise SchemaError(f"unknown type '{expected}' at {path}")
        ok = isinstance(value, py)
        if expected != "boolean" and isinstance(value, bool):
            ok = False
    if not ok:
        return [f"{path}: expected {expected}, "
                f"got {type(value).__name__}"]
    return []


def validate(value, schema, path="$"):
    """Return a list of violation strings (empty when valid)."""
    unknown = set(schema) - KNOWN_KEYWORDS
    if unknown:
        raise SchemaError(
            f"schema at {path} uses unsupported keyword(s): "
            f"{', '.join(sorted(unknown))}")

    errors = []
    if "type" in schema:
        errors += check_type(value, schema["type"], path)
        if errors:
            return errors   # shape is wrong; nested checks are noise
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected constant "
                      f"{schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']!r}")
    if "pattern" in schema and isinstance(value, str):
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match "
                          f"/{schema['pattern']}/")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum "
                          f"{schema['minimum']}")
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required "
                              f"property '{key}'")
        for key, sub in props.items():
            if key in value:
                errors += validate(value[key], sub, f"{path}.{key}")
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected "
                                  f"property '{key}'")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors += validate(item, schema["items"], f"{path}[{i}]")
    return errors


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as fh:
            schema = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_schema: cannot load schema {argv[1]}: {exc}",
              file=sys.stderr)
        return 2
    status = 0
    for instance_path in argv[2:]:
        try:
            with open(instance_path, encoding="utf-8") as fh:
                instance = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"check_schema: cannot load {instance_path}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            violations = validate(instance, schema)
        except SchemaError as exc:
            print(f"check_schema: bad schema: {exc}", file=sys.stderr)
            return 2
        if violations:
            status = 1
            for v in violations:
                print(f"{instance_path}: {v}")
        else:
            print(f"{instance_path}: OK "
                  f"({argv[1].rsplit('/', 1)[-1]})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
