/**
 * @file
 * The silo-lint rule catalogue (R1–R10) and per-rule matchers.
 *
 * Each rule is a pattern matcher over the token stream of one source
 * file (R1/R2/R4/R5/R7/R8) or over the whole scanned corpus plus the
 * docs (R3/R6/R9). The semantic rules (R6–R8) additionally lean on
 * the lightweight declaration/scope layer in parse.hh. Matchers emit
 * Findings; the driver owns suppression handling (`// silo-lint:
 * allow(rule) reason`), the directive-hygiene rule R10, sorting and
 * serialization.
 *
 * DESIGN.md §4f documents what each rule enforces and why, plus the
 * recipe for adding a new rule; §4g covers the semantic layer and the
 * module DAG that R6 enforces.
 */

#ifndef SILO_LINT_RULES_HH
#define SILO_LINT_RULES_HH

#include <string>
#include <vector>

#include "silo-lint/lexer.hh"

namespace silo::lint
{

/** One diagnostic (possibly later marked suppressed by the driver). */
struct Finding
{
    std::string file;     //!< root-relative path
    int line = 0;
    std::string code;     //!< "R1".."R10", or "S0" for meta findings
    std::string rule;     //!< slug, e.g. "nondet-iteration"
    std::string message;
    bool suppressed = false;
    std::string reason;   //!< suppression reason when suppressed
};

struct RuleInfo
{
    const char *code;     //!< "R1"
    const char *slug;     //!< "nondet-iteration"
    const char *summary;  //!< one line for --list-rules
};

/** Every enforced rule, in code order. */
const std::vector<RuleInfo> &ruleCatalogue();

/** Canonical slug for @p id ("R1" or a slug); empty when unknown. */
std::string slugForRule(const std::string &id);

/** One lexed source file handed to the matchers. */
struct SourceFile
{
    std::string path;            //!< root-relative
    std::vector<Token> tokens;   //!< full stream, comments included
    std::vector<Token> code;     //!< comment-free view for matchers
};

/** A documentation or build file scanned by R3, split into lines. */
struct TextFile
{
    std::string path;
    std::vector<std::string> lines;
};

/** R1: no range-for / iterator walk over unordered containers. */
void runNondetIteration(const SourceFile &file,
                        std::vector<Finding> &out);

/** R2: no wall clock, PRNG seeds or raw getenv outside the shims. */
void runAmbientEntropy(const SourceFile &file,
                       std::vector<Finding> &out);

/** R4: EventQueue callback hygiene at schedule()/scheduleAfter(). */
void runHandlerHygiene(const SourceFile &file,
                       std::vector<Finding> &out);

/** R5: stats registration names are unique, schema-valid keys. */
void runStatsNames(const SourceFile &file, std::vector<Finding> &out);

/**
 * R3: every SILO_* env var referenced in code (string literals in the
 * scanned sources — tests included — plus any line of the build
 * files) is documented in the docs set, and every documented one
 * exists in code.
 */
void runEnvDocParity(const std::vector<SourceFile> &files,
                     const std::vector<TextFile> &build_files,
                     const std::vector<TextFile> &docs,
                     std::vector<Finding> &out);

/**
 * R6: quoted includes respect the module DAG (directories under src/
 * are layers; DESIGN.md §4g) and the file-level include graph of the
 * scanned corpus is acyclic.
 */
void runLayering(const std::vector<SourceFile> &files,
                 std::vector<Finding> &out);

/**
 * R7: no function-local or parameter captured by reference in a
 * lambda handed to schedule()/scheduleAfter() — the frame is gone by
 * dispatch time.
 */
void runCallbackLifetime(const SourceFile &file,
                         std::vector<Finding> &out);

/**
 * R8: no float/double accumulation (+=, -=) inside iteration whose
 * order is nondeterministic or worker-count-dependent: range-for over
 * unordered containers, lambdas handed to parallel*() entry points,
 * and loops bounded by a worker-count identifier.
 */
void runFloatDeterminism(const SourceFile &file,
                         std::vector<Finding> &out);

/**
 * R9: every stats::Distribution constructed under src/ is registered
 * through addDistribution() somewhere in the corpus (the path to the
 * export and its countsConsistent() gate), and every stats::StatGroup
 * constructed under src/ is populated or exported.
 */
void runStatsRegistration(const std::vector<SourceFile> &files,
                          std::vector<Finding> &out);

} // namespace silo::lint

#endif // SILO_LINT_RULES_HH
