/**
 * @file
 * The silo-lint rule catalogue (R1–R5) and per-rule matchers.
 *
 * Each rule is a pattern matcher over the token stream of one source
 * file (R1/R2/R4/R5) or over the whole scanned corpus plus the docs
 * (R3). Matchers emit Findings; the driver owns suppression handling
 * (`// silo-lint: allow(rule) reason`), sorting and serialization.
 *
 * DESIGN.md §4f documents what each rule enforces and why, plus the
 * recipe for adding a new rule.
 */

#ifndef SILO_LINT_RULES_HH
#define SILO_LINT_RULES_HH

#include <string>
#include <vector>

#include "silo-lint/lexer.hh"

namespace silo::lint
{

/** One diagnostic (possibly later marked suppressed by the driver). */
struct Finding
{
    std::string file;     //!< root-relative path
    int line = 0;
    std::string code;     //!< "R1".."R5", or "S0" for meta findings
    std::string rule;     //!< slug, e.g. "nondet-iteration"
    std::string message;
    bool suppressed = false;
    std::string reason;   //!< suppression reason when suppressed
};

struct RuleInfo
{
    const char *code;     //!< "R1"
    const char *slug;     //!< "nondet-iteration"
    const char *summary;  //!< one line for --list-rules
};

/** Every enforced rule, in code order. */
const std::vector<RuleInfo> &ruleCatalogue();

/** Canonical slug for @p id ("R1" or a slug); empty when unknown. */
std::string slugForRule(const std::string &id);

/** One lexed source file handed to the matchers. */
struct SourceFile
{
    std::string path;            //!< root-relative
    std::vector<Token> tokens;   //!< full stream, comments included
    std::vector<Token> code;     //!< comment-free view for matchers
};

/** A documentation or build file scanned by R3, split into lines. */
struct TextFile
{
    std::string path;
    std::vector<std::string> lines;
};

/** R1: no range-for / iterator walk over unordered containers. */
void runNondetIteration(const SourceFile &file,
                        std::vector<Finding> &out);

/** R2: no wall clock, PRNG seeds or raw getenv outside the shims. */
void runAmbientEntropy(const SourceFile &file,
                       std::vector<Finding> &out);

/** R4: EventQueue callback hygiene at schedule()/scheduleAfter(). */
void runHandlerHygiene(const SourceFile &file,
                       std::vector<Finding> &out);

/** R5: stats registration names are unique, schema-valid keys. */
void runStatsNames(const SourceFile &file, std::vector<Finding> &out);

/**
 * R3: every SILO_* env var referenced in code (string literals in the
 * scanned sources, plus cache options in the build files) is
 * documented in the docs set, and every documented one exists in
 * code.
 */
void runEnvDocParity(const std::vector<SourceFile> &files,
                     const std::vector<TextFile> &build_files,
                     const std::vector<TextFile> &docs,
                     std::vector<Finding> &out);

} // namespace silo::lint

#endif // SILO_LINT_RULES_HH
