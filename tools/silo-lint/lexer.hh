/**
 * @file
 * Minimal C++ tokenizer for silo-lint.
 *
 * Produces a flat token stream (identifiers, numbers, string/char
 * literals, punctuation, comments) with line numbers. It is not a
 * preprocessor or a parser: preprocessor directives lex as ordinary
 * punctuation + identifiers, which is sufficient for the pattern
 * matchers in rules.cc. Comments are kept as tokens because the
 * suppression grammar (`// silo-lint: allow(rule) reason`) lives in
 * them; string literals keep their uninterpreted body so rules can
 * scan for referenced environment variables.
 */

#ifndef SILO_LINT_LEXER_HH
#define SILO_LINT_LEXER_HH

#include <string>
#include <vector>

namespace silo::lint
{

enum class TokKind
{
    Identifier,
    Number,
    String,     //!< text = literal body without quotes/prefix
    CharLit,    //!< text = literal body without quotes
    Punct,      //!< text = the operator ("::" fused, others one char)
    Comment,    //!< text = body without the comment markers
};

struct Token
{
    TokKind kind;
    std::string text;
    int line;   //!< 1-based line of the token's first character
};

/** Tokenize @p src (one translation unit's raw bytes). */
std::vector<Token> lex(const std::string &src);

} // namespace silo::lint

#endif // SILO_LINT_LEXER_HH
