#include "silo-lint/rules.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "silo-lint/parse.hh"

namespace silo::lint
{

namespace
{

/** True for chars valid inside a SILO_* environment-variable name. */
bool
envChar(char c)
{
    return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_';
}

/** Extract every SILO_* variable name embedded in @p text. */
std::vector<std::string>
extractEnvVars(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = text.find("SILO_", pos)) != std::string::npos) {
        // Must start a fresh token: "XSILO_Y" is not a reference —
        // except the "-DSILO_X" spelling of CMake cache options.
        bool cmake_define = pos >= 2 && text[pos - 1] == 'D' &&
                            text[pos - 2] == '-';
        if (pos > 0 && !cmake_define &&
            (envChar(text[pos - 1]) ||
             (text[pos - 1] >= 'a' && text[pos - 1] <= 'z'))) {
            pos += 5;
            continue;
        }
        std::size_t end = pos + 5;
        while (end < text.size() && envChar(text[end]))
            ++end;
        if (end > pos + 5)
            out.push_back(text.substr(pos, end - pos));
        pos = end;
    }
    return out;
}

Finding
make(const SourceFile &file, int line, const char *code,
     const char *slug, std::string message)
{
    return Finding{file.path, line, code, slug, std::move(message),
                   false, ""};
}

/** Index of the matching closer for the opener at @p open. */
std::size_t
matchDelim(const std::vector<Token> &toks, std::size_t open,
           const char *opener, const char *closer)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct)
            continue;
        if (toks[i].text == opener)
            ++depth;
        else if (toks[i].text == closer && --depth == 0)
            return i;
    }
    return toks.size();
}

/**
 * Names declared with an unordered container type (the same pattern
 * R1's pass 1 uses, without its iterator-typedef findings). Shared
 * with R8.
 */
std::set<std::string>
unorderedNames(const std::vector<Token> &t)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            t[i].text.rfind("unordered_", 0) != 0)
            continue;
        std::size_t j = i + 1;
        if (j >= t.size() || t[j].text != "<")
            continue;
        int depth = 0;
        for (; j < t.size(); ++j) {
            if (t[j].kind != TokKind::Punct)
                continue;
            if (t[j].text == "<")
                ++depth;
            else if (t[j].text == ">" && --depth == 0)
                break;
        }
        ++j;
        while (j < t.size() &&
               (t[j].text == "&" || t[j].text == "*" ||
                t[j].text == "&&" || t[j].text == "const"))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Identifier)
            names.insert(t[j].text);
    }
    return names;
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalogue()
{
    static const std::vector<RuleInfo> rules = {
        {"R1", "nondet-iteration",
         "no range-for/iterator walk over unordered containers in "
         "result-affecting code"},
        {"R2", "ambient-entropy",
         "no wall clock, ambient randomness or raw getenv outside the "
         "harness shims"},
        {"R3", "env-doc-parity",
         "every SILO_* env var referenced in code is documented in "
         "README/DESIGN and vice versa"},
        {"R4", "handler-hygiene",
         "EventQueue callbacks: no default captures, no owning raw "
         "pointers, no negative delays"},
        {"R5", "stats-names",
         "stats registration names are unique per file and valid "
         "silo-stats-v1 keys"},
        {"R6", "module-layering",
         "quoted includes follow the module DAG (sim at the bottom, "
         "harness on top) and the include graph is acyclic"},
        {"R7", "callback-lifetime",
         "no function-local captured by reference in a deferred "
         "schedule()/scheduleAfter() callback"},
        {"R8", "float-determinism",
         "no float accumulation inside unordered, parallel or "
         "worker-indexed iteration"},
        {"R9", "stats-registration",
         "every Distribution/StatGroup constructed under src/ reaches "
         "the stats export (addDistribution / group use)"},
        {"R10", "suppression-hygiene",
         "suppression directives are deduplicated, correctly scoped "
         "and allowfile() precedes the first code of its file"},
    };
    return rules;
}

std::string
slugForRule(const std::string &id)
{
    for (const RuleInfo &r : ruleCatalogue()) {
        if (id == r.code || id == r.slug)
            return r.slug;
    }
    return "";
}

// --- R1: nondeterministic iteration --------------------------------

void
runNondetIteration(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    std::set<std::string> unordered_names;

    // Pass 1: names declared with an unordered container type
    // (members, locals and parameters alike — scoping is per file,
    // which is as fine-grained as this codebase needs).
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            (t[i].text != "unordered_map" &&
             t[i].text != "unordered_set" &&
             t[i].text != "unordered_multimap" &&
             t[i].text != "unordered_multiset"))
            continue;
        std::size_t j = i + 1;
        if (j >= t.size() || t[j].text != "<")
            continue;   // e.g. the #include line
        int depth = 0;
        for (; j < t.size(); ++j) {
            if (t[j].kind != TokKind::Punct)
                continue;
            if (t[j].text == "<")
                ++depth;
            else if (t[j].text == ">" && --depth == 0)
                break;
        }
        ++j;
        if (j < t.size() && t[j].text == "::" && j + 1 < t.size() &&
            (t[j + 1].text == "iterator" ||
             t[j + 1].text == "const_iterator")) {
            out.push_back(make(file, t[j + 1].line, "R1",
                               "nondet-iteration",
                               "explicit iterator over " + t[i].text +
                                   " — iteration order is "
                                   "nondeterministic"));
            continue;
        }
        while (j < t.size() &&
               (t[j].text == "&" || t[j].text == "*" ||
                t[j].text == "&&" || t[j].text == "const"))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Identifier)
            unordered_names.insert(t[j].text);
    }
    if (unordered_names.empty())
        return;

    // Pass 2a: range-for whose range expression names a tracked
    // container.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier || t[i].text != "for" ||
            t[i + 1].text != "(")
            continue;
        std::size_t close = matchDelim(t, i + 1, "(", ")");
        // The range-for ':' sits at paren depth 1 outside brackets.
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < close && !colon; ++j) {
            if (t[j].kind != TokKind::Punct)
                continue;
            const std::string &p = t[j].text;
            if (p == "(" || p == "[" || p == "{")
                ++depth;
            else if (p == ")" || p == "]" || p == "}")
                --depth;
            else if (p == ":" && depth == 1)
                colon = j;
        }
        if (!colon)
            continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (t[j].kind == TokKind::Identifier &&
                unordered_names.count(t[j].text)) {
                out.push_back(make(
                    file, t[i].line, "R1", "nondet-iteration",
                    "range-for over unordered container '" +
                        t[j].text +
                        "' — iteration order is nondeterministic"));
                break;
            }
        }
    }

    // Pass 2b: iterator walks spelled via begin()/end().
    // end()/cend()/rend() are order-neutral sentinels (find() != end()
    // is fine); only the begin family starts an ordered walk.
    static const std::set<std::string> iter_fns = {
        "begin", "cbegin", "rbegin"};
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (t[i].kind == TokKind::Identifier &&
            unordered_names.count(t[i].text) && t[i + 1].text == "." &&
            iter_fns.count(t[i + 2].text) && t[i + 3].text == "(") {
            out.push_back(make(
                file, t[i].line, "R1", "nondet-iteration",
                "iterator walk over unordered container '" + t[i].text +
                    "' via ." + t[i + 2].text + "()"));
        }
    }
}

// --- R2: wall clock / ambient entropy ------------------------------

void
runAmbientEntropy(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    static const std::map<std::string, const char *> always = {
        {"system_clock", "wall-clock read"},
        {"steady_clock", "wall-clock read"},
        {"high_resolution_clock", "wall-clock read"},
        {"clock_gettime", "wall-clock read"},
        {"gettimeofday", "wall-clock read"},
        {"random_device", "ambient entropy source"},
        {"srand", "ambient PRNG seeding"},
        {"getenv", "raw environment read (use envOr/envStrOr)"},
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier)
            continue;
        auto it = always.find(t[i].text);
        if (it != always.end()) {
            out.push_back(make(file, t[i].line, "R2", "ambient-entropy",
                               std::string(it->second) + ": '" +
                                   t[i].text +
                                   "' outside the harness shims"));
            continue;
        }
        bool called = i + 1 < t.size() && t[i + 1].text == "(";
        if (t[i].text == "rand" && called) {
            out.push_back(make(file, t[i].line, "R2", "ambient-entropy",
                               "ambient PRNG: 'rand()' outside the "
                               "harness shims"));
        }
        if (t[i].text == "time" && called) {
            bool qualified = i > 0 && t[i - 1].text == "::";
            bool null_arg =
                i + 2 < t.size() && (t[i + 2].text == "nullptr" ||
                                     t[i + 2].text == "NULL" ||
                                     t[i + 2].text == "0");
            if (qualified || null_arg) {
                out.push_back(make(file, t[i].line, "R2",
                                   "ambient-entropy",
                                   "wall-clock read: 'time()' outside "
                                   "the harness shims"));
            }
        }
    }
}

// --- R4: event-handler hygiene -------------------------------------

void
runHandlerHygiene(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            (t[i].text != "schedule" && t[i].text != "scheduleAfter") ||
            t[i + 1].text != "(")
            continue;
        std::size_t close = matchDelim(t, i + 1, "(", ")");

        // Negative first argument: a Tick/Cycles is unsigned, so a
        // negative literal or negated expression wraps to a huge
        // delay instead of failing loudly.
        if (i + 2 < close && t[i + 2].text == "-") {
            out.push_back(make(file, t[i + 2].line, "R4",
                               "handler-hygiene",
                               "negative delay passed to " + t[i].text +
                                   "() — Tick is unsigned and wraps"));
        }

        // Lambda arguments: inspect each capture list.
        for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].kind != TokKind::Punct || t[j].text != "[")
                continue;
            const std::string &prev = t[j - 1].text;
            if (prev != "(" && prev != ",")
                continue;   // subscript, not a lambda introducer
            std::size_t cap_close = matchDelim(t, j, "[", "]");
            if (cap_close >= close)
                continue;
            std::vector<const Token *> caps;
            for (std::size_t k = j + 1; k < cap_close; ++k)
                caps.push_back(&t[k]);
            auto flag = [&](int line, const std::string &msg) {
                out.push_back(make(file, line, "R4", "handler-hygiene",
                                   msg));
            };
            if (!caps.empty() &&
                (caps[0]->text == "&" || caps[0]->text == "=") &&
                (caps.size() == 1 || caps[1]->text == ",")) {
                flag(caps[0]->line,
                     "default capture [" + caps[0]->text +
                         "...] in a deferred event callback — capture "
                         "explicitly so lifetimes are auditable");
            }
            for (std::size_t k = 0; k < caps.size(); ++k) {
                if (caps[k]->kind != TokKind::Identifier)
                    continue;
                if (caps[k]->text == "new") {
                    flag(caps[k]->line,
                         "owning raw pointer allocated in an event-"
                         "callback capture — leaks if the event never "
                         "runs (queue reset/crash injection)");
                } else if (caps[k]->text == "release" &&
                           k + 1 < caps.size() &&
                           caps[k + 1]->text == "(") {
                    flag(caps[k]->line,
                         "release() in an event-callback capture "
                         "transfers raw ownership into the queue — "
                         "leaks if the event never runs");
                }
            }
            j = cap_close;
        }
        i = close;
    }
}

// --- R5: stats registration names ----------------------------------

void
runStatsNames(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    std::map<std::string, int> seen;   // stat name -> first line
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier || t[i].text != "stats" ||
            t[i + 1].text != "::")
            continue;
        const std::string &type = t[i + 2].text;
        bool named_stat = type == "Scalar" || type == "Average" ||
                          type == "Distribution";
        if (!named_stat && type != "StatGroup")
            continue;
        std::size_t j = i + 3;
        while (j < t.size() && (t[j].text == "&" || t[j].text == "*"))
            ++j;
        if (j + 2 >= t.size() || t[j].kind != TokKind::Identifier)
            continue;   // not a declaration with an initializer
        if (t[j + 1].text != "{" && t[j + 1].text != "(")
            continue;
        if (t[j + 2].kind != TokKind::String)
            continue;
        const std::string &name = t[j + 2].text;
        int line = t[j + 2].line;
        bool valid = !name.empty() && name[0] >= 'a' && name[0] <= 'z';
        for (char c : name) {
            if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_'))
                valid = false;
        }
        if (!valid) {
            out.push_back(make(
                file, line, "R5", "stats-names",
                "stat name \"" + name +
                    "\" is not a valid silo-stats-v1 key "
                    "([a-z][a-z0-9_]*)"));
        }
        if (named_stat) {
            auto [it, inserted] = seen.emplace(name, line);
            if (!inserted) {
                out.push_back(make(
                    file, line, "R5", "stats-names",
                    "duplicate stat name \"" + name +
                        "\" (first registered at line " +
                        std::to_string(it->second) +
                        ") — the JSON export would collapse them"));
            }
        }
    }
}

// --- R3: env var <-> documentation parity --------------------------

namespace
{

/** First (file, line) reference of each variable. */
using RefMap = std::map<std::string, std::pair<std::string, int>>;

void
note(RefMap &refs, const std::string &var, const std::string &file,
     int line)
{
    auto it = refs.find(var);
    if (it == refs.end()) {
        refs.emplace(var, std::make_pair(file, line));
        return;
    }
    if (std::make_pair(file, line) < it->second)
        it->second = {file, line};
}

/**
 * Inline suppression for text files (docs and build scripts), where
 * the C++ comment grammar does not apply: the marker
 * `silo-lint: allow(env-doc-parity) reason` on the finding's line or
 * the line above. @return true (and fills @p reason) when present.
 */
bool
textSuppressed(const TextFile &f, int line, std::string &reason)
{
    static const std::string marker = "silo-lint: allow(env-doc-parity)";
    for (int l : {line, line - 1}) {
        if (l < 1 || std::size_t(l) > f.lines.size())
            continue;
        std::size_t pos = f.lines[l - 1].find(marker);
        if (pos == std::string::npos)
            continue;
        reason = f.lines[l - 1].substr(pos + marker.size());
        // Trim delimiters a comment closer may leave behind.
        while (!reason.empty() &&
               (reason.front() == ' ' || reason.front() == '\t'))
            reason.erase(reason.begin());
        std::size_t close = reason.find("-->");
        if (close != std::string::npos)
            reason = reason.substr(0, close);
        while (!reason.empty() &&
               (reason.back() == ' ' || reason.back() == '\t'))
            reason.pop_back();
        return true;
    }
    return false;
}

} // namespace

void
runEnvDocParity(const std::vector<SourceFile> &files,
                const std::vector<TextFile> &build_files,
                const std::vector<TextFile> &docs,
                std::vector<Finding> &out)
{
    if (docs.empty())
        return;   // nothing to check parity against

    RefMap code_refs;
    for (const SourceFile &f : files) {
        for (const Token &tok : f.code) {
            if (tok.kind != TokKind::String)
                continue;
            for (const std::string &var : extractEnvVars(tok.text))
                note(code_refs, var, f.path, tok.line);
        }
    }
    // Build-system knobs (option()/CACHE variables) count as code:
    // SILO_SANITIZE and SILO_WERROR are user-facing like env vars.
    // Other SILO_* tokens in build files are internal CMake list
    // variables (SILO_SOURCES, ...), not user-facing knobs — skip them.
    for (const TextFile &f : build_files) {
        for (std::size_t l = 0; l < f.lines.size(); ++l) {
            const std::string &ln = f.lines[l];
            if (ln.find("option(") == std::string::npos &&
                ln.find("CACHE") == std::string::npos)
                continue;
            for (const std::string &var : extractEnvVars(ln))
                note(code_refs, var, f.path, int(l + 1));
        }
    }

    RefMap doc_refs;
    for (const TextFile &f : docs) {
        for (std::size_t l = 0; l < f.lines.size(); ++l) {
            for (const std::string &var : extractEnvVars(f.lines[l]))
                note(doc_refs, var, f.path, int(l + 1));
        }
    }

    std::string doc_names;
    for (const TextFile &f : docs)
        doc_names += (doc_names.empty() ? "" : "/") + f.path;

    for (const auto &[var, site] : code_refs) {
        if (doc_refs.count(var))
            continue;
        Finding f{site.first, site.second, "R3", "env-doc-parity",
                  "env var " + var + " is referenced here but not "
                  "documented in " + doc_names, false, ""};
        // Build-file sites use the text-marker suppression; source
        // files go through the driver's comment-based mechanism.
        for (const TextFile &bf : build_files) {
            std::string reason;
            if (bf.path == site.first &&
                textSuppressed(bf, site.second, reason)) {
                f.suppressed = true;
                f.reason = reason;
            }
        }
        out.push_back(std::move(f));
    }
    for (const auto &[var, site] : doc_refs) {
        if (code_refs.count(var))
            continue;
        Finding f{site.first, site.second, "R3", "env-doc-parity",
                  "env var " + var + " is documented here but never "
                  "referenced in the scanned sources", false, ""};
        for (const TextFile &df : docs) {
            std::string reason;
            if (df.path == site.first &&
                textSuppressed(df, site.second, reason)) {
                f.suppressed = true;
                f.reason = reason;
            }
        }
        out.push_back(std::move(f));
    }
}

// --- R6: module layering / include cycles --------------------------

namespace
{

/**
 * Layer of @p path: the directory directly under src/, "src" for
 * files at the src/ root (umbrella headers), empty — unconstrained —
 * outside src/ (tests, bench, tools and fixtures may include
 * anything).
 */
std::string
moduleOf(const std::string &path)
{
    if (path.rfind("src/", 0) != 0)
        return "";
    std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos)
        return "src";
    return path.substr(4, slash - 4);
}

/**
 * The directed module DAG (DESIGN.md §4g): for each layer, the set of
 * layers it may include. sim is the bottom; the memory system stacks
 * nvm < mc < mem; the scheme layers log < silo sit on the memory
 * system; core drives schemes with workloads; check observes
 * everything below it through sim-level interfaces; harness sits on
 * all of them, and fuzz (the litmus fuzzer, which drives whole sweeps)
 * plus the src/ root umbrella are the top.
 */
const std::map<std::string, std::set<std::string>> &
allowedLayers()
{
    static const std::map<std::string, std::set<std::string>> table = {
        {"sim", {"sim"}},
        {"workload", {"sim", "workload"}},
        {"energy", {"energy", "sim"}},
        {"nvm", {"nvm", "sim"}},
        {"mc", {"mc", "nvm", "sim"}},
        {"mem", {"mc", "mem", "nvm", "sim"}},
        {"log", {"log", "mc", "mem", "nvm", "sim"}},
        {"silo", {"log", "mc", "mem", "nvm", "silo", "sim"}},
        {"core", {"core", "log", "mc", "mem", "nvm", "sim",
                  "workload"}},
        {"check", {"check", "core", "energy", "log", "mc", "mem",
                   "nvm", "silo", "sim", "workload"}},
        {"harness", {"check", "core", "energy", "harness", "log",
                     "mc", "mem", "nvm", "silo", "sim", "src",
                     "workload"}},
        {"fuzz", {"check", "core", "energy", "fuzz", "harness", "log",
                  "mc", "mem", "nvm", "silo", "sim", "src",
                  "workload"}},
        {"src", {"check", "core", "energy", "fuzz", "harness", "log",
                 "mc", "mem", "nvm", "silo", "sim", "src",
                 "workload"}},
    };
    return table;
}

std::string
joinSet(const std::set<std::string> &s)
{
    std::string out;
    for (const std::string &e : s)
        out += (out.empty() ? "" : ", ") + e;
    return out;
}

} // namespace

void
runLayering(const std::vector<SourceFile> &files,
            std::vector<Finding> &out)
{
    std::set<std::string> known;
    for (const SourceFile &f : files)
        known.insert(f.path);

    // Resolve an include the way the build's include dirs do: against
    // src/, the including file's directory, tools/, then the root.
    // Only paths inside the scanned corpus resolve (everything else
    // is a system or third-party header the DAG does not constrain).
    auto resolve = [&](const std::string &from,
                       const std::string &inc) -> std::string {
        if (known.count("src/" + inc))
            return "src/" + inc;
        std::size_t slash = from.find_last_of('/');
        if (slash != std::string::npos) {
            std::string sibling = from.substr(0, slash + 1) + inc;
            if (known.count(sibling))
                return sibling;
        }
        if (known.count("tools/" + inc))
            return "tools/" + inc;
        if (known.count(inc))
            return inc;
        return "";
    };

    struct Edge
    {
        std::string to;
        int line;
    };
    std::map<std::string, std::vector<Edge>> graph;

    for (const SourceFile &f : files) {
        std::string from_mod = moduleOf(f.path);
        auto allowed = allowedLayers().find(from_mod);
        for (const IncludeDirective &inc : collectIncludes(f)) {
            std::string target = resolve(f.path, inc.target);
            if (!target.empty())
                graph[f.path].push_back({target, inc.line});
            std::string to_mod;
            if (!target.empty()) {
                to_mod = moduleOf(target);
            } else {
                // Unresolved (partial corpus, e.g. fixtures): the
                // leading path component still names the layer.
                std::size_t slash = inc.target.find('/');
                if (slash != std::string::npos &&
                    allowedLayers().count(inc.target.substr(0, slash)))
                    to_mod = inc.target.substr(0, slash);
            }
            if (from_mod.empty() || to_mod.empty() ||
                allowed == allowedLayers().end())
                continue;   // unconstrained or unknown (new) layer
            if (!allowed->second.count(to_mod)) {
                out.push_back(make(
                    f, inc.line, "R6", "module-layering",
                    "'src/" + from_mod + "' may not include \"" +
                        inc.target + "\" — the module DAG "
                        "(DESIGN.md §4g) allows " + from_mod +
                        " -> {" + joinSet(allowed->second) + "}"));
            }
        }
    }

    // File-level include cycles. Include guards hide them from the
    // compiler and the layer table misses same-module ones; one
    // finding per distinct cycle, at the edge that closes it.
    std::set<std::string> done;
    std::set<std::string> on_stack;
    std::set<std::string> reported;
    std::vector<std::string> stack;
    std::function<void(const std::string &)> dfs =
        [&](const std::string &node) {
            stack.push_back(node);
            on_stack.insert(node);
            for (const Edge &e : graph[node]) {
                if (on_stack.count(e.to)) {
                    auto it = std::find(stack.begin(), stack.end(),
                                        e.to);
                    std::set<std::string> key_set(it, stack.end());
                    if (reported.insert(joinSet(key_set)).second) {
                        std::string path;
                        for (auto p = it; p != stack.end(); ++p)
                            path += *p + " -> ";
                        path += e.to;
                        out.push_back({node, e.line, "R6",
                                       "module-layering",
                                       "include cycle: " + path,
                                       false, ""});
                    }
                    continue;
                }
                if (!done.count(e.to))
                    dfs(e.to);
            }
            on_stack.erase(node);
            stack.pop_back();
            done.insert(node);
        };
    for (const SourceFile &f : files)
        if (!done.count(f.path))
            dfs(f.path);
}

// --- R7: callback lifetime -----------------------------------------

void
runCallbackLifetime(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    ScopeModel scopes(file);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            (t[i].text != "schedule" && t[i].text != "scheduleAfter") ||
            t[i + 1].text != "(")
            continue;
        std::size_t close = matchDelim(t, i + 1, "(", ")");
        for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].kind != TokKind::Punct || t[j].text != "[")
                continue;
            const std::string &prev = t[j - 1].text;
            if (prev != "(" && prev != ",")
                continue;   // subscript, not a lambda introducer
            std::size_t cap_close = matchDelim(t, j, "[", "]");
            if (cap_close >= close)
                continue;
            for (std::size_t k = j + 1; k + 1 < cap_close + 1; ++k) {
                if (k >= cap_close)
                    break;
                if (t[k].kind != TokKind::Punct || t[k].text != "&" ||
                    k + 1 >= cap_close ||
                    t[k + 1].kind != TokKind::Identifier)
                    continue;
                const std::string &name = t[k + 1].text;
                if (!scopes.isLocalAt(j, name))
                    continue;
                out.push_back(make(
                    file, t[k + 1].line, "R7", "callback-lifetime",
                    "deferred " + t[i].text +
                        "() callback captures local '" + name +
                        "' by reference — the enclosing frame can be "
                        "gone when the event dispatches; capture by "
                        "value or through an owning object"));
            }
            j = cap_close;
        }
        i = close;
    }
}

// --- R8: float accumulation under nondeterministic order -----------

void
runFloatDeterminism(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    std::set<std::string> floats = collectFloatNames(file);
    if (floats.empty())
        return;
    std::set<std::string> unordered = unorderedNames(t);
    static const std::set<std::string> worker_ids = {
        "jobs",        "njobs",     "num_jobs",    "workers",
        "nworkers",    "num_workers", "threads",   "nthreads",
        "num_threads", "worker_count"};

    struct Span
    {
        std::size_t begin, end;
        std::string what;
    };
    std::vector<Span> spans;

    // Loop body: the following brace block, or the statement up to
    // the next top-level ';'.
    auto bodySpan = [&](std::size_t after)
        -> std::pair<std::size_t, std::size_t> {
        if (after < t.size() && t[after].kind == TokKind::Punct &&
            t[after].text == "{")
            return {after + 1, matchDelim(t, after, "{", "}")};
        std::size_t k = after;
        int depth = 0;
        for (; k < t.size(); ++k) {
            if (t[k].kind != TokKind::Punct)
                continue;
            const std::string &p = t[k].text;
            if (p == "(" || p == "{" || p == "[")
                ++depth;
            else if (p == ")" || p == "}" || p == "]")
                --depth;
            else if (p == ";" && depth == 0)
                break;
        }
        return {after, k};
    };

    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier)
            continue;
        if (t[i].text == "for" && t[i + 1].text == "(") {
            std::size_t close = matchDelim(t, i + 1, "(", ")");
            int depth = 0;
            std::size_t colon = 0;
            for (std::size_t j = i + 1; j < close && !colon; ++j) {
                if (t[j].kind != TokKind::Punct)
                    continue;
                const std::string &p = t[j].text;
                if (p == "(" || p == "[" || p == "{")
                    ++depth;
                else if (p == ")" || p == "]" || p == "}")
                    --depth;
                else if (p == ":" && depth == 1)
                    colon = j;
            }
            std::string what;
            if (colon) {
                for (std::size_t j = colon + 1; j < close; ++j) {
                    if (t[j].kind == TokKind::Identifier &&
                        unordered.count(t[j].text)) {
                        what = "a range-for over unordered container "
                               "'" + t[j].text + "'";
                        break;
                    }
                }
            } else {
                for (std::size_t j = i + 2; j < close; ++j) {
                    if (t[j].kind == TokKind::Identifier &&
                        worker_ids.count(t[j].text)) {
                        what = "a loop bounded by worker count '" +
                               t[j].text + "'";
                        break;
                    }
                }
            }
            if (!what.empty()) {
                auto [b, e] = bodySpan(close + 1);
                spans.push_back({b, e, std::move(what)});
            }
            continue;
        }
        if (t[i].text.rfind("parallel", 0) == 0 &&
            t[i + 1].text == "(") {
            std::size_t close = matchDelim(t, i + 1, "(", ")");
            spans.push_back({i + 2, close,
                             "a lambda passed to '" + t[i].text + "'"});
        }
    }

    std::set<std::pair<int, std::string>> emitted;
    for (const Span &s : spans) {
        for (std::size_t k = s.begin;
             k < s.end && k + 2 < t.size(); ++k) {
            if (t[k].kind != TokKind::Identifier ||
                !floats.count(t[k].text))
                continue;
            bool plus = t[k + 1].text == "+" && t[k + 2].text == "=";
            bool minus = t[k + 1].text == "-" && t[k + 2].text == "=";
            if (!plus && !minus)
                continue;
            if (!emitted.insert({t[k].line, t[k].text}).second)
                continue;   // nested spans: report once
            out.push_back(make(
                file, t[k].line, "R8", "float-determinism",
                "float accumulation '" + t[k].text +
                    (plus ? " +=" : " -=") + "' inside " + s.what +
                    " — the summation order is nondeterministic and "
                    "floating-point addition is not associative"));
        }
    }
}

// --- R9: stats registration parity ---------------------------------

void
runStatsRegistration(const std::vector<SourceFile> &files,
                     std::vector<Finding> &out)
{
    struct Decl
    {
        std::string file;
        int line;
        std::string name;
        bool group;
    };
    std::vector<Decl> decls;
    std::set<std::string> registered;   // addDistribution() arguments
    std::set<std::string> used;         // identifiers in use position

    for (const SourceFile &f : files) {
        const std::vector<Token> &t = f.code;
        bool in_src = f.path.rfind("src/", 0) == 0;
        for (std::size_t i = 0; i + 2 < t.size(); ++i) {
            if (t[i].kind == TokKind::Identifier &&
                t[i].text == "stats" && t[i + 1].text == "::" &&
                (t[i + 2].text == "Distribution" ||
                 t[i + 2].text == "StatGroup")) {
                bool group = t[i + 2].text == "StatGroup";
                std::size_t j = i + 3;
                if (j + 1 >= t.size() || t[j].text == "&" ||
                    t[j].text == "*")
                    continue;   // reference/pointer: use, not ctor
                if (t[j].kind != TokKind::Identifier)
                    continue;
                const std::string &next = t[j + 1].text;
                bool ctor = next == "{" || next == ";" || next == "=" ||
                            (next == "(" && j + 2 < t.size() &&
                             t[j + 2].kind == TokKind::String);
                if (in_src && ctor)
                    decls.push_back(
                        {f.path, t[j].line, t[j].text, group});
                continue;
            }
            if (t[i].kind == TokKind::Identifier &&
                t[i].text == "addDistribution" &&
                t[i + 1].text == "(") {
                std::size_t close = matchDelim(t, i + 1, "(", ")");
                for (std::size_t k = i + 2;
                     k < close && k < t.size(); ++k)
                    if (t[k].kind == TokKind::Identifier)
                        registered.insert(t[k].text);
            }
        }
        for (std::size_t i = 1; i + 1 < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier)
                continue;
            const Token &prev = t[i - 1];
            bool use =
                t[i + 1].text == "." ||
                (prev.kind == TokKind::Punct &&
                 (prev.text == "(" || prev.text == "," ||
                  prev.text == "&")) ||
                (prev.kind == TokKind::Identifier &&
                 prev.text == "return");
            if (use)
                used.insert(t[i].text);
        }
    }

    for (const Decl &d : decls) {
        if (!d.group && !registered.count(d.name)) {
            out.push_back({d.file, d.line, "R9", "stats-registration",
                           "stats::Distribution '" + d.name +
                               "' is constructed but never passed to "
                               "addDistribution() — it misses the "
                               "silo-stats-v1 export and its "
                               "countsConsistent() gate",
                           false, ""});
        } else if (d.group && !used.count(d.name)) {
            out.push_back({d.file, d.line, "R9", "stats-registration",
                           "stats::StatGroup '" + d.name +
                               "' is constructed but never populated "
                               "or exported",
                           false, ""});
        }
    }
}

} // namespace silo::lint
