#include "silo-lint/rules.hh"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace silo::lint
{

namespace
{

/** True for chars valid inside a SILO_* environment-variable name. */
bool
envChar(char c)
{
    return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_';
}

/** Extract every SILO_* variable name embedded in @p text. */
std::vector<std::string>
extractEnvVars(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = text.find("SILO_", pos)) != std::string::npos) {
        // Must start a fresh token: "XSILO_Y" is not a reference —
        // except the "-DSILO_X" spelling of CMake cache options.
        bool cmake_define = pos >= 2 && text[pos - 1] == 'D' &&
                            text[pos - 2] == '-';
        if (pos > 0 && !cmake_define &&
            (envChar(text[pos - 1]) ||
             (text[pos - 1] >= 'a' && text[pos - 1] <= 'z'))) {
            pos += 5;
            continue;
        }
        std::size_t end = pos + 5;
        while (end < text.size() && envChar(text[end]))
            ++end;
        if (end > pos + 5)
            out.push_back(text.substr(pos, end - pos));
        pos = end;
    }
    return out;
}

Finding
make(const SourceFile &file, int line, const char *code,
     const char *slug, std::string message)
{
    return Finding{file.path, line, code, slug, std::move(message),
                   false, ""};
}

/** Index of the matching closer for the opener at @p open. */
std::size_t
matchDelim(const std::vector<Token> &toks, std::size_t open,
           const char *opener, const char *closer)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct)
            continue;
        if (toks[i].text == opener)
            ++depth;
        else if (toks[i].text == closer && --depth == 0)
            return i;
    }
    return toks.size();
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalogue()
{
    static const std::vector<RuleInfo> rules = {
        {"R1", "nondet-iteration",
         "no range-for/iterator walk over unordered containers in "
         "result-affecting code"},
        {"R2", "ambient-entropy",
         "no wall clock, ambient randomness or raw getenv outside the "
         "harness shims"},
        {"R3", "env-doc-parity",
         "every SILO_* env var referenced in code is documented in "
         "README/DESIGN and vice versa"},
        {"R4", "handler-hygiene",
         "EventQueue callbacks: no default captures, no owning raw "
         "pointers, no negative delays"},
        {"R5", "stats-names",
         "stats registration names are unique per file and valid "
         "silo-stats-v1 keys"},
    };
    return rules;
}

std::string
slugForRule(const std::string &id)
{
    for (const RuleInfo &r : ruleCatalogue()) {
        if (id == r.code || id == r.slug)
            return r.slug;
    }
    return "";
}

// --- R1: nondeterministic iteration --------------------------------

void
runNondetIteration(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    std::set<std::string> unordered_names;

    // Pass 1: names declared with an unordered container type
    // (members, locals and parameters alike — scoping is per file,
    // which is as fine-grained as this codebase needs).
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            (t[i].text != "unordered_map" &&
             t[i].text != "unordered_set" &&
             t[i].text != "unordered_multimap" &&
             t[i].text != "unordered_multiset"))
            continue;
        std::size_t j = i + 1;
        if (j >= t.size() || t[j].text != "<")
            continue;   // e.g. the #include line
        int depth = 0;
        for (; j < t.size(); ++j) {
            if (t[j].kind != TokKind::Punct)
                continue;
            if (t[j].text == "<")
                ++depth;
            else if (t[j].text == ">" && --depth == 0)
                break;
        }
        ++j;
        if (j < t.size() && t[j].text == "::" && j + 1 < t.size() &&
            (t[j + 1].text == "iterator" ||
             t[j + 1].text == "const_iterator")) {
            out.push_back(make(file, t[j + 1].line, "R1",
                               "nondet-iteration",
                               "explicit iterator over " + t[i].text +
                                   " — iteration order is "
                                   "nondeterministic"));
            continue;
        }
        while (j < t.size() &&
               (t[j].text == "&" || t[j].text == "*" ||
                t[j].text == "&&" || t[j].text == "const"))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Identifier)
            unordered_names.insert(t[j].text);
    }
    if (unordered_names.empty())
        return;

    // Pass 2a: range-for whose range expression names a tracked
    // container.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier || t[i].text != "for" ||
            t[i + 1].text != "(")
            continue;
        std::size_t close = matchDelim(t, i + 1, "(", ")");
        // The range-for ':' sits at paren depth 1 outside brackets.
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < close && !colon; ++j) {
            if (t[j].kind != TokKind::Punct)
                continue;
            const std::string &p = t[j].text;
            if (p == "(" || p == "[" || p == "{")
                ++depth;
            else if (p == ")" || p == "]" || p == "}")
                --depth;
            else if (p == ":" && depth == 1)
                colon = j;
        }
        if (!colon)
            continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (t[j].kind == TokKind::Identifier &&
                unordered_names.count(t[j].text)) {
                out.push_back(make(
                    file, t[i].line, "R1", "nondet-iteration",
                    "range-for over unordered container '" +
                        t[j].text +
                        "' — iteration order is nondeterministic"));
                break;
            }
        }
    }

    // Pass 2b: iterator walks spelled via begin()/end().
    // end()/cend()/rend() are order-neutral sentinels (find() != end()
    // is fine); only the begin family starts an ordered walk.
    static const std::set<std::string> iter_fns = {
        "begin", "cbegin", "rbegin"};
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (t[i].kind == TokKind::Identifier &&
            unordered_names.count(t[i].text) && t[i + 1].text == "." &&
            iter_fns.count(t[i + 2].text) && t[i + 3].text == "(") {
            out.push_back(make(
                file, t[i].line, "R1", "nondet-iteration",
                "iterator walk over unordered container '" + t[i].text +
                    "' via ." + t[i + 2].text + "()"));
        }
    }
}

// --- R2: wall clock / ambient entropy ------------------------------

void
runAmbientEntropy(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    static const std::map<std::string, const char *> always = {
        {"system_clock", "wall-clock read"},
        {"steady_clock", "wall-clock read"},
        {"high_resolution_clock", "wall-clock read"},
        {"clock_gettime", "wall-clock read"},
        {"gettimeofday", "wall-clock read"},
        {"random_device", "ambient entropy source"},
        {"srand", "ambient PRNG seeding"},
        {"getenv", "raw environment read (use envOr/envStrOr)"},
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier)
            continue;
        auto it = always.find(t[i].text);
        if (it != always.end()) {
            out.push_back(make(file, t[i].line, "R2", "ambient-entropy",
                               std::string(it->second) + ": '" +
                                   t[i].text +
                                   "' outside the harness shims"));
            continue;
        }
        bool called = i + 1 < t.size() && t[i + 1].text == "(";
        if (t[i].text == "rand" && called) {
            out.push_back(make(file, t[i].line, "R2", "ambient-entropy",
                               "ambient PRNG: 'rand()' outside the "
                               "harness shims"));
        }
        if (t[i].text == "time" && called) {
            bool qualified = i > 0 && t[i - 1].text == "::";
            bool null_arg =
                i + 2 < t.size() && (t[i + 2].text == "nullptr" ||
                                     t[i + 2].text == "NULL" ||
                                     t[i + 2].text == "0");
            if (qualified || null_arg) {
                out.push_back(make(file, t[i].line, "R2",
                                   "ambient-entropy",
                                   "wall-clock read: 'time()' outside "
                                   "the harness shims"));
            }
        }
    }
}

// --- R4: event-handler hygiene -------------------------------------

void
runHandlerHygiene(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            (t[i].text != "schedule" && t[i].text != "scheduleAfter") ||
            t[i + 1].text != "(")
            continue;
        std::size_t close = matchDelim(t, i + 1, "(", ")");

        // Negative first argument: a Tick/Cycles is unsigned, so a
        // negative literal or negated expression wraps to a huge
        // delay instead of failing loudly.
        if (i + 2 < close && t[i + 2].text == "-") {
            out.push_back(make(file, t[i + 2].line, "R4",
                               "handler-hygiene",
                               "negative delay passed to " + t[i].text +
                                   "() — Tick is unsigned and wraps"));
        }

        // Lambda arguments: inspect each capture list.
        for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].kind != TokKind::Punct || t[j].text != "[")
                continue;
            const std::string &prev = t[j - 1].text;
            if (prev != "(" && prev != ",")
                continue;   // subscript, not a lambda introducer
            std::size_t cap_close = matchDelim(t, j, "[", "]");
            if (cap_close >= close)
                continue;
            std::vector<const Token *> caps;
            for (std::size_t k = j + 1; k < cap_close; ++k)
                caps.push_back(&t[k]);
            auto flag = [&](int line, const std::string &msg) {
                out.push_back(make(file, line, "R4", "handler-hygiene",
                                   msg));
            };
            if (!caps.empty() &&
                (caps[0]->text == "&" || caps[0]->text == "=") &&
                (caps.size() == 1 || caps[1]->text == ",")) {
                flag(caps[0]->line,
                     "default capture [" + caps[0]->text +
                         "...] in a deferred event callback — capture "
                         "explicitly so lifetimes are auditable");
            }
            for (std::size_t k = 0; k < caps.size(); ++k) {
                if (caps[k]->kind != TokKind::Identifier)
                    continue;
                if (caps[k]->text == "new") {
                    flag(caps[k]->line,
                         "owning raw pointer allocated in an event-"
                         "callback capture — leaks if the event never "
                         "runs (queue reset/crash injection)");
                } else if (caps[k]->text == "release" &&
                           k + 1 < caps.size() &&
                           caps[k + 1]->text == "(") {
                    flag(caps[k]->line,
                         "release() in an event-callback capture "
                         "transfers raw ownership into the queue — "
                         "leaks if the event never runs");
                }
            }
            j = cap_close;
        }
        i = close;
    }
}

// --- R5: stats registration names ----------------------------------

void
runStatsNames(const SourceFile &file, std::vector<Finding> &out)
{
    const std::vector<Token> &t = file.code;
    std::map<std::string, int> seen;   // stat name -> first line
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier || t[i].text != "stats" ||
            t[i + 1].text != "::")
            continue;
        const std::string &type = t[i + 2].text;
        bool named_stat = type == "Scalar" || type == "Average" ||
                          type == "Distribution";
        if (!named_stat && type != "StatGroup")
            continue;
        std::size_t j = i + 3;
        while (j < t.size() && (t[j].text == "&" || t[j].text == "*"))
            ++j;
        if (j + 2 >= t.size() || t[j].kind != TokKind::Identifier)
            continue;   // not a declaration with an initializer
        if (t[j + 1].text != "{" && t[j + 1].text != "(")
            continue;
        if (t[j + 2].kind != TokKind::String)
            continue;
        const std::string &name = t[j + 2].text;
        int line = t[j + 2].line;
        bool valid = !name.empty() && name[0] >= 'a' && name[0] <= 'z';
        for (char c : name) {
            if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_'))
                valid = false;
        }
        if (!valid) {
            out.push_back(make(
                file, line, "R5", "stats-names",
                "stat name \"" + name +
                    "\" is not a valid silo-stats-v1 key "
                    "([a-z][a-z0-9_]*)"));
        }
        if (named_stat) {
            auto [it, inserted] = seen.emplace(name, line);
            if (!inserted) {
                out.push_back(make(
                    file, line, "R5", "stats-names",
                    "duplicate stat name \"" + name +
                        "\" (first registered at line " +
                        std::to_string(it->second) +
                        ") — the JSON export would collapse them"));
            }
        }
    }
}

// --- R3: env var <-> documentation parity --------------------------

namespace
{

/** First (file, line) reference of each variable. */
using RefMap = std::map<std::string, std::pair<std::string, int>>;

void
note(RefMap &refs, const std::string &var, const std::string &file,
     int line)
{
    auto it = refs.find(var);
    if (it == refs.end()) {
        refs.emplace(var, std::make_pair(file, line));
        return;
    }
    if (std::make_pair(file, line) < it->second)
        it->second = {file, line};
}

/**
 * Inline suppression for text files (docs and build scripts), where
 * the C++ comment grammar does not apply: the marker
 * `silo-lint: allow(env-doc-parity) reason` on the finding's line or
 * the line above. @return true (and fills @p reason) when present.
 */
bool
textSuppressed(const TextFile &f, int line, std::string &reason)
{
    static const std::string marker = "silo-lint: allow(env-doc-parity)";
    for (int l : {line, line - 1}) {
        if (l < 1 || std::size_t(l) > f.lines.size())
            continue;
        std::size_t pos = f.lines[l - 1].find(marker);
        if (pos == std::string::npos)
            continue;
        reason = f.lines[l - 1].substr(pos + marker.size());
        // Trim delimiters a comment closer may leave behind.
        while (!reason.empty() &&
               (reason.front() == ' ' || reason.front() == '\t'))
            reason.erase(reason.begin());
        std::size_t close = reason.find("-->");
        if (close != std::string::npos)
            reason = reason.substr(0, close);
        while (!reason.empty() &&
               (reason.back() == ' ' || reason.back() == '\t'))
            reason.pop_back();
        return true;
    }
    return false;
}

} // namespace

void
runEnvDocParity(const std::vector<SourceFile> &files,
                const std::vector<TextFile> &build_files,
                const std::vector<TextFile> &docs,
                std::vector<Finding> &out)
{
    if (docs.empty())
        return;   // nothing to check parity against

    RefMap code_refs;
    for (const SourceFile &f : files) {
        for (const Token &tok : f.code) {
            if (tok.kind != TokKind::String)
                continue;
            for (const std::string &var : extractEnvVars(tok.text))
                note(code_refs, var, f.path, tok.line);
        }
    }
    // Build-system knobs (option()/CACHE variables) count as code:
    // SILO_SANITIZE and SILO_WERROR are user-facing like env vars.
    for (const TextFile &f : build_files) {
        for (std::size_t l = 0; l < f.lines.size(); ++l) {
            const std::string &ln = f.lines[l];
            if (ln.find("option(") == std::string::npos &&
                ln.find("CACHE") == std::string::npos)
                continue;
            for (const std::string &var : extractEnvVars(ln))
                note(code_refs, var, f.path, int(l + 1));
        }
    }

    RefMap doc_refs;
    for (const TextFile &f : docs) {
        for (std::size_t l = 0; l < f.lines.size(); ++l) {
            for (const std::string &var : extractEnvVars(f.lines[l]))
                note(doc_refs, var, f.path, int(l + 1));
        }
    }

    std::string doc_names;
    for (const TextFile &f : docs)
        doc_names += (doc_names.empty() ? "" : "/") + f.path;

    for (const auto &[var, site] : code_refs) {
        if (doc_refs.count(var))
            continue;
        Finding f{site.first, site.second, "R3", "env-doc-parity",
                  "env var " + var + " is referenced here but not "
                  "documented in " + doc_names, false, ""};
        // Build-file sites use the text-marker suppression; source
        // files go through the driver's comment-based mechanism.
        for (const TextFile &bf : build_files) {
            std::string reason;
            if (bf.path == site.first &&
                textSuppressed(bf, site.second, reason)) {
                f.suppressed = true;
                f.reason = reason;
            }
        }
        out.push_back(std::move(f));
    }
    for (const auto &[var, site] : doc_refs) {
        if (code_refs.count(var))
            continue;
        Finding f{site.first, site.second, "R3", "env-doc-parity",
                  "env var " + var + " is documented here but never "
                  "referenced in the scanned sources", false, ""};
        for (const TextFile &df : docs) {
            std::string reason;
            if (df.path == site.first &&
                textSuppressed(df, site.second, reason)) {
                f.suppressed = true;
                f.reason = reason;
            }
        }
        out.push_back(std::move(f));
    }
}

} // namespace silo::lint
