/**
 * @file
 * silo-lint driver: file collection, suppression handling, output.
 *
 * The driver walks the scanned tree (src/, bench/ and tests/ under
 * the root by default, or an explicit file list), lexes every C++
 * source, runs the R1–R10 matchers (rules.hh), applies the
 * suppression grammar and serializes the result as a human report,
 * the `silo-lint-v1` JSON document, or SARIF 2.1.0.
 *
 * Suppression grammar (DESIGN.md §4f):
 *
 *     // silo-lint: allow(<rules>) <reason>            findings on the
 *                                                      same or next line
 *     // silo-lint: allow-next-line(<rules>) <reason>  next line only
 *     // silo-lint: allowfile(<rules>) <reason>        whole file
 *
 * `<rules>` is a comma-separated list of codes ("R1") or slugs
 * ("nondet-iteration"); the reason is mandatory and shared by the
 * listed rules. Suppressed findings stay in the report (marked and
 * counted); a listed rule that matches nothing is itself a finding
 * (S0), so stale allowances cannot accumulate, and the directive
 * corpus is linted by R10 (duplicates, allowfile placement).
 */

#ifndef SILO_LINT_DRIVER_HH
#define SILO_LINT_DRIVER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "silo-lint/rules.hh"

namespace silo::lint
{

struct Options
{
    /** Scan root; findings are reported root-relative. */
    std::string root = ".";
    /**
     * Explicit files to scan (root-relative). Empty scans the
     * default directories (src/, bench/, tests/; the whole root when
     * none of those exists, which is what the fixture tests use).
     * Directories named "fixtures" are always skipped: they hold
     * deliberate rule violations for silo-lint's own tests.
     */
    std::vector<std::string> files;
    /** Extra documentation files for R3 (root-relative). */
    std::vector<std::string> docs;
    /**
     * Include root README.md / DESIGN.md / EXPERIMENTS.md in the R3
     * docs set.
     */
    bool defaultDocs = true;
    /**
     * Incremental mode (--changed): the full corpus is still scanned
     * — the corpus rules R3/R6/R9 need it — but only findings in
     * changedFiles (root-relative) are reported and counted.
     */
    bool changedOnly = false;
    std::vector<std::string> changedFiles;
};

struct Result
{
    /** All findings, sorted (file, line, code), suppressed included. */
    std::vector<Finding> findings;
    std::size_t filesScanned = 0;
    std::size_t errors = 0;       //!< unsuppressed findings
    std::size_t suppressed = 0;   //!< findings silenced with a reason
};

/** Run every rule over the tree described by @p opts. */
Result runLint(const Options &opts);

/** Serialize @p result as the silo-lint-v1 JSON document. */
std::string toJson(const Result &result);

/**
 * Serialize @p result as a SARIF 2.1.0 document (one run, the full
 * rule catalogue plus S0, suppressed findings carried as inSource
 * suppressions with their reason as justification).
 */
std::string toSarif(const Result &result);

/**
 * Human-readable report: one line per unsuppressed finding (plus
 * suppressed ones when @p verbose) and a summary line.
 */
std::string toHuman(const Result &result, bool verbose = false);

} // namespace silo::lint

#endif // SILO_LINT_DRIVER_HH
