#include "silo-lint/parse.hh"

namespace silo::lint
{

namespace
{

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** Keywords that start a statement but never a declared name's type. */
const std::set<std::string> &
badDeclPrev()
{
    static const std::set<std::string> kw = {
        "return", "case",  "goto",   "throw",    "new",
        "delete", "else",  "do",     "operator", "sizeof",
        "typedef", "using", "co_return", "co_yield", "co_await"};
    return kw;
}

/** Built-in type-ish words that are never a parameter's *name*. */
const std::set<std::string> &
typeWords()
{
    static const std::set<std::string> kw = {
        "void",   "bool",     "char",   "short",   "int",
        "long",   "signed",   "unsigned", "float", "double",
        "auto",   "const",    "constexpr", "volatile", "mutable",
        "static", "typename", "class",  "struct",  "union",
        "enum",   "noexcept", "override", "final"};
    return kw;
}

} // namespace

std::vector<IncludeDirective>
collectIncludes(const SourceFile &file)
{
    std::vector<IncludeDirective> out;
    const std::vector<Token> &t = file.code;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (isPunct(t[i], "#") && t[i + 1].kind == TokKind::Identifier &&
            t[i + 1].text == "include" &&
            t[i + 2].kind == TokKind::String) {
            out.push_back({t[i + 2].text, t[i + 2].line});
        }
    }
    return out;
}

std::size_t
ScopeModel::matchBackward(std::size_t close, const char *opener,
                          const char *closer) const
{
    int depth = 0;
    for (std::size_t i = close + 1; i-- > 0;) {
        if (_code[i].kind != TokKind::Punct)
            continue;
        if (_code[i].text == closer)
            ++depth;
        else if (_code[i].text == opener && --depth == 0)
            return i;
    }
    return std::string::npos;
}

std::size_t
ScopeModel::enclosingFunctionBody(std::size_t idx) const
{
    // Open braces enclosing idx, outermost first.
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < idx && i < _code.size(); ++i) {
        if (isPunct(_code[i], "{"))
            stack.push_back(i);
        else if (isPunct(_code[i], "}") && !stack.empty())
            stack.pop_back();
    }

    // Walk outside-in: skip namespace/class/enum bodies; the first
    // other brace is either a function (or lambda) body — prefixed by
    // a parameter list or a capture list — or something we don't
    // model (control block or brace initializer at namespace scope),
    // in which case there is no recognizable enclosing function.
    for (std::size_t b : stack) {
        if (b == 0)
            return std::string::npos;
        const Token &prev = _code[b - 1];
        if (isPunct(prev, ")")) {
            std::size_t open = matchBackward(b - 1, "(", ")");
            if (open != std::string::npos && open > 0 &&
                _code[open - 1].kind == TokKind::Identifier) {
                const std::string &kw = _code[open - 1].text;
                if (kw == "if" || kw == "for" || kw == "while" ||
                    kw == "switch" || kw == "catch")
                    return std::string::npos;   // control block
            }
            return b;   // function definition (or lambda with params)
        }
        if (isPunct(prev, "]"))
            return b;   // lambda body without a parameter list
        if (prev.kind == TokKind::Identifier &&
            (prev.text == "do" || prev.text == "else" ||
             prev.text == "try"))
            return std::string::npos;   // control block
        // Aggregate scope? Scan back through the head of the
        // declaration for class/struct/namespace/enum/union.
        bool aggregate = false;
        for (std::size_t k = b; k-- > 0;) {
            const Token &h = _code[k];
            if (h.kind == TokKind::Punct &&
                (h.text == ";" || h.text == "}" || h.text == "{" ||
                 h.text == ")"))
                break;
            if (h.kind == TokKind::Identifier &&
                (h.text == "class" || h.text == "struct" ||
                 h.text == "namespace" || h.text == "enum" ||
                 h.text == "union")) {
                aggregate = true;
                break;
            }
            if (h.kind == TokKind::String) {
                aggregate = true;   // extern "C" { ... }
                break;
            }
        }
        if (!aggregate)
            return std::string::npos;   // initializer braces etc.
    }
    return std::string::npos;
}

bool
ScopeModel::isLocalAt(std::size_t idx, const std::string &name) const
{
    std::size_t fb = enclosingFunctionBody(idx);
    if (fb == std::string::npos || fb == 0)
        return false;

    // Parameters (or lambda captures, which scope like locals).
    if (isPunct(_code[fb - 1], ")")) {
        std::size_t open = matchBackward(fb - 1, "(", ")");
        if (open != std::string::npos) {
            int depth = 0;
            for (std::size_t k = open; k < fb - 1; ++k) {
                if (_code[k].kind == TokKind::Punct) {
                    const std::string &p = _code[k].text;
                    if (p == "(" || p == "[" || p == "{")
                        ++depth;
                    else if (p == ")" || p == "]" || p == "}")
                        --depth;
                    continue;
                }
                if (depth != 1 || _code[k].kind != TokKind::Identifier ||
                    _code[k].text != name || typeWords().count(name))
                    continue;
                const std::string &next = _code[k + 1].text;
                if (next == "," || next == ")" || next == "=")
                    return true;
            }
        }
    } else if (isPunct(_code[fb - 1], "]")) {
        std::size_t open = matchBackward(fb - 1, "[", "]");
        if (open != std::string::npos) {
            for (std::size_t k = open + 1; k < fb - 1; ++k) {
                if (_code[k].kind == TokKind::Identifier &&
                    _code[k].text == name &&
                    !isPunct(_code[k - 1], "&"))
                    return true;   // by-value capture acts as a local
            }
        }
    }

    // Local declarations between the body opener and the query point:
    //   <type-ish> [*&>] name  followed by  = ; { or the range-for :
    for (std::size_t k = fb + 1; k + 1 < idx; ++k) {
        if (_code[k].kind != TokKind::Identifier || _code[k].text != name)
            continue;
        const Token &prev = _code[k - 1];
        const std::string &next = _code[k + 1].text;
        if (next != "=" && next != ";" && next != "{" && next != ":")
            continue;
        if (prev.kind == TokKind::Identifier) {
            if (!badDeclPrev().count(prev.text))
                return true;
        } else if (isPunct(prev, ">")) {
            return true;   // std::vector<T> name
        } else if (isPunct(prev, "&") || isPunct(prev, "*")) {
            // Require a statement-shaped head before the type token so
            // `a = b * c;` is not read as a declaration of c.
            if (k < 2 || _code[k - 1 - 1].kind != TokKind::Identifier)
                continue;
            if (k < 3)
                return true;
            const Token &head = _code[k - 3];
            bool stmt_start =
                (head.kind == TokKind::Punct &&
                 (head.text == ";" || head.text == "{" ||
                  head.text == "}" || head.text == "(" ||
                  head.text == "," || head.text == ">" ||
                  head.text == "::")) ||
                (head.kind == TokKind::Identifier &&
                 typeWords().count(head.text));
            if (stmt_start)
                return true;
        }
    }
    return false;
}

std::set<std::string>
collectFloatNames(const SourceFile &file)
{
    std::set<std::string> names;
    const std::vector<Token> &t = file.code;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            (t[i].text != "float" && t[i].text != "double"))
            continue;
        std::size_t j = i + 1;
        while (j < t.size() &&
               (t[j].text == "const" || isPunct(t[j], "&") ||
                isPunct(t[j], "*")))
            ++j;
        if (j + 1 >= t.size() || t[j].kind != TokKind::Identifier)
            continue;   // template argument (`vector<double>`) etc.
        const std::string &next = t[j + 1].text;
        // "(" is excluded on purpose: `double mean()` declares a
        // function, not a float-typed name.
        if (next == "=" || next == "{" || next == ";" || next == "," ||
            next == ")" || next == ":")
            names.insert(t[j].text);
    }
    return names;
}

} // namespace silo::lint
