# Empty dependencies file for example_tpcc_store.
# This may be replaced when dependencies are built.
