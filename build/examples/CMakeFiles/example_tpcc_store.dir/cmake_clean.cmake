file(REMOVE_RECURSE
  "CMakeFiles/example_tpcc_store.dir/tpcc_store.cpp.o"
  "CMakeFiles/example_tpcc_store.dir/tpcc_store.cpp.o.d"
  "example_tpcc_store"
  "example_tpcc_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tpcc_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
