# Empty dependencies file for example_ycsb_kv.
# This may be replaced when dependencies are built.
