file(REMOVE_RECURSE
  "CMakeFiles/example_ycsb_kv.dir/ycsb_kv.cpp.o"
  "CMakeFiles/example_ycsb_kv.dir/ycsb_kv.cpp.o.d"
  "example_ycsb_kv"
  "example_ycsb_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ycsb_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
