# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build/tests/battery_model_test[1]_include.cmake")
include("/root/repo/build/tests/config_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/crash_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/semantic_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_schemes_test[1]_include.cmake")
include("/root/repo/build/tests/mc_router_test[1]_include.cmake")
include("/root/repo/build/tests/mem_controller_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/pm_device_test[1]_include.cmake")
include("/root/repo/build/tests/silo_scheme_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/types_config_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/structures_test[1]_include.cmake")
include("/root/repo/build/tests/trace_gen_test[1]_include.cmake")
