# Empty dependencies file for battery_model_test.
# This may be replaced when dependencies are built.
