file(REMOVE_RECURSE
  "CMakeFiles/silo_scheme_test.dir/silo/silo_scheme_test.cc.o"
  "CMakeFiles/silo_scheme_test.dir/silo/silo_scheme_test.cc.o.d"
  "silo_scheme_test"
  "silo_scheme_test.pdb"
  "silo_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
