# Empty dependencies file for silo_scheme_test.
# This may be replaced when dependencies are built.
