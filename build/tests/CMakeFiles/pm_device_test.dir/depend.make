# Empty dependencies file for pm_device_test.
# This may be replaced when dependencies are built.
