file(REMOVE_RECURSE
  "CMakeFiles/pm_device_test.dir/nvm/pm_device_test.cc.o"
  "CMakeFiles/pm_device_test.dir/nvm/pm_device_test.cc.o.d"
  "pm_device_test"
  "pm_device_test.pdb"
  "pm_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
