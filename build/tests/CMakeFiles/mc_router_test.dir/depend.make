# Empty dependencies file for mc_router_test.
# This may be replaced when dependencies are built.
