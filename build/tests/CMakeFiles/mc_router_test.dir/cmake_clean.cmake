file(REMOVE_RECURSE
  "CMakeFiles/mc_router_test.dir/mc/mc_router_test.cc.o"
  "CMakeFiles/mc_router_test.dir/mc/mc_router_test.cc.o.d"
  "mc_router_test"
  "mc_router_test.pdb"
  "mc_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
