file(REMOVE_RECURSE
  "CMakeFiles/semantic_recovery_test.dir/harness/semantic_recovery_test.cc.o"
  "CMakeFiles/semantic_recovery_test.dir/harness/semantic_recovery_test.cc.o.d"
  "semantic_recovery_test"
  "semantic_recovery_test.pdb"
  "semantic_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
