# Empty dependencies file for semantic_recovery_test.
# This may be replaced when dependencies are built.
