file(REMOVE_RECURSE
  "CMakeFiles/types_config_test.dir/sim/types_config_test.cc.o"
  "CMakeFiles/types_config_test.dir/sim/types_config_test.cc.o.d"
  "types_config_test"
  "types_config_test.pdb"
  "types_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/types_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
