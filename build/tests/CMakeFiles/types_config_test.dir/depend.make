# Empty dependencies file for types_config_test.
# This may be replaced when dependencies are built.
