# Empty dependencies file for baseline_schemes_test.
# This may be replaced when dependencies are built.
