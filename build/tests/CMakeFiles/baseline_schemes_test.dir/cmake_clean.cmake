file(REMOVE_RECURSE
  "CMakeFiles/baseline_schemes_test.dir/log/baseline_schemes_test.cc.o"
  "CMakeFiles/baseline_schemes_test.dir/log/baseline_schemes_test.cc.o.d"
  "baseline_schemes_test"
  "baseline_schemes_test.pdb"
  "baseline_schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
