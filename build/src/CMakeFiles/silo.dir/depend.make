# Empty dependencies file for silo.
# This may be replaced when dependencies are built.
