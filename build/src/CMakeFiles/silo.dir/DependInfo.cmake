
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/replay_core.cc" "src/CMakeFiles/silo.dir/core/replay_core.cc.o" "gcc" "src/CMakeFiles/silo.dir/core/replay_core.cc.o.d"
  "/root/repo/src/energy/battery_model.cc" "src/CMakeFiles/silo.dir/energy/battery_model.cc.o" "gcc" "src/CMakeFiles/silo.dir/energy/battery_model.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/silo.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/silo.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/system.cc" "src/CMakeFiles/silo.dir/harness/system.cc.o" "gcc" "src/CMakeFiles/silo.dir/harness/system.cc.o.d"
  "/root/repo/src/log/base_scheme.cc" "src/CMakeFiles/silo.dir/log/base_scheme.cc.o" "gcc" "src/CMakeFiles/silo.dir/log/base_scheme.cc.o.d"
  "/root/repo/src/log/fwb_scheme.cc" "src/CMakeFiles/silo.dir/log/fwb_scheme.cc.o" "gcc" "src/CMakeFiles/silo.dir/log/fwb_scheme.cc.o.d"
  "/root/repo/src/log/lad_scheme.cc" "src/CMakeFiles/silo.dir/log/lad_scheme.cc.o" "gcc" "src/CMakeFiles/silo.dir/log/lad_scheme.cc.o.d"
  "/root/repo/src/log/morlog_scheme.cc" "src/CMakeFiles/silo.dir/log/morlog_scheme.cc.o" "gcc" "src/CMakeFiles/silo.dir/log/morlog_scheme.cc.o.d"
  "/root/repo/src/log/scheme_factory.cc" "src/CMakeFiles/silo.dir/log/scheme_factory.cc.o" "gcc" "src/CMakeFiles/silo.dir/log/scheme_factory.cc.o.d"
  "/root/repo/src/log/sw_eadr_scheme.cc" "src/CMakeFiles/silo.dir/log/sw_eadr_scheme.cc.o" "gcc" "src/CMakeFiles/silo.dir/log/sw_eadr_scheme.cc.o.d"
  "/root/repo/src/log/wal_recovery.cc" "src/CMakeFiles/silo.dir/log/wal_recovery.cc.o" "gcc" "src/CMakeFiles/silo.dir/log/wal_recovery.cc.o.d"
  "/root/repo/src/mc/mc_router.cc" "src/CMakeFiles/silo.dir/mc/mc_router.cc.o" "gcc" "src/CMakeFiles/silo.dir/mc/mc_router.cc.o.d"
  "/root/repo/src/mc/mem_controller.cc" "src/CMakeFiles/silo.dir/mc/mem_controller.cc.o" "gcc" "src/CMakeFiles/silo.dir/mc/mem_controller.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/silo.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/silo.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/silo.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/silo.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/nvm/pm_device.cc" "src/CMakeFiles/silo.dir/nvm/pm_device.cc.o" "gcc" "src/CMakeFiles/silo.dir/nvm/pm_device.cc.o.d"
  "/root/repo/src/silo/silo_scheme.cc" "src/CMakeFiles/silo.dir/silo/silo_scheme.cc.o" "gcc" "src/CMakeFiles/silo.dir/silo/silo_scheme.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/silo.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/silo.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/CMakeFiles/silo.dir/sim/table.cc.o" "gcc" "src/CMakeFiles/silo.dir/sim/table.cc.o.d"
  "/root/repo/src/workload/array_workload.cc" "src/CMakeFiles/silo.dir/workload/array_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/array_workload.cc.o.d"
  "/root/repo/src/workload/bank_workload.cc" "src/CMakeFiles/silo.dir/workload/bank_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/bank_workload.cc.o.d"
  "/root/repo/src/workload/btree_workload.cc" "src/CMakeFiles/silo.dir/workload/btree_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/btree_workload.cc.o.d"
  "/root/repo/src/workload/ctrie_workload.cc" "src/CMakeFiles/silo.dir/workload/ctrie_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/ctrie_workload.cc.o.d"
  "/root/repo/src/workload/hash_workload.cc" "src/CMakeFiles/silo.dir/workload/hash_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/hash_workload.cc.o.d"
  "/root/repo/src/workload/queue_workload.cc" "src/CMakeFiles/silo.dir/workload/queue_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/queue_workload.cc.o.d"
  "/root/repo/src/workload/rbtree_workload.cc" "src/CMakeFiles/silo.dir/workload/rbtree_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/rbtree_workload.cc.o.d"
  "/root/repo/src/workload/rtree_workload.cc" "src/CMakeFiles/silo.dir/workload/rtree_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/rtree_workload.cc.o.d"
  "/root/repo/src/workload/tatp_workload.cc" "src/CMakeFiles/silo.dir/workload/tatp_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/tatp_workload.cc.o.d"
  "/root/repo/src/workload/tpcc_workload.cc" "src/CMakeFiles/silo.dir/workload/tpcc_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/tpcc_workload.cc.o.d"
  "/root/repo/src/workload/trace_gen.cc" "src/CMakeFiles/silo.dir/workload/trace_gen.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/trace_gen.cc.o.d"
  "/root/repo/src/workload/workload_factory.cc" "src/CMakeFiles/silo.dir/workload/workload_factory.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/workload_factory.cc.o.d"
  "/root/repo/src/workload/ycsb_workload.cc" "src/CMakeFiles/silo.dir/workload/ycsb_workload.cc.o" "gcc" "src/CMakeFiles/silo.dir/workload/ycsb_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
