file(REMOVE_RECURSE
  "libsilo.a"
)
