file(REMOVE_RECURSE
  "CMakeFiles/table4_battery.dir/table4_battery.cc.o"
  "CMakeFiles/table4_battery.dir/table4_battery.cc.o.d"
  "table4_battery"
  "table4_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
