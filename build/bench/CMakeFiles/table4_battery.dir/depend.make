# Empty dependencies file for table4_battery.
# This may be replaced when dependencies are built.
