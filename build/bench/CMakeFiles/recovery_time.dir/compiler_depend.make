# Empty compiler generated dependencies file for recovery_time.
# This may be replaced when dependencies are built.
