# Empty dependencies file for fig11_write_traffic.
# This may be replaced when dependencies are built.
