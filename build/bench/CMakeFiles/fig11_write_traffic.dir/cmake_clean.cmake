file(REMOVE_RECURSE
  "CMakeFiles/fig11_write_traffic.dir/fig11_write_traffic.cc.o"
  "CMakeFiles/fig11_write_traffic.dir/fig11_write_traffic.cc.o.d"
  "fig11_write_traffic"
  "fig11_write_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_write_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
