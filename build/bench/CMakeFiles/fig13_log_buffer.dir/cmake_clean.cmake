file(REMOVE_RECURSE
  "CMakeFiles/fig13_log_buffer.dir/fig13_log_buffer.cc.o"
  "CMakeFiles/fig13_log_buffer.dir/fig13_log_buffer.cc.o.d"
  "fig13_log_buffer"
  "fig13_log_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_log_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
