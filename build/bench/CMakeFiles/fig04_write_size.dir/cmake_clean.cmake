file(REMOVE_RECURSE
  "CMakeFiles/fig04_write_size.dir/fig04_write_size.cc.o"
  "CMakeFiles/fig04_write_size.dir/fig04_write_size.cc.o.d"
  "fig04_write_size"
  "fig04_write_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_write_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
