# Empty dependencies file for fig04_write_size.
# This may be replaced when dependencies are built.
