file(REMOVE_RECURSE
  "CMakeFiles/fig15_buffer_latency.dir/fig15_buffer_latency.cc.o"
  "CMakeFiles/fig15_buffer_latency.dir/fig15_buffer_latency.cc.o.d"
  "fig15_buffer_latency"
  "fig15_buffer_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_buffer_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
