# Empty compiler generated dependencies file for table1_hw_overhead.
# This may be replaced when dependencies are built.
