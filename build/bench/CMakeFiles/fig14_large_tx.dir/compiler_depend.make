# Empty compiler generated dependencies file for fig14_large_tx.
# This may be replaced when dependencies are built.
