file(REMOVE_RECURSE
  "CMakeFiles/fig14_large_tx.dir/fig14_large_tx.cc.o"
  "CMakeFiles/fig14_large_tx.dir/fig14_large_tx.cc.o.d"
  "fig14_large_tx"
  "fig14_large_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_large_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
