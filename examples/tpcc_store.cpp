/**
 * @file
 * OLTP scenario: a per-thread-warehouse TPC-C system compared across
 * all five logging designs — the workload class the paper's intro
 * motivates (small write sets, strict atomic durability).
 *
 *   $ ./example_tpcc_store [cores] [transactions] [--all-tx-types]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "harness/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace silo;

    unsigned cores = argc > 1 ? unsigned(std::atoi(argv[1])) : 8;
    std::uint64_t tx = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                : 300;
    bool all_types = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--all-tx-types") == 0)
            all_types = true;
    }

    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Tpcc;
    tg.numThreads = cores;
    tg.transactionsPerThread = tx;
    tg.options.tpccAllTxTypes = all_types;
    auto traces = workload::generateTraces(tg);

    std::printf("TPC-C, %u warehouses (one per core), %llu tx each, "
                "%s\n\n",
                cores, (unsigned long long)tx,
                all_types ? "all five transaction types"
                          : "New-Order only");

    TablePrinter table("TPC-C under each atomic-durability design");
    table.header({"Design", "tx/Mcycle", "media words", "log records",
                  "commit stall cy/tx"});

    for (auto scheme : {SchemeKind::Base, SchemeKind::Fwb,
                        SchemeKind::MorLog, SchemeKind::Lad,
                        SchemeKind::Silo}) {
        SimConfig cfg;
        cfg.numCores = cores;
        cfg.scheme = scheme;
        auto report = harness::runCell(cfg, traces);
        table.row({schemeName(scheme),
                   TablePrinter::num(report.txPerMillionCycles, 1),
                   std::to_string(report.mediaWordWrites),
                   std::to_string(report.logRecordsWritten),
                   TablePrinter::num(
                       double(report.commitStallCycles) /
                           double(report.committedTransactions), 1)});
    }
    table.print(std::cout);
    return 0;
}
