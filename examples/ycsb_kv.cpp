/**
 * @file
 * Key-value scenario: YCSB over a PM hash-indexed store under Silo,
 * sweeping the read/update mix to show where hardware logging costs
 * live — updates produce logs, reads are free (§II-E: "we do not care
 * about the size of the read set").
 *
 *   $ ./example_ycsb_kv [cores] [transactions]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "harness/system.hh"
#include "sim/table.hh"
#include "silo/silo_scheme.hh"
#include "workload/func_mem.hh"
#include "workload/trace_recorder.hh"
#include "workload/ycsb_workload.hh"

namespace
{

using namespace silo;
using silo::TablePrinter;

/** Generate traces for a custom read percentage. */
workload::WorkloadTraces
tracesFor(unsigned read_pct, unsigned cores, std::uint64_t tx)
{
    workload::WorkloadTraces out;
    out.threads.resize(cores);
    workload::FuncMem mem;
    std::vector<std::unique_ptr<workload::YcsbWorkload>> workloads;
    std::vector<Rng> rngs;
    std::vector<workload::PmHeap> heaps;
    std::vector<std::unique_ptr<workload::TraceRecorder>> recs;

    for (unsigned t = 0; t < cores; ++t) {
        workloads.push_back(std::make_unique<workload::YcsbWorkload>(
            16384, read_pct));
        rngs.emplace_back(1000003 * 7 + t);
        heaps.push_back(workload::PmHeap::forThread(t));
        recs.push_back(std::make_unique<workload::TraceRecorder>(
            mem, out.threads[t]));
        workloads[t]->setup(*recs[t], heaps[t], rngs[t]);
    }
    out.initialMemory = mem;
    for (unsigned t = 0; t < cores; ++t) {
        recs[t]->setRecording(true);
        for (std::uint64_t i = 0; i < tx; ++i) {
            recs[t]->txBegin();
            workloads[t]->transaction(*recs[t], heaps[t], rngs[t]);
            recs[t]->txEnd();
        }
        recs[t]->setRecording(false);
    }
    out.finalMemory = mem;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned cores = argc > 1 ? unsigned(std::atoi(argv[1])) : 8;
    std::uint64_t tx = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                : 300;

    TablePrinter table(
        "YCSB under Silo across read/update mixes (8 B-word KV "
        "store, 64 B values)");
    table.header({"read %", "tx/Mcycle", "media words/tx",
                  "remaining logs/tx"});

    for (unsigned read_pct : {0u, 20u, 50u, 80u, 95u}) {
        auto traces = tracesFor(read_pct, cores, tx);
        SimConfig cfg;
        cfg.numCores = cores;
        cfg.scheme = SchemeKind::Silo;
        harness::System sys(cfg, traces);
        sys.run();
        sys.drainToMedia();
        auto report = sys.report();
        const auto &red =
            dynamic_cast<silo_scheme::SiloScheme &>(sys.scheme())
                .reductionStats();
        table.row({std::to_string(read_pct),
                   TablePrinter::num(report.txPerMillionCycles, 1),
                   TablePrinter::num(
                       double(report.mediaWordWrites) /
                           double(report.committedTransactions), 1),
                   TablePrinter::num(red.remainingLogsPerTx.mean(),
                                     1)});
    }
    table.print(std::cout);
    std::printf("# The paper's configuration is the 20/80 row "
                "(Table III).\n");
    return 0;
}
