/**
 * @file
 * Crash-recovery walkthrough (the Fig. 10 scenario, §III-G).
 *
 * Runs Bank transfers under Silo, injects a power failure mid-run,
 * performs the battery-backed selective log flush and ADR drain, then
 * recovers the PM image and verifies atomic durability: every
 * committed transfer is present, no partial transfer survives, and
 * the total balance is conserved.
 *
 *   $ ./example_crash_recovery [crash_after_events]
 */

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "harness/system.hh"
#include "workload/trace_gen.hh"

int
main(int argc, char **argv)
{
    using namespace silo;

    std::uint64_t crash_events =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Bank;
    tg.numThreads = 4;
    tg.transactionsPerThread = 200;
    auto traces = workload::generateTraces(tg);

    SimConfig cfg;
    cfg.numCores = 4;
    cfg.scheme = SchemeKind::Silo;

    harness::System sys(cfg, traces);
    sys.runEvents(crash_events);

    std::printf("--- crash injected at tick %llu ---\n",
                (unsigned long long)sys.eventQueue().now());
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        std::printf("core %u: %llu committed, %s\n", c,
                    (unsigned long long)sys.coreAt(c).committedTx(),
                    sys.coreAt(c).inTransaction()
                        ? "a transaction was in flight"
                        : "idle between transactions");
    }

    // Power failure: battery flushes the selective logs (undo for
    // uncommitted, redo + ID tuple for committed-but-undrained), ADR
    // drains the WPQ and on-PM buffer, caches are lost.
    sys.crash();
    std::printf("battery flushed %llu bytes of logs\n",
                (unsigned long long)
                    sys.scheme().schemeStats().crashFlushBytes.value());

    sys.recover();

    // Oracle: initial image plus the stores of committed transactions.
    WordStore expected = traces.initialMemory;
    for (unsigned t = 0; t < sys.numCores(); ++t) {
        std::size_t upto = sys.coreAt(t).committedOpIndex();
        for (std::size_t i = 0; i < upto; ++i) {
            const auto &op = traces.threads[t].ops[i];
            if (op.kind == workload::TxOp::Kind::Store)
                expected[op.addr] = op.value;
        }
    }
    std::uint64_t mismatches = 0;
    for (const auto &[addr, value] : expected) {
        if (sys.pm().media().load(addr) != value)
            ++mismatches;
    }
    std::printf("recovered image      : %s (%zu words checked)\n",
                mismatches ? "CORRUPT" : "consistent",
                expected.size());
    return mismatches ? 1 : 0;
}
