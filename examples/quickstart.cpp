/**
 * @file
 * Quickstart: build a simulated 8-core PM system running the Hash
 * micro-benchmark under Silo, run it, and print the headline report.
 *
 *   $ ./example_quickstart [scheme] [cores] [transactions]
 *   e.g. ./example_quickstart Silo 8 500
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/system.hh"
#include "workload/trace_gen.hh"

int
main(int argc, char **argv)
{
    using namespace silo;

    // 1. Pick a logging design, core count, and run length.
    std::string scheme_name = argc > 1 ? argv[1] : "Silo";
    unsigned cores = argc > 2 ? unsigned(std::atoi(argv[2])) : 8;
    std::uint64_t tx = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                : 500;

    SimConfig cfg;   // Table II defaults
    cfg.numCores = cores;
    if (scheme_name == "Base") cfg.scheme = SchemeKind::Base;
    else if (scheme_name == "FWB") cfg.scheme = SchemeKind::Fwb;
    else if (scheme_name == "MorLog") cfg.scheme = SchemeKind::MorLog;
    else if (scheme_name == "LAD") cfg.scheme = SchemeKind::Lad;
    else if (scheme_name == "Silo") cfg.scheme = SchemeKind::Silo;
    else {
        std::fprintf(stderr,
                     "unknown scheme '%s' (Base|FWB|MorLog|LAD|Silo)\n",
                     scheme_name.c_str());
        return 1;
    }

    // 2. Generate workload traces: real hash-table inserts executed
    //    over simulated persistent memory, one thread per core.
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Hash;
    tg.numThreads = cores;
    tg.transactionsPerThread = tx;
    auto traces = workload::generateTraces(tg);

    // 3. Build the system and run every transaction to completion.
    harness::System sys(cfg, traces);
    sys.run();
    sys.drainToMedia();

    // 4. Inspect the results.
    auto report = sys.report();
    std::printf("scheme               : %s\n", sys.scheme().name());
    std::printf("committed tx         : %llu\n",
                (unsigned long long)report.committedTransactions);
    std::printf("simulated cycles     : %llu\n",
                (unsigned long long)report.ticks);
    std::printf("throughput           : %.1f tx per million cycles\n",
                report.txPerMillionCycles);
    std::printf("PM media word writes : %llu\n",
                (unsigned long long)report.mediaWordWrites);
    std::printf("log records written  : %llu\n",
                (unsigned long long)report.logRecordsWritten);
    std::printf("commit stall cycles  : %llu\n",
                (unsigned long long)report.commitStallCycles);

    // 5. Verify the PM image: every word the workload wrote must be
    //    in the media exactly as the functional execution left it.
    for (const auto &[addr, value] : traces.finalMemory) {
        if (sys.pm().media().load(addr) != value) {
            std::fprintf(stderr, "PM image mismatch at %#llx\n",
                         (unsigned long long)addr);
            return 1;
        }
    }
    std::printf("PM image check       : OK (%zu words)\n",
                traces.finalMemory.size());
    return 0;
}
