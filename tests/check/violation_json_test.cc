/**
 * @file
 * Tests pinning the stable machine-readable encoding of checker
 * violations: kebab-case kind names (fixture files match on them) and
 * the one-line Violation::toJson() object.
 */

#include <gtest/gtest.h>

#include "check/persistency_checker.hh"

namespace silo::check
{
namespace
{

constexpr ViolationKind allKinds[] = {
    ViolationKind::LogBeforeData,      ViolationKind::CommitNotDurable,
    ViolationKind::HeldReleaseOrdering,
    ViolationKind::FlushBitAccounting, ViolationKind::DoublePersist,
    ViolationKind::TornWrite,          ViolationKind::CrashClosure,
};

TEST(ViolationNames, StableKebabCaseEncoding)
{
    // These strings are a format, not a label: committed fixtures under
    // tests/check/litmus/ carry them in `expect` lines. Renaming one is
    // a format break and must show up here.
    EXPECT_STREQ(violationName(ViolationKind::LogBeforeData),
                 "log-before-data");
    EXPECT_STREQ(violationName(ViolationKind::CommitNotDurable),
                 "commit-not-durable");
    EXPECT_STREQ(violationName(ViolationKind::HeldReleaseOrdering),
                 "held-release-ordering");
    EXPECT_STREQ(violationName(ViolationKind::FlushBitAccounting),
                 "flush-bit-accounting");
    EXPECT_STREQ(violationName(ViolationKind::DoublePersist),
                 "double-persist");
    EXPECT_STREQ(violationName(ViolationKind::TornWrite), "torn-write");
    EXPECT_STREQ(violationName(ViolationKind::CrashClosure),
                 "crash-closure");
}

TEST(ViolationNames, RoundTripAndUnknownRejected)
{
    for (ViolationKind kind : allKinds)
        EXPECT_EQ(violationKindFromName(violationName(kind)), kind);
    EXPECT_THROW(violationKindFromName("no-such-kind"), FatalError);
    EXPECT_THROW(violationKindFromName(""), FatalError);
}

TEST(ViolationJson, GoldenObject)
{
    Violation v;
    v.kind = ViolationKind::CrashClosure;
    v.tick = 1234;
    v.core = 2;
    v.txid = 17;
    v.addr = 0x1f40;
    v.detail = "word differs";
    v.crashIndex = 55;
    EXPECT_EQ(v.toJson(),
              "{\"kind\": \"crash-closure\", \"tick\": 1234, "
              "\"core\": 2, \"txid\": 17, \"addr\": \"0x1f40\", "
              "\"crash_index\": 55, \"detail\": \"word differs\"}");
}

TEST(ViolationJson, DetailIsEscaped)
{
    Violation v;
    v.kind = ViolationKind::TornWrite;
    v.detail = "quote \" backslash \\ newline \n tab \t bell \x07";
    std::string json = v.toJson();
    EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n "
                        "tab \\t bell \\u0007"),
              std::string::npos)
        << json;
    // The escaped payload must not leak raw control characters.
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_EQ(json.find('\x07'), std::string::npos);
}

TEST(ViolationJson, DefaultCrashIndexMeansCompletionRun)
{
    Violation v;
    v.kind = ViolationKind::LogBeforeData;
    EXPECT_NE(v.toJson().find("\"crash_index\": 0"), std::string::npos);
}

} // namespace
} // namespace silo::check
