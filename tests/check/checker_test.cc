/**
 * @file
 * Persistency-checker tests.
 *
 * Two halves:
 *  - Clean runs: every scheme x workload combination, with and without
 *    crash injection, must produce zero violations — the checker's
 *    invariants hold on the shipped schemes.
 *  - Mutation harness: each deliberately seeded durability bug
 *    (SimConfig::mutation) must be flagged, and flagged as the
 *    SPECIFIC invariant it breaks — not just "something failed".
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/persistency_checker.hh"
#include "harness/system.hh"
#include "workload/trace_gen.hh"

namespace silo::check
{
namespace
{

using harness::System;

workload::WorkloadTraces
makeTraces(workload::WorkloadKind kind, unsigned threads,
           unsigned tx_per_thread, std::uint64_t seed,
           unsigned ops_per_tx = 1)
{
    workload::TraceGenConfig tg;
    tg.kind = kind;
    tg.numThreads = threads;
    tg.transactionsPerThread = tx_per_thread;
    tg.opsPerTransaction = ops_per_tx;
    tg.seed = seed;
    return workload::generateTraces(tg);
}

SimConfig
checkedConfig(SchemeKind scheme, unsigned cores)
{
    SimConfig cfg;
    cfg.numCores = cores;
    cfg.scheme = scheme;
    cfg.checker = true;
    // A small log buffer provokes Silo's overflow paths too.
    cfg.logBufferEntries = 12;
    return cfg;
}

/** Shrink the caches so lines evict mid-transaction (flush-bit and
 *  overflow paths need uncommitted data reaching the ADR domain). */
void
shrinkCaches(SimConfig &cfg)
{
    cfg.l1d = {1024, 2, 4};
    cfg.l2 = {2048, 2, 12};
    cfg.l3 = {4096, 4, 28};
}

std::string
reportOf(System &sys)
{
    std::ostringstream ss;
    sys.checker()->report(ss);
    return ss.str();
}

// --- Clean runs ---------------------------------------------------------

struct CleanCase
{
    SchemeKind scheme;
    workload::WorkloadKind workload;
};

std::string
cleanName(const ::testing::TestParamInfo<CleanCase> &info)
{
    std::string name = std::string(schemeName(info.param.scheme)) + "_" +
                       workload::workloadName(info.param.workload);
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            c = '_';
    }
    return name;
}

class CheckerClean : public ::testing::TestWithParam<CleanCase>
{
};

TEST_P(CheckerClean, FullRunHasNoViolations)
{
    auto traces = makeTraces(GetParam().workload, 2, 20, 11);
    SimConfig cfg = checkedConfig(GetParam().scheme, 2);
    System sys(cfg, traces);
    sys.run();
    sys.settle();
    sys.drainToMedia();

    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_TRUE(sys.checker()->clean()) << reportOf(sys);
    // The checker actually observed the run.
    EXPECT_GT(sys.checker()->counters().stores, 0u);
    EXPECT_GT(sys.checker()->counters().commits, 0u);
}

TEST_P(CheckerClean, CrashInjectionHasNoViolations)
{
    // Odd offsets land the crash in varied micro-states (mid-store,
    // mid-commit, mid-overflow).
    for (std::uint64_t crash_events : {97u, 1999u, 7919u}) {
        auto traces = makeTraces(GetParam().workload, 2, 20, 12);
        SimConfig cfg = checkedConfig(GetParam().scheme, 2);
        System sys(cfg, traces);
        sys.runEvents(crash_events);
        sys.crash();
        sys.recover();

        ASSERT_NE(sys.checker(), nullptr);
        EXPECT_TRUE(sys.checker()->clean())
            << "crash at " << crash_events << " events:\n"
            << reportOf(sys);
        EXPECT_GT(sys.checker()->counters().wordsCheckedAtRecovery, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CheckerClean,
    ::testing::Values(
        CleanCase{SchemeKind::Base, workload::WorkloadKind::Array},
        CleanCase{SchemeKind::Base, workload::WorkloadKind::Queue},
        CleanCase{SchemeKind::Base, workload::WorkloadKind::Tpcc},
        CleanCase{SchemeKind::Fwb, workload::WorkloadKind::Array},
        CleanCase{SchemeKind::Fwb, workload::WorkloadKind::Queue},
        CleanCase{SchemeKind::Fwb, workload::WorkloadKind::Tpcc},
        CleanCase{SchemeKind::MorLog, workload::WorkloadKind::Array},
        CleanCase{SchemeKind::MorLog, workload::WorkloadKind::Queue},
        CleanCase{SchemeKind::MorLog, workload::WorkloadKind::Tpcc},
        CleanCase{SchemeKind::Lad, workload::WorkloadKind::Array},
        CleanCase{SchemeKind::Lad, workload::WorkloadKind::Queue},
        CleanCase{SchemeKind::Lad, workload::WorkloadKind::Tpcc},
        CleanCase{SchemeKind::Silo, workload::WorkloadKind::Array},
        CleanCase{SchemeKind::Silo, workload::WorkloadKind::Queue},
        CleanCase{SchemeKind::Silo, workload::WorkloadKind::Tpcc},
        CleanCase{SchemeKind::SwEadr, workload::WorkloadKind::Array},
        CleanCase{SchemeKind::SwEadr, workload::WorkloadKind::Queue},
        CleanCase{SchemeKind::SwEadr, workload::WorkloadKind::Tpcc}),
    cleanName);

TEST_P(CheckerClean, SmallCachesHaveNoViolations)
{
    // Heavy eviction pressure exercises flush-bit, held-entry, and
    // overflow paths without producing false positives.
    auto traces = makeTraces(GetParam().workload, 2, 20, 13);
    SimConfig cfg = checkedConfig(GetParam().scheme, 2);
    shrinkCaches(cfg);
    System sys(cfg, traces);
    sys.runEvents(20000);
    sys.crash();
    sys.recover();
    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_TRUE(sys.checker()->clean()) << reportOf(sys);
}

TEST_P(CheckerClean, LongTransactionsHaveNoViolations)
{
    // Fig. 14-style large transactions under eviction pressure: Silo's
    // flush-bits actually get set, LAD's slow mode engages, and the FWB
    // walker meets many dirty uncommitted lines — still zero
    // violations.
    auto traces = makeTraces(GetParam().workload, 2, 8, 14, 64);
    SimConfig cfg = checkedConfig(GetParam().scheme, 2);
    shrinkCaches(cfg);
    cfg.logBufferEntries = 256;
    System sys(cfg, traces);
    sys.runEvents(12000);
    sys.crash();
    sys.recover();
    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_TRUE(sys.checker()->clean()) << reportOf(sys);
}

TEST(CheckerOffByDefault, NoCheckerObjectWithoutFlag)
{
    auto traces = makeTraces(workload::WorkloadKind::Array, 1, 2, 1);
    SimConfig cfg;
    cfg.numCores = 1;
    cfg.scheme = SchemeKind::Silo;
    System sys(cfg, traces);
    EXPECT_EQ(sys.checker(), nullptr);
    sys.run();
}

// --- Mutation harness ---------------------------------------------------

/** Run scheme + mutation to completion; return the checker. */
PersistencyChecker &
runMutant(System &sys)
{
    sys.run();
    sys.settle();
    sys.drainToMedia();
    return *sys.checker();
}

/** Run scheme + mutation into a crash + recovery; return the checker. */
PersistencyChecker &
runMutantCrash(System &sys, std::uint64_t crash_events)
{
    sys.runEvents(crash_events);
    sys.crash();
    sys.recover();
    return *sys.checker();
}

TEST(CheckerMutation, DropUndoLogFlagsLogBeforeData)
{
    auto traces = makeTraces(workload::WorkloadKind::Array, 2, 20, 21);
    SimConfig cfg = checkedConfig(SchemeKind::Base, 2);
    cfg.mutation = MutationKind::DropUndoLog;
    System sys(cfg, traces);
    PersistencyChecker &chk = runMutant(sys);
    EXPECT_GT(chk.countOf(ViolationKind::LogBeforeData), 0u)
        << reportOf(sys);
}

TEST(CheckerMutation, ReorderLogDataFlagsLogBeforeData)
{
    // The data flush races ahead of its log record; the end state is
    // identical to a correct run, so only an online ordering check can
    // see this bug.
    auto traces = makeTraces(workload::WorkloadKind::Array, 2, 20, 22);
    SimConfig cfg = checkedConfig(SchemeKind::Base, 2);
    cfg.mutation = MutationKind::ReorderLogData;
    System sys(cfg, traces);
    PersistencyChecker &chk = runMutant(sys);
    EXPECT_GT(chk.countOf(ViolationKind::LogBeforeData), 0u)
        << reportOf(sys);
    // And the end state is indeed clean-looking: no crash-closure
    // complaint exists because no crash happened.
    EXPECT_EQ(chk.countOf(ViolationKind::CrashClosure), 0u);
}

TEST(CheckerMutation, SkipCommitMarkerFlagsCommitNotDurable)
{
    auto traces = makeTraces(workload::WorkloadKind::Array, 2, 10, 23);
    SimConfig cfg = checkedConfig(SchemeKind::Base, 2);
    cfg.mutation = MutationKind::SkipCommitMarker;
    System sys(cfg, traces);
    PersistencyChecker &chk = runMutant(sys);
    EXPECT_GT(chk.countOf(ViolationKind::CommitNotDurable), 0u)
        << reportOf(sys);
}

TEST(CheckerMutation, DropHeldReleaseFlagsHeldReleaseOrdering)
{
    auto traces = makeTraces(workload::WorkloadKind::Array, 2, 10, 24);
    SimConfig cfg = checkedConfig(SchemeKind::Lad, 2);
    cfg.mutation = MutationKind::DropHeldRelease;
    System sys(cfg, traces);
    PersistencyChecker &chk = runMutant(sys);
    EXPECT_GT(chk.countOf(ViolationKind::HeldReleaseOrdering), 0u)
        << reportOf(sys);
}

TEST(CheckerMutation, StaleFlushBitFlagsFlushBitAccounting)
{
    auto traces = makeTraces(workload::WorkloadKind::Array, 2, 20, 25);
    SimConfig cfg = checkedConfig(SchemeKind::Silo, 2);
    shrinkCaches(cfg);
    cfg.mutation = MutationKind::StaleFlushBit;
    System sys(cfg, traces);
    PersistencyChecker &chk = runMutant(sys);
    EXPECT_GT(chk.countOf(ViolationKind::FlushBitAccounting), 0u)
        << reportOf(sys);
}

TEST(CheckerMutation, SkipCrashUndoFlushFlagsCrashClosure)
{
    // Crash mid-run with open transactions whose partial updates
    // reached PM via evictions; without the battery undo flush the
    // recovered image cannot be closed over committed state.
    bool flagged = false;
    for (std::uint64_t crash_events : {7919u, 12000u, 17389u}) {
        auto traces =
            makeTraces(workload::WorkloadKind::Array, 2, 8, 26, 64);
        SimConfig cfg = checkedConfig(SchemeKind::Silo, 2);
        shrinkCaches(cfg);
        cfg.logBufferEntries = 256;
        cfg.mutation = MutationKind::SkipCrashUndoFlush;
        System sys(cfg, traces);
        PersistencyChecker &chk = runMutantCrash(sys, crash_events);
        flagged = flagged ||
                  chk.countOf(ViolationKind::CrashClosure) > 0 ||
                  chk.countOf(ViolationKind::LogBeforeData) > 0;
    }
    EXPECT_TRUE(flagged)
        << "no crash point exposed the skipped undo flush";
}

TEST(CheckerMutation, DoubleInPlaceFlagsDoublePersist)
{
    auto traces = makeTraces(workload::WorkloadKind::Array, 2, 8, 27, 64);
    SimConfig cfg = checkedConfig(SchemeKind::Silo, 2);
    shrinkCaches(cfg);
    cfg.logBufferEntries = 256;
    cfg.mutation = MutationKind::DoubleInPlace;
    System sys(cfg, traces);
    PersistencyChecker &chk = runMutant(sys);
    EXPECT_GT(chk.countOf(ViolationKind::DoublePersist), 0u)
        << reportOf(sys);
}

// --- Reporting ----------------------------------------------------------

TEST(CheckerReport, ViolationCarriesProvenance)
{
    auto traces = makeTraces(workload::WorkloadKind::Array, 1, 5, 28);
    SimConfig cfg = checkedConfig(SchemeKind::Base, 1);
    cfg.mutation = MutationKind::DropUndoLog;
    System sys(cfg, traces);
    PersistencyChecker &chk = runMutant(sys);
    ASSERT_FALSE(chk.clean());
    const Violation &v = chk.violations().front();
    EXPECT_EQ(v.kind, ViolationKind::LogBeforeData);
    EXPECT_NE(v.addr, 0u);
    EXPECT_FALSE(v.detail.empty());

    std::string text = reportOf(sys);
    EXPECT_NE(text.find("log-before-data"), std::string::npos);
    EXPECT_NE(text.find("addr=0x"), std::string::npos);
}

TEST(CheckerReport, ViolationNamesAreDistinct)
{
    std::set<std::string> names;
    for (ViolationKind k :
         {ViolationKind::LogBeforeData, ViolationKind::CommitNotDurable,
          ViolationKind::HeldReleaseOrdering,
          ViolationKind::FlushBitAccounting, ViolationKind::DoublePersist,
          ViolationKind::TornWrite, ViolationKind::CrashClosure}) {
        names.insert(violationName(k));
    }
    EXPECT_EQ(names.size(), 7u);
}

} // namespace
} // namespace silo::check
