/**
 * @file
 * Tests for the delta-debugging shrinker against synthetic oracles
 * (no simulation): golden minimal reproducers, determinism, and the
 * oracle-call budget.
 */

#include <gtest/gtest.h>

#include "fuzz/shrink.hh"

namespace silo::fuzz
{
namespace
{

using workload::LitmusOp;
using workload::LitmusProgram;
using workload::LitmusThread;
using workload::LitmusTx;
using workload::serializeLitmus;

/** Three threads, several transactions, one "poison" store. */
LitmusProgram
bigProgram()
{
    LitmusProgram p;
    p.name = "shrink-input";
    for (unsigned t = 0; t < 3; ++t) {
        LitmusThread thread;
        for (unsigned i = 0; i < 3; ++i) {
            LitmusTx tx;
            for (unsigned j = 0; j < 4; ++j) {
                tx.ops.push_back({LitmusOp::Kind::Store,
                                  Addr(0x40) * (j + 1),
                                  Word(t * 100 + i * 10 + j)});
            }
            thread.txs.push_back(tx);
        }
        p.threads.push_back(thread);
    }
    // The poison: one store to a unique offset in thread 1, tx 1.
    p.threads[1].txs[1].ops[2] = {LitmusOp::Kind::Store, 0x800, 999};
    return p;
}

/** Fails iff the candidate still contains the poison store. */
bool
containsPoison(const LitmusProgram &p, std::uint64_t)
{
    for (const auto &thread : p.threads)
        for (const auto &tx : thread.txs)
            for (const auto &op : tx.ops)
                if (op.offset == 0x800)
                    return true;
    return false;
}

TEST(Shrink, ReducesToSinglePoisonOp)
{
    ShrinkResult r = shrinkLitmus(bigProgram(), 40, containsPoison);
    ASSERT_EQ(r.program.threads.size(), 1u);
    ASSERT_EQ(r.program.txCount(), 1u);
    ASSERT_EQ(r.program.opCount(), 1u);
    EXPECT_EQ(r.program.threads[0].txs[0].ops[0].offset, 0x800u);
    // The oracle ignores the crash index, so it minimizes all the way
    // down to 1 — never to 0, which would silently convert the crash
    // case into a completion run (different semantics).
    EXPECT_EQ(r.crashIndex, 1u);
    EXPECT_TRUE(containsPoison(r.program, r.crashIndex));
}

TEST(Shrink, DeterministicAcrossRuns)
{
    ShrinkResult a = shrinkLitmus(bigProgram(), 40, containsPoison);
    ShrinkResult b = shrinkLitmus(bigProgram(), 40, containsPoison);
    EXPECT_EQ(serializeLitmus(a.program), serializeLitmus(b.program));
    EXPECT_EQ(a.crashIndex, b.crashIndex);
    EXPECT_EQ(a.oracleCalls, b.oracleCalls);
}

TEST(Shrink, CrashIndexMinimizedOnlyWhileFailing)
{
    // Fails only when the crash lands at or after index 17: the
    // shrinker must stop exactly there, not at zero.
    auto oracle = [](const LitmusProgram &p, std::uint64_t crash) {
        return containsPoison(p, crash) && crash >= 17;
    };
    ShrinkResult r = shrinkLitmus(bigProgram(), 40, oracle);
    EXPECT_EQ(r.crashIndex, 17u);
    EXPECT_EQ(r.program.opCount(), 1u);
}

TEST(Shrink, BudgetBoundsOracleCalls)
{
    ShrinkOptions opts;
    opts.maxOracleCalls = 5;
    ShrinkResult r =
        shrinkLitmus(bigProgram(), 40, containsPoison, opts);
    // Budget exhaustion degrades to a bigger reproducer, never to a
    // passing one.
    EXPECT_LE(r.oracleCalls, 5u);
    EXPECT_TRUE(containsPoison(r.program, r.crashIndex));
    EXPECT_GE(r.program.opCount(), 1u);
}

TEST(Shrink, RejectsNonFailingInput)
{
    auto never = [](const LitmusProgram &, std::uint64_t) {
        return false;
    };
    EXPECT_THROW(shrinkLitmus(bigProgram(), 40, never), FatalError);
}

} // namespace
} // namespace silo::fuzz
