/**
 * @file
 * Replays every committed litmus fixture under tests/check/litmus/
 * and asserts both fixture promises hold: all six schemes run the
 * program clean, and the recorded mutation still produces the recorded
 * violation kind. This is the regression gate a shrunk fuzzer finding
 * graduates into.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "fuzz/fixture.hh"

namespace silo::fuzz
{
namespace
{

std::vector<std::string>
fixturePaths()
{
    std::vector<std::string> out;
    for (const auto &entry : std::filesystem::directory_iterator(
             std::string(SILO_TEST_DIR) + "/check/litmus")) {
        if (entry.path().extension() == ".litmus")
            out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

TEST(FixtureReplay, BatchIsPresent)
{
    // One fixture per mutation kind (7) is the committed floor; the
    // nightly fuzz run can grow the set but never shrink it.
    EXPECT_GE(fixturePaths().size(), 7u);
}

TEST(FixtureReplay, EveryFixtureKeepsItsPromises)
{
    for (const std::string &path : fixturePaths()) {
        SCOPED_TRACE(path);
        LitmusFixture fixture = loadFixtureFile(path);
        for (const std::string &broken : replayFixture(fixture))
            ADD_FAILURE() << broken;
    }
}

TEST(FixtureReplay, ParseRejectsInconsistentMetadata)
{
    LitmusFixture fixture;
    workload::LitmusThread thread;
    workload::LitmusTx tx;
    tx.ops.push_back({workload::LitmusOp::Kind::Store, 0x40, 1});
    thread.txs.push_back(tx);
    fixture.program.threads.push_back(thread);

    // A mutation with expect=clean could never replay successfully;
    // parseFixture must reject it up front.
    fixture.mutation = MutationKind::DropUndoLog;
    fixture.expect = "clean";
    EXPECT_THROW(parseFixture(serializeFixture(fixture)), FatalError);

    // And a violation expectation without a mutation is equally
    // inconsistent (clean schemes must not violate).
    fixture.mutation = MutationKind::None;
    fixture.expect = "log-before-data";
    EXPECT_THROW(parseFixture(serializeFixture(fixture)), FatalError);
}

TEST(FixtureReplay, SerializeParseRoundTrip)
{
    for (const std::string &path : fixturePaths()) {
        SCOPED_TRACE(path);
        LitmusFixture fixture = loadFixtureFile(path);
        LitmusFixture again =
            parseFixture(serializeFixture(fixture));
        EXPECT_EQ(serializeFixture(again), serializeFixture(fixture));
        EXPECT_EQ(again.scheme, fixture.scheme);
        EXPECT_EQ(again.crashIndex, fixture.crashIndex);
        EXPECT_EQ(again.mutation, fixture.mutation);
        EXPECT_EQ(again.expect, fixture.expect);
    }
}

} // namespace
} // namespace silo::fuzz
