/**
 * @file
 * End-to-end tests of the litmus fuzz campaign: generator
 * well-formedness and determinism, the mutation self-test (a seeded
 * checker bug must be found and shrunk to a replayable reproducer),
 * and byte-for-byte reproducibility from the seed.
 */

#include <gtest/gtest.h>

#include "fuzz/campaign.hh"
#include "fuzz/fuzz_runner.hh"
#include "fuzz/litmus_gen.hh"
#include "sim/rng.hh"

namespace silo::fuzz
{
namespace
{

using workload::LitmusProgram;
using workload::serializeLitmus;
using workload::validateLitmus;

TEST(LitmusGen, ProgramsAreValidAndDeterministic)
{
    Rng rng_a(42), rng_b(42), rng_c(43);
    LitmusGenConfig cfg;
    bool differs = false;
    for (unsigned i = 0; i < 20; ++i) {
        LitmusProgram a = generateLitmus(rng_a, cfg, "p");
        LitmusProgram b = generateLitmus(rng_b, cfg, "p");
        LitmusProgram c = generateLitmus(rng_c, cfg, "p");
        EXPECT_NO_THROW(validateLitmus(a));
        EXPECT_EQ(serializeLitmus(a), serializeLitmus(b))
            << "same seed must generate identical programs";
        differs |= serializeLitmus(a) != serializeLitmus(c);
        EXPECT_LE(a.threads.size(), cfg.maxThreads);
        EXPECT_GE(a.threads.size(), cfg.minThreads);
    }
    EXPECT_TRUE(differs) << "different seeds never diverged";
}

TEST(LitmusGen, RejectsInconsistentShape)
{
    Rng rng(1);
    LitmusGenConfig cfg;
    cfg.minThreads = 3;
    cfg.maxThreads = 2;
    EXPECT_THROW(generateLitmus(rng, cfg, "bad"), FatalError);
}

/**
 * The mutation self-test the whole fuzzer exists for: plant a seeded
 * checker-visible bug, and the campaign must find it, classify the
 * violation, and shrink it to a reproducer that still fails.
 */
TEST(FuzzCampaign, FindsAndShrinksSeededMutant)
{
    FuzzOptions opts;
    opts.seed = 7;
    opts.maxPrograms = 2;
    opts.crashStride = 2;
    opts.mutation = MutationKind::DropUndoLog;
    opts.schemes = {SchemeKind::Base};

    FuzzCampaignResult result = runFuzzCampaign(opts);
    ASSERT_FALSE(result.findings.empty())
        << "drop-undo-log must be caught within two programs";
    const FuzzFinding &f = result.findings.front();
    EXPECT_EQ(f.scheme, SchemeKind::Base);
    EXPECT_EQ(f.mutation, MutationKind::DropUndoLog);
    EXPECT_EQ(f.kind, check::ViolationKind::LogBeforeData);
    EXPECT_GT(f.oracleCalls, 0u);
    // Shrinking never grows the case.
    EXPECT_LE(f.shrunk.opCount(), 64u);
    EXPECT_LE(f.shrunkCrashIndex, f.crashIndex);

    // The shrunk reproducer still fails the same way when replayed.
    FuzzCaseConfig cfg;
    cfg.scheme = f.scheme;
    cfg.mutation = f.mutation;
    cfg.crashIndex = f.shrunkCrashIndex;
    FuzzCaseResult replay = runLitmusCase(f.shrunk, cfg);
    bool same_kind = false;
    for (const auto &v : replay.violations)
        same_kind |= v.kind == f.kind;
    EXPECT_TRUE(same_kind);

    // And with the mutation removed, the same case runs clean.
    cfg.mutation = MutationKind::None;
    EXPECT_TRUE(runLitmusCase(f.shrunk, cfg).clean());
}

TEST(FuzzCampaign, FindsSiloFlushBitMutant)
{
    // stale-flush-bit only fires on a mid-transaction eviction, so
    // this doubles as a regression test that generated programs reach
    // that micro-state at all (the conflict-walk pools).
    FuzzOptions opts;
    opts.seed = 7;
    opts.maxPrograms = 3;
    opts.crashStride = 1;
    opts.mutation = MutationKind::StaleFlushBit;
    opts.schemes = {SchemeKind::Silo};

    FuzzCampaignResult result = runFuzzCampaign(opts);
    ASSERT_FALSE(result.findings.empty())
        << "stale-flush-bit must be caught within three programs";
    EXPECT_EQ(result.findings.front().scheme, SchemeKind::Silo);
}

TEST(FuzzCampaign, SummaryIsReproducibleFromSeed)
{
    FuzzOptions opts;
    opts.seed = 42;
    opts.maxPrograms = 2;
    opts.crashStride = 4;
    opts.mutation = MutationKind::SkipCommitMarker;
    opts.schemes = {SchemeKind::Base, SchemeKind::Fwb};

    FuzzCampaignResult a = runFuzzCampaign(opts);
    FuzzCampaignResult b = runFuzzCampaign(opts);
    EXPECT_EQ(a.summaryJson(opts), b.summaryJson(opts));
    EXPECT_EQ(a.casesRun, b.casesRun);
    EXPECT_FALSE(a.budgetExhausted);
}

TEST(FuzzCampaign, CleanSchemesProduceNoFindings)
{
    // A quick true-negative pass: one program, every scheme, stride 3.
    FuzzOptions opts;
    opts.seed = 3;
    opts.maxPrograms = 1;
    opts.crashStride = 3;

    FuzzCampaignResult result = runFuzzCampaign(opts);
    EXPECT_EQ(result.programsRun, 1u);
    EXPECT_GT(result.crashCases, 0u);
    for (const auto &f : result.findings) {
        ADD_FAILURE() << "unexpected violation: "
                      << f.original.toJson();
    }
}

} // namespace
} // namespace silo::fuzz
