/**
 * @file
 * Semantic crash-recovery tests: instead of comparing raw words, these
 * re-open the workload's data structure on top of the *recovered* PM
 * image and check application-level invariants — the strongest form of
 * the paper's atomic-durability guarantee.
 *
 *  - Bank: the sum of all balances is conserved (transfers are atomic).
 *  - RBtree: the recovered tree still satisfies every red-black
 *    invariant (BST order, red-red, equal black heights).
 *  - Queue: head reachability and the count word stay consistent.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "workload/bank_workload.hh"
#include "workload/mem_client.hh"
#include "workload/queue_workload.hh"
#include "workload/rbtree_workload.hh"
#include "workload/trace_gen.hh"

namespace silo::harness
{
namespace
{

/** Read-only MemClient over a recovered media image. */
class MediaClient : public workload::MemClient
{
  public:
    explicit MediaClient(const WordStore &media) : _media(media) {}

    Word load(Addr addr) override { return _media.load(addr); }
    void store(Addr, Word) override
    {
        panic("recovered-image client is read-only");
    }
    void txBegin() override {}
    void txEnd() override {}

  private:
    const WordStore &_media;
};

constexpr SchemeKind testedSchemes[] = {
    SchemeKind::Base, SchemeKind::Fwb, SchemeKind::MorLog,
    SchemeKind::Lad, SchemeKind::Silo, SchemeKind::SwEadr,
};

std::string
schemeTestName(const ::testing::TestParamInfo<SchemeKind> &info)
{
    std::string name = schemeName(info.param);
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class SemanticRecovery : public ::testing::TestWithParam<SchemeKind>
{
  protected:
    /** Crash a run at several points; return the recovered media. */
    template <typename Check>
    void
    sweepCrashes(workload::WorkloadKind kind, Check check)
    {
        for (std::uint64_t crash_at : {300u, 2500u, 12000u, 60000u}) {
            workload::TraceGenConfig tg;
            tg.kind = kind;
            tg.numThreads = 2;
            tg.transactionsPerThread = 40;
            tg.seed = 17;
            auto traces = workload::generateTraces(tg);

            SimConfig cfg;
            cfg.numCores = 2;
            cfg.scheme = GetParam();
            cfg.logBufferEntries = 12;   // provoke Silo overflow too
            System sys(cfg, traces);
            sys.runEvents(crash_at);
            sys.crash();
            sys.recover();
            check(sys, crash_at);
        }
    }
};

TEST_P(SemanticRecovery, BankConservesTotalBalance)
{
    // Reconstruct the workload objects so their internal base
    // addresses match the traced run (deterministic allocation).
    sweepCrashes(workload::WorkloadKind::Bank,
                 [](System &sys, std::uint64_t crash_at) {
        MediaClient media(sys.pm().media());
        for (unsigned t = 0; t < 2; ++t) {
            workload::BankWorkload bank;
            workload::PmHeap heap = workload::PmHeap::forThread(t);
            Rng rng(17 * 1000003 + t);
            // setup() re-derives the same addresses; writes go through
            // a scratch memory we discard.
            WordStore scratch;
            class ScratchClient : public workload::MemClient
            {
              public:
                explicit ScratchClient(WordStore &s) : _s(s) {}
                Word load(Addr a) override { return _s.load(a); }
                void store(Addr a, Word v) override { _s.store(a, v); }
                void txBegin() override {}
                void txEnd() override {}

              private:
                WordStore &_s;
            } scratch_client(scratch);
            bank.setup(scratch_client, heap, rng);

            Word expected = Word(bank.numAccounts()) * 1000;
            Word total = bank.totalBalance(media);
            EXPECT_EQ(total, expected)
                << "thread " << t << " crash@" << crash_at
                << " under " << schemeName(GetParam());
        }
    });
}

TEST_P(SemanticRecovery, RBtreeInvariantsHoldAfterRecovery)
{
    sweepCrashes(workload::WorkloadKind::RBtree,
                 [](System &sys, std::uint64_t crash_at) {
        MediaClient media(sys.pm().media());
        for (unsigned t = 0; t < 2; ++t) {
            workload::RBtreeWorkload tree(1 << 20);
            workload::PmHeap heap = workload::PmHeap::forThread(t);
            Rng rng(17 * 1000003 + t);
            WordStore scratch;
            scratch.loadImage(sys.pm().media());
            class RwClient : public workload::MemClient
            {
              public:
                explicit RwClient(WordStore &s) : _s(s) {}
                Word load(Addr a) override { return _s.load(a); }
                void store(Addr a, Word v) override { _s.store(a, v); }
                void txBegin() override {}
                void txEnd() override {}

              private:
                WordStore &_s;
            } setup_client(scratch);
            // Rebuild the object's root pointer address via setup on a
            // scratch copy, then validate against the real image.
            tree.setup(setup_client, heap, rng);
            EXPECT_GT(tree.validate(media), 0u)
                << "thread " << t << " crash@" << crash_at
                << " under " << schemeName(GetParam());
        }
    });
}

TEST_P(SemanticRecovery, QueueCountMatchesReachableChain)
{
    sweepCrashes(workload::WorkloadKind::Queue,
                 [](System &sys, std::uint64_t crash_at) {
        MediaClient media(sys.pm().media());
        for (unsigned t = 0; t < 2; ++t) {
            // The queue control block is the first line of the arena:
            // [0] head, [1] tail, [2] count.
            Addr control = addr_map::dataArenaBase(t);
            Word head = media.load(control);
            Word count = media.load(control + 2 * wordBytes);
            // Walk the chain from head; it must contain exactly
            // `count` nodes and terminate.
            Word walked = 0;
            for (Word node = head; node && walked <= count + 1;
                 node = media.load(node)) {
                ++walked;
            }
            EXPECT_EQ(walked, count)
                << "thread " << t << " crash@" << crash_at
                << " under " << schemeName(GetParam());
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Schemes, SemanticRecovery,
                         ::testing::ValuesIn(testedSchemes),
                         schemeTestName);

TEST(Determinism, IdenticalConfigGivesIdenticalRun)
{
    auto run_once = [] {
        workload::TraceGenConfig tg;
        tg.kind = workload::WorkloadKind::Tpcc;
        tg.numThreads = 4;
        tg.transactionsPerThread = 50;
        auto traces = workload::generateTraces(tg);
        SimConfig cfg;
        cfg.numCores = 4;
        cfg.scheme = SchemeKind::Silo;
        System sys(cfg, traces);
        sys.run();
        sys.settle();
        sys.drainToMedia();
        return sys.report();
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.mediaWordWrites, b.mediaWordWrites);
    EXPECT_EQ(a.commitStallCycles, b.commitStallCycles);
    EXPECT_EQ(a.wpqAcceptedBytes, b.wpqAcceptedBytes);
}

} // namespace
} // namespace silo::harness
