/**
 * @file
 * End-to-end integration tests: every scheme runs real workloads to
 * completion, commits every transaction, and leaves the PM media image
 * exactly equal to the functional final memory after a clean drain.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "log/fwb_scheme.hh"
#include "workload/trace_gen.hh"

namespace silo::harness
{
namespace
{

workload::WorkloadTraces
makeTraces(workload::WorkloadKind kind, unsigned threads,
           std::uint64_t tx)
{
    workload::TraceGenConfig tg;
    tg.kind = kind;
    tg.numThreads = threads;
    tg.transactionsPerThread = tx;
    tg.seed = 11;
    return workload::generateTraces(tg);
}

SimConfig
smallConfig(SchemeKind scheme, unsigned cores)
{
    SimConfig cfg;
    cfg.numCores = cores;
    cfg.scheme = scheme;
    return cfg;
}

constexpr SchemeKind allSchemes[] = {
    SchemeKind::None, SchemeKind::Base, SchemeKind::Fwb,
    SchemeKind::MorLog, SchemeKind::Lad, SchemeKind::Silo,
    SchemeKind::SwEadr,
};

std::string
schemeParamName(const ::testing::TestParamInfo<SchemeKind> &info)
{
    std::string name = schemeName(info.param);
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class SchemeIntegration : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(SchemeIntegration, HashRunsToCompletionAndMediaMatches)
{
    auto traces = makeTraces(workload::WorkloadKind::Hash, 2, 40);
    System sys(smallConfig(GetParam(), 2), traces);
    sys.run();

    auto report = sys.report();
    EXPECT_EQ(report.committedTransactions, 2u * 40);
    EXPECT_GT(report.ticks, 0u);

    sys.drainToMedia();
    for (const auto &[addr, value] : traces.finalMemory) {
        ASSERT_EQ(sys.pm().media().load(addr), value)
            << "addr 0x" << std::hex << addr;
    }
}

TEST_P(SchemeIntegration, TpccRunsToCompletionAndMediaMatches)
{
    auto traces = makeTraces(workload::WorkloadKind::Tpcc, 2, 20);
    System sys(smallConfig(GetParam(), 2), traces);
    sys.run();
    EXPECT_EQ(sys.report().committedTransactions, 2u * 20);

    sys.drainToMedia();
    for (const auto &[addr, value] : traces.finalMemory) {
        ASSERT_EQ(sys.pm().media().load(addr), value)
            << "addr 0x" << std::hex << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeIntegration,
                         ::testing::ValuesIn(allSchemes),
                         schemeParamName);

TEST(SystemBehaviour, SiloCommitsFasterThanBase)
{
    auto traces = makeTraces(workload::WorkloadKind::Hash, 2, 60);

    System base(smallConfig(SchemeKind::Base, 2), traces);
    base.run();
    System silo(smallConfig(SchemeKind::Silo, 2), traces);
    silo.run();

    EXPECT_LT(silo.report().ticks, base.report().ticks);
    // Silo's commit wait is exactly the on-chip ACK round trip.
    EXPECT_EQ(silo.report().commitStallCycles,
              2u * 60 * silo.config().commitAckCycles);
}

TEST(SystemBehaviour, SiloWritesLessMediaThanLogAsBackupSchemes)
{
    auto traces = makeTraces(workload::WorkloadKind::Btree, 2, 60);

    auto words_for = [&](SchemeKind kind) {
        System sys(smallConfig(kind, 2), traces);
        sys.run();
        sys.drainToMedia();
        return sys.report().mediaWordWrites;
    };

    auto silo_words = words_for(SchemeKind::Silo);
    EXPECT_LT(silo_words, words_for(SchemeKind::Base));
    EXPECT_LT(silo_words, words_for(SchemeKind::Fwb));
    EXPECT_LT(silo_words, words_for(SchemeKind::MorLog));
}

TEST(SystemBehaviour, SiloWritesNoLogRecordsInFailureFreeSmallTx)
{
    // Bank transactions write 4 words — far below the 20-entry buffer,
    // so no overflow and no log-region writes at all in a crash-free
    // run ("Log as Data", §III-D).
    auto traces = makeTraces(workload::WorkloadKind::Bank, 2, 80);
    System sys(smallConfig(SchemeKind::Silo, 2), traces);
    sys.run();
    EXPECT_EQ(sys.report().logRecordsWritten, 0u);
    sys.drainToMedia();
    EXPECT_EQ(sys.pm().logRegionWordWrites(), 0u);
}

TEST(SystemBehaviour, BaseWritesLogRecordPerNonLocalStore)
{
    auto traces = makeTraces(workload::WorkloadKind::Bank, 1, 50);
    System sys(smallConfig(SchemeKind::Base, 1), traces);
    sys.run();
    auto stats = workload::analyzeWriteSets(traces.threads[0]);
    // One undo+redo record per store plus one commit marker per tx.
    EXPECT_EQ(sys.report().logRecordsWritten,
              std::uint64_t(stats.avgStoreOps * 50) + 50);
}

TEST(SystemBehaviour, ThroughputReportedConsistently)
{
    auto traces = makeTraces(workload::WorkloadKind::Queue, 1, 30);
    System sys(smallConfig(SchemeKind::Silo, 1), traces);
    sys.run();
    auto report = sys.report();
    EXPECT_NEAR(report.txPerMillionCycles,
                30.0 * 1e6 / double(report.ticks), 1e-9);
}

TEST(SystemBehaviour, FwbWalkerForcesWritebacks)
{
    auto traces = makeTraces(workload::WorkloadKind::Hash, 1, 40);
    SimConfig cfg = smallConfig(SchemeKind::Fwb, 1);
    cfg.fwbIntervalCycles = 5000;   // walk often in this tiny run
    System sys(cfg, traces);
    sys.run();
    auto &scheme = dynamic_cast<log::FwbScheme &>(sys.scheme());
    EXPECT_GT(scheme.walkerWritebacks(), 0u);
}

TEST(SystemBehaviour, MismatchedTraceThreadsIsFatal)
{
    auto traces = makeTraces(workload::WorkloadKind::Bank, 1, 5);
    EXPECT_THROW(System(smallConfig(SchemeKind::Silo, 2), traces),
                 FatalError);
}

} // namespace
} // namespace silo::harness
