/**
 * @file
 * Crash-injection property tests: atomic durability must hold at every
 * crash point.
 *
 * A run is stopped after K events, the crash path executes (battery
 * flush, ADR drain, volatile-cache loss), recovery runs, and the PM
 * media image must equal the oracle: the initial image plus exactly
 * the stores of every durably committed transaction — no partial
 * transactions (atomicity), no lost committed transactions
 * (durability). §III-G / Fig. 10 for Silo; the baselines' WAL recovery
 * is held to the same standard.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "harness/system.hh"
#include "workload/trace_gen.hh"

namespace silo::harness
{
namespace
{

struct CrashCase
{
    SchemeKind scheme;
    workload::WorkloadKind workload;
};

std::string
caseName(const ::testing::TestParamInfo<CrashCase> &info)
{
    std::string name = std::string(schemeName(info.param.scheme)) +
                       "_" + workload::workloadName(info.param.workload);
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            c = '_';
    }
    return name;
}

class CrashRecovery : public ::testing::TestWithParam<CrashCase>
{
  protected:
    /** Crash after @p crash_events events and check the oracle. */
    void
    crashAndCheck(std::uint64_t crash_events, std::uint64_t seed)
    {
        workload::TraceGenConfig tg;
        tg.kind = GetParam().workload;
        tg.numThreads = 2;
        tg.transactionsPerThread = 25;
        tg.seed = seed;
        auto traces = workload::generateTraces(tg);

        SimConfig cfg;
        cfg.numCores = 2;
        cfg.scheme = GetParam().scheme;
        // A small log buffer provokes Silo overflow paths too.
        cfg.logBufferEntries = 12;

        System sys(cfg, traces);
        bool more = sys.runEvents(crash_events);
        sys.crash();
        sys.recover();

        // Oracle: initial image + all stores of durably committed
        // transactions, in trace order per thread. A commit that was
        // in flight at the crash counts if the scheme durably
        // recorded it (its done() just had not fired yet).
        WordStore expected = traces.initialMemory;
        for (unsigned t = 0; t < 2; ++t) {
            std::size_t upto = sys.coreAt(t).committedOpIndex();
            if (sys.scheme().lastTxCommittedAtCrash(t))
                upto = std::max(upto,
                                sys.coreAt(t).commitRequestedOpIndex());
            for (std::size_t i = 0; i < upto; ++i) {
                const auto &op = traces.threads[t].ops[i];
                if (op.kind == workload::TxOp::Kind::Store)
                    expected[op.addr] = op.value;
            }
        }

        std::uint64_t checked = 0;
        for (const auto &[addr, value] : expected) {
            ASSERT_EQ(sys.pm().media().load(addr), value)
                << "addr 0x" << std::hex << addr << std::dec
                << " after crash at " << crash_events << " events"
                << " (committed: t0="
                << sys.coreAt(0).committedTx() << ", t1="
                << sys.coreAt(1).committedTx() << ")";
            ++checked;
        }
        EXPECT_GT(checked, 0u);
        (void)more;
    }
};

TEST_P(CrashRecovery, EarlyCrash)
{
    crashAndCheck(200, 3);
}

TEST_P(CrashRecovery, MidCrash)
{
    crashAndCheck(5000, 4);
}

TEST_P(CrashRecovery, LateCrash)
{
    crashAndCheck(40000, 5);
}

TEST_P(CrashRecovery, SweepOfCrashPoints)
{
    // Odd, prime-ish offsets to land in varied micro-states.
    for (std::uint64_t k : {97u, 503u, 1999u, 7919u, 17389u})
        crashAndCheck(k, 6);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrashRecovery,
    ::testing::Values(
        CrashCase{SchemeKind::Base, workload::WorkloadKind::Bank},
        CrashCase{SchemeKind::Base, workload::WorkloadKind::Hash},
        CrashCase{SchemeKind::Fwb, workload::WorkloadKind::Bank},
        CrashCase{SchemeKind::Fwb, workload::WorkloadKind::Hash},
        CrashCase{SchemeKind::MorLog, workload::WorkloadKind::Bank},
        CrashCase{SchemeKind::MorLog, workload::WorkloadKind::Hash},
        CrashCase{SchemeKind::Lad, workload::WorkloadKind::Bank},
        CrashCase{SchemeKind::Lad, workload::WorkloadKind::Hash},
        CrashCase{SchemeKind::Silo, workload::WorkloadKind::Bank},
        CrashCase{SchemeKind::Silo, workload::WorkloadKind::Hash},
        CrashCase{SchemeKind::Silo, workload::WorkloadKind::Btree},
        CrashCase{SchemeKind::Silo, workload::WorkloadKind::Queue},
        CrashCase{SchemeKind::Silo, workload::WorkloadKind::Tpcc},
        CrashCase{SchemeKind::Silo, workload::WorkloadKind::RBtree},
        CrashCase{SchemeKind::SwEadr, workload::WorkloadKind::Bank},
        CrashCase{SchemeKind::SwEadr, workload::WorkloadKind::Hash}),
    caseName);

TEST(CrashSemantics, CrashAfterFullRunPreservesEverything)
{
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Bank;
    tg.numThreads = 1;
    tg.transactionsPerThread = 30;
    auto traces = workload::generateTraces(tg);

    SimConfig cfg;
    cfg.numCores = 1;
    cfg.scheme = SchemeKind::Silo;
    System sys(cfg, traces);
    sys.run();
    sys.crash();
    sys.recover();

    for (const auto &[addr, value] : traces.finalMemory)
        ASSERT_EQ(sys.pm().media().load(addr), value);
}

TEST(CrashSemantics, RecoverWithoutCrashPanics)
{
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Bank;
    tg.numThreads = 1;
    tg.transactionsPerThread = 1;
    auto traces = workload::generateTraces(tg);
    SimConfig cfg;
    cfg.numCores = 1;
    System sys(cfg, traces);
    EXPECT_THROW(sys.recover(), PanicError);
}

TEST(CrashSemantics, DoubleCrashPanics)
{
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Bank;
    tg.numThreads = 1;
    tg.transactionsPerThread = 1;
    auto traces = workload::generateTraces(tg);
    SimConfig cfg;
    cfg.numCores = 1;
    System sys(cfg, traces);
    sys.runEvents(10);
    sys.crash();
    EXPECT_THROW(sys.crash(), PanicError);
}

} // namespace
} // namespace silo::harness
