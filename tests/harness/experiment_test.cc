/**
 * @file
 * envOr() must either return a faithfully parsed unsigned knob or
 * refuse loudly: silently mapping SILO_TX=abc to 0 (the old
 * std::stoull behaviour) turns a typo into a zero-transaction run
 * that "passes". Every malformed shape gets a fatal() naming the
 * variable.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/experiment.hh"
#include "sim/logging.hh"

namespace silo::harness
{
namespace
{

// silo-lint: allow(env-doc-parity) synthetic knob that exists only inside this test; documenting it would mislead users
constexpr const char *knob = "SILO_TEST_KNOB";

/** Sets the knob for one test and always unsets it on exit. */
class EnvOr : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        unsetenv(knob);   // NOLINT(concurrency-mt-unsafe)
    }

    void set(const char *value)
    {
        setenv(knob, value, 1);   // NOLINT(concurrency-mt-unsafe)
    }

    /** Expect fatal() whose message names the offending variable. */
    void
    expectFatal(const char *value)
    {
        set(value);
        try {
            envOr(knob, 1);
            FAIL() << "envOr accepted " << knob << "=\"" << value
                   << "\"";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(knob),
                      std::string::npos)
                << "fatal message must name the variable: "
                << e.what();
        }
    }
};

TEST_F(EnvOr, UnsetReturnsFallback)
{
    unsetenv(knob);
    EXPECT_EQ(envOr(knob, 123u), 123u);
}

TEST_F(EnvOr, EmptyReturnsFallback)
{
    set("");
    EXPECT_EQ(envOr(knob, 7u), 7u);
}

TEST_F(EnvOr, ParsesDecimal)
{
    set("500");
    EXPECT_EQ(envOr(knob, 1u), 500u);
}

TEST_F(EnvOr, ParsesZero)
{
    set("0");
    EXPECT_EQ(envOr(knob, 1u), 0u);
}

TEST_F(EnvOr, ParsesUint64Max)
{
    set("18446744073709551615");
    EXPECT_EQ(envOr(knob, 1u), UINT64_MAX);
}

TEST_F(EnvOr, RejectsGarbage)
{
    expectFatal("abc");
}

TEST_F(EnvOr, RejectsNegative)
{
    expectFatal("-5");
}

TEST_F(EnvOr, RejectsTrailingJunk)
{
    expectFatal("10x");
}

TEST_F(EnvOr, RejectsLeadingWhitespace)
{
    expectFatal(" 7");
}

TEST_F(EnvOr, RejectsExplicitPlusSign)
{
    expectFatal("+7");
}

TEST_F(EnvOr, RejectsHexNotation)
{
    expectFatal("0x10");
}

TEST_F(EnvOr, RejectsFractional)
{
    expectFatal("2.5");
}

TEST_F(EnvOr, RejectsOverflow)
{
    expectFatal("18446744073709551616");   // UINT64_MAX + 1
}

} // namespace
} // namespace silo::harness
