/**
 * @file
 * Regression tests pinning the paper's headline claims at reduced
 * scale, so a future change that silently breaks a reproduced shape
 * fails CI rather than only showing in the bench output.
 *
 * The thresholds are deliberately looser than the full-scale bench
 * results (fewer transactions here -> more variance), but tight
 * enough that a regression to "no effect" cannot pass.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "silo/silo_scheme.hh"

namespace silo::harness
{
namespace
{

struct Cell
{
    SimReport report;
};

/** Run scheme x workload at 4 cores, 150 tx/thread. */
SimReport
run(SchemeKind scheme, workload::WorkloadKind kind,
    TraceCache &cache)
{
    workload::TraceGenConfig tg;
    tg.kind = kind;
    tg.numThreads = 4;
    tg.transactionsPerThread = 150;
    const auto &traces = cache.get(tg);
    SimConfig cfg;
    cfg.numCores = 4;
    cfg.scheme = scheme;
    return runCell(cfg, traces);
}

class PaperClaims : public ::testing::Test
{
  protected:
    static TraceCache cache;
};

TraceCache PaperClaims::cache;

TEST_F(PaperClaims, SiloReducesMediaWritesVersusLogAsBackup)
{
    // §VI-B: Silo cuts PM media writes by ~76.5% vs MorLog and ~82%
    // vs FWB on average. At this scale require >= 55% on Hash.
    auto silo_rep = run(SchemeKind::Silo, workload::WorkloadKind::Hash,
                        cache);
    auto mor = run(SchemeKind::MorLog, workload::WorkloadKind::Hash,
                   cache);
    auto fwb = run(SchemeKind::Fwb, workload::WorkloadKind::Hash,
                   cache);
    double vs_mor = 1.0 - double(silo_rep.mediaWordWrites) /
                              double(mor.mediaWordWrites);
    double vs_fwb = 1.0 - double(silo_rep.mediaWordWrites) /
                              double(fwb.mediaWordWrites);
    EXPECT_GT(vs_mor, 0.55);
    EXPECT_GT(vs_fwb, 0.55);
}

TEST_F(PaperClaims, SiloWriteTrafficApproximatesLad)
{
    // §VI-B: "Silo ... exhibits approximate write traffic with LAD."
    auto silo_rep = run(SchemeKind::Silo, workload::WorkloadKind::Hash,
                        cache);
    auto lad = run(SchemeKind::Lad, workload::WorkloadKind::Hash,
                   cache);
    double ratio = double(silo_rep.mediaWordWrites) /
                   double(lad.mediaWordWrites);
    EXPECT_GT(ratio, 0.6);
    EXPECT_LT(ratio, 1.6);
}

TEST_F(PaperClaims, ThroughputOrderingMatchesFig12)
{
    // §VI-C at 8 cores: Base < FWB/MorLog < LAD < Silo. Use YCSB
    // (a well-behaved middle-of-the-pack benchmark).
    auto base = run(SchemeKind::Base, workload::WorkloadKind::Ycsb,
                    cache);
    auto mor = run(SchemeKind::MorLog, workload::WorkloadKind::Ycsb,
                   cache);
    auto lad = run(SchemeKind::Lad, workload::WorkloadKind::Ycsb,
                   cache);
    auto silo_rep = run(SchemeKind::Silo, workload::WorkloadKind::Ycsb,
                        cache);
    EXPECT_GT(mor.txPerMillionCycles, base.txPerMillionCycles);
    EXPECT_GT(lad.txPerMillionCycles, mor.txPerMillionCycles);
    EXPECT_GT(silo_rep.txPerMillionCycles, lad.txPerMillionCycles);
}

TEST_F(PaperClaims, SiloCommitIsOrderingFree)
{
    // §III-D: Tx_end waits only for the on-chip ACK, never for PM.
    auto silo_rep = run(SchemeKind::Silo, workload::WorkloadKind::Tpcc,
                        cache);
    SimConfig defaults;
    EXPECT_EQ(silo_rep.commitStallCycles,
              silo_rep.committedTransactions *
                  defaults.commitAckCycles);
}

TEST_F(PaperClaims, FailureFreeSiloWritesNoLogs)
{
    // "Log as Data": without crashes or overflow, the log region
    // stays untouched. Bank/TATP write sets are far below 20 entries.
    for (auto kind : {workload::WorkloadKind::Bank,
                      workload::WorkloadKind::Tatp}) {
        auto rep = run(SchemeKind::Silo, kind, cache);
        EXPECT_EQ(rep.logRecordsWritten, 0u)
            << workload::workloadName(kind);
    }
}

TEST_F(PaperClaims, ArrayIgnoranceRateNearPaper)
{
    // §VI-D: ~90.4% of Array's logs are ignored (silent stores).
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Array;
    tg.numThreads = 1;
    tg.transactionsPerThread = 200;
    const auto &traces = cache.get(tg);
    SimConfig cfg;
    cfg.numCores = 1;
    cfg.scheme = SchemeKind::Silo;
    System sys(cfg, traces);
    sys.run();
    const auto &red = dynamic_cast<silo_scheme::SiloScheme &>(
                          sys.scheme()).reductionStats();
    double rate = double(red.ignored.value()) /
                  red.totalLogsPerTx.sum();
    EXPECT_GT(rate, 0.80);
    EXPECT_LT(rate, 0.95);
}

TEST_F(PaperClaims, TwentyEntryBufferHoldsEvaluationWriteSets)
{
    // §VI-D: a 20-entry buffer suffices — Hash peaks at 20 remaining.
    for (auto kind : {workload::WorkloadKind::Hash,
                      workload::WorkloadKind::Ycsb,
                      workload::WorkloadKind::Queue}) {
        workload::TraceGenConfig tg;
        tg.kind = kind;
        tg.numThreads = 1;
        tg.transactionsPerThread = 200;
        const auto &traces = cache.get(tg);
        SimConfig cfg;
        cfg.numCores = 1;
        cfg.scheme = SchemeKind::Silo;
        cfg.logBufferEntries = 4096;   // observe, don't clip
        System sys(cfg, traces);
        sys.run();
        const auto &red = dynamic_cast<silo_scheme::SiloScheme &>(
                              sys.scheme()).reductionStats();
        EXPECT_LE(red.maxRemainingLogs, 20u)
            << workload::workloadName(kind);
    }
}

TEST_F(PaperClaims, StatsDumpHasComponentLines)
{
    auto rep = run(SchemeKind::Silo, workload::WorkloadKind::Bank,
                   cache);
    (void)rep;
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Bank;
    tg.numThreads = 4;
    tg.transactionsPerThread = 150;
    const auto &traces = cache.get(tg);
    SimConfig cfg;
    cfg.numCores = 4;
    System sys(cfg, traces);
    sys.run();
    std::ostringstream os;
    sys.printStats(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("pm.media_word_writes"), std::string::npos);
    EXPECT_NE(text.find("mc.wpq_writes"), std::string::npos);
    EXPECT_NE(text.find("l1d0.hits"), std::string::npos);
    EXPECT_NE(text.find("l3.misses"), std::string::npos);
}

} // namespace
} // namespace silo::harness
