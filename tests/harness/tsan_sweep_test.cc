/**
 * @file
 * ThreadSanitizer gate for the parallel sweep engine and the stats
 * registry. Built against a TSan-instrumented copy of the library
 * (`silo_tsan` in tests/CMakeLists.txt) and registered as the tier-1
 * `tsan_sweep` ctest with SILO_JOBS=8 in the environment, this runs a
 * real (scheme × workload) matrix — trace pre-generation, the
 * work-stealing fan-out, per-cell System/stats construction, progress
 * accounting and JSON serialization — so any data race in the engine
 * fails the pre-commit gate with a TSan report instead of surfacing
 * as a once-a-month flaky digest mismatch.
 *
 * The byte-identity assertion doubles as a determinism check under
 * instrumentation: TSan's scheduler perturbation is exactly the kind
 * of timing shift that would expose completion-order leakage.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace silo::harness
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** 3 schemes x 3 workloads: enough cells to keep 8 workers busy. */
std::vector<CellSpec>
raceMatrix()
{
    constexpr SchemeKind schemes[] = {
        SchemeKind::Silo, SchemeKind::Base, SchemeKind::Lad};
    constexpr workload::WorkloadKind workloads[] = {
        workload::WorkloadKind::Hash, workload::WorkloadKind::Array,
        workload::WorkloadKind::Queue};
    std::vector<CellSpec> specs;
    for (auto scheme : schemes) {
        for (auto wl : workloads) {
            CellSpec spec;
            spec.trace.kind = wl;
            spec.trace.numThreads = 2;
            spec.trace.transactionsPerThread = 15;
            spec.sim.numCores = 2;
            spec.sim.scheme = scheme;
            spec.label = std::string(schemeName(scheme)) + "/" +
                         workload::workloadName(wl);
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

TEST(TsanSweep, ParallelSweepRunsRaceFreeAndStaysDeterministic)
{
    // jobs = 0 defers to $SILO_JOBS — the ctest wrapper sets 8, so
    // the work-stealing pool really contends under TSan. Parallel
    // trace generation happens here too (9 cells, 3 unique configs).
    Sweep parallel({.jobs = 0, .progress = false});
    for (auto &spec : raceMatrix())
        parallel.add(spec);
    EXPECT_GE(parallel.jobs(), 2u)
        << "tsan_sweep must run with parallel workers (SILO_JOBS)";
    parallel.run();

    Sweep serial({.jobs = 1, .progress = false});
    for (auto &spec : raceMatrix())
        serial.add(spec);
    serial.run();

    ASSERT_EQ(parallel.results().size(), serial.results().size());
    for (std::size_t i = 0; i < serial.results().size(); ++i) {
        SCOPED_TRACE(serial.specs()[i].label);
        EXPECT_EQ(serial.results()[i].report.committedTransactions,
                  2u * 15);
        // The stats registry ran on worker threads: every cell must
        // carry its own complete silo-stats-v1 document.
        EXPECT_NE(parallel.results()[i].report.statsJson.find(
                      "\"schema\": \"silo-stats-v1\""),
                  std::string::npos);
        EXPECT_EQ(parallel.results()[i].report.statsJson,
                  serial.results()[i].report.statsJson);
    }

    std::string parallel_json =
        ::testing::TempDir() + "tsan_sweep_parallel.json";
    std::string serial_json =
        ::testing::TempDir() + "tsan_sweep_serial.json";
    parallel.writeJson(parallel_json, "tsan_sweep");
    serial.writeJson(serial_json, "tsan_sweep");
    std::string a = slurp(parallel_json);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, slurp(serial_json))
        << "TSan-instrumented parallel JSON diverged from serial";
}

} // namespace
} // namespace silo::harness
