/**
 * @file
 * The sweep engine's determinism contract: a parallel run must be
 * indistinguishable from a serial run — every SimReport field equal,
 * results in spec order regardless of completion order (proved with
 * an adversarial per-cell sleep), the JSON output byte-identical —
 * and the trace cache must generate each unique TraceGenConfig
 * exactly once, sharing one trace object between cells.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "harness/sweep.hh"

namespace silo::harness
{
namespace
{

/** A small 2-scheme x 3-workload matrix (cheap but non-trivial). */
std::vector<CellSpec>
smallMatrix()
{
    constexpr SchemeKind schemes[] = {SchemeKind::Silo,
                                      SchemeKind::Base};
    constexpr workload::WorkloadKind workloads[] = {
        workload::WorkloadKind::Hash, workload::WorkloadKind::Array,
        workload::WorkloadKind::Queue};
    std::vector<CellSpec> specs;
    for (auto scheme : schemes) {
        for (auto wl : workloads) {
            CellSpec spec;
            spec.trace.kind = wl;
            spec.trace.numThreads = 2;
            spec.trace.transactionsPerThread = 20;
            spec.sim.numCores = 2;
            spec.sim.scheme = scheme;
            spec.label = std::string(schemeName(scheme)) + "/" +
                         workload::workloadName(wl);
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

void
expectReportsEqual(const SimReport &a, const SimReport &b,
                   const std::string &label)
{
    EXPECT_EQ(a.committedTransactions, b.committedTransactions)
        << label;
    EXPECT_EQ(a.ticks, b.ticks) << label;
    EXPECT_EQ(a.txPerMillionCycles, b.txPerMillionCycles) << label;
    EXPECT_EQ(a.mediaWordWrites, b.mediaWordWrites) << label;
    EXPECT_EQ(a.mediaLineWrites, b.mediaLineWrites) << label;
    EXPECT_EQ(a.dataRegionWordWrites, b.dataRegionWordWrites) << label;
    EXPECT_EQ(a.logRegionWordWrites, b.logRegionWordWrites) << label;
    EXPECT_EQ(a.logRecordsWritten, b.logRecordsWritten) << label;
    EXPECT_EQ(a.commitStallCycles, b.commitStallCycles) << label;
    EXPECT_EQ(a.storeStallCycles, b.storeStallCycles) << label;
    EXPECT_EQ(a.wpqFullStalls, b.wpqFullStalls) << label;
    EXPECT_EQ(a.wpqAcceptedWrites, b.wpqAcceptedWrites) << label;
    EXPECT_EQ(a.wpqAcceptedBytes, b.wpqAcceptedBytes) << label;
    EXPECT_EQ(a.statsJson, b.statsJson) << label;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(SweepDeterminism, SerialAndParallelReportsIdentical)
{
    Sweep serial({.jobs = 1, .progress = false});
    Sweep parallel({.jobs = 8, .progress = false});
    for (auto &spec : smallMatrix())
        serial.add(spec);
    for (auto &spec : smallMatrix())
        parallel.add(spec);

    serial.run();
    parallel.run();
    ASSERT_EQ(serial.results().size(), parallel.results().size());
    for (std::size_t i = 0; i < serial.results().size(); ++i) {
        SCOPED_TRACE(serial.specs()[i].label);
        // Sanity: the cells did real work.
        EXPECT_EQ(serial.results()[i].report.committedTransactions,
                  2u * 20);
        expectReportsEqual(serial.results()[i].report,
                           parallel.results()[i].report,
                           serial.specs()[i].label);
    }

    std::string serial_json =
        ::testing::TempDir() + "sweep_serial.json";
    std::string parallel_json =
        ::testing::TempDir() + "sweep_parallel.json";
    serial.writeJson(serial_json, "sweep_test");
    parallel.writeJson(parallel_json, "sweep_test");
    std::string a = slurp(serial_json);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, slurp(parallel_json))
        << "serial and parallel JSON must be byte-identical";
}

TEST(SweepDeterminism, ResultOrderMatchesSpecOrderUnderAdversarialSleep)
{
    // Give every cell a distinguishable report (different tx count)
    // and delay earlier cells the most, so completion order is the
    // reverse of spec order.
    constexpr std::size_t n = 6;
    Sweep sweep({.jobs = unsigned(n), .progress = false});
    for (std::size_t i = 0; i < n; ++i) {
        CellSpec spec;
        spec.trace.kind = workload::WorkloadKind::Array;
        spec.trace.numThreads = 1;
        spec.trace.transactionsPerThread = 5 + i;
        spec.sim.numCores = 1;
        spec.sim.scheme = SchemeKind::Silo;
        spec.label = "cell" + std::to_string(i);
        sweep.add(std::move(spec));
    }
    sweep.setTestHooks({.onCellStart = [](std::size_t index) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20 * (5 - index)));
    }});

    sweep.run();
    ASSERT_EQ(sweep.results().size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sweep.results()[i].report.committedTransactions,
                  5 + i)
            << "result slot " << i
            << " does not hold the cell added " << i << "th";
    }
}

TEST(SweepTraceCache, SharedConfigIsGeneratedOnceAndPointerShared)
{
    Sweep sweep({.jobs = 4, .progress = false});
    workload::TraceGenConfig shared;
    shared.kind = workload::WorkloadKind::Hash;
    shared.numThreads = 2;
    shared.transactionsPerThread = 15;

    CellSpec a;
    a.trace = shared;
    a.sim.numCores = 2;
    a.sim.scheme = SchemeKind::Silo;
    a.label = "silo";
    CellSpec b;
    b.trace = shared;
    b.sim.numCores = 2;
    b.sim.scheme = SchemeKind::Base;
    b.label = "base";
    CellSpec c;
    c.trace = shared;
    c.trace.seed = shared.seed + 1;   // unique config
    c.sim.numCores = 2;
    c.sim.scheme = SchemeKind::Silo;
    c.label = "silo-reseeded";
    sweep.add(std::move(a));
    sweep.add(std::move(b));
    sweep.add(std::move(c));

    sweep.run();
    ASSERT_EQ(sweep.results().size(), 3u);
    EXPECT_NE(sweep.results()[0].traces, nullptr);
    EXPECT_EQ(sweep.results()[0].traces, sweep.results()[1].traces)
        << "cells sharing a TraceGenConfig must observe the same "
           "trace object";
    EXPECT_NE(sweep.results()[0].traces, sweep.results()[2].traces);
    EXPECT_EQ(sweep.traceCache().generationCount(), 2u)
        << "the engine must generate each unique config exactly once";
}

TEST(SweepStats, StatsJsonEmbeddedPerCellAndRemovableViaEnv)
{
    Sweep sweep({.jobs = 2, .progress = false});
    for (auto &spec : smallMatrix())
        sweep.add(spec);
    sweep.run();
    for (const auto &r : sweep.results()) {
        EXPECT_NE(r.report.statsJson.find(
                      "\"schema\": \"silo-stats-v1\""),
                  std::string::npos);
    }

    std::string with_path = ::testing::TempDir() + "sweep_stats.json";
    std::string without_path =
        ::testing::TempDir() + "sweep_nostats.json";
    sweep.writeJson(with_path, "sweep_test");
    ASSERT_EQ(setenv("SILO_STATS_JSON", "0", 1), 0);
    sweep.writeJson(without_path, "sweep_test");
    unsetenv("SILO_STATS_JSON");

    std::string with = slurp(with_path);
    std::string without = slurp(without_path);
    ASSERT_FALSE(with.empty());
    ASSERT_FALSE(without.empty());
    EXPECT_NE(with.find("\"stats\": {"), std::string::npos);
    EXPECT_EQ(without.find("\"stats\": {"), std::string::npos)
        << "SILO_STATS_JSON=0 must omit the per-cell stats blocks";
    EXPECT_LT(without.size(), with.size());
}

TEST(TracePath, InsertsCellCoordinatesBeforeExtension)
{
    CellSpec spec;
    spec.sim.scheme = SchemeKind::Silo;
    spec.sim.numCores = 4;
    spec.trace.kind = workload::WorkloadKind::Hash;
    EXPECT_EQ(tracePathFor("/tmp/t/trace.json", spec),
              "/tmp/t/trace-Silo-Hash-4c.json");
    EXPECT_EQ(tracePathFor("trace", spec), "trace-Silo-Hash-4c.json");
}

TEST(SweepTraceCache, RerunGeneratesNothingNew)
{
    Sweep sweep({.jobs = 2, .progress = false});
    for (auto &spec : smallMatrix())
        sweep.add(spec);
    sweep.run();
    std::uint64_t after_first = sweep.traceCache().generationCount();
    EXPECT_EQ(after_first, 3u);   // three workloads, schemes share
    sweep.run();
    EXPECT_EQ(sweep.traceCache().generationCount(), after_first);
}

} // namespace
} // namespace silo::harness
