/**
 * @file
 * The sweep engine's determinism contract: a parallel run must be
 * indistinguishable from a serial run — every SimReport field equal,
 * results in spec order regardless of completion order (proved with
 * an adversarial per-cell sleep), the JSON output byte-identical —
 * and the trace cache must generate each unique TraceGenConfig
 * exactly once, sharing one trace object between cells.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "harness/sweep.hh"
#include "sim/sha256.hh"

namespace silo::harness
{
namespace
{

/** A small 2-scheme x 3-workload matrix (cheap but non-trivial). */
std::vector<CellSpec>
smallMatrix()
{
    constexpr SchemeKind schemes[] = {SchemeKind::Silo,
                                      SchemeKind::Base};
    constexpr workload::WorkloadKind workloads[] = {
        workload::WorkloadKind::Hash, workload::WorkloadKind::Array,
        workload::WorkloadKind::Queue};
    std::vector<CellSpec> specs;
    for (auto scheme : schemes) {
        for (auto wl : workloads) {
            CellSpec spec;
            spec.trace.kind = wl;
            spec.trace.numThreads = 2;
            spec.trace.transactionsPerThread = 20;
            spec.sim.numCores = 2;
            spec.sim.scheme = scheme;
            spec.label = std::string(schemeName(scheme)) + "/" +
                         workload::workloadName(wl);
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

void
expectReportsEqual(const SimReport &a, const SimReport &b,
                   const std::string &label)
{
    EXPECT_EQ(a.committedTransactions, b.committedTransactions)
        << label;
    EXPECT_EQ(a.ticks, b.ticks) << label;
    EXPECT_EQ(a.txPerMillionCycles, b.txPerMillionCycles) << label;
    EXPECT_EQ(a.mediaWordWrites, b.mediaWordWrites) << label;
    EXPECT_EQ(a.mediaLineWrites, b.mediaLineWrites) << label;
    EXPECT_EQ(a.dataRegionWordWrites, b.dataRegionWordWrites) << label;
    EXPECT_EQ(a.logRegionWordWrites, b.logRegionWordWrites) << label;
    EXPECT_EQ(a.logRecordsWritten, b.logRecordsWritten) << label;
    EXPECT_EQ(a.commitStallCycles, b.commitStallCycles) << label;
    EXPECT_EQ(a.storeStallCycles, b.storeStallCycles) << label;
    EXPECT_EQ(a.wpqFullStalls, b.wpqFullStalls) << label;
    EXPECT_EQ(a.wpqAcceptedWrites, b.wpqAcceptedWrites) << label;
    EXPECT_EQ(a.wpqAcceptedBytes, b.wpqAcceptedBytes) << label;
    EXPECT_EQ(a.statsJson, b.statsJson) << label;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(SweepDeterminism, SerialAndParallelReportsIdentical)
{
    Sweep serial({.jobs = 1, .progress = false});
    Sweep parallel({.jobs = 8, .progress = false});
    for (auto &spec : smallMatrix())
        serial.add(spec);
    for (auto &spec : smallMatrix())
        parallel.add(spec);

    serial.run();
    parallel.run();
    ASSERT_EQ(serial.results().size(), parallel.results().size());
    for (std::size_t i = 0; i < serial.results().size(); ++i) {
        SCOPED_TRACE(serial.specs()[i].label);
        // Sanity: the cells did real work.
        EXPECT_EQ(serial.results()[i].report.committedTransactions,
                  2u * 20);
        expectReportsEqual(serial.results()[i].report,
                           parallel.results()[i].report,
                           serial.specs()[i].label);
    }

    std::string serial_json =
        ::testing::TempDir() + "sweep_serial.json";
    std::string parallel_json =
        ::testing::TempDir() + "sweep_parallel.json";
    serial.writeJson(serial_json, "sweep_test");
    parallel.writeJson(parallel_json, "sweep_test");
    std::string a = slurp(serial_json);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, slurp(parallel_json))
        << "serial and parallel JSON must be byte-identical";
}

TEST(SweepDeterminism, ResultOrderMatchesSpecOrderUnderAdversarialSleep)
{
    // Give every cell a distinguishable report (different tx count)
    // and delay earlier cells the most, so completion order is the
    // reverse of spec order.
    constexpr std::size_t n = 6;
    Sweep sweep({.jobs = unsigned(n), .progress = false});
    for (std::size_t i = 0; i < n; ++i) {
        CellSpec spec;
        spec.trace.kind = workload::WorkloadKind::Array;
        spec.trace.numThreads = 1;
        spec.trace.transactionsPerThread = 5 + i;
        spec.sim.numCores = 1;
        spec.sim.scheme = SchemeKind::Silo;
        spec.label = "cell" + std::to_string(i);
        sweep.add(std::move(spec));
    }
    sweep.setTestHooks({.onCellStart = [](std::size_t index) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20 * (5 - index)));
    }});

    sweep.run();
    ASSERT_EQ(sweep.results().size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sweep.results()[i].report.committedTransactions,
                  5 + i)
            << "result slot " << i
            << " does not hold the cell added " << i << "th";
    }
}

TEST(SweepTraceCache, SharedConfigIsGeneratedOnceAndPointerShared)
{
    Sweep sweep({.jobs = 4, .progress = false});
    workload::TraceGenConfig shared;
    shared.kind = workload::WorkloadKind::Hash;
    shared.numThreads = 2;
    shared.transactionsPerThread = 15;

    CellSpec a;
    a.trace = shared;
    a.sim.numCores = 2;
    a.sim.scheme = SchemeKind::Silo;
    a.label = "silo";
    CellSpec b;
    b.trace = shared;
    b.sim.numCores = 2;
    b.sim.scheme = SchemeKind::Base;
    b.label = "base";
    CellSpec c;
    c.trace = shared;
    c.trace.seed = shared.seed + 1;   // unique config
    c.sim.numCores = 2;
    c.sim.scheme = SchemeKind::Silo;
    c.label = "silo-reseeded";
    sweep.add(std::move(a));
    sweep.add(std::move(b));
    sweep.add(std::move(c));

    sweep.run();
    ASSERT_EQ(sweep.results().size(), 3u);
    EXPECT_NE(sweep.results()[0].traces, nullptr);
    EXPECT_EQ(sweep.results()[0].traces, sweep.results()[1].traces)
        << "cells sharing a TraceGenConfig must observe the same "
           "trace object";
    EXPECT_NE(sweep.results()[0].traces, sweep.results()[2].traces);
    EXPECT_EQ(sweep.traceCache().generationCount(), 2u)
        << "the engine must generate each unique config exactly once";
}

TEST(SweepStats, StatsJsonEmbeddedPerCellAndRemovableViaEnv)
{
    Sweep sweep({.jobs = 2, .progress = false});
    for (auto &spec : smallMatrix())
        sweep.add(spec);
    sweep.run();
    for (const auto &r : sweep.results()) {
        EXPECT_NE(r.report.statsJson.find(
                      "\"schema\": \"silo-stats-v1\""),
                  std::string::npos);
    }

    std::string with_path = ::testing::TempDir() + "sweep_stats.json";
    std::string without_path =
        ::testing::TempDir() + "sweep_nostats.json";
    sweep.writeJson(with_path, "sweep_test");
    ASSERT_EQ(setenv("SILO_STATS_JSON", "0", 1), 0);   // NOLINT(concurrency-mt-unsafe)
    sweep.writeJson(without_path, "sweep_test");
    unsetenv("SILO_STATS_JSON");   // NOLINT(concurrency-mt-unsafe)

    std::string with = slurp(with_path);
    std::string without = slurp(without_path);
    ASSERT_FALSE(with.empty());
    ASSERT_FALSE(without.empty());
    EXPECT_NE(with.find("\"stats\": {"), std::string::npos);
    EXPECT_EQ(without.find("\"stats\": {"), std::string::npos)
        << "SILO_STATS_JSON=0 must omit the per-cell stats blocks";
    EXPECT_LT(without.size(), with.size());
}

TEST(TracePath, InsertsCellCoordinatesBeforeExtension)
{
    CellSpec spec;
    spec.sim.scheme = SchemeKind::Silo;
    spec.sim.numCores = 4;
    spec.trace.kind = workload::WorkloadKind::Hash;
    EXPECT_EQ(tracePathFor("/tmp/t/trace.json", spec),
              "/tmp/t/trace-Silo-Hash-4c.json");
    EXPECT_EQ(tracePathFor("trace", spec), "trace-Silo-Hash-4c.json");
}

/**
 * Golden determinism regression (the hot-path rewrite's proof
 * obligation, and a tripwire for every future change): the results
 * JSON of a fixed small matrix must match a checked-in golden file —
 * and its checked-in SHA-256 — exactly, under both SILO_JOBS=1 and 8.
 * Any change that perturbs simulated-time results fails here with a
 * line-level diff instead of silently shifting figures.
 *
 * To update after an *intentional* simulation change:
 *   SILO_UPDATE_GOLDEN=1 ./build/tests/sweep_test \
 *       --gtest_filter='SweepGolden.*'
 * then commit the regenerated golden files with an explanation.
 */
TEST(SweepGolden, ResultsJsonMatchesCheckedInDigest)
{
    const std::string golden_path =
        std::string(SILO_TEST_DIR) + "/harness/golden/sweep_small.json";
    const std::string digest_path = golden_path + ".sha256";

    std::string json;
    for (unsigned jobs : {1u, 8u}) {
        Sweep sweep({.jobs = jobs, .progress = false});
        for (auto &spec : smallMatrix())
            sweep.add(spec);
        sweep.run();
        std::string path = ::testing::TempDir() + "sweep_golden_" +
                           std::to_string(jobs) + ".json";
        sweep.writeJson(path, "sweep_golden");
        std::string got = slurp(path);
        ASSERT_FALSE(got.empty());
        if (json.empty())
            json = got;
        else
            ASSERT_EQ(json, got) << "jobs=" << jobs
                                 << " diverged from jobs=1";
    }

    if (!envStrOr("SILO_UPDATE_GOLDEN", "").empty()) {
        std::ofstream(golden_path, std::ios::binary) << json;
        std::ofstream(digest_path, std::ios::binary)
            << sha256Hex(json) << "\n";
        GTEST_SKIP() << "golden files regenerated at " << golden_path;
    }

    std::string golden = slurp(golden_path);
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << golden_path
        << " (regenerate with SILO_UPDATE_GOLDEN=1)";
    std::string want_digest = slurp(digest_path);
    while (!want_digest.empty() &&
           (want_digest.back() == '\n' || want_digest.back() == '\r'))
        want_digest.pop_back();
    EXPECT_EQ(sha256Hex(golden), want_digest)
        << "golden file and its .sha256 are out of sync";

    if (json != golden) {
        // Readable failure: name the first differing line.
        std::istringstream got_s(json), want_s(golden);
        std::string got_line, want_line;
        std::size_t line = 0;
        while (true) {
            ++line;
            bool got_ok = bool(std::getline(got_s, got_line));
            bool want_ok = bool(std::getline(want_s, want_line));
            if (!got_ok && !want_ok)
                break;
            if (got_line != want_line || got_ok != want_ok) {
                FAIL() << "results JSON diverges from " << golden_path
                       << " at line " << line << "\n  golden: "
                       << (want_ok ? want_line : "<eof>")
                       << "\n  actual: "
                       << (got_ok ? got_line : "<eof>")
                       << "\nIf the simulation change is intentional, "
                          "regenerate with SILO_UPDATE_GOLDEN=1.";
            }
        }
    }
    EXPECT_EQ(sha256Hex(json), want_digest);
}

TEST(SweepGolden, Sha256KnownVectors)
{
    // FIPS 180-4 test vectors, so a broken hash cannot silently
    // "match" a stale digest file.
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(
        sha256Hex("abcdbcdecdefdefgefghfghighijhijk"
                  "ijkljklmklmnlmnomnopnopq"),
        "248d6a61d20638b8e5c026930c3e6039"
        "a33ce45964ff2167f6ecedd419db06c1");
    // Multi-block + length padding edge (55/56/64-byte boundaries).
    EXPECT_EQ(sha256Hex(std::string(56, 'a')),
              "b35439a4ac6f0948b6d6f9e3c6af0f5f"
              "590ce20f1bde7090ef7970686ec6738a");
    EXPECT_EQ(sha256Hex(std::string(64, 'a')),
              "ffe054fe7ae0cb6dc65c3af9b61d5209"
              "f439851db43d0ba5997337df154668eb");
    EXPECT_EQ(sha256Hex(std::string(1000, 'x')),
              sha256Hex(std::string(1000, 'x')));
}

TEST(SweepTraceCache, RerunGeneratesNothingNew)
{
    Sweep sweep({.jobs = 2, .progress = false});
    for (auto &spec : smallMatrix())
        sweep.add(spec);
    sweep.run();
    std::uint64_t after_first = sweep.traceCache().generationCount();
    EXPECT_EQ(after_first, 3u);   // three workloads, schemes share
    sweep.run();
    EXPECT_EQ(sweep.traceCache().generationCount(), after_first);
}

} // namespace
} // namespace silo::harness
