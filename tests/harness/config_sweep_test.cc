/**
 * @file
 * Property sweep over the configuration space: correctness (full
 * commit count and a media image equal to the functional execution)
 * must hold for every geometry, not just the Table II defaults —
 * tiny log buffers (constant Silo overflow), tiny WPQs (constant
 * back-pressure), different on-PM buffer line sizes (different
 * overflow batch N = ⌊S/18⌋), and multiple memory controllers.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "workload/trace_gen.hh"

namespace silo::harness
{
namespace
{

struct SweepPoint
{
    const char *label;
    unsigned logBufferEntries;
    unsigned wpqEntries;
    unsigned onPmBufferLineBytes;
    unsigned onPmBufferLines;
    unsigned numMemControllers;
};

constexpr SweepPoint sweepPoints[] = {
    {"defaults", 20, 64, 256, 32, 1},
    {"tiny_log_buffer", 2, 64, 256, 32, 1},
    {"huge_log_buffer", 512, 64, 256, 32, 1},
    {"tiny_wpq", 20, 12, 256, 32, 1},
    {"small_pm_line", 20, 64, 64, 32, 1},
    {"large_pm_line", 20, 64, 1024, 8, 1},
    {"one_pm_buffer_line", 20, 64, 256, 1, 1},
    {"two_mcs", 20, 64, 256, 32, 2},
    {"stress_combo", 3, 12, 64, 2, 2},
};

class ConfigSweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(ConfigSweep, SiloStaysCorrect)
{
    const SweepPoint &pt = GetParam();
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Hash;
    tg.numThreads = 2;
    tg.transactionsPerThread = 30;
    auto traces = workload::generateTraces(tg);

    SimConfig cfg;
    cfg.numCores = 2;
    cfg.scheme = SchemeKind::Silo;
    cfg.logBufferEntries = pt.logBufferEntries;
    cfg.wpqEntries = pt.wpqEntries;
    cfg.onPmBufferLineBytes = pt.onPmBufferLineBytes;
    cfg.onPmBufferLines = pt.onPmBufferLines;
    cfg.numMemControllers = pt.numMemControllers;

    System sys(cfg, traces);
    sys.run();
    EXPECT_EQ(sys.report().committedTransactions, 2u * 30) << pt.label;
    sys.settle();
    sys.drainToMedia();
    for (const auto &[addr, value] : traces.finalMemory) {
        ASSERT_EQ(sys.pm().media().load(addr), value)
            << pt.label << " addr 0x" << std::hex << addr;
    }
}

TEST_P(ConfigSweep, SiloCrashRecoveryStaysCorrect)
{
    const SweepPoint &pt = GetParam();
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Bank;
    tg.numThreads = 2;
    tg.transactionsPerThread = 25;
    tg.seed = 23;
    auto traces = workload::generateTraces(tg);

    SimConfig cfg;
    cfg.numCores = 2;
    cfg.scheme = SchemeKind::Silo;
    cfg.logBufferEntries = pt.logBufferEntries;
    cfg.wpqEntries = pt.wpqEntries;
    cfg.onPmBufferLineBytes = pt.onPmBufferLineBytes;
    cfg.onPmBufferLines = pt.onPmBufferLines;
    cfg.numMemControllers = pt.numMemControllers;

    System sys(cfg, traces);
    sys.runEvents(3000);
    sys.crash();
    sys.recover();

    std::unordered_map<Addr, Word> expected = traces.initialMemory;
    for (unsigned t = 0; t < 2; ++t) {
        std::size_t upto = sys.coreAt(t).committedOpIndex();
        if (sys.scheme().lastTxCommittedAtCrash(t))
            upto = std::max(upto,
                            sys.coreAt(t).commitRequestedOpIndex());
        for (std::size_t i = 0; i < upto; ++i) {
            const auto &op = traces.threads[t].ops[i];
            if (op.kind == workload::TxOp::Kind::Store)
                expected[op.addr] = op.value;
        }
    }
    for (const auto &[addr, value] : expected) {
        ASSERT_EQ(sys.pm().media().load(addr), value)
            << pt.label << " addr 0x" << std::hex << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConfigSweep, ::testing::ValuesIn(sweepPoints),
    [](const ::testing::TestParamInfo<SweepPoint> &info) {
        return info.param.label;
    });

} // namespace
} // namespace silo::harness
