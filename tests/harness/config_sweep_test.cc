/**
 * @file
 * Property sweep over the configuration space: correctness (full
 * commit count and a media image equal to the functional execution)
 * must hold for every geometry, not just the Table II defaults —
 * tiny log buffers (constant Silo overflow), tiny WPQs (constant
 * back-pressure), different on-PM buffer line sizes (different
 * overflow batch N = ⌊S/18⌋), and multiple memory controllers.
 */

#include <gtest/gtest.h>

#include "harness/sweep.hh"
#include "harness/system.hh"
#include "workload/trace_gen.hh"

namespace silo::harness
{
namespace
{

struct SweepPoint
{
    const char *label;
    unsigned logBufferEntries;
    unsigned wpqEntries;
    unsigned onPmBufferLineBytes;
    unsigned onPmBufferLines;
    unsigned numMemControllers;
};

constexpr SweepPoint sweepPoints[] = {
    {"defaults", 20, 64, 256, 32, 1},
    {"tiny_log_buffer", 2, 64, 256, 32, 1},
    {"huge_log_buffer", 512, 64, 256, 32, 1},
    {"tiny_wpq", 20, 12, 256, 32, 1},
    {"small_pm_line", 20, 64, 64, 32, 1},
    {"large_pm_line", 20, 64, 1024, 8, 1},
    {"one_pm_buffer_line", 20, 64, 256, 1, 1},
    {"two_mcs", 20, 64, 256, 32, 2},
    {"stress_combo", 3, 12, 64, 2, 2},
};

class ConfigSweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(ConfigSweep, SiloStaysCorrect)
{
    const SweepPoint &pt = GetParam();
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Hash;
    tg.numThreads = 2;
    tg.transactionsPerThread = 30;
    auto traces = workload::generateTraces(tg);

    SimConfig cfg;
    cfg.numCores = 2;
    cfg.scheme = SchemeKind::Silo;
    cfg.logBufferEntries = pt.logBufferEntries;
    cfg.wpqEntries = pt.wpqEntries;
    cfg.onPmBufferLineBytes = pt.onPmBufferLineBytes;
    cfg.onPmBufferLines = pt.onPmBufferLines;
    cfg.numMemControllers = pt.numMemControllers;

    System sys(cfg, traces);
    sys.run();
    EXPECT_EQ(sys.report().committedTransactions, 2u * 30) << pt.label;
    sys.settle();
    sys.drainToMedia();
    for (const auto &[addr, value] : traces.finalMemory) {
        ASSERT_EQ(sys.pm().media().load(addr), value)
            << pt.label << " addr 0x" << std::hex << addr;
    }
}

TEST_P(ConfigSweep, SiloCrashRecoveryStaysCorrect)
{
    const SweepPoint &pt = GetParam();
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Bank;
    tg.numThreads = 2;
    tg.transactionsPerThread = 25;
    tg.seed = 23;
    auto traces = workload::generateTraces(tg);

    SimConfig cfg;
    cfg.numCores = 2;
    cfg.scheme = SchemeKind::Silo;
    cfg.logBufferEntries = pt.logBufferEntries;
    cfg.wpqEntries = pt.wpqEntries;
    cfg.onPmBufferLineBytes = pt.onPmBufferLineBytes;
    cfg.onPmBufferLines = pt.onPmBufferLines;
    cfg.numMemControllers = pt.numMemControllers;

    System sys(cfg, traces);
    sys.runEvents(3000);
    sys.crash();
    sys.recover();

    WordStore expected = traces.initialMemory;
    for (unsigned t = 0; t < 2; ++t) {
        std::size_t upto = sys.coreAt(t).committedOpIndex();
        if (sys.scheme().lastTxCommittedAtCrash(t))
            upto = std::max(upto,
                            sys.coreAt(t).commitRequestedOpIndex());
        for (std::size_t i = 0; i < upto; ++i) {
            const auto &op = traces.threads[t].ops[i];
            if (op.kind == workload::TxOp::Kind::Store)
                expected[op.addr] = op.value;
        }
    }
    for (const auto &[addr, value] : expected) {
        ASSERT_EQ(sys.pm().media().load(addr), value)
            << pt.label << " addr 0x" << std::hex << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConfigSweep, ::testing::ValuesIn(sweepPoints),
    [](const ::testing::TestParamInfo<SweepPoint> &info) {
        return info.param.label;
    });

/**
 * Seed-sensitivity regression: the seed must plumb through the sweep
 * engine's trace cache into generation — two seeds give two distinct
 * trace sets (different ops, different cache entries), yet both runs
 * stay fully correct and both crash-recover cleanly. Guards against a
 * future engine change collapsing or ignoring the seed.
 */
TEST(SeedSensitivity, DifferentSeedsDifferentTracesBothRecover)
{
    constexpr std::uint64_t seeds[] = {7, 8};

    Sweep sweep({.jobs = 2, .progress = false});
    for (std::uint64_t seed : seeds) {
        CellSpec spec;
        spec.trace.kind = workload::WorkloadKind::Bank;
        spec.trace.numThreads = 2;
        spec.trace.transactionsPerThread = 25;
        spec.trace.seed = seed;
        spec.sim.numCores = 2;
        spec.sim.scheme = SchemeKind::Silo;
        spec.label = "seed" + std::to_string(seed);
        sweep.add(std::move(spec));
    }
    sweep.run();

    // Two seeds -> two generated trace sets, not one shared object.
    EXPECT_EQ(sweep.traceCache().generationCount(), 2u);
    const auto *t0 = sweep.results()[0].traces;
    const auto *t1 = sweep.results()[1].traces;
    ASSERT_NE(t0, nullptr);
    ASSERT_NE(t0, t1);
    bool ops_differ = false;
    for (unsigned t = 0; t < 2 && !ops_differ; ++t) {
        const auto &a = t0->threads[t].ops;
        const auto &b = t1->threads[t].ops;
        if (a.size() != b.size()) {
            ops_differ = true;
            break;
        }
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i].kind != b[i].kind || a[i].addr != b[i].addr ||
                a[i].value != b[i].value) {
                ops_differ = true;
                break;
            }
        }
    }
    EXPECT_TRUE(ops_differ)
        << "different seeds produced identical operation streams";
    for (const auto &result : sweep.results())
        EXPECT_EQ(result.report.committedTransactions, 2u * 25);

    // Both seeds must also survive a mid-run crash + recovery.
    for (std::uint64_t seed : seeds) {
        workload::TraceGenConfig tg;
        tg.kind = workload::WorkloadKind::Bank;
        tg.numThreads = 2;
        tg.transactionsPerThread = 25;
        tg.seed = seed;
        auto traces = workload::generateTraces(tg);

        SimConfig cfg;
        cfg.numCores = 2;
        cfg.scheme = SchemeKind::Silo;
        System sys(cfg, traces);
        sys.runEvents(3000);
        sys.crash();
        sys.recover();

        WordStore expected = traces.initialMemory;
        for (unsigned t = 0; t < 2; ++t) {
            std::size_t upto = sys.coreAt(t).committedOpIndex();
            if (sys.scheme().lastTxCommittedAtCrash(t))
                upto = std::max(
                    upto, sys.coreAt(t).commitRequestedOpIndex());
            for (std::size_t i = 0; i < upto; ++i) {
                const auto &op = traces.threads[t].ops[i];
                if (op.kind == workload::TxOp::Kind::Store)
                    expected[op.addr] = op.value;
            }
        }
        for (const auto &[addr, value] : expected) {
            ASSERT_EQ(sys.pm().media().load(addr), value)
                << "seed " << seed << " addr 0x" << std::hex << addr;
        }
    }
}

} // namespace
} // namespace silo::harness
