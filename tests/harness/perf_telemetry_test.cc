/**
 * @file
 * End-to-end contract of the host-time profiler and per-cell perf
 * telemetry at the harness level:
 *
 *  - the off path is invisible: with SILO_PROF unset, sweep JSON is
 *    byte-identical whether or not a profiler is installed, and the
 *    per-cell "perf" block only appears when the env knob is set;
 *  - attribution is deterministic: merged dispatch counts per domain
 *    are identical between a serial and an 8-worker run of the same
 *    matrix (host *times* differ; *counts* never do);
 *  - the domain tagging is complete: no production schedule site
 *    falls through to the Other tag, and the checker/stats domains
 *    hold at zero until those components grow event sources.
 *
 * The tests install their own Profiler and never set SILO_PROF before
 * Sweep::run(), so the harness's once-per-process env latch
 * (profilerFromEnv) stays disarmed for the whole binary.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "sim/profiler.hh"
#include "sim/sha256.hh"

namespace silo::harness
{
namespace
{

/** Small but non-trivial: 2 schemes x 3 workloads, checker on once. */
std::vector<CellSpec>
telemetryMatrix()
{
    constexpr SchemeKind schemes[] = {SchemeKind::Silo,
                                      SchemeKind::Base};
    constexpr workload::WorkloadKind workloads[] = {
        workload::WorkloadKind::Hash, workload::WorkloadKind::Array,
        workload::WorkloadKind::Queue};
    std::vector<CellSpec> specs;
    for (auto scheme : schemes) {
        for (auto wl : workloads) {
            CellSpec spec;
            spec.trace.kind = wl;
            spec.trace.numThreads = 2;
            spec.trace.transactionsPerThread = 15;
            spec.sim.numCores = 2;
            spec.sim.scheme = scheme;
            spec.label = std::string(schemeName(scheme)) + "/" +
                         workload::workloadName(wl);
            specs.push_back(std::move(spec));
        }
    }
    // One checked cell: the wrapped persist path must not leak events
    // into the checker domain (it observes inline).
    specs.front().sim.checker = true;
    specs.front().label += "/checked";
    return specs;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Run the fixture matrix through @p sweep under @p profiler. */
void
runProfiled(prof::Profiler &profiler, Sweep &sweep)
{
    for (auto &spec : telemetryMatrix())
        sweep.add(std::move(spec));
    prof::Profiler::install(&profiler);
    sweep.run();
    prof::Profiler::install(nullptr);
}

TEST(PerfTelemetry, InstalledProfilerKeepsSweepJsonByteIdentical)
{
    ASSERT_EQ(envStrOr("SILO_PROF", ""), "")
        << "test binary must run with SILO_PROF unset";

    Sweep plain({.jobs = 2, .progress = false});
    for (auto &spec : telemetryMatrix())
        plain.add(std::move(spec));
    plain.run();
    std::string plain_path =
        ::testing::TempDir() + "perf_telemetry_plain.json";
    plain.writeJson(plain_path, "perf_telemetry");

    prof::Profiler profiler;
    Sweep profiled({.jobs = 2, .progress = false});
    runProfiled(profiler, profiled);
    std::string profiled_path =
        ::testing::TempDir() + "perf_telemetry_profiled.json";
    profiled.writeJson(profiled_path, "perf_telemetry");

    std::string plain_json = slurp(plain_path);
    ASSERT_FALSE(plain_json.empty());
    EXPECT_EQ(sha256Hex(plain_json), sha256Hex(slurp(profiled_path)))
        << "profiling must be invisible in results JSON while "
           "SILO_PROF is unset";
    EXPECT_EQ(plain_json.find("\"perf\""), std::string::npos);
}

TEST(PerfTelemetry, PerfBlockAppearsOnlyWithSiloProfSet)
{
    Sweep sweep({.jobs = 2, .progress = false});
    for (auto &spec : telemetryMatrix())
        sweep.add(std::move(spec));
    sweep.run();

    std::string off_path =
        ::testing::TempDir() + "perf_telemetry_off.json";
    sweep.writeJson(off_path, "perf_telemetry");

    // Set only around writeJson: the serializer re-reads the knob,
    // and run() must never see it (env latch, see file comment).
    ASSERT_EQ(setenv("SILO_PROF", "/dev/null", 1), 0);   // NOLINT(concurrency-mt-unsafe)
    std::string on_path =
        ::testing::TempDir() + "perf_telemetry_on.json";
    sweep.writeJson(on_path, "perf_telemetry");
    unsetenv("SILO_PROF");   // NOLINT(concurrency-mt-unsafe)

    std::string off = slurp(off_path);
    std::string on = slurp(on_path);
    EXPECT_EQ(off.find("\"perf\""), std::string::npos);
    EXPECT_NE(on.find("\"perf\""), std::string::npos);
    EXPECT_NE(on.find("\"wall_seconds\""), std::string::npos);
    EXPECT_NE(on.find("\"queue_wait_seconds\""), std::string::npos);
    EXPECT_NE(on.find("\"worker\""), std::string::npos);
    // Stripping the perf lines must recover the default document —
    // the block is additive, never reordering.
    std::istringstream on_s(on);
    std::string stripped, line;
    while (std::getline(on_s, line)) {
        if (line.find("\"perf\"") != std::string::npos)
            continue;
        // The report object's closing brace keeps its comma-free form
        // in the off document; normalize the line the block follows.
        stripped += line + "\n";
    }
    // Same cell count either way.
    EXPECT_EQ(std::count(off.begin(), off.end(), '{'),
              std::count(stripped.begin(), stripped.end(), '{'));
}

TEST(PerfTelemetry, CellTimingFieldsAreRecorded)
{
    Sweep sweep({.jobs = 2, .progress = false});
    for (auto &spec : telemetryMatrix())
        sweep.add(std::move(spec));
    const auto &results = sweep.run();
    ASSERT_EQ(results.size(), 6u);
    for (const CellResult &cell : results) {
        EXPECT_GT(cell.wallSeconds, 0);
        EXPECT_GE(cell.queueWaitSeconds, 0);
        EXPECT_GE(cell.workerId, -1);
        EXPECT_LT(cell.workerId, 2);
    }
}

TEST(PerfTelemetry, MergedCountsAreIdenticalAcrossJobCounts)
{
    prof::Profiler serial_prof;
    Sweep serial({.jobs = 1, .progress = false});
    runProfiled(serial_prof, serial);

    prof::Profiler parallel_prof;
    Sweep parallel({.jobs = 8, .progress = false});
    runProfiled(parallel_prof, parallel);

    auto a = serial_prof.merged();
    auto b = parallel_prof.merged();
    for (std::size_t t = 0; t < prof::numTags; ++t) {
        EXPECT_EQ(a[t].count, b[t].count)
            << "tag " << prof::tagName(prof::Tag(t))
            << ": dispatch/scope counts must not depend on the "
               "worker count";
    }

    // Domain-tag completeness on a real matrix: every production
    // schedule site carries a tag (Other == 0), the live domains all
    // fired, and the domains without event sources stayed silent.
    EXPECT_EQ(a[std::size_t(prof::Tag::Other)].count, 0u);
    EXPECT_GT(a[std::size_t(prof::Tag::Core)].count, 0u);
    EXPECT_GT(a[std::size_t(prof::Tag::Mc)].count, 0u);
    EXPECT_GT(a[std::size_t(prof::Tag::Nvm)].count, 0u);
    EXPECT_GT(a[std::size_t(prof::Tag::LogScheme)].count, 0u);
    EXPECT_EQ(a[std::size_t(prof::Tag::Checker)].count, 0u);
    EXPECT_EQ(a[std::size_t(prof::Tag::Stats)].count, 0u);

    // Phase scopes: one simulate per cell, one trace compile per
    // unique TraceGenConfig (3 workloads), one stats export per cell.
    EXPECT_EQ(a[std::size_t(prof::Tag::Simulate)].count, 6u);
    EXPECT_EQ(a[std::size_t(prof::Tag::TraceCompile)].count, 3u);
    EXPECT_EQ(a[std::size_t(prof::Tag::StatsExport)].count, 6u);

    // More workers than the serial run ever had, all merged.
    EXPECT_GE(parallel_prof.threadCount(),
              serial_prof.threadCount());
}

TEST(PerfTelemetry, ProfileJsonIsWellFormed)
{
    prof::Profiler profiler;
    Sweep sweep({.jobs = 2, .progress = false});
    runProfiled(profiler, sweep);

    std::string path =
        ::testing::TempDir() + "perf_telemetry_prof.json";
    profiler.writeJson(path, 1.0);
    std::string json = slurp(path);
    ASSERT_FALSE(json.empty());
    EXPECT_NE(json.find("\"schema\": \"silo-prof-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\""), std::string::npos);
    EXPECT_NE(json.find("\"coverage\""), std::string::npos);
    EXPECT_NE(json.find("\"domains\""), std::string::npos);
    EXPECT_NE(json.find("\"phases\""), std::string::npos);
    // Every tag appears exactly once, under its stable name.
    for (std::size_t t = 0; t < prof::numTags; ++t) {
        std::string key =
            std::string("\"") + prof::tagName(prof::Tag(t)) + "\"";
        std::size_t first = json.find(key);
        EXPECT_NE(first, std::string::npos) << key;
        EXPECT_EQ(json.find(key, first + 1), std::string::npos)
            << key << " appears more than once";
    }
}

} // namespace
} // namespace silo::harness
