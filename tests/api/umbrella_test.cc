/**
 * @file
 * The umbrella header must be self-contained: a downstream user should
 * be able to include silo.hh alone and drive the whole documented
 * workflow from it.
 */

#include <gtest/gtest.h>

#include "silo.hh"

namespace
{

TEST(PublicApi, UmbrellaWorkflowCompilesAndRuns)
{
    silo::SimConfig cfg;
    cfg.numCores = 2;
    cfg.scheme = silo::SchemeKind::Silo;

    silo::workload::TraceGenConfig tg;
    tg.kind = silo::workload::WorkloadKind::Bank;
    tg.numThreads = cfg.numCores;
    tg.transactionsPerThread = 20;
    auto traces = silo::workload::generateTraces(tg);

    silo::harness::System sys(cfg, traces);
    sys.run();
    sys.settle();
    sys.drainToMedia();

    auto report = sys.report();
    EXPECT_EQ(report.committedTransactions, 40u);
    EXPECT_GT(report.txPerMillionCycles, 0.0);

    // The energy model is reachable from the umbrella too.
    auto battery = silo::energy::siloBattery(cfg);
    EXPECT_GT(battery.flushEnergyUj, 0.0);

    // And the experiment helpers.
    // silo-lint: allow(env-doc-parity) deliberately-unset synthetic knob probing the fallback path; not a real configuration variable
    EXPECT_EQ(silo::harness::envOr("SILO_SURELY_UNSET_KNOB", 7u), 7u);
}

TEST(PublicApi, SchemeAndWorkloadNamesRoundTrip)
{
    using silo::workload::workloadFromName;
    using silo::workload::workloadName;
    for (auto kind : silo::workload::allWorkloads)
        EXPECT_EQ(workloadFromName(workloadName(kind)), kind);
    EXPECT_THROW(workloadFromName("NotAWorkload"), silo::FatalError);
}

} // namespace
