/**
 * @file
 * Unit tests for the Silo scheme's mechanisms: log ignorance, merging,
 * flush-bits, overflow batching, commit draining, and selective crash
 * flushing — driven through a minimal hand-built system.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "silo/silo_scheme.hh"
#include "workload/trace_gen.hh"

namespace silo::silo_scheme
{
namespace
{

using workload::TxOp;

/** Build traces from an explicit op list for one thread. */
workload::WorkloadTraces
traceOf(std::vector<TxOp> ops,
        std::unordered_map<Addr, Word> initial = {})
{
    workload::WorkloadTraces t;
    t.threads.resize(1);
    t.threads[0].ops = std::move(ops);
    for (const auto &op : t.threads[0].ops) {
        if (op.kind == TxOp::Kind::TxEnd)
            ++t.threads[0].numTransactions;
    }
    t.initialMemory = std::move(initial);
    t.finalMemory = t.initialMemory;
    for (const auto &op : t.threads[0].ops) {
        if (op.kind == TxOp::Kind::Store)
            t.finalMemory[op.addr] = op.value;
    }
    return t;
}

constexpr Addr base = addr_map::dataRegionBase;

TxOp begin() { return {TxOp::Kind::TxBegin, 0, 0}; }
TxOp end() { return {TxOp::Kind::TxEnd, 0, 0}; }
TxOp st(Addr a, Word v) { return {TxOp::Kind::Store, a, v}; }

SimConfig
oneCore()
{
    SimConfig cfg;
    cfg.numCores = 1;
    cfg.scheme = SchemeKind::Silo;
    return cfg;
}

const LogReductionStats &
reduction(harness::System &sys)
{
    return dynamic_cast<SiloScheme &>(sys.scheme()).reductionStats();
}

TEST(SiloMechanisms, SilentStoreIsIgnored)
{
    // Store the value already present: no log entry (§III-C).
    auto traces = traceOf({begin(), st(base, 7), end()},
                          {{base, 7}});
    harness::System sys(oneCore(), traces);
    sys.run();
    EXPECT_EQ(reduction(sys).ignored.value(), 1u);
    EXPECT_EQ(reduction(sys).remainingLogsPerTx.mean(), 0.0);
}

TEST(SiloMechanisms, SameWordStoresMerge)
{
    auto traces = traceOf({begin(), st(base, 1), st(base, 2),
                           st(base, 3), end()});
    harness::System sys(oneCore(), traces);
    sys.run();
    EXPECT_EQ(reduction(sys).merged.value(), 2u);
    EXPECT_DOUBLE_EQ(reduction(sys).totalLogsPerTx.mean(), 3.0);
    EXPECT_DOUBLE_EQ(reduction(sys).remainingLogsPerTx.mean(), 1.0);

    // Merged entry carries the oldest old and newest new data: after
    // a drain, only the final value is in PM.
    sys.drainToMedia();
    EXPECT_EQ(sys.pm().media().load(base), 3u);
}

TEST(SiloMechanisms, MergingDoesNotCrossTransactions)
{
    auto traces = traceOf({begin(), st(base, 1), end(),
                           begin(), st(base, 2), end()});
    harness::System sys(oneCore(), traces);
    sys.run();
    EXPECT_EQ(reduction(sys).merged.value(), 0u);
    EXPECT_DOUBLE_EQ(reduction(sys).remainingLogsPerTx.mean(), 1.0);
}

TEST(SiloMechanisms, CommitWritesNewDataInPlace)
{
    auto traces = traceOf({begin(), st(base, 42),
                           st(base + 8, 43), end()});
    harness::System sys(oneCore(), traces);
    sys.run();
    sys.settle();
    sys.mc().drainAll();
    // Without any cache flush, the new data reached PM via the
    // log-as-data path.
    EXPECT_EQ(sys.pm().media().load(base), 42u);
    EXPECT_EQ(sys.pm().media().load(base + 8), 43u);
    EXPECT_EQ(reduction(sys).inPlaceUpdates.value(), 2u);
    // And no log records were written in this failure-free run.
    EXPECT_EQ(sys.report().logRecordsWritten, 0u);
}

TEST(SiloMechanisms, OverflowEvictsBatchOfUndoLogs)
{
    // 30 distinct words exceed the 20-entry buffer: a batch of
    // N = 256/18 = 14 undo logs is evicted (§III-F).
    std::vector<TxOp> ops = {begin()};
    for (unsigned i = 0; i < 30; ++i)
        ops.push_back(st(base + i * 8, i + 1));
    ops.push_back(end());
    auto traces = traceOf(std::move(ops));

    harness::System sys(oneCore(), traces);
    sys.run();
    EXPECT_EQ(reduction(sys).overflows.value(), 14u);
    EXPECT_EQ(sys.report().logRecordsWritten, 14u);

    // Durability still holds for every word.
    sys.drainToMedia();
    for (unsigned i = 0; i < 30; ++i)
        EXPECT_EQ(sys.pm().media().load(base + i * 8), i + 1);
}

TEST(SiloMechanisms, OverflowBatchSizeFollowsBufferLine)
{
    SimConfig cfg = oneCore();
    std::vector<TxOp> ops = {begin()};
    for (unsigned i = 0; i < 30; ++i)
        ops.push_back(st(base + i * 8, i + 1));
    ops.push_back(end());
    auto traces = traceOf(std::move(ops));

    // S = 512 B -> N = 28 >= all 21 evictable entries.
    cfg.onPmBufferLineBytes = 512;
    harness::System sys(cfg, traces);
    sys.run();
    EXPECT_EQ(reduction(sys).overflows.value(), 21u);
}

TEST(SiloMechanisms, CrashBeforeCommitRevokesEverything)
{
    auto traces = traceOf({begin(), st(base, 9), st(base + 8, 10),
                           end()},
                          {{base, 1}, {base + 8, 2}});
    harness::System sys(oneCore(), traces);
    // Run until both stores retired but the transaction is open.
    while (sys.values().load(base + 8) != 10)
        sys.runEvents(1);
    ASSERT_TRUE(sys.coreAt(0).inTransaction());
    sys.crash();
    sys.recover();
    EXPECT_EQ(sys.pm().media().load(base), 1u);
    EXPECT_EQ(sys.pm().media().load(base + 8), 2u);
}

TEST(SiloMechanisms, CrashAfterCommitReplaysRedo)
{
    auto traces = traceOf({begin(), st(base, 9), end()},
                          {{base, 1}});
    harness::System sys(oneCore(), traces);
    sys.run();   // committed; in-place update may or may not be done
    sys.crash();
    sys.recover();
    EXPECT_EQ(sys.pm().media().load(base), 9u);
}

TEST(SiloMechanisms, CrashFlushIsSelective)
{
    // Uncommitted tx -> undo bytes only (18 B per entry).
    auto traces = traceOf({begin(), st(base, 9), end()},
                          {{base, 1}});
    harness::System sys(oneCore(), traces);
    while (sys.values().load(base) != 9)
        sys.runEvents(1);
    ASSERT_TRUE(sys.coreAt(0).inTransaction());
    sys.crash();
    EXPECT_EQ(sys.scheme().schemeStats().crashFlushBytes.value(),
              std::uint64_t(undoLogEntryBytes));
}

TEST(SiloMechanisms, TotalAndRemainingLogStatsPerTx)
{
    auto traces = traceOf({begin(), st(base, 1), st(base, 2),
                           st(base + 8, 5), end()},
                          {{base + 8, 5}});   // third store is silent
    harness::System sys(oneCore(), traces);
    sys.run();
    EXPECT_DOUBLE_EQ(reduction(sys).totalLogsPerTx.mean(), 3.0);
    // One append (base), one merge, one ignored.
    EXPECT_DOUBLE_EQ(reduction(sys).remainingLogsPerTx.mean(), 1.0);
    EXPECT_EQ(reduction(sys).maxRemainingLogs, 1u);
}

TEST(SiloMechanisms, BufferLatencyOffCriticalPath)
{
    std::vector<TxOp> ops;
    for (int t = 0; t < 20; ++t) {
        ops.push_back(begin());
        for (unsigned i = 0; i < 10; ++i)
            ops.push_back(st(base + i * 8, Word(t * 100 + i + 1)));
        ops.push_back(end());
    }
    auto traces = traceOf(std::move(ops));

    SimConfig fast = oneCore();
    fast.logBufferLatency = 8;
    harness::System sys_fast(fast, traces);
    sys_fast.run();

    SimConfig slow = oneCore();
    slow.logBufferLatency = 128;
    harness::System sys_slow(slow, traces);
    sys_slow.run();

    // Fig. 15: a 16x slower buffer costs almost nothing.
    double ratio = double(sys_slow.report().ticks) /
                   double(sys_fast.report().ticks);
    EXPECT_LT(ratio, 1.10);
}

} // namespace
} // namespace silo::silo_scheme
