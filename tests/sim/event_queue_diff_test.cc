/**
 * @file
 * Differential property test: the calendar-queue EventQueue must pop
 * events in exactly the order of a reference std::priority_queue
 * ordered on (when, priority, sequence) — the original implementation
 * — across a million seeded-random schedule/pop operations covering
 * same-cycle bursts, zero-delay self-reschedules, tombstoned
 * ("cancelled") events, far-future overflow-list residents and their
 * promotion back into the wheel, and cursor rewinds (scheduling below
 * a peeked-but-unpopped tick). Runs under ASan via the san_smoke_test
 * wiring in tests/CMakeLists.txt.
 */

// silo-lint: allowfile(handler-hygiene) test callbacks run synchronously within the enclosing scope; [&] over stack locals is safe here

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/event_queue.hh"

namespace silo
{
namespace
{

struct RefEvent
{
    Tick when;
    int priority;
    std::uint64_t seq;
    std::uint64_t id;
};

struct RefOrder
{
    // std::priority_queue is a max-heap; invert for min-first.
    bool
    operator()(const RefEvent &a, const RefEvent &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.priority != b.priority)
            return a.priority > b.priority;
        return a.seq > b.seq;
    }
};

/** The two queues driven in lockstep through identical operations. */
class LockstepDriver
{
  public:
    explicit LockstepDriver(std::uint64_t seed) : _rng(seed) {}

    /** Schedule one event with matching metadata in both queues. */
    void
    scheduleBoth(Tick when, int priority, bool spawns_child)
    {
        std::uint64_t id = _nextId++;
        if (when < _q.now())
            when = _q.now();
        _model.push(RefEvent{when, priority, _nextSeq++, id});
        if (spawns_child) {
            // Zero-delay self-reschedule: the callback schedules a
            // fresh event at the tick being executed. The model-side
            // twin is pushed right after the pop (below), keeping the
            // two sequence counters aligned.
            _q.schedule(when, [this, id] {
                _popped.push_back(id);
                std::uint64_t child = _nextId++;
                _pendingChildren.push_back(child);
                _q.schedule(_q.now(), [this, child] {
                    _popped.push_back(child);
                });
            }, priority);
        } else {
            _q.schedule(when, [this, id] { _popped.push_back(id); },
                        priority);
        }
    }

    /** Pop one event from both queues and compare. @return success. */
    bool
    popBoth()
    {
        if (_model.empty()) {
            EXPECT_FALSE(_q.runNext());
            return false;
        }
        RefEvent expect = _model.top();
        _model.pop();
        std::size_t before = _popped.size();
        EXPECT_TRUE(_q.runNext());
        EXPECT_EQ(_popped.size(), before + 1);
        EXPECT_EQ(_popped.back(), expect.id)
            << "pop order diverged at event " << before << " (when="
            << expect.when << " prio=" << expect.priority << ")";
        EXPECT_EQ(_q.now(), expect.when);
        // Mirror any child the callback scheduled into the model.
        for (std::uint64_t child : _pendingChildren) {
            _model.push(
                RefEvent{expect.when, EventQueue::prioDefault,
                         _nextSeq++, child});
        }
        _pendingChildren.clear();
        return _popped.back() == expect.id;
    }

    std::mt19937_64 &rng() { return _rng; }
    EventQueue &queue() { return _q; }
    bool modelEmpty() const { return _model.empty(); }

  private:
    EventQueue _q;
    std::priority_queue<RefEvent, std::vector<RefEvent>, RefOrder>
        _model;
    std::mt19937_64 _rng;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _nextId = 0;
    std::vector<std::uint64_t> _popped;
    std::vector<std::uint64_t> _pendingChildren;
};

int
randomPriority(std::mt19937_64 &rng)
{
    switch (rng() % 3) {
      case 0:
        return EventQueue::prioDevice;
      case 1:
        return EventQueue::prioDefault;
      default:
        return EventQueue::prioCore;
    }
}

/** Delay mix spanning wheel buckets and the overflow list. */
Tick
randomDelay(std::mt19937_64 &rng)
{
    switch (rng() % 20) {
      case 0: case 1: case 2: case 3: case 4:
        return 0;   // same-cycle burst
      case 5: case 6: case 7: case 8: case 9: case 10: case 11:
        return rng() % 64;
      case 12: case 13: case 14: case 15: case 16:
        return rng() % (Tick(1) << 14);
      case 17: case 18:
        // Just beyond the 16K-tick wheel horizon: overflow residents
        // that promote back as the cursor advances.
        return (Tick(1) << 14) + rng() % 100000;
      default:
        return (Tick(1) << 20) + rng() % (Tick(1) << 28);
    }
}

#if defined(__SANITIZE_ADDRESS__)
#define SILO_DIFF_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SILO_DIFF_UNDER_ASAN 1
#endif
#endif

TEST(EventQueueDiff, MillionRandomOpsMatchReferenceHeap)
{
    LockstepDriver d(0xC0FFEE5EED);
    auto &rng = d.rng();
    // The full million ops under ASan take ~35 s; the sanitizer run
    // keeps the same operation mix at reduced depth.
#ifdef SILO_DIFF_UNDER_ASAN
    constexpr std::size_t ops = 150'000;
#else
    constexpr std::size_t ops = 1'000'000;
#endif
    for (std::size_t i = 0; i < ops; ++i) {
        bool can_pop = !d.modelEmpty();
        // Bias toward scheduling so the queues grow deep, but drain
        // often enough to cross the wheel many times.
        if (!can_pop || rng() % 5 < 3) {
            Tick when = d.queue().now() + randomDelay(rng);
            bool spawns = rng() % 16 == 0;
            d.scheduleBoth(when, randomPriority(rng), spawns);
        } else {
            ASSERT_TRUE(d.popBoth()) << "at op " << i;
        }
    }
    // Drain everything left.
    while (!d.modelEmpty())
        ASSERT_TRUE(d.popBoth());
    EXPECT_FALSE(d.queue().runNext());
}

TEST(EventQueueDiff, SameCycleBurstKeepsFifoWithinPriority)
{
    LockstepDriver d(42);
    for (int round = 0; round < 50; ++round) {
        Tick when = d.queue().now() + Tick(round * 7);
        for (int i = 0; i < 40; ++i)
            d.scheduleBoth(when, randomPriority(d.rng()), false);
        for (int i = 0; i < 40; ++i)
            ASSERT_TRUE(d.popBoth());
    }
}

TEST(EventQueueDiff, CursorRewindAfterPeekedRunUntil)
{
    // runUntil() peeks past its limit, advancing the internal cursor
    // to the next event's (far-future) tick; a subsequent schedule
    // below that tick must still pop first.
    EventQueue q;
    std::vector<int> order;
    q.schedule(100, [&] { order.push_back(1); });
    q.schedule(100 + (Tick(1) << 15), [&] { order.push_back(3); });
    q.runUntil(200);
    ASSERT_EQ(q.now(), 100u);
    q.schedule(150, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueDiff, TombstonedEventsStillOrderCorrectly)
{
    // The queue has no erase(); cancellation in the simulator is a
    // callback that checks a flag and does nothing. The tombstone must
    // still occupy its slot in the pop order.
    EventQueue q;
    std::vector<int> order;
    bool cancelled = true;
    q.schedule(10, [&] {
        if (!cancelled)
            order.push_back(1);
    });
    q.schedule(10, [&] { order.push_back(2); });
    q.schedule(20, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3}));
    EXPECT_EQ(q.executedEvents(), 3u);
}

} // namespace
} // namespace silo
