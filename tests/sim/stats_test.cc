/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace silo::stats
{
namespace
{

TEST(Scalar, CountsAndResets)
{
    Scalar s("writes", "number of writes");
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Average, MeanMinMax)
{
    Average a("lat", "latency");
    a.sample(10);
    a.sample(20);
    a.sample(60);
    EXPECT_DOUBLE_EQ(a.mean(), 30.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 10.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 60.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Average a("x", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 0.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 0.0);
}

TEST(Average, ResetClears)
{
    Average a("x", "");
    a.sample(5);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Distribution, BucketsAndOverflow)
{
    Distribution d("sz", "sizes", 10, 4);
    d.sample(0);
    d.sample(9);
    d.sample(10);
    d.sample(35);
    d.sample(40);     // overflow
    d.sample(1000);   // overflow
    ASSERT_EQ(d.buckets().size(), 4u);
    EXPECT_EQ(d.buckets()[0], 2u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[2], 0u);
    EXPECT_EQ(d.buckets()[3], 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.summary().count(), 6u);
}

TEST(Distribution, ZeroWidthIsClampedToOne)
{
    Distribution d("sz", "", 0, 2);
    d.sample(1);
    EXPECT_EQ(d.buckets()[1], 1u);
}

TEST(Distribution, PercentileBucketEdges)
{
    // Buckets [0,9] [10,19] [20,29] [30,39], overflow >= 40.
    Distribution d("lat", "", 10, 4);
    for (std::uint64_t v : {5, 7, 15, 25, 100})
        d.sample(v);
    // rank(0.2 * 5) = 1 lands in bucket 0: upper edge 9.
    EXPECT_EQ(d.percentile(0.2), 9u);
    // rank(0.5 * 5) = 3 lands in bucket 1: upper edge 19.
    EXPECT_EQ(d.p50(), 19u);
    // rank(0.99 * 5) = 5 lands in the overflow bucket: the observed
    // maximum is the tightest bound the histogram still knows.
    EXPECT_EQ(d.p99(), 100u);
}

TEST(Distribution, PercentileClampsToObservedMax)
{
    // All samples sit well inside bucket 0; the bucket's upper edge
    // (9) would overestimate, so the observed max wins.
    Distribution d("lat", "", 10, 4);
    d.sample(4);
    d.sample(4);
    EXPECT_EQ(d.p50(), 4u);
    EXPECT_EQ(d.p99(), 4u);
}

TEST(Distribution, PercentileEmptyIsZero)
{
    Distribution d("lat", "", 10, 4);
    EXPECT_EQ(d.p50(), 0u);
    EXPECT_EQ(d.p99(), 0u);
}

TEST(Distribution, PercentileFracAboveOneIsClamped)
{
    Distribution d("lat", "", 10, 4);
    d.sample(12);
    EXPECT_EQ(d.percentile(2.0), 12u);
}

TEST(Distribution, CountsConsistentInvariant)
{
    Distribution d("sz", "", 10, 2);
    EXPECT_TRUE(d.countsConsistent());
    d.sample(5);
    d.sample(15);
    d.sample(999);  // overflow
    EXPECT_TRUE(d.countsConsistent());
    EXPECT_EQ(d.summary().count(), 3u);
    d.reset();
    EXPECT_TRUE(d.countsConsistent());
}

TEST(StatGroup, PrintsRegisteredStats)
{
    Scalar s("hits", "cache hits");
    Average a("lat", "load latency");
    StatGroup g("l1d");
    g.addScalar(s);
    g.addAverage(a);
    s += 7;
    a.sample(4);

    std::ostringstream os;
    g.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("l1d.hits"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("l1d.lat.mean"), std::string::npos);
    EXPECT_NE(text.find("cache hits"), std::string::npos);
}

TEST(StatGroup, PrintJsonEmitsAllStatKinds)
{
    Scalar s("hits", "");
    Average a("lat", "");
    Distribution d("sz", "", 10, 2);
    StatGroup g("l1d");
    g.addScalar(s);
    g.addAverage(a);
    g.addDistribution(d);
    s += 7;
    a.sample(4);
    d.sample(5);
    d.sample(25);  // overflow

    std::ostringstream os;
    g.printJson(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"hits\": 7"), std::string::npos);
    EXPECT_NE(text.find("\"lat\": {\"mean\": 4"), std::string::npos);
    // p50 rank 1 lands in bucket [0,9]: the bucket's upper edge.
    EXPECT_NE(text.find("\"p50\": 9"), std::string::npos);
    EXPECT_NE(text.find("\"buckets\": [1, 0]"), std::string::npos);
    EXPECT_NE(text.find("\"overflow\": 1"), std::string::npos);
}

TEST(StatRegistry, NestsSlashPaths)
{
    Scalar s0("x", ""), s1("x", "");
    StatGroup mc0("mc0"), mc1("mc1");
    mc0.addScalar(s0);
    mc1.addScalar(s1);
    s0 += 1;
    s1 += 2;

    StatRegistry reg;
    reg.add("mc/1", mc1);
    reg.add("mc/0", mc0);
    EXPECT_EQ(reg.size(), 2u);
    const std::string text = reg.toJson();
    EXPECT_NE(text.find("\"schema\": \"silo-stats-v1\""),
              std::string::npos);
    // Sorted by path regardless of registration order.
    EXPECT_NE(
        text.find("\"mc\": {\"0\": {\"x\": 1}, \"1\": {\"x\": 2}}"),
        std::string::npos);
}

TEST(StatRegistry, LeafThatIsAlsoPrefixKeepsStatsKey)
{
    Scalar s0("x", ""), s1("x", "");
    StatGroup parent("mc"), child("mc0");
    parent.addScalar(s0);
    child.addScalar(s1);

    StatRegistry reg;
    reg.add("mc", parent);
    reg.add("mc/0", child);
    const std::string text = reg.toJson();
    EXPECT_NE(
        text.find("\"mc\": {\"stats\": {\"x\": 0}, \"0\": {\"x\": 0}}"),
        std::string::npos);
}

TEST(StatRegistry, DuplicatePathPanics)
{
    StatGroup g("g");
    StatRegistry reg;
    reg.add("a/b", g);
    EXPECT_THROW(reg.add("a/b", g), PanicError);
}

TEST(StatGroup, ResetResetsAll)
{
    Scalar s("a", "");
    Average a("b", "");
    Distribution d("c", "", 1, 2);
    StatGroup g;
    g.addScalar(s);
    g.addAverage(a);
    g.addDistribution(d);
    s += 3;
    a.sample(1);
    d.sample(1);
    g.reset();
    EXPECT_EQ(s.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(d.summary().count(), 0u);
}

} // namespace
} // namespace silo::stats
