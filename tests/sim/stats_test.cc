/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace silo::stats
{
namespace
{

TEST(Scalar, CountsAndResets)
{
    Scalar s("writes", "number of writes");
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Average, MeanMinMax)
{
    Average a("lat", "latency");
    a.sample(10);
    a.sample(20);
    a.sample(60);
    EXPECT_DOUBLE_EQ(a.mean(), 30.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 10.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 60.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Average a("x", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 0.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 0.0);
}

TEST(Average, ResetClears)
{
    Average a("x", "");
    a.sample(5);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Distribution, BucketsAndOverflow)
{
    Distribution d("sz", "sizes", 10, 4);
    d.sample(0);
    d.sample(9);
    d.sample(10);
    d.sample(35);
    d.sample(40);     // overflow
    d.sample(1000);   // overflow
    ASSERT_EQ(d.buckets().size(), 4u);
    EXPECT_EQ(d.buckets()[0], 2u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[2], 0u);
    EXPECT_EQ(d.buckets()[3], 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.summary().count(), 6u);
}

TEST(Distribution, ZeroWidthIsClampedToOne)
{
    Distribution d("sz", "", 0, 2);
    d.sample(1);
    EXPECT_EQ(d.buckets()[1], 1u);
}

TEST(StatGroup, PrintsRegisteredStats)
{
    Scalar s("hits", "cache hits");
    Average a("lat", "load latency");
    StatGroup g("l1d");
    g.addScalar(s);
    g.addAverage(a);
    s += 7;
    a.sample(4);

    std::ostringstream os;
    g.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("l1d.hits"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("l1d.lat.mean"), std::string::npos);
    EXPECT_NE(text.find("cache hits"), std::string::npos);
}

TEST(StatGroup, ResetResetsAll)
{
    Scalar s("a", "");
    Average a("b", "");
    Distribution d("c", "", 1, 2);
    StatGroup g;
    g.addScalar(s);
    g.addAverage(a);
    g.addDistribution(d);
    s += 3;
    a.sample(1);
    d.sample(1);
    g.reset();
    EXPECT_EQ(s.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(d.summary().count(), 0u);
}

} // namespace
} // namespace silo::stats
