/** @file Unit tests for the discrete event queue. */

// silo-lint: allowfile(handler-hygiene) test callbacks run synchronously within the enclosing scope; [&] over stack locals is safe here

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace silo
{
namespace
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.runNext());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventQueue::prioCore);
    eq.schedule(5, [&] { order.push_back(0); }, EventQueue::prioDevice);
    eq.schedule(5, [&] { order.push_back(3); }, EventQueue::prioCore);
    eq.schedule(5, [&] { order.push_back(1); }, EventQueue::prioDefault);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EventsCanReschedule)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> tick = [&] {
        if (++fired < 5)
            eq.scheduleAfter(10, tick);
    };
    eq.schedule(0, tick);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, ScheduleInThePastClampsToNow)
{
    EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 100u);
}

TEST(EventQueue, StopRequestHaltsRun)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i) {
        eq.schedule(i, [&] {
            if (++fired == 4)
                eq.requestStop();
        });
    }
    eq.run();
    EXPECT_EQ(fired, 4);
    EXPECT_TRUE(eq.stopRequested());
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueue, MaxEventsBoundsExecution)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [&] { ++fired; });
    EXPECT_EQ(eq.run(3), 3u);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runNext();
    eq.schedule(20, [] {});
    eq.requestStop();
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.executedEvents(), 0u);
    EXPECT_FALSE(eq.stopRequested());
}

TEST(EventQueue, ExecutedEventsCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 7u);
}

TEST(EventQueue, DeterministicAcrossRuns)
{
    auto trace = [] {
        EventQueue eq;
        std::vector<Tick> ticks;
        for (int i = 0; i < 100; ++i) {
            eq.schedule((i * 37) % 50, [&, i] {
                ticks.push_back(eq.now() * 1000 + i);
            });
        }
        eq.run();
        return ticks;
    };
    EXPECT_EQ(trace(), trace());
}

} // namespace
} // namespace silo
