/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

namespace silo
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(double(hits) / n, 0.25, 0.01);
}

TEST(Rng, ValuesAreWellSpread)
{
    Rng r(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.next());
    EXPECT_EQ(seen.size(), 1000u);
}

} // namespace
} // namespace silo
