/** @file Unit tests for the Tracer and the IntervalSampler. */

// silo-lint: allowfile(handler-hygiene) test callbacks run synchronously within the enclosing scope; [&] over stack locals is safe here

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sampler.hh"
#include "sim/tracer.hh"

namespace silo::trace
{
namespace
{

TEST(Tracer, DisabledRecordsNothing)
{
    Tracer t;
    EXPECT_FALSE(t.enabled());
    EXPECT_EQ(t.track("mem", "mc"), 0u);
    t.completeSpan(0, "drain", 10, 20);
    t.counter(0, "occupancy", 10, 3.0);
    t.instant(0, "crash", 10);
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.trackCount(), 0u);
}

TEST(Tracer, TracksDeduplicateAndShareProcessIds)
{
    Tracer t;
    t.enable();
    auto mc = t.track("mem", "mc");
    auto pm = t.track("mem", "pm");
    auto core = t.track("cores", "core0");
    EXPECT_NE(mc, pm);
    EXPECT_NE(mc, core);
    EXPECT_EQ(t.track("mem", "mc"), mc);
    EXPECT_EQ(t.trackCount(), 3u);

    std::ostringstream os;
    t.writeJson(os);
    const std::string text = os.str();
    // Two distinct processes, named once each via metadata events.
    EXPECT_NE(text.find("\"args\":{\"name\":\"mem\"}"),
              std::string::npos);
    EXPECT_NE(text.find("\"args\":{\"name\":\"cores\"}"),
              std::string::npos);
    EXPECT_NE(text.find("\"args\":{\"name\":\"pm\"}"),
              std::string::npos);
}

TEST(Tracer, SpanWithReversedEndIsClampedToZeroDuration)
{
    Tracer t;
    t.enable();
    auto tr = t.track("mem", "mc");
    t.completeSpan(tr, "drain", 100, 40);
    std::ostringstream os;
    t.writeJson(os);
    EXPECT_NE(os.str().find("\"dur\":0"), std::string::npos);
}

TEST(Tracer, WriteJsonSortsByTimestampKeepingRecordOrder)
{
    Tracer t;
    t.enable(1.0);  // 1 tick per exported microsecond
    auto tr = t.track("mem", "mc");
    t.completeSpan(tr, "late", 300, 310);
    t.completeSpan(tr, "early", 100, 110);
    t.completeSpan(tr, "outer", 100, 140);  // same ts as "early"

    std::ostringstream os;
    t.writeJson(os);
    const std::string text = os.str();
    std::size_t early = text.find("\"early\"");
    std::size_t outer = text.find("\"outer\"");
    std::size_t late = text.find("\"late\"");
    ASSERT_NE(early, std::string::npos);
    ASSERT_NE(outer, std::string::npos);
    ASSERT_NE(late, std::string::npos);
    EXPECT_LT(early, outer);  // same ts: recording order is kept
    EXPECT_LT(outer, late);   // earlier ts sorts first
}

TEST(Tracer, GoldenJson)
{
    Tracer t;
    t.enable(2.0);
    auto tr = t.track("mem", "mc");
    t.completeSpan(tr, "drain", 4, 10);
    t.counter(tr, "occ", 6, 3.5);
    t.instant(tr, "crash", 8);

    std::ostringstream os;
    t.writeJson(os);
    EXPECT_EQ(os.str(),
              "{\"traceEvents\":[\n"
              "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,"
              "\"name\":\"process_name\",\"args\":{\"name\":\"mem\"}},\n"
              "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,"
              "\"name\":\"thread_name\",\"args\":{\"name\":\"mc\"}},\n"
              "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":2,"
              "\"name\":\"drain\",\"dur\":3},\n"
              "{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":3,"
              "\"name\":\"occ\",\"args\":{\"value\":3.5}},\n"
              "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":4,"
              "\"name\":\"crash\",\"s\":\"t\"}\n"
              "],\"displayTimeUnit\":\"ns\"}\n");
}

TEST(Tracer, EscapesQuotesAndBackslashes)
{
    Tracer t;
    t.enable();
    auto tr = t.track("mem", "a\"b\\c");
    t.instant(tr, "x\"y", 0);
    std::ostringstream os;
    t.writeJson(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("a\\\"b\\\\c"), std::string::npos);
    EXPECT_NE(text.find("x\\\"y"), std::string::npos);
}

TEST(Sampler, SamplesCrossedBoundariesWithoutAddingEvents)
{
    EventQueue eq;
    Tracer t;
    t.enable();
    IntervalSampler sampler(eq, t, 100);
    auto track = t.track("counters", "sampler");
    int value = 0;
    sampler.addCounter(track, "v", [&] { return double(value); });
    sampler.start();

    // Events at 0, 50, 250; boundaries 0, 100, 200 are all sampled by
    // the time the event at 250 runs (none are added to the queue).
    eq.schedule(0, [&] { value = 1; });
    eq.schedule(50, [&] { value = 2; });
    eq.schedule(250, [&] { value = 3; });
    std::uint64_t executed = eq.run();
    EXPECT_EQ(executed, 3u);  // the sampler scheduled nothing
    EXPECT_EQ(eq.now(), 250u);
    EXPECT_EQ(sampler.samplesTaken(), 3u);
    EXPECT_EQ(t.eventCount(), 3u);
}

TEST(Sampler, SampleObservesSettledStateOfOutgoingTick)
{
    EventQueue eq;
    Tracer t;
    t.enable(1.0);
    IntervalSampler sampler(eq, t, 100);
    auto track = t.track("counters", "sampler");
    int value = 0;
    sampler.addCounter(track, "v", [&] { return double(value); });
    sampler.start();

    // Both events at tick 100 run before the boundary-100 sample is
    // taken (it happens when time advances to 150), so the sample sees
    // the tick's final state.
    eq.schedule(100, [&] { value = 1; });
    eq.schedule(100, [&] { value = 2; });
    eq.schedule(150, [] {});
    eq.run();
    std::ostringstream os;
    t.writeJson(os);
    const std::string text = os.str();
    // Boundary 0 sampled value 0; boundary 100 sampled value 2.
    EXPECT_NE(text.find("\"ts\":0,\"name\":\"v\","
                        "\"args\":{\"value\":0}"),
              std::string::npos);
    EXPECT_NE(text.find("\"ts\":100,\"name\":\"v\","
                        "\"args\":{\"value\":2}"),
              std::string::npos);
}

TEST(Sampler, FlushCollectsFinalPartialEpoch)
{
    EventQueue eq;
    Tracer t;
    t.enable();
    IntervalSampler sampler(eq, t, 100);
    auto track = t.track("counters", "sampler");
    sampler.addCounter(track, "v", [] { return 1.0; });
    sampler.start();

    eq.schedule(130, [] {});
    eq.run();
    EXPECT_EQ(sampler.samplesTaken(), 2u);  // boundaries 0 and 100
    sampler.flush(eq.now());
    EXPECT_EQ(sampler.samplesTaken(), 2u);  // 200 > 130: nothing due
    sampler.flush(250);
    EXPECT_EQ(sampler.samplesTaken(), 3u);
    sampler.flush(250);  // idempotent
    EXPECT_EQ(sampler.samplesTaken(), 3u);
}

} // namespace
} // namespace silo::trace
