/**
 * @file
 * WordStore stress/fuzz tests against an std::unordered_map oracle:
 * randomized store/load/operator[]/loadImage across directory growth
 * boundaries and page edges (first/last word of a page, adjacent
 * pages, 48-bit address extremes), plus the deterministic-iteration
 * contract — words() and begin()/end() enumerate written words in
 * ascending address order regardless of insertion order, which the
 * crash-image comparisons in src/check/ and the golden-JSON sweep
 * test rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>
#include <vector>

#include "sim/word_store.hh"

namespace silo
{
namespace
{

constexpr Addr pageBytes = 4096;
/** Top of the 48-bit physical address space, word-aligned. */
constexpr Addr addrTop = (Addr(1) << 48) - wordBytes;

/** Compare a store against its oracle exactly. */
void
expectMatchesOracle(const WordStore &store,
                    const std::unordered_map<Addr, Word> &oracle)
{
    ASSERT_EQ(store.size(), oracle.size());
    ASSERT_EQ(store.footprintWords(), oracle.size());
    // silo-lint: allow(nondet-iteration) per-key containment checks; pass/fail is independent of visit order
    for (const auto &[addr, value] : oracle) {
        ASSERT_TRUE(store.contains(addr)) << std::hex << addr;
        ASSERT_EQ(store.load(addr), value) << std::hex << addr;
    }
    // And the reverse direction via iteration: nothing extra, sorted.
    Addr prev = 0;
    bool first = true;
    std::size_t seen = 0;
    for (const auto &[addr, value] : store) {
        if (!first)
            ASSERT_LT(prev, addr) << "iteration must ascend";
        first = false;
        prev = addr;
        auto it = oracle.find(addr);
        ASSERT_NE(it, oracle.end()) << std::hex << addr;
        ASSERT_EQ(it->second, value) << std::hex << addr;
        ++seen;
    }
    ASSERT_EQ(seen, oracle.size());
}

TEST(WordStoreStress, RandomOpsMatchUnorderedMapOracle)
{
    std::mt19937_64 rng(20230307);
    WordStore store;
    std::unordered_map<Addr, Word> oracle;

    // A few hot pages plus a wide sparse range, so lookups exercise
    // both the hit cache and cold directory probes, and page count
    // crosses several directory growth boundaries.
    std::vector<Addr> page_bases;
    for (int i = 0; i < 400; ++i) {
        Addr base = (rng() % (Addr(1) << 36)) * pageBytes;
        page_bases.push_back(base);
    }

    for (int op = 0; op < 200'000; ++op) {
        Addr base = page_bases[rng() % page_bases.size()];
        Addr addr = base + (rng() % (pageBytes / wordBytes)) * wordBytes;
        switch (rng() % 4) {
          case 0: case 1: {
            Word v = rng();
            store.store(addr, v);
            oracle[addr] = v;
            break;
          }
          case 2:
            ASSERT_EQ(store.load(addr),
                      oracle.count(addr) ? oracle[addr] : 0)
                << std::hex << addr;
            break;
          default:
            ASSERT_EQ(store.contains(addr), oracle.count(addr) != 0);
            break;
        }
    }
    expectMatchesOracle(store, oracle);
}

TEST(WordStoreStress, PageEdgesAndAdjacentPages)
{
    WordStore store;
    std::unordered_map<Addr, Word> oracle;
    const Addr bases[] = {
        0,                      // very first page
        pageBytes,              // adjacent page
        pageBytes * 2,
        Addr(1) << 30,
        (Addr(1) << 30) + pageBytes,
        addrTop + wordBytes - pageBytes,   // last full page
    };
    for (Addr base : bases) {
        // First and last word of the page, plus both sides of each
        // page boundary.
        for (Addr a : {base, base + wordBytes,
                       base + pageBytes - 2 * wordBytes,
                       base + pageBytes - wordBytes}) {
            Word v = a * 2654435761u + 1;
            store.store(a, v);
            oracle[a] = v;
        }
    }
    expectMatchesOracle(store, oracle);
    // Last word of one page and first of the next are distinct.
    EXPECT_NE(store.load(pageBytes - wordBytes), store.load(pageBytes));
}

TEST(WordStoreStress, FortyEightBitExtremes)
{
    WordStore store;
    store.store(0, 11);
    store.store(addrTop, 22);
    store.store(addrTop - wordBytes, 33);
    EXPECT_EQ(store.load(0), 11u);
    EXPECT_EQ(store.load(addrTop), 22u);
    EXPECT_EQ(store.load(addrTop - wordBytes), 33u);
    EXPECT_EQ(store.footprintWords(), 3u);
    EXPECT_FALSE(store.contains(wordBytes));

    auto snapshot = store.words();
    ASSERT_EQ(snapshot.size(), 3u);
    EXPECT_EQ(snapshot[0].first, 0u);
    EXPECT_EQ(snapshot[1].first, addrTop - wordBytes);
    EXPECT_EQ(snapshot[2].first, addrTop);
}

TEST(WordStoreStress, LoadImageOverlaysAndCounts)
{
    WordStore a;
    a.store(0x1000, 1);
    a.store(0x2000, 2);
    WordStore b;
    b.store(0x2000, 20);   // overlap: b's value must win in a
    b.store(0x3000, 30);
    a.loadImage(b);
    EXPECT_EQ(a.load(0x1000), 1u);
    EXPECT_EQ(a.load(0x2000), 20u);
    EXPECT_EQ(a.load(0x3000), 30u);
    EXPECT_EQ(a.footprintWords(), 3u);

    // Map-image overload and converting constructor.
    std::unordered_map<Addr, Word> image{{0x4000, 4}, {0x1000, 10}};
    a.loadImage(image);
    EXPECT_EQ(a.load(0x1000), 10u);
    EXPECT_EQ(a.load(0x4000), 4u);
    EXPECT_EQ(a.footprintWords(), 4u);

    WordStore c = image;
    EXPECT_EQ(c.load(0x4000), 4u);
    EXPECT_EQ(c.size(), 2u);
}

TEST(WordStoreStress, SubscriptInsertsZeroLikeUnorderedMap)
{
    WordStore store;
    EXPECT_EQ(store[0x1000], 0u);
    EXPECT_EQ(store.size(), 1u) << "operator[] must default-insert";
    EXPECT_TRUE(store.contains(0x1000));
    store[0x1000] = 7;
    EXPECT_EQ(store.load(0x1000), 7u);
    EXPECT_EQ(store.size(), 1u);

    // Storing zero explicitly still counts toward the footprint.
    store.store(0x2000, 0);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.contains(0x2000));
}

TEST(WordStoreStress, IterationOrderIndependentOfInsertionOrder)
{
    std::mt19937_64 rng(7);
    std::vector<Addr> addrs;
    for (int i = 0; i < 5000; ++i)
        addrs.push_back((rng() % (Addr(1) << 40)) / wordBytes *
                        wordBytes);

    WordStore forward;
    for (Addr a : addrs)
        forward.store(a, a + 1);
    WordStore shuffled;
    std::shuffle(addrs.begin(), addrs.end(), rng);
    for (Addr a : addrs)
        shuffled.store(a, a + 1);

    auto fw = forward.words();
    auto sw = shuffled.words();
    ASSERT_EQ(fw, sw)
        << "words() must be a pure function of contents";
    ASSERT_TRUE(std::is_sorted(fw.begin(), fw.end()));
}

TEST(WordStoreStress, UnalignedAccessPanics)
{
    WordStore store;
    EXPECT_THROW(store.store(0x1001, 1), PanicError);
    EXPECT_THROW((void)store.load(0x7), PanicError);
    EXPECT_THROW((void)store.contains(0x1234567), PanicError);
}

} // namespace
} // namespace silo
