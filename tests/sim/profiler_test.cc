/**
 * @file
 * Profiler invariants the silo-prof-v1 contract rests on: exact
 * self/total/count accounting under nesting, a complete and unique
 * tag-name table, zero-cost null scopes, dispatch-tag attribution
 * through the EventQueue choke point, and a deterministic
 * (thread-order-independent) merge. Host *times* are inherently
 * noisy, so the tests assert structural exactness — counts, ordering
 * relations, self+children==total — never absolute durations.
 */

// silo-lint: allowfile(callback-lifetime) test callbacks run synchronously within the enclosing scope; [&] over stack locals is safe here

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/profiler.hh"

namespace silo::prof
{
namespace
{

TEST(ThreadProfileTest, NestedScopesFoldSelfAndTotalExactly)
{
    ThreadProfile p;
    p.enter(Tag::Simulate);
    p.enter(Tag::Core);
    p.exit();
    p.enter(Tag::Mc);
    p.exit();
    p.exit();
    EXPECT_EQ(p.depth(), 0u);

    const auto &tags = p.counters();
    const TagCounters &sim = tags[std::size_t(Tag::Simulate)];
    const TagCounters &core = tags[std::size_t(Tag::Core)];
    const TagCounters &mc = tags[std::size_t(Tag::Mc)];

    EXPECT_EQ(sim.count, 1u);
    EXPECT_EQ(core.count, 1u);
    EXPECT_EQ(mc.count, 1u);
    // Leaves have no children: self == total, exactly.
    EXPECT_EQ(core.selfNanos, core.totalNanos);
    EXPECT_EQ(mc.selfNanos, mc.totalNanos);
    // The parent's self excludes exactly its children's totals. All
    // uint64 nanoseconds, so this holds with == and no epsilon.
    EXPECT_EQ(sim.selfNanos + core.totalNanos + mc.totalNanos,
              sim.totalNanos);
    // Untouched tags stay zero.
    EXPECT_EQ(tags[std::size_t(Tag::Other)].count, 0u);
    EXPECT_EQ(tags[std::size_t(Tag::Other)].totalNanos, 0u);
}

TEST(ThreadProfileTest, DeepNestingPropagatesChildTime)
{
    ThreadProfile p;
    p.enter(Tag::Simulate);        // depth 1
    p.enter(Tag::LogScheme);       // depth 2
    p.enter(Tag::Nvm);             // depth 3
    p.exit();
    p.exit();
    p.exit();
    const auto &tags = p.counters();
    const TagCounters &sim = tags[std::size_t(Tag::Simulate)];
    const TagCounters &log = tags[std::size_t(Tag::LogScheme)];
    const TagCounters &nvm = tags[std::size_t(Tag::Nvm)];
    EXPECT_EQ(log.selfNanos + nvm.totalNanos, log.totalNanos);
    EXPECT_EQ(sim.selfNanos + log.totalNanos, sim.totalNanos);
    EXPECT_GE(sim.totalNanos, log.totalNanos);
    EXPECT_GE(log.totalNanos, nvm.totalNanos);
}

TEST(ThreadProfileTest, RepeatedScopesAccumulateCounts)
{
    ThreadProfile p;
    for (int i = 0; i < 1000; ++i) {
        TimedScope scope(&p, Tag::Core);
    }
    EXPECT_EQ(p.counters()[std::size_t(Tag::Core)].count, 1000u);
    EXPECT_EQ(p.depth(), 0u);
}

TEST(TimedScopeTest, NullProfileIsANoOp)
{
    // The off path: must not crash, must not record anything anywhere.
    TimedScope scope(nullptr, Tag::Core);
    SUCCEED();
}

TEST(TagTest, NamesAreCompleteUniqueAndStable)
{
    std::set<std::string> seen;
    for (std::size_t i = 0; i < numTags; ++i) {
        std::string name = tagName(Tag(i));
        EXPECT_FALSE(name.empty()) << "tag " << i;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate tag name " << name;
    }
    // The silo-prof-v1 schema names are load-bearing: renaming one is
    // a format change and must be deliberate.
    EXPECT_EQ(tagName(Tag::Core), std::string("core"));
    EXPECT_EQ(tagName(Tag::LogScheme), std::string("log_scheme"));
    EXPECT_EQ(tagName(Tag::Other), std::string("other"));
    EXPECT_EQ(tagName(Tag::TraceCompile),
              std::string("trace_compile"));
    EXPECT_EQ(tagName(Tag::JsonEmit), std::string("json_emit"));
}

TEST(TagTest, DomainPhaseSplitMatchesEnumLayout)
{
    EXPECT_TRUE(isDomain(Tag::Core));
    EXPECT_TRUE(isDomain(Tag::Stats));
    EXPECT_TRUE(isDomain(Tag::Other));
    EXPECT_FALSE(isDomain(Tag::TraceCompile));
    EXPECT_FALSE(isDomain(Tag::JsonEmit));
}

TEST(EventQueueProfiling, DispatchesAreTimedUnderTheirDomainTag)
{
    ThreadProfile profile;
    EventQueue q;
    q.setProfiler(&profile);

    int ran = 0;
    q.schedule(10, [&ran] { ++ran; }, EventQueue::prioCore,
               Tag::Core);
    q.schedule(10, [&ran] { ++ran; }, EventQueue::prioDevice,
               Tag::Nvm);
    q.schedule(20, [&ran] { ++ran; }, EventQueue::prioDefault,
               Tag::LogScheme);
    q.schedule(30, [&ran] { ++ran; }, EventQueue::prioDefault,
               Tag::LogScheme);
    // Default tag: Other. The production tree never leaves it there —
    // perf_telemetry_test's MergedCountsAreIdenticalAcrossJobCounts
    // asserts Other == 0 on a real matrix.
    q.schedule(40, [&ran] { ++ran; });
    q.run();

    EXPECT_EQ(ran, 5);
    const auto &tags = profile.counters();
    EXPECT_EQ(tags[std::size_t(Tag::Core)].count, 1u);
    EXPECT_EQ(tags[std::size_t(Tag::Nvm)].count, 1u);
    EXPECT_EQ(tags[std::size_t(Tag::LogScheme)].count, 2u);
    EXPECT_EQ(tags[std::size_t(Tag::Other)].count, 1u);
    EXPECT_EQ(tags[std::size_t(Tag::Mc)].count, 0u);
    EXPECT_EQ(profile.depth(), 0u);
}

TEST(EventQueueProfiling, DetachedQueueRecordsNothing)
{
    ThreadProfile profile;
    EventQueue q;
    q.setProfiler(&profile);
    q.setProfiler(nullptr);
    int ran = 0;
    q.schedule(1, [&ran] { ++ran; }, EventQueue::prioCore, Tag::Core);
    q.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(profile.counters()[std::size_t(Tag::Core)].count, 0u);
}

TEST(ProfilerTest, MergeSumsSlabsExactly)
{
    Profiler profiler;
    constexpr int threads = 8;
    constexpr int scopesPerThread = 500;

    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&profiler, t] {
            ThreadProfile *slab = profiler.threadProfile();
            ASSERT_NE(slab, nullptr);
            // Same slab on every lookup from this thread.
            EXPECT_EQ(profiler.threadProfile(), slab);
            Tag tag = (t % 2 == 0) ? Tag::Core : Tag::Mc;
            for (int i = 0; i < scopesPerThread; ++i) {
                TimedScope scope(slab, tag);
            }
        });
    }
    for (std::thread &th : pool)
        th.join();

    EXPECT_EQ(profiler.threadCount(), std::size_t(threads));
    auto merged = profiler.merged();
    // Counts are exact and scheduling-independent: 4 threads each on
    // Core and Mc.
    EXPECT_EQ(merged[std::size_t(Tag::Core)].count,
              std::uint64_t(threads / 2 * scopesPerThread));
    EXPECT_EQ(merged[std::size_t(Tag::Mc)].count,
              std::uint64_t(threads / 2 * scopesPerThread));
    EXPECT_EQ(merged[std::size_t(Tag::Other)].count, 0u);
    // Leaf scopes: merged self == merged total.
    EXPECT_EQ(merged[std::size_t(Tag::Core)].selfNanos,
              merged[std::size_t(Tag::Core)].totalNanos);
}

TEST(ProfilerTest, InstallRoutesCurrentThreadProfile)
{
    // No profiler installed: the lookup is null (the entire tree's
    // off path rests on this).
    Profiler::install(nullptr);
    EXPECT_EQ(currentThreadProfile(), nullptr);

    Profiler profiler;
    Profiler::install(&profiler);
    ThreadProfile *slab = currentThreadProfile();
    ASSERT_NE(slab, nullptr);
    EXPECT_EQ(currentThreadProfile(), slab); // cached, stable
    EXPECT_EQ(Profiler::current(), &profiler);

    // Swapping profilers re-registers instead of reusing stale slabs.
    Profiler second;
    Profiler::install(&second);
    ThreadProfile *fresh = currentThreadProfile();
    ASSERT_NE(fresh, nullptr);
    EXPECT_NE(fresh, slab);

    Profiler::install(nullptr);
    EXPECT_EQ(currentThreadProfile(), nullptr);
}

} // namespace
} // namespace silo::prof
