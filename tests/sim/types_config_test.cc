/** @file Unit tests for type helpers, SimConfig validation and tables. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hh"
#include "sim/table.hh"
#include "sim/types.hh"

namespace silo
{
namespace
{

TEST(Types, Alignment)
{
    EXPECT_EQ(wordAlign(0x1007), 0x1000u);
    EXPECT_EQ(lineAlign(0x10ff), 0x10c0u);
    EXPECT_EQ(pmLineAlign(0x11ff), 0x1100u);
    EXPECT_EQ(wordInLine(0x38), 7u);
    EXPECT_EQ(wordInLine(0x40), 0u);
}

TEST(Types, CyclesFromNs)
{
    // Table II: 50 ns read, 150 ns write at 2 GHz.
    EXPECT_EQ(cyclesFromNs(50.0), 100u);
    EXPECT_EQ(cyclesFromNs(150.0), 300u);
}

TEST(Types, LogEntrySizesMatchPaper)
{
    // §III-F: undo entry is 18B; §VI-D: undo+redo entry is 26B.
    EXPECT_EQ(undoLogEntryBytes, 18u);
    EXPECT_EQ(undoRedoLogEntryBytes, 26u);
}

TEST(SimConfig, DefaultsMatchTableII)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.numCores, 8u);
    EXPECT_EQ(cfg.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1d.latency, 4u);
    EXPECT_EQ(cfg.l2.latency, 12u);
    EXPECT_EQ(cfg.l3.latency, 28u);
    EXPECT_EQ(cfg.wpqEntries, 64u);
    EXPECT_EQ(cfg.pmReadCycles, 100u);
    EXPECT_EQ(cfg.pmWriteCycles, 300u);
    EXPECT_EQ(cfg.logBufferEntries, 20u);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfig, ValidateRejectsNonsense)
{
    SimConfig cfg;
    cfg.numCores = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SimConfig{};
    cfg.logBufferEntries = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SimConfig{};
    cfg.onPmBufferLineBytes = 100;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SchemeName, AllKindsNamed)
{
    EXPECT_STREQ(schemeName(SchemeKind::Base), "Base");
    EXPECT_STREQ(schemeName(SchemeKind::Fwb), "FWB");
    EXPECT_STREQ(schemeName(SchemeKind::MorLog), "MorLog");
    EXPECT_STREQ(schemeName(SchemeKind::Lad), "LAD");
    EXPECT_STREQ(schemeName(SchemeKind::Silo), "Silo");
}

TEST(Logging, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom"), PanicError);
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t("Demo");
    t.header({"name", "value"});
    t.row({"a", "1.000"});
    t.row({"longer", "2.500"});
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("== Demo =="), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    // Columns aligned: "a" padded to width of "longer".
    EXPECT_NE(text.find("a       1.000"), std::string::npos);
}

TEST(TablePrinter, NumFormatsDigits)
{
    EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::num(2.0, 3), "2.000");
}

} // namespace
} // namespace silo
