/**
 * @file
 * Unit tests for the baseline schemes' distinguishing mechanisms:
 * Base's per-store log+flush, FWB's posted logs and walker, MorLog's
 * merge buffer and commit flush, LAD's held entries and two-phase
 * commit.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "log/fwb_scheme.hh"
#include "log/lad_scheme.hh"
#include "log/morlog_scheme.hh"
#include "workload/trace_gen.hh"

namespace silo::log
{
namespace
{

using workload::TxOp;

workload::WorkloadTraces
traceOf(std::vector<TxOp> ops,
        std::unordered_map<Addr, Word> initial = {})
{
    workload::WorkloadTraces t;
    t.threads.resize(1);
    t.threads[0].ops = std::move(ops);
    for (const auto &op : t.threads[0].ops) {
        if (op.kind == TxOp::Kind::TxEnd)
            ++t.threads[0].numTransactions;
    }
    t.initialMemory = std::move(initial);
    t.finalMemory = t.initialMemory;
    for (const auto &op : t.threads[0].ops) {
        if (op.kind == TxOp::Kind::Store)
            t.finalMemory[op.addr] = op.value;
    }
    return t;
}

constexpr Addr base = addr_map::dataRegionBase;

TxOp begin() { return {TxOp::Kind::TxBegin, 0, 0}; }
TxOp end() { return {TxOp::Kind::TxEnd, 0, 0}; }
TxOp st(Addr a, Word v) { return {TxOp::Kind::Store, a, v}; }

SimConfig
oneCore(SchemeKind kind)
{
    SimConfig cfg;
    cfg.numCores = 1;
    cfg.scheme = kind;
    return cfg;
}

TEST(BaseMechanisms, LogPlusCommitMarkerPerTransaction)
{
    auto traces = traceOf({begin(), st(base, 1), st(base + 8, 2),
                           end()});
    harness::System sys(oneCore(SchemeKind::Base), traces);
    sys.run();
    // Two undo+redo records + one commit marker.
    EXPECT_EQ(sys.report().logRecordsWritten, 3u);
    // Base flushed the data lines at store time: media has the values
    // after queue drain, without any cache write-back.
    sys.mc().drainAll();
    EXPECT_EQ(sys.pm().media().load(base), 1u);
    EXPECT_EQ(sys.pm().media().load(base + 8), 2u);
}

TEST(BaseMechanisms, LogTruncatesAfterCommit)
{
    auto traces = traceOf({begin(), st(base, 1), end()});
    harness::System sys(oneCore(SchemeKind::Base), traces);
    sys.run();
    EXPECT_EQ(sys.logRegion().liveRecordCount(), 0u);
}

TEST(FwbMechanisms, LogsEveryStoreIncludingRepeats)
{
    auto traces = traceOf({begin(), st(base, 1), st(base, 2), end()});
    harness::System sys(oneCore(SchemeKind::Fwb), traces);
    sys.run();
    // Two records (no merging in FWB) + one commit marker.
    EXPECT_EQ(sys.report().logRecordsWritten, 3u);
}

TEST(FwbMechanisms, WalkerCleansDirtyLines)
{
    SimConfig cfg = oneCore(SchemeKind::Fwb);
    cfg.fwbIntervalCycles = 200;
    auto traces = traceOf({begin(), st(base, 7), end(),
                           begin(), st(base + 4096, 8), end()});
    harness::System sys(cfg, traces);
    sys.run();
    auto &scheme = dynamic_cast<FwbScheme &>(sys.scheme());
    EXPECT_GT(scheme.walkerWritebacks(), 0u);
    sys.mc().drainAll();
    EXPECT_EQ(sys.pm().media().load(base), 7u);
}

TEST(MorLogMechanisms, MergesAndSkipsSilentStores)
{
    auto traces = traceOf({begin(), st(base, 1), st(base, 2),
                           st(base + 8, 5), end()},
                          {{base + 8, 5}});
    harness::System sys(oneCore(SchemeKind::MorLog), traces);
    sys.run();
    auto &scheme = dynamic_cast<MorLogScheme &>(sys.scheme());
    EXPECT_EQ(scheme.mergedLogs(), 1u);
    // One merged record (silent store skipped) + commit marker.
    EXPECT_EQ(sys.report().logRecordsWritten, 2u);
}

TEST(MorLogMechanisms, CommitWaitsForLogFlush)
{
    auto traces = traceOf({begin(), st(base, 1), st(base + 8, 2),
                           end()});
    harness::System sys(oneCore(SchemeKind::MorLog), traces);
    sys.run();
    // Both entries plus the marker are in the log region by commit
    // (the wait is invisible here because an idle WPQ accepts
    // synchronously; the stall materializes under load, see the
    // Fig. 12 bench).
    EXPECT_EQ(sys.report().logRecordsWritten, 3u);
    EXPECT_EQ(sys.report().committedTransactions, 1u);
}

TEST(LadMechanisms, NoLogsInCommonCase)
{
    auto traces = traceOf({begin(), st(base, 1), st(base + 8, 2),
                           end()});
    harness::System sys(oneCore(SchemeKind::Lad), traces);
    sys.run();
    EXPECT_EQ(sys.report().logRecordsWritten, 0u);
    sys.mc().drainAll();
    // Phase 1 pushed the line to the MC; after release it drained.
    EXPECT_EQ(sys.pm().media().load(base), 1u);
}

TEST(LadMechanisms, CommitStallScalesWithDirtyLines)
{
    // Two transactions: one touching 1 line, one touching 6 lines.
    std::vector<TxOp> few = {begin(), st(base, 1), end()};
    std::vector<TxOp> many = {begin()};
    for (unsigned l = 0; l < 6; ++l)
        many.push_back(st(base + l * lineBytes, l + 1));
    many.push_back(end());

    harness::System sys_few(oneCore(SchemeKind::Lad), traceOf(few));
    sys_few.run();
    harness::System sys_many(oneCore(SchemeKind::Lad), traceOf(many));
    sys_many.run();

    EXPECT_GT(sys_many.report().commitStallCycles,
              sys_few.report().commitStallCycles + 4 *
                  SimConfig{}.ladFlushPerLineCycles);
}

TEST(LadMechanisms, UncommittedLinesAreHeldInMc)
{
    // Crash mid-transaction: the stored line must not reach media.
    auto traces = traceOf({begin(), st(base, 99), end()},
                          {{base, 1}});
    harness::System sys(oneCore(SchemeKind::Lad), traces);
    while (sys.values().load(base) != 99)
        sys.runEvents(1);
    ASSERT_TRUE(sys.coreAt(0).inTransaction());
    sys.crash();
    sys.recover();
    EXPECT_EQ(sys.pm().media().load(base), 1u);
}

TEST(LadMechanisms, SlowModeWritesUndoOnMcPressure)
{
    SimConfig cfg = oneCore(SchemeKind::Lad);
    cfg.wpqEntries = 12;     // tiny MC
    cfg.ladMcEntries = 12;
    // One big transaction dirtying many lines.
    std::vector<TxOp> ops = {begin()};
    for (unsigned l = 0; l < 64; ++l)
        ops.push_back(st(base + l * lineBytes, l + 1));
    ops.push_back(end());
    auto traces = traceOf(std::move(ops));

    harness::System sys(cfg, traces);
    sys.run();
    auto &scheme = dynamic_cast<LadScheme &>(sys.scheme());
    EXPECT_GT(scheme.overflowFallbacks(), 0u);
    sys.drainToMedia();
    for (unsigned l = 0; l < 64; ++l)
        EXPECT_EQ(sys.pm().media().load(base + l * lineBytes), l + 1);
}

} // namespace
} // namespace silo::log
