/**
 * @file
 * Table IV / Table I reproduction tests — the energy model is
 * analytic, so these check the paper's numbers directly.
 */

#include <gtest/gtest.h>

#include "energy/battery_model.hh"

namespace silo::energy
{
namespace
{

TEST(TableI, PerCoreLogBufferIs680Bytes)
{
    SimConfig cfg;
    auto hw = siloHardwareOverhead(cfg);
    EXPECT_EQ(hw.logBufferEntriesPerCore, 20u);
    EXPECT_EQ(hw.logBufferBytesPerCore, 680u);   // 20 x (26 + 8)
    EXPECT_EQ(hw.comparatorsPerLogBuffer, 20u);
    EXPECT_EQ(hw.headTailRegisterBytesPerCore, 16u);
}

TEST(TableI, PerBufferLithiumBatteryMatchesPaper)
{
    SimConfig cfg;
    auto hw = siloHardwareOverhead(cfg);
    // Table I: 2.125e-4 mm^3 of lithium thin-film per log buffer.
    EXPECT_NEAR(hw.liBatteryMm3PerLogBuffer, 2.125e-4, 2e-5);
}

TEST(TableIV, SiloFlushSizeAndEnergy)
{
    SimConfig cfg;   // 8 cores
    auto req = siloBattery(cfg);
    EXPECT_NEAR(req.flushSizeKB, 5.3125, 1e-9);      // paper: 5.3125
    EXPECT_NEAR(req.flushEnergyUj, 62.0, 1.5);       // paper: 62
}

TEST(TableIV, SiloBatteryVolumesAndAreas)
{
    SimConfig cfg;
    auto req = siloBattery(cfg);
    EXPECT_NEAR(req.capVolumeMm3, 0.17, 0.01);       // paper: 0.17
    EXPECT_NEAR(req.capAreaMm2, 0.31, 0.01);         // paper: 0.31
    EXPECT_NEAR(req.liVolumeMm3, 0.0017, 0.0001);    // paper: 0.0017
    EXPECT_NEAR(req.liAreaMm2, 0.014, 0.001);        // paper: 0.014
}

TEST(TableIV, BbbRow)
{
    SimConfig cfg;
    auto req = bbbBattery(cfg);
    EXPECT_NEAR(req.flushSizeKB, 16.0, 1e-9);        // paper: 16
    EXPECT_NEAR(req.flushEnergyUj, 194.0, 11.0);     // paper: 194
    EXPECT_NEAR(req.capVolumeMm3, 0.54, 0.04);       // paper: 0.54
    EXPECT_NEAR(req.liVolumeMm3, 0.0054, 0.0004);    // paper: 0.0054
}

TEST(TableIV, EadrRow)
{
    SimConfig cfg;
    auto req = eadrBattery(cfg);
    // Table II caches: 8x32KB + 8x256KB + 8MB = 10,496 KB.
    EXPECT_NEAR(req.flushSizeKB / 0.45, 10496.0, 1e-6);
    EXPECT_NEAR(req.flushEnergyUj, 54377.0, 500.0);  // paper: 54,377
    EXPECT_NEAR(req.capVolumeMm3, 151.0, 2.0);       // paper: 151
    EXPECT_NEAR(req.capAreaMm2, 28.4, 0.4);          // paper: 28.4
    EXPECT_NEAR(req.liVolumeMm3, 1.51, 0.02);        // paper: 1.51
    EXPECT_NEAR(req.liAreaMm2, 1.32, 0.02);          // paper: 1.32
}

TEST(TableIV, PaperRatioEadrVsSilo)
{
    SimConfig cfg;
    auto eadr = eadrBattery(cfg);
    auto silo = siloBattery(cfg);
    // §VI-E: eADR consumes 888.2x larger Cap volume than Silo
    // (91.6x area).
    EXPECT_NEAR(eadr.capVolumeMm3 / silo.capVolumeMm3, 888.2, 15.0);
    EXPECT_NEAR(eadr.capAreaMm2 / silo.capAreaMm2, 91.6, 2.0);
}

TEST(TableIV, ScalesWithCoreCount)
{
    SimConfig cfg;
    cfg.numCores = 4;
    auto req = siloBattery(cfg);
    EXPECT_NEAR(req.flushSizeKB, 5.3125 / 2, 1e-9);
}

} // namespace
} // namespace silo::energy
