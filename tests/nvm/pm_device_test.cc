/** @file Unit tests for the PM device: buffer coalescing, DCW, banks. */

#include <gtest/gtest.h>

#include "nvm/pm_device.hh"

namespace silo::nvm
{
namespace
{

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.onPmBufferLines = 2;
    cfg.pmBanks = 2;
    return cfg;
}

TEST(PmDevice, WriteReachesMediaAfterDrain)
{
    EventQueue eq;
    SimConfig cfg = tinyConfig();
    PmDevice pm(eq, cfg);

    ASSERT_TRUE(pm.tryWrite(0x1000, {{0, 42}, {3, 7}}, false));
    pm.drainAll();
    EXPECT_EQ(pm.media().load(0x1000), 42u);
    EXPECT_EQ(pm.media().load(0x1018), 7u);
    EXPECT_EQ(pm.mediaWordWrites(), 2u);
}

TEST(PmDevice, CoalescesIntoResidentLine)
{
    EventQueue eq;
    SimConfig cfg = tinyConfig();
    PmDevice pm(eq, cfg);

    ASSERT_TRUE(pm.tryWrite(0x1000, {{0, 1}}, false));
    ASSERT_TRUE(pm.tryWrite(0x1000, {{1, 2}}, false));
    ASSERT_TRUE(pm.tryWrite(0x1000, {{0, 3}}, false));   // overwrite
    EXPECT_EQ(pm.bufferCoalescedWrites(), 2u);
    pm.drainAll();
    EXPECT_EQ(pm.media().load(0x1000), 3u);
    EXPECT_EQ(pm.media().load(0x1008), 2u);
    // One line, two distinct words: the overwrite never hit the media.
    EXPECT_EQ(pm.mediaWordWrites(), 2u);
}

TEST(PmDevice, DcwSuppressesUnchangedWords)
{
    EventQueue eq;
    SimConfig cfg = tinyConfig();
    PmDevice pm(eq, cfg);

    ASSERT_TRUE(pm.tryWrite(0x1000, {{0, 5}, {1, 6}}, false));
    pm.drainAll();
    EXPECT_EQ(pm.mediaWordWrites(), 2u);

    // Rewrite the same values plus one changed word.
    ASSERT_TRUE(pm.tryWrite(0x1000, {{0, 5}, {1, 6}, {2, 7}}, false));
    pm.drainAll();
    EXPECT_EQ(pm.mediaWordWrites(), 3u);
    EXPECT_EQ(pm.dcwSuppressedWords(), 2u);
}

TEST(PmDevice, LogRegionWordsAlwaysWrite)
{
    EventQueue eq;
    SimConfig cfg = tinyConfig();
    PmDevice pm(eq, cfg);

    ASSERT_TRUE(pm.tryWrite(0x2000, {{0, 0}, {1, 0}}, true));
    pm.drainAll();
    EXPECT_EQ(pm.logRegionWordWrites(), 2u);
    EXPECT_EQ(pm.mediaWordWrites(), 2u);
}

TEST(PmDevice, EvictionFreesSlotAfterBankBusy)
{
    EventQueue eq;
    SimConfig cfg = tinyConfig();
    PmDevice pm(eq, cfg);

    // Fill both lines, then a third distinct line forces an eviction.
    ASSERT_TRUE(pm.tryWrite(0x1000, {{0, 1}}, false));
    ASSERT_TRUE(pm.tryWrite(0x2000, {{0, 2}}, false));
    EXPECT_FALSE(pm.tryWrite(0x3000, {{0, 3}}, false));

    bool notified = false;
    pm.registerSlotWaiter([&] { notified = true; });
    eq.run();
    EXPECT_TRUE(notified);
    EXPECT_TRUE(pm.tryWrite(0x3000, {{0, 3}}, false));
    EXPECT_GE(pm.mediaWordWrites(), 1u);
}

TEST(PmDevice, AllZeroChangeEvictionIsFree)
{
    EventQueue eq;
    SimConfig cfg = tinyConfig();
    PmDevice pm(eq, cfg);
    pm.media().store(0x1000, 9);

    // Writing the value already in media: DCW cancels the media write.
    ASSERT_TRUE(pm.tryWrite(0x1000, {{0, 9}}, false));
    pm.drainAll();
    EXPECT_EQ(pm.mediaWordWrites(), 0u);
    EXPECT_EQ(pm.mediaLineWrites(), 0u);
    EXPECT_EQ(pm.dcwSuppressedWords(), 1u);
}

TEST(PmDevice, ReadHitsBufferFast)
{
    EventQueue eq;
    SimConfig cfg = tinyConfig();
    PmDevice pm(eq, cfg);

    ASSERT_TRUE(pm.tryWrite(0x1000, {{0, 1}}, false));
    Tick hit = pm.read(0x1000);
    EXPECT_LE(hit, eq.now() + 10);
    EXPECT_EQ(pm.bufferReadHits(), 1u);

    Tick miss = pm.read(0x9000);
    EXPECT_GE(miss, eq.now() + cfg.pmReadCycles);
    EXPECT_EQ(pm.mediaReads(), 1u);
}

TEST(PmDevice, BankContentionSerializesReads)
{
    EventQueue eq;
    SimConfig cfg = tinyConfig();   // 2 banks
    PmDevice pm(eq, cfg);

    // Same bank: the second read starts after the first's occupancy
    // window (reads pipeline; only the sensing slot serializes).
    Tick first = pm.read(0x1000);
    Tick second = pm.read(0x1000);
    EXPECT_EQ(first, eq.now() + cfg.pmReadCycles);
    EXPECT_EQ(second, first + cfg.pmReadOccupancyCycles);

    // Different bank proceeds in parallel.
    Tick other = pm.read(0x1100);
    EXPECT_EQ(other, eq.now() + cfg.pmReadCycles);
}

TEST(PmDevice, WriteBusyScalesWithWordCount)
{
    EventQueue eq;
    SimConfig cfg = tinyConfig();
    cfg.onPmBufferLines = 1;
    PmDevice pm(eq, cfg);

    ASSERT_TRUE(pm.tryWrite(0x1000, {{0, 1}}, false));
    // Force eviction by writing another line.
    EXPECT_FALSE(pm.tryWrite(0x2000, {{0, 2}, {1, 3}, {2, 4}}, false));
    // One word: base + 1*perWord.
    eq.run();
    Tick one_word_done = eq.now();
    EXPECT_EQ(one_word_done,
              cfg.pmWriteBaseCycles + cfg.pmWritePerWordCycles);
}

} // namespace
} // namespace silo::nvm
