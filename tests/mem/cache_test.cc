/** @file Unit tests for the cache level and the hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace silo::mem
{
namespace
{

CacheConfig tiny{1024, 2, 4};   // 16 lines, 8 sets x 2 ways

TEST(Cache, HitAfterInsert)
{
    Cache c("c", tiny);
    EXPECT_FALSE(c.access(0x1000, false));
    c.insert(0x1000, false);
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, WriteSetsDirty)
{
    Cache c("c", tiny);
    c.insert(0x1000, false);
    EXPECT_FALSE(c.isDirty(0x1000));
    c.access(0x1000, true);
    EXPECT_TRUE(c.isDirty(0x1000));
    c.clean(0x1000);
    EXPECT_FALSE(c.isDirty(0x1000));
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c("c", tiny);
    // Three lines in the same set (stride = 8 sets * 64B).
    Addr a = 0x0000, b = 0x2000, d = 0x4000;
    EXPECT_FALSE(c.insert(a, true).has_value());
    EXPECT_FALSE(c.insert(b, false).has_value());
    c.access(a, false);   // a is now MRU
    auto victim = c.insert(d, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, b);
    EXPECT_FALSE(victim->dirty);
    EXPECT_TRUE(c.contains(a));
}

TEST(Cache, DirtyVictimReported)
{
    Cache c("c", tiny);
    c.insert(0x0000, true);
    c.insert(0x2000, false);
    auto victim = c.insert(0x4000, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, 0x0000u);
    EXPECT_TRUE(victim->dirty);
}

TEST(Cache, ExtractRemovesLine)
{
    Cache c("c", tiny);
    c.insert(0x1000, true);
    auto state = c.extract(0x1000);
    ASSERT_TRUE(state.has_value());
    EXPECT_TRUE(state->dirty);
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.extract(0x1000).has_value());
}

TEST(Cache, DirtyLinesEnumerated)
{
    Cache c("c", tiny);
    // Distinct sets so nothing evicts.
    c.insert(0x1000, true);
    c.insert(0x1040, false);
    c.insert(0x1080, true);
    auto dirty = c.dirtyLines();
    EXPECT_EQ(dirty.size(), 2u);
}

TEST(Cache, DoubleInsertPanics)
{
    Cache c("c", tiny);
    c.insert(0x1000, false);
    EXPECT_THROW(c.insert(0x1000, false), PanicError);
}

TEST(Cache, BadGeometryIsFatal)
{
    CacheConfig bad{1024, 7, 4};   // 16 lines not divisible by 7 ways
    EXPECT_THROW(Cache("c", bad), FatalError);
}

// --- Hierarchy ---------------------------------------------------------

struct HierFixture
{
    SimConfig cfg;
    EventQueue eq;
    log::LogRegionStore logs{2};
    WordStore values;
    std::unique_ptr<nvm::PmDevice> pm;
    std::unique_ptr<mc::McRouter> mc;
    std::unique_ptr<CacheHierarchy> hier;

    HierFixture()
    {
        cfg.numCores = 2;
        cfg.l1d = {512, 2, 4};    // 8 lines
        cfg.l2 = {1024, 2, 12};   // 16 lines
        cfg.l3 = {2048, 2, 28};   // 32 lines
        pm = std::make_unique<nvm::PmDevice>(eq, cfg);
        mc = std::make_unique<mc::McRouter>(eq, cfg, *pm, logs);
        hier = std::make_unique<CacheHierarchy>(
            eq, cfg, *mc, [this](Addr a) { return values.load(a); });
    }

    /** Run one access to completion and return its latency. */
    Cycles
    timedAccess(unsigned core, Addr addr, bool write)
    {
        Tick start = eq.now();
        bool done = false;
        Tick end = 0;
        hier->access(core, addr, write, [&] {
            done = true;
            end = eq.now();
        });
        eq.run();
        EXPECT_TRUE(done);
        return end - start;
    }
};

TEST(Hierarchy, L1HitIsFourCycles)
{
    HierFixture f;
    f.timedAccess(0, 0x1000, false);           // cold miss
    Cycles lat = f.timedAccess(0, 0x1000, false);
    EXPECT_EQ(lat, 4u);
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    HierFixture f;
    Cycles lat = f.timedAccess(0, 0x1000, false);
    // l1 + l2 + l3 + pm read + forwarding overhead.
    EXPECT_GE(lat, 4u + 12 + 28 + f.cfg.pmReadCycles);
}

TEST(Hierarchy, StoreMakesLineDirtyInL1)
{
    HierFixture f;
    f.timedAccess(0, 0x1000, true);
    EXPECT_TRUE(f.hier->l1(0).isDirty(0x1000));
    EXPECT_TRUE(f.hier->isDirty(0, 0x1000));
}

TEST(Hierarchy, DirtyLineWritesBackOnCapacityEviction)
{
    HierFixture f;
    // Dirty one line, then stream enough lines to push it out of all
    // three levels (32 L3 lines).
    f.values.store(0x0000, 1234);
    f.timedAccess(0, 0x0000, true);
    for (Addr a = 0x10000; a < 0x10000 + 64 * lineBytes; a += lineBytes)
        f.timedAccess(0, a, false);
    f.eq.run();
    f.mc->drainAll();
    EXPECT_EQ(f.pm->media().load(0x0000), 1234u);
}

TEST(Hierarchy, FlushLineWritesValuesAndCleans)
{
    HierFixture f;
    f.values.store(0x3000, 99);
    f.timedAccess(0, 0x3000, true);
    ASSERT_TRUE(f.hier->isDirty(0, 0x3000));

    bool accepted = false;
    f.hier->flushLine(0, 0x3000, false, [&] { accepted = true; });
    f.eq.run();
    EXPECT_TRUE(accepted);
    EXPECT_FALSE(f.hier->isDirty(0, 0x3000));
    f.mc->drainAll();
    EXPECT_EQ(f.pm->media().load(0x3000), 99u);
}

TEST(Hierarchy, PerCoreCachesAreIndependent)
{
    HierFixture f;
    f.timedAccess(0, 0x1000, true);
    EXPECT_FALSE(f.hier->l1(1).contains(0x1000));
    Cycles lat = f.timedAccess(1, 0x2000, false);
    EXPECT_GT(lat, 4u);
}

TEST(Hierarchy, InvalidateAllDropsEverything)
{
    HierFixture f;
    f.timedAccess(0, 0x1000, true);
    f.hier->invalidateAll();
    EXPECT_FALSE(f.hier->l1(0).contains(0x1000));
    EXPECT_TRUE(f.hier->allDirtyLines().empty());
}

TEST(Hierarchy, EvictionHeldPredicateMarksHeldEntries)
{
    HierFixture f;
    f.hier->setEvictionHeldPredicate([](Addr) { return true; });
    f.timedAccess(0, 0x0000, true);
    for (Addr a = 0x10000; a < 0x10000 + 64 * lineBytes; a += lineBytes)
        f.timedAccess(0, a, false);
    EXPECT_GE(f.mc->heldEntries(), 1u);
}

} // namespace
} // namespace silo::mem
