/**
 * @file
 * Tests for multi-memory-controller routing (§III-D): one thread's
 * data and logs land on the same controller, the system runs and
 * recovers correctly with several MCs, and results match the
 * single-MC configuration functionally.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "mc/mc_router.hh"
#include "workload/trace_gen.hh"

namespace silo::mc
{
namespace
{

TEST(McRouter, SingleControllerPassThrough)
{
    SimConfig cfg;
    EventQueue eq;
    log::LogRegionStore logs(4);
    nvm::PmDevice pm(eq, cfg);
    McRouter router(eq, cfg, pm, logs);
    EXPECT_EQ(router.numControllers(), 1u);
    EXPECT_EQ(&router.controllerFor(addr_map::dataArenaBase(0)),
              &router.controllerFor(addr_map::dataArenaBase(3)));
}

TEST(McRouter, ThreadDataAndLogsShareAController)
{
    SimConfig cfg;
    cfg.numMemControllers = 4;
    EventQueue eq;
    log::LogRegionStore logs(8);
    nvm::PmDevice pm(eq, cfg);
    McRouter router(eq, cfg, pm, logs);
    ASSERT_EQ(router.numControllers(), 4u);

    for (unsigned tid = 0; tid < 8; ++tid) {
        auto &data_mc =
            router.controllerFor(addr_map::dataArenaBase(tid) + 0x40);
        auto &log_mc =
            router.controllerFor(addr_map::logAreaBase(tid) + 26);
        EXPECT_EQ(&data_mc, &log_mc) << "tid " << tid;
    }
    // Different threads spread over the controllers.
    EXPECT_NE(&router.controllerFor(addr_map::dataArenaBase(0)),
              &router.controllerFor(addr_map::dataArenaBase(1)));
}

TEST(McRouter, WritesLandOnTheRoutedController)
{
    SimConfig cfg;
    cfg.numMemControllers = 2;
    EventQueue eq;
    log::LogRegionStore logs(4);
    nvm::PmDevice pm(eq, cfg);
    McRouter router(eq, cfg, pm, logs);

    ASSERT_TRUE(router.tryWriteWord(addr_map::dataArenaBase(0), 1));
    ASSERT_TRUE(router.tryWriteWord(addr_map::dataArenaBase(1), 2));
    EXPECT_EQ(router.controllerAt(0).acceptedWrites() +
                  router.controllerAt(1).acceptedWrites(),
              2u);
    EXPECT_EQ(router.controllerAt(0).acceptedWrites(), 1u);
    EXPECT_EQ(router.controllerAt(1).acceptedWrites(), 1u);
}

class MultiMcSystem : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(MultiMcSystem, RunsAndMatchesFunctionalImage)
{
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Hash;
    tg.numThreads = 4;
    tg.transactionsPerThread = 30;
    auto traces = workload::generateTraces(tg);

    SimConfig cfg;
    cfg.numCores = 4;
    cfg.numMemControllers = 2;
    cfg.scheme = GetParam();
    harness::System sys(cfg, traces);
    sys.run();
    EXPECT_EQ(sys.report().committedTransactions, 4u * 30);
    sys.settle();
    sys.drainToMedia();
    for (const auto &[addr, value] : traces.finalMemory)
        ASSERT_EQ(sys.pm().media().load(addr), value);
}

TEST_P(MultiMcSystem, CrashRecoveryHoldsWithTwoControllers)
{
    workload::TraceGenConfig tg;
    tg.kind = workload::WorkloadKind::Bank;
    tg.numThreads = 4;
    tg.transactionsPerThread = 25;
    tg.seed = 9;
    auto traces = workload::generateTraces(tg);

    SimConfig cfg;
    cfg.numCores = 4;
    cfg.numMemControllers = 2;
    cfg.scheme = GetParam();
    harness::System sys(cfg, traces);
    sys.runEvents(4000);
    sys.crash();
    sys.recover();

    WordStore expected = traces.initialMemory;
    for (unsigned t = 0; t < 4; ++t) {
        std::size_t upto = sys.coreAt(t).committedOpIndex();
        if (sys.scheme().lastTxCommittedAtCrash(t))
            upto = std::max(upto,
                            sys.coreAt(t).commitRequestedOpIndex());
        for (std::size_t i = 0; i < upto; ++i) {
            const auto &op = traces.threads[t].ops[i];
            if (op.kind == workload::TxOp::Kind::Store)
                expected[op.addr] = op.value;
        }
    }
    for (const auto &[addr, value] : expected)
        ASSERT_EQ(sys.pm().media().load(addr), value)
            << "addr 0x" << std::hex << addr;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, MultiMcSystem,
    ::testing::Values(SchemeKind::Base, SchemeKind::MorLog,
                      SchemeKind::Lad, SchemeKind::Silo),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        return std::string(schemeName(info.param));
    });

} // namespace
} // namespace silo::mc
