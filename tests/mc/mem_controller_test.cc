/** @file Unit tests for the memory controller / WPQ. */

#include <gtest/gtest.h>

#include "mc/mem_controller.hh"

namespace silo::mc
{
namespace
{

struct Fixture
{
    SimConfig cfg;
    EventQueue eq;
    log::LogRegionStore logs{8};
    std::unique_ptr<nvm::PmDevice> pm;
    std::unique_ptr<MemController> mc;

    explicit Fixture(unsigned wpq_entries = 4)
    {
        cfg.wpqEntries = wpq_entries;
        cfg.onPmBufferLines = 64;
        pm = std::make_unique<nvm::PmDevice>(eq, cfg);
        mc = std::make_unique<MemController>(eq, cfg, *pm, logs);
    }
};

std::array<Word, wordsPerLine>
lineOf(Word base)
{
    std::array<Word, wordsPerLine> v;
    for (unsigned i = 0; i < wordsPerLine; ++i)
        v[i] = base + i;
    return v;
}

TEST(MemController, LineWriteDrainsToMedia)
{
    Fixture f;
    ASSERT_TRUE(f.mc->tryWriteLine(0x1000, lineOf(100), true));
    f.eq.run();
    f.mc->drainAll();
    EXPECT_EQ(f.pm->media().load(0x1000), 100u);
    EXPECT_EQ(f.pm->media().load(0x1038), 107u);
}

TEST(MemController, WordWriteDrainsToMedia)
{
    Fixture f;
    ASSERT_TRUE(f.mc->tryWriteWord(0x2008, 77));
    f.eq.run();
    f.mc->drainAll();
    EXPECT_EQ(f.pm->media().load(0x2008), 77u);
}

TEST(MemController, SameLineWritesCoalesce)
{
    Fixture f(2);
    ASSERT_TRUE(f.mc->tryWriteWord(0x1000, 1));
    ASSERT_TRUE(f.mc->tryWriteWord(0x1008, 2));   // same 64B line
    EXPECT_EQ(f.mc->coalescedWrites(), 1u);
    EXPECT_EQ(f.mc->acceptedWrites(), 1u);
}

TEST(MemController, FullWpqRejectsAndNotifiesWaiter)
{
    Fixture f(2);
    ASSERT_TRUE(f.mc->tryWriteLine(0x1000, lineOf(0), false));
    ASSERT_TRUE(f.mc->tryWriteLine(0x2000, lineOf(0), false));
    EXPECT_FALSE(f.mc->tryWriteLine(0x3000, lineOf(0), false));
    EXPECT_EQ(f.mc->fullStalls(), 1u);

    bool woke = false;
    f.mc->requestWriteSlot([&] { woke = true; });
    f.eq.run();
    EXPECT_TRUE(woke);
}

TEST(MemController, LogWriteIsDurableAtAccept)
{
    Fixture f;
    log::LogRecord rec;
    rec.kind = log::LogRecord::Kind::UndoRedo;
    rec.tid = 3;
    rec.txid = 9;
    rec.dataAddr = 0xabc0;
    rec.oldData = 1;
    rec.newData = 2;

    Addr addr = f.logs.allocate(3, rec.sizeBytes());
    ASSERT_TRUE(f.mc->tryWriteLog(addr, rec));
    // Durable immediately — visible even before any drain.
    auto live = f.logs.liveRecords(3);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].second.txid, 9);
    EXPECT_EQ(live[0].second.newData, 2u);
}

TEST(MemController, EvictionObserverFiresOnEvictedLines)
{
    Fixture f;
    std::vector<Addr> seen;
    f.mc->setEvictionObserver([&](Addr a) { seen.push_back(a); });
    ASSERT_TRUE(f.mc->tryWriteLine(0x1000, lineOf(0), true));
    ASSERT_TRUE(f.mc->tryWriteLine(0x2000, lineOf(0), false));
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 0x1000u);
}

TEST(MemController, HeldEntriesDoNotDrainUntilReleased)
{
    Fixture f;
    ASSERT_TRUE(f.mc->tryWriteLine(0x1000, lineOf(50), false, true));
    EXPECT_EQ(f.mc->heldEntries(), 1u);
    f.eq.run();
    f.pm->drainAll();
    EXPECT_EQ(f.pm->media().load(0x1000), 0u);   // not drained

    f.mc->releaseHeld(0x1000);
    EXPECT_EQ(f.mc->heldEntries(), 0u);
    f.eq.run();
    f.mc->drainAll();
    EXPECT_EQ(f.pm->media().load(0x1000), 50u);
}

TEST(MemController, CrashDropsHeldAndDrainsRest)
{
    Fixture f;
    ASSERT_TRUE(f.mc->tryWriteLine(0x1000, lineOf(10), false, false));
    ASSERT_TRUE(f.mc->tryWriteLine(0x2000, lineOf(20), false, true));
    f.mc->crashDrain();
    EXPECT_EQ(f.pm->media().load(0x1000), 10u);   // ADR drained
    EXPECT_EQ(f.pm->media().load(0x2000), 0u);    // held discarded
}

TEST(MemController, ReadForwardsFromWpq)
{
    Fixture f;
    ASSERT_TRUE(f.mc->tryWriteLine(0x1000, lineOf(1), false));
    bool done = false;
    Tick when = 0;
    f.mc->read(0x1000, [&] {
        done = true;
        when = f.eq.now();
    });
    f.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(f.mc->readForwards(), 1u);
    EXPECT_LE(when, 10u);
}

TEST(MemController, ReadMissGoesToDevice)
{
    Fixture f;
    bool done = false;
    Tick when = 0;
    f.mc->read(0x5000, [&] {
        done = true;
        when = f.eq.now();
    });
    f.eq.run();
    EXPECT_TRUE(done);
    EXPECT_GE(when, f.cfg.pmReadCycles);
}

TEST(LogRegionStore, AllocatePadsAcrossPmLines)
{
    log::LogRegionStore logs(2);
    Addr first = logs.allocate(0, 26);
    // Fill up to near the 256B boundary.
    Addr prev = first;
    for (int i = 0; i < 20; ++i) {
        Addr a = logs.allocate(0, 26);
        EXPECT_GT(a, prev);
        // Never straddles a 256B line.
        EXPECT_EQ(pmLineAlign(a), pmLineAlign(a + 25));
        prev = a;
    }
}

TEST(LogRegionStore, TruncateDropsLiveRecords)
{
    log::LogRegionStore logs(1);
    log::LogRecord rec;
    for (int i = 0; i < 5; ++i) {
        Addr a = logs.allocate(0, rec.sizeBytes());
        logs.persist(a, rec);
    }
    EXPECT_EQ(logs.liveRecords(0).size(), 5u);
    logs.truncate(0);
    EXPECT_EQ(logs.liveRecords(0).size(), 0u);

    // New records after truncation are live again.
    Addr a = logs.allocate(0, rec.sizeBytes());
    logs.persist(a, rec);
    EXPECT_EQ(logs.liveRecords(0).size(), 1u);
}

} // namespace
} // namespace silo::mc
