/**
 * @file
 * Tests for the declarative litmus workload: text round-trips,
 * validation, trace compilation (including `tx abort`), and the
 * deterministic initial image.
 */

#include <gtest/gtest.h>

#include "sim/address_map.hh"
#include "workload/litmus.hh"
#include "workload/trace_gen.hh"

namespace silo::workload
{
namespace
{

LitmusProgram
twoThreadProgram()
{
    LitmusProgram p;
    p.name = "overlap-2t";
    LitmusThread t0;
    LitmusTx a;
    a.ops.push_back({LitmusOp::Kind::Store, 0x40, 7});
    a.ops.push_back({LitmusOp::Kind::Load, 0x40, 0});
    t0.txs.push_back(a);
    LitmusTx b;
    b.ops.push_back({LitmusOp::Kind::Store, 0x48, 8});
    b.commit = false; // final tx stays open
    t0.txs.push_back(b);
    p.threads.push_back(t0);

    LitmusThread t1;
    LitmusTx c;
    c.ops.push_back({LitmusOp::Kind::Store, 0x40, 9});
    t1.txs.push_back(c);
    t1.txs.push_back(LitmusTx{}); // empty committed tx
    p.threads.push_back(t1);
    return p;
}

TEST(LitmusText, SerializeParseRoundTrip)
{
    LitmusProgram p = twoThreadProgram();
    std::vector<std::pair<std::string, std::string>> meta = {
        {"scheme", "Silo"}, {"provenance", "seed=7 extra words"}};
    std::string text = serializeLitmus(p, meta);

    LitmusFile parsed = parseLitmus(text);
    EXPECT_EQ(parsed.meta, meta);
    EXPECT_EQ(serializeLitmus(parsed.program, parsed.meta), text);
    EXPECT_EQ(parsed.program.name, "overlap-2t");
    ASSERT_EQ(parsed.program.threads.size(), 2u);
    EXPECT_FALSE(parsed.program.threads[0].txs.back().commit);
    EXPECT_TRUE(parsed.program.threads[1].txs.back().ops.empty());
    EXPECT_EQ(parsed.program.txCount(), 4u);
    EXPECT_EQ(parsed.program.opCount(), 4u);
}

TEST(LitmusText, ParseRejectsMalformedInput)
{
    EXPECT_THROW(parseLitmus("not litmus\n"), FatalError);
    EXPECT_THROW(parseLitmus("litmus v1\nstore 0x0 1\n"), FatalError);
    EXPECT_THROW(
        parseLitmus("litmus v1\nthread 0\ntx\nstore zzz 1\nend\n"),
        FatalError);
    EXPECT_THROW(parseLitmus("litmus v1\nthread 0\ntx\nstore 0x0 1\n"),
                 FatalError); // unterminated tx
}

TEST(LitmusValidate, RejectsBadShapes)
{
    EXPECT_THROW(validateLitmus(LitmusProgram{}), FatalError);

    LitmusProgram unaligned = twoThreadProgram();
    unaligned.threads[0].txs[0].ops[0].offset = 0x41;
    EXPECT_THROW(validateLitmus(unaligned), FatalError);

    LitmusProgram outside = twoThreadProgram();
    outside.threads[0].txs[0].ops[0].offset = addr_map::dataArenaBytes;
    EXPECT_THROW(validateLitmus(outside), FatalError);

    LitmusProgram early_abort = twoThreadProgram();
    early_abort.threads[0].txs[0].commit = false;
    EXPECT_THROW(validateLitmus(early_abort), FatalError);
}

TEST(LitmusTraces, CompilesBracketsAndHonoursAbort)
{
    WorkloadTraces traces = litmusTraces(twoThreadProgram());
    ASSERT_EQ(traces.threads.size(), 2u);

    // Thread 0's final transaction stays open: its trace ends inside a
    // transaction (TxBegin without a matching TxEnd).
    const ThreadTrace &t0 = traces.threads[0];
    int depth = 0;
    for (const auto &op : t0.ops) {
        if (op.kind == TxOp::Kind::TxBegin)
            ++depth;
        else if (op.kind == TxOp::Kind::TxEnd)
            --depth;
        if (op.kind == TxOp::Kind::Store ||
            op.kind == TxOp::Kind::Load) {
            EXPECT_EQ(addr_map::dataArenaOwner(op.addr), 0u);
            EXPECT_EQ(op.addr % wordBytes, 0u);
        }
    }
    EXPECT_EQ(depth, 1) << "tx abort must leave the final tx open";

    // Thread 1 commits everything, including the empty transaction.
    const ThreadTrace &t1 = traces.threads[1];
    unsigned begins = 0, ends = 0;
    for (const auto &op : t1.ops) {
        begins += op.kind == TxOp::Kind::TxBegin;
        ends += op.kind == TxOp::Kind::TxEnd;
    }
    EXPECT_EQ(begins, ends);
    EXPECT_GE(begins, 2u);
}

TEST(LitmusTraces, InitialImageIsDeterministic)
{
    WorkloadTraces traces = litmusTraces(twoThreadProgram());
    // Every touched word carries litmusInitialValue(offset) in the
    // initial image; stores during the run overwrite the functional
    // copy only.
    bool saw_setup_value = false;
    for (const auto &[addr, value] : traces.initialMemory) {
        if (!addr_map::inDataRegion(addr))
            continue;
        Addr offset =
            (addr - addr_map::dataRegionBase) % addr_map::dataArenaBytes;
        saw_setup_value |= value == litmusInitialValue(offset);
    }
    EXPECT_TRUE(saw_setup_value);

    // Byte-for-byte reproducible compilation.
    WorkloadTraces again = litmusTraces(twoThreadProgram());
    ASSERT_EQ(again.threads.size(), traces.threads.size());
    for (std::size_t t = 0; t < traces.threads.size(); ++t) {
        ASSERT_EQ(again.threads[t].ops.size(),
                  traces.threads[t].ops.size());
    }
}

TEST(LitmusTraces, FactoryPathReplaysPrograms)
{
    // The generic trace generator path (WorkloadKind::Litmus) must
    // also replay programs — it always commits, so use a program
    // without aborts.
    LitmusProgram p = twoThreadProgram();
    p.threads[0].txs.back().commit = true;

    TraceGenConfig cfg;
    cfg.kind = WorkloadKind::Litmus;
    cfg.numThreads = 2;
    cfg.options.litmus = serializeLitmus(p);
    WorkloadTraces traces = generateTraces(cfg);
    ASSERT_EQ(traces.threads.size(), 2u);
    bool store_seen = false;
    for (const auto &op : traces.threads[0].ops)
        store_seen |= op.kind == TxOp::Kind::Store && op.value == 7;
    EXPECT_TRUE(store_seen);
}

} // namespace
} // namespace silo::workload
