/**
 * @file
 * Correctness tests for the PM data structures against std:: references.
 *
 * These run the structures functionally (no recording) with randomized
 * operation streams and compare against std::map/std::deque oracles —
 * the workloads must be real data structures for the paper's locality
 * and merge behaviour to be faithful.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "workload/btree_workload.hh"
#include "workload/ctrie_workload.hh"
#include "workload/func_mem.hh"
#include "workload/hash_workload.hh"
#include "workload/queue_workload.hh"
#include "workload/rbtree_workload.hh"
#include "workload/rtree_workload.hh"
#include "workload/trace_recorder.hh"

namespace silo::workload
{
namespace
{

/** Functional harness: memory + recorder (recording off) + heap. */
struct Harness
{
    FuncMem mem;
    ThreadTrace trace;
    TraceRecorder rec{mem, trace};
    PmHeap heap = PmHeap::forThread(0);
    Rng rng{1234};
};

// The workloads draw (key, value) pairs from their Rng; because Rng is
// deterministic, a second "shadow" Rng with the same seed reproduces the
// exact draws, letting the tests build a std::map oracle of what each
// structure must contain.

TEST(BtreeStructure, InsertThenLookupWithShadowRng)
{
    Harness h;
    BtreeWorkload tree(1 << 14);
    Rng wl_rng(555);
    Rng shadow(555);
    tree.setup(h.rec, h.heap, wl_rng);

    // Shadow the setup draws to build the oracle.
    std::map<std::uint64_t, Word> oracle;
    for (unsigned i = 0; i < 4096; ++i) {
        std::uint64_t key = shadow.below(1 << 14) + 1;
        Word value = shadow.next() | 1;
        oracle[key] = value;
    }
    for (int i = 0; i < 3000; ++i) {
        tree.transaction(h.rec, h.heap, wl_rng);
        std::uint64_t key = shadow.below(1 << 14) + 1;
        Word value = shadow.next() | 1;
        oracle[key] = value;
    }
    for (const auto &[key, value] : oracle)
        ASSERT_EQ(tree.lookup(h.rec, key), value) << "key " << key;
}

TEST(HashStructure, InsertThenLookupWithShadowRng)
{
    Harness h;
    HashWorkload table(1024);
    Rng wl_rng(777);
    Rng shadow(777);
    table.setup(h.rec, h.heap, wl_rng);

    // Shadow setup: insert() draws key then 14 payload words.
    std::map<std::uint64_t, Word> oracle;
    auto shadow_insert = [&] {
        std::uint64_t key = shadow.next();
        Word first_payload = shadow.next() | 1;
        for (int w = 0; w < 13; ++w)
            shadow.next();
        oracle[key] = first_payload;
    };
    for (unsigned i = 0; i < 1024 / 4; ++i)
        shadow_insert();

    std::uint64_t base_count = table.size(h.rec);
    EXPECT_EQ(base_count, 1024u / 4);

    for (int i = 0; i < 500; ++i) {
        table.transaction(h.rec, h.heap, wl_rng);
        shadow_insert();
    }
    EXPECT_EQ(table.size(h.rec), base_count + 500);
    for (const auto &[key, payload] : oracle)
        ASSERT_EQ(table.lookup(h.rec, key), payload);
}

TEST(HashStructure, RemoveUnlinksAndShrinks)
{
    Harness h;
    HashWorkload table(256);
    Rng wl_rng(778);
    Rng shadow(778);
    table.setup(h.rec, h.heap, wl_rng);

    // Shadow the setup inserts to learn the keys present.
    std::vector<std::uint64_t> keys;
    for (unsigned i = 0; i < 256 / 4; ++i) {
        keys.push_back(shadow.next());
        for (int w = 0; w < 14; ++w)
            shadow.next();
    }
    std::uint64_t before = table.size(h.rec);

    // Remove half of them; lookups must miss afterwards.
    for (std::size_t i = 0; i < keys.size(); i += 2) {
        ASSERT_TRUE(table.remove(h.rec, keys[i]));
        EXPECT_EQ(table.lookup(h.rec, keys[i]), 0u);
    }
    EXPECT_EQ(table.size(h.rec), before - (keys.size() + 1) / 2);

    // The untouched half survives; removing a removed key fails.
    for (std::size_t i = 1; i < keys.size(); i += 2)
        EXPECT_NE(table.lookup(h.rec, keys[i]), 0u);
    EXPECT_FALSE(table.remove(h.rec, keys[0]));
    EXPECT_FALSE(table.remove(h.rec, 0xdeadbeef));
}

TEST(QueueStructure, FifoOrderAndStableSize)
{
    Harness h;
    QueueWorkload queue;
    Rng wl_rng(31);
    queue.setup(h.rec, h.heap, wl_rng);
    std::uint64_t size0 = queue.size(h.rec);
    EXPECT_EQ(size0, 64u);

    for (int i = 0; i < 1000; ++i) {
        queue.transaction(h.rec, h.heap, wl_rng);
        ASSERT_EQ(queue.size(h.rec), size0);
    }
    EXPECT_NE(queue.front(h.rec), 0u);
}

TEST(QueueStructure, DrainsToEmptySafely)
{
    Harness h;
    FuncMem mem;
    ThreadTrace trace;
    TraceRecorder rec(mem, trace);
    PmHeap heap = PmHeap::forThread(0);
    Rng rng(7);
    QueueWorkload queue;
    queue.setup(rec, heap, rng);
    // Dequeue beyond empty must not underflow or corrupt.
    for (int i = 0; i < 200; ++i)
        queue.transaction(rec, heap, rng);
    SUCCEED();
}

TEST(RBtreeStructure, InvariantsHoldAfterManyInserts)
{
    Harness h;
    RBtreeWorkload tree(1 << 16);
    Rng wl_rng(91);
    tree.setup(h.rec, h.heap, wl_rng);
    EXPECT_GT(tree.validate(h.rec), 0u);

    for (int i = 0; i < 2000; ++i)
        tree.transaction(h.rec, h.heap, wl_rng);
    EXPECT_GT(tree.validate(h.rec), 0u);
}

TEST(RBtreeStructure, LookupMatchesShadowOracle)
{
    Harness h;
    RBtreeWorkload tree(1 << 16);
    Rng wl_rng(92);
    Rng shadow(92);
    tree.setup(h.rec, h.heap, wl_rng);

    std::map<std::uint64_t, Word> oracle;
    for (unsigned i = 0; i < 4096; ++i) {
        std::uint64_t key = shadow.below(1 << 16) + 1;
        Word value = shadow.next() | 1;
        oracle[key] = value;
    }
    for (int i = 0; i < 2000; ++i) {
        tree.transaction(h.rec, h.heap, wl_rng);
        std::uint64_t key = shadow.below(1 << 16) + 1;
        Word value = shadow.next() | 1;
        oracle[key] = value;
    }
    for (const auto &[key, value] : oracle)
        ASSERT_EQ(tree.lookup(h.rec, key), value);
}

TEST(RtreeStructure, LookupMatchesShadowOracle)
{
    Harness h;
    RtreeWorkload tree;
    Rng wl_rng(93);
    Rng shadow(93);
    tree.setup(h.rec, h.heap, wl_rng);

    std::map<std::uint64_t, Word> oracle;
    auto shadow_insert = [&] {
        std::uint64_t key = shadow.below(1u << RtreeWorkload::keyBits);
        Word value = shadow.next() | 1;
        oracle[key] = value;
    };
    for (unsigned i = 0; i < 4096; ++i)
        shadow_insert();
    for (int i = 0; i < 2000; ++i) {
        tree.transaction(h.rec, h.heap, wl_rng);
        shadow_insert();
    }
    for (const auto &[key, value] : oracle)
        ASSERT_EQ(tree.lookup(h.rec, key), value);
}

TEST(CtrieStructure, LookupMatchesShadowOracle)
{
    Harness h;
    CtrieWorkload trie(1 << 20);
    Rng wl_rng(94);
    Rng shadow(94);
    trie.setup(h.rec, h.heap, wl_rng);

    std::map<std::uint64_t, Word> oracle;
    auto shadow_insert = [&] {
        std::uint64_t key = shadow.below(1 << 20) + 1;
        Word value = shadow.next() | 1;
        oracle[key] = value;
    };
    for (unsigned i = 0; i < 4096; ++i)
        shadow_insert();
    for (int i = 0; i < 2000; ++i) {
        trie.transaction(h.rec, h.heap, wl_rng);
        shadow_insert();
    }
    for (const auto &[key, value] : oracle)
        ASSERT_EQ(trie.lookup(h.rec, key), value);
}

} // namespace
} // namespace silo::workload
