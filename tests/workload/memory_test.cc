/** @file Unit tests for FuncMem, PmHeap, and TraceRecorder. */

#include <gtest/gtest.h>

#include "sim/address_map.hh"
#include "workload/func_mem.hh"
#include "workload/pm_heap.hh"
#include "workload/trace_recorder.hh"

namespace silo::workload
{
namespace
{

TEST(FuncMem, UnwrittenReadsZero)
{
    FuncMem mem;
    EXPECT_EQ(mem.load(0x1000), 0u);
    EXPECT_EQ(mem.footprintWords(), 0u);
}

TEST(FuncMem, StoresAndLoads)
{
    FuncMem mem;
    mem.store(0x1000, 42);
    mem.store(0x1008, 43);
    EXPECT_EQ(mem.load(0x1000), 42u);
    EXPECT_EQ(mem.load(0x1008), 43u);
    EXPECT_EQ(mem.footprintWords(), 2u);
}

TEST(FuncMem, UnalignedAccessPanics)
{
    FuncMem mem;
    EXPECT_THROW(mem.store(0x1001, 1), PanicError);
    EXPECT_THROW((void)mem.load(0x1004), PanicError);
}

TEST(PmHeap, BumpAllocatesAligned)
{
    PmHeap heap(0x1000, 0x1000);
    Addr a = heap.alloc(8);
    Addr b = heap.alloc(24, 64);
    EXPECT_EQ(a, 0x1000u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 8);
    EXPECT_EQ(heap.allocLines(1) % lineBytes, 0u);
}

TEST(PmHeap, ExhaustionIsFatal)
{
    PmHeap heap(0x1000, 64);
    heap.alloc(64);
    EXPECT_THROW(heap.alloc(8), FatalError);
}

TEST(PmHeap, ThreadArenasDisjoint)
{
    PmHeap h0 = PmHeap::forThread(0);
    PmHeap h1 = PmHeap::forThread(1);
    EXPECT_EQ(h0.base(), addr_map::dataArenaBase(0));
    EXPECT_EQ(h1.base(), addr_map::dataArenaBase(1));
    EXPECT_GE(h1.base(), h0.base() + addr_map::dataArenaBytes);
    EXPECT_EQ(addr_map::dataArenaOwner(h1.base()), 1u);
    EXPECT_TRUE(addr_map::inDataRegion(h0.base()));
    EXPECT_FALSE(addr_map::inDataRegion(addr_map::logAreaBase(0)));
    EXPECT_TRUE(addr_map::inLogRegion(addr_map::logAreaBase(3)));
}

TEST(TraceRecorder, SetupPhaseIsNotRecorded)
{
    FuncMem mem;
    ThreadTrace trace;
    TraceRecorder rec(mem, trace);
    rec.store(0x1000, 5);
    EXPECT_TRUE(trace.ops.empty());
    EXPECT_EQ(mem.load(0x1000), 5u);
}

TEST(TraceRecorder, RecordsTransactions)
{
    FuncMem mem;
    ThreadTrace trace;
    TraceRecorder rec(mem, trace);
    rec.setRecording(true);
    rec.txBegin();
    rec.store(0x1000, 7);
    (void)rec.load(0x1000);
    rec.txEnd();

    ASSERT_EQ(trace.ops.size(), 4u);
    EXPECT_EQ(trace.ops[0].kind, TxOp::Kind::TxBegin);
    EXPECT_EQ(trace.ops[1].kind, TxOp::Kind::Store);
    EXPECT_EQ(trace.ops[1].addr, 0x1000u);
    EXPECT_EQ(trace.ops[1].value, 7u);
    EXPECT_EQ(trace.ops[2].kind, TxOp::Kind::Load);
    EXPECT_EQ(trace.ops[3].kind, TxOp::Kind::TxEnd);
    EXPECT_EQ(trace.numTransactions, 1u);
}

TEST(TraceRecorder, NestedTxPanics)
{
    FuncMem mem;
    ThreadTrace trace;
    TraceRecorder rec(mem, trace);
    rec.txBegin();
    EXPECT_THROW(rec.txBegin(), PanicError);
}

TEST(TraceRecorder, TxEndWithoutBeginPanics)
{
    FuncMem mem;
    ThreadTrace trace;
    TraceRecorder rec(mem, trace);
    EXPECT_THROW(rec.txEnd(), PanicError);
}

TEST(TraceRecorder, StoreOutsideTxWhileRecordingPanics)
{
    FuncMem mem;
    ThreadTrace trace;
    TraceRecorder rec(mem, trace);
    rec.setRecording(true);
    EXPECT_THROW(rec.store(0x1000, 1), PanicError);
}

TEST(AnalyzeWriteSets, CountsUniqueWords)
{
    ThreadTrace trace;
    auto push = [&](TxOp::Kind k, Addr a = 0, Word v = 0) {
        trace.ops.push_back({k, a, v});
    };
    push(TxOp::Kind::TxBegin);
    push(TxOp::Kind::Store, 0x1000, 1);
    push(TxOp::Kind::Store, 0x1000, 2);   // same word
    push(TxOp::Kind::Store, 0x1008, 3);
    push(TxOp::Kind::TxEnd);
    push(TxOp::Kind::TxBegin);
    push(TxOp::Kind::Store, 0x2000, 4);
    push(TxOp::Kind::TxEnd);
    trace.numTransactions = 2;

    auto stats = analyzeWriteSets(trace);
    EXPECT_DOUBLE_EQ(stats.avgStoreOps, 2.0);
    EXPECT_DOUBLE_EQ(stats.avgUniqueWords, 1.5);
    EXPECT_DOUBLE_EQ(stats.avgWriteSetBytes, 12.0);
    EXPECT_EQ(stats.maxUniqueWords, 2u);
}

} // namespace
} // namespace silo::workload
