/**
 * @file
 * Tests for trace generation: well-formedness, determinism, address
 * partitioning, replay consistency, and Fig.-4-scale write-set sizes.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "sim/address_map.hh"
#include "workload/trace_gen.hh"

namespace silo::workload
{
namespace
{

TraceGenConfig
smallConfig(WorkloadKind kind, unsigned threads = 2,
            std::uint64_t tx = 50)
{
    TraceGenConfig cfg;
    cfg.kind = kind;
    cfg.numThreads = threads;
    cfg.transactionsPerThread = tx;
    cfg.seed = 7;
    return cfg;
}

class TraceWellFormed : public ::testing::TestWithParam<WorkloadKind>
{
};

TEST_P(TraceWellFormed, BalancedAndPartitioned)
{
    auto traces = generateTraces(smallConfig(GetParam()));
    ASSERT_EQ(traces.threads.size(), 2u);

    for (unsigned t = 0; t < traces.threads.size(); ++t) {
        const auto &trace = traces.threads[t];
        EXPECT_EQ(trace.numTransactions, 50u);

        bool in_tx = false;
        std::uint64_t tx_seen = 0;
        for (const auto &op : trace.ops) {
            switch (op.kind) {
              case TxOp::Kind::TxBegin:
                ASSERT_FALSE(in_tx);
                in_tx = true;
                break;
              case TxOp::Kind::TxEnd:
                ASSERT_TRUE(in_tx);
                in_tx = false;
                ++tx_seen;
                break;
              case TxOp::Kind::Store:
              case TxOp::Kind::Load:
                ASSERT_TRUE(in_tx);
                ASSERT_TRUE(addr_map::inDataRegion(op.addr));
                ASSERT_EQ(addr_map::dataArenaOwner(op.addr), t)
                    << "thread touched a foreign arena";
                ASSERT_EQ(op.addr % wordBytes, 0u);
                break;
            }
        }
        EXPECT_FALSE(in_tx);
        EXPECT_EQ(tx_seen, 50u);
    }
}

TEST_P(TraceWellFormed, ReplayOverInitialGivesFinalImage)
{
    auto traces = generateTraces(smallConfig(GetParam()));
    WordStore image = traces.initialMemory;
    for (const auto &trace : traces.threads) {
        for (const auto &op : trace.ops) {
            if (op.kind == TxOp::Kind::Store)
                image[op.addr] = op.value;
        }
    }
    // Every word of the final image must match the replayed image.
    ASSERT_EQ(image.size(), traces.finalMemory.size());
    for (const auto &[addr, value] : traces.finalMemory)
        ASSERT_EQ(image[addr], value) << "addr " << std::hex << addr;
}

TEST_P(TraceWellFormed, DeterministicForSameSeed)
{
    auto a = generateTraces(smallConfig(GetParam(), 1, 20));
    auto b = generateTraces(smallConfig(GetParam(), 1, 20));
    ASSERT_EQ(a.threads[0].ops.size(), b.threads[0].ops.size());
    for (size_t i = 0; i < a.threads[0].ops.size(); ++i) {
        ASSERT_EQ(a.threads[0].ops[i].addr, b.threads[0].ops[i].addr);
        ASSERT_EQ(a.threads[0].ops[i].value, b.threads[0].ops[i].value);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TraceWellFormed,
    ::testing::ValuesIn(std::begin(allWorkloads),
                        std::end(allWorkloads)),
    [](const ::testing::TestParamInfo<WorkloadKind> &info) {
        return workloadName(info.param);
    });

TEST(WriteSets, EveryWorkloadWritesWithinFig4Scale)
{
    // Fig. 4: write sizes are generally below 0.5 KB per transaction.
    for (WorkloadKind kind : allWorkloads) {
        auto traces = generateTraces(smallConfig(kind, 1, 200));
        auto stats = analyzeWriteSets(traces.threads[0]);
        EXPECT_GT(stats.avgWriteSetBytes, 0.0) << workloadName(kind);
        EXPECT_LT(stats.avgWriteSetBytes, 768.0) << workloadName(kind);
    }
}

TEST(WriteSets, RelativeOrderMatchesFig4)
{
    auto avg = [](WorkloadKind kind) {
        auto traces = generateTraces(smallConfig(kind, 1, 300));
        return analyzeWriteSets(traces.threads[0]).avgWriteSetBytes;
    };
    // TPCC and Hash are among the largest writers; TATP and Bank are
    // among the smallest (Fig. 4's relative shape).
    double tpcc = avg(WorkloadKind::Tpcc);
    double tatp = avg(WorkloadKind::Tatp);
    double bank = avg(WorkloadKind::Bank);
    double hash = avg(WorkloadKind::Hash);
    EXPECT_GT(tpcc, 100.0);
    EXPECT_GT(hash, 100.0);
    EXPECT_GT(tpcc, 2 * tatp);
    EXPECT_GT(hash, 2 * bank);
    EXPECT_LT(tatp, 64.0);
    EXPECT_LT(bank, 64.0);
}

TEST(WriteSets, OpsPerTransactionScalesWriteSet)
{
    auto cfg = smallConfig(WorkloadKind::Hash, 1, 100);
    auto base = analyzeWriteSets(generateTraces(cfg).threads[0]);
    cfg.opsPerTransaction = 4;
    auto scaled = analyzeWriteSets(generateTraces(cfg).threads[0]);
    EXPECT_NEAR(scaled.avgUniqueWords, 4.0 * base.avgUniqueWords,
                0.25 * base.avgUniqueWords);
}

TEST(WriteSets, ArrayStoresAreMostlySilent)
{
    // §VI-D: ~90% of Array's stores do not change the word's value.
    auto traces = generateTraces(smallConfig(WorkloadKind::Array, 1,
                                             300));
    WordStore image = traces.initialMemory;
    std::uint64_t silent = 0, total = 0;
    for (const auto &op : traces.threads[0].ops) {
        if (op.kind != TxOp::Kind::Store)
            continue;
        ++total;
        if (image[op.addr] == op.value)
            ++silent;
        image[op.addr] = op.value;
    }
    ASSERT_GT(total, 0u);
    double silent_frac = double(silent) / double(total);
    EXPECT_GT(silent_frac, 0.75);
    EXPECT_LT(silent_frac, 0.95);
}

} // namespace
} // namespace silo::workload
