// silo-lint test fixture: R2 negative — seeded, deterministic mixing
// with no ambient time/entropy/environment access.
#include <cstdint>

std::uint64_t
mix(std::uint64_t seed)
{
    return seed * 0x9E3779B97F4A7C15ull;
}
